"""Benchmark: Figure 4 asymmetricity degree distribution.

Regenerates the paper artefact via repro.bench.run_experiment("fig4")
and asserts its shape checks hold.  Run with pytest -s to see the
rendered rows/series.
"""


def test_fig4(run_report):
    run_report("fig4")
