"""Ablation: lightweight skew-based orderings vs the studied RAs.

The paper positions SlashBurn as a representative of degree-ordering
RAs; the lightweight-reordering literature it cites ([21], [22]) uses
HubSort/HubCluster and degree sort.  This sweep places all of them and
RCM next to the three structural RAs on one social and one web graph.
"""

from repro.core import format_table
from repro.sim import simulate_spmv, SimulationConfig
from repro.reorder import get_algorithm

_ORDERINGS = (
    "identity", "random", "degree", "hubsort", "hubcluster", "rcm",
    "slashburn", "gorder", "rabbit", "hybrid",
)


def test_lightweight_vs_structural(benchmark, shared_workloads):
    def run():
        rows = []
        for dataset in ("twtr-mini", "sk-mini"):
            graph = shared_workloads.graph(dataset)
            config = SimulationConfig.scaled_for(graph)
            for name in _ORDERINGS:
                result = get_algorithm(name)(graph)
                sim = simulate_spmv(result.apply(graph), config)
                rows.append(
                    [
                        dataset,
                        name,
                        result.preprocessing_seconds,
                        sim.l3_misses / 1e3,
                        sim.random_miss_rate * 100.0,
                        sim.traversal_time_ms(),
                    ]
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["dataset", "ordering", "prep (s)", "L3 (K)", "rand miss %", "time (ms)"],
            rows,
            title="Lightweight vs structural orderings",
            precision=2,
        )
    )
    by_key = {(r[0], r[1]): r[3] for r in rows}
    for dataset in ("twtr-mini", "sk-mini"):
        # random scrambling is the worst ordering everywhere
        assert by_key[(dataset, "random")] == max(
            by_key[(dataset, name)] for name in _ORDERINGS
        )
        # hub-aware lightweight orderings beat the blind full degree sort
        # on the web graph, where preserving the crawl order matters
        if dataset == "sk-mini":
            assert by_key[(dataset, "hubcluster")] <= by_key[(dataset, "degree")]
