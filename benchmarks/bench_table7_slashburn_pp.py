"""Benchmark: Table VII SlashBurn vs SlashBurn++.

Regenerates the paper artefact via repro.bench.run_experiment("table7")
and asserts its shape checks hold.  Run with pytest -s to see the
rendered rows/series.
"""


def test_table7(run_report):
    run_report("table7")
