"""Benchmark: Figure 3 AID degree distribution.

Regenerates the paper artefact via repro.bench.run_experiment("fig3")
and asserts its shape checks hold.  Run with pytest -s to see the
rendered rows/series.
"""


def test_fig3(run_report):
    run_report("fig3")
