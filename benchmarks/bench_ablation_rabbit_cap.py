"""Ablation: cache-aware Rabbit-Order community cap (Section VIII-C).

"RO also can use cache size as an indicator of the maximum number of
vertices in a community which prevents increasing size of communities
indefinitely."  The cap is expressed as a weighted-degree budget; the
sweep compares uncapped RO to caps derived from fractions of the
simulated cache capacity.
"""

from repro.core import format_table
from repro.reorder import RabbitOrder
from repro.sim import SimulationConfig, simulate_spmv


def test_rabbit_cap_ablation(benchmark, shared_workloads):
    dataset = "sk-mini"

    def run():
        graph = shared_workloads.graph(dataset)
        config = SimulationConfig.scaled_for(graph)
        cache_vertices = config.cache.capacity_bytes / 8  # data elems in cache
        rows = []
        for label, cap in (
            ("uncapped (paper RO)", None),
            ("cap = cache capacity", cache_vertices * graph.average_degree),
            ("cap = cache / 4", cache_vertices * graph.average_degree / 4),
        ):
            algorithm = RabbitOrder(max_community_weight=cap)
            result = algorithm(graph)
            sim = simulate_spmv(result.apply(graph), config)
            rows.append(
                [
                    label,
                    result.details["num_merges"],
                    result.details["num_top_level"],
                    sim.l3_misses / 1e3,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["variant", "merges", "top-level", "L3 (K)"],
            rows,
            title=f"Cache-aware Rabbit-Order community cap on {dataset}",
            precision=1,
        )
    )
    merges = [row[1] for row in rows]
    assert merges[0] >= merges[1] >= merges[2]  # tighter cap, fewer merges
