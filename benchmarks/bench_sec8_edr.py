"""Benchmark: Section VIII-B2 EDR-restricted Rabbit-Order.

Regenerates the paper artefact via repro.bench.run_experiment("sec8_edr")
and asserts its shape checks hold.  Run with pytest -s to see the
rendered rows/series.
"""


def test_sec8_edr(run_report):
    run_report("sec8_edr")
