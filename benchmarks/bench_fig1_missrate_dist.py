"""Benchmark: Figure 1 miss-rate degree distribution.

Regenerates the paper artefact via repro.bench.run_experiment("fig1")
and asserts its shape checks hold.  Run with pytest -s to see the
rendered rows/series.
"""


def test_fig1(run_report):
    run_report("fig1")
