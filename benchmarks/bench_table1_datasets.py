"""Benchmark: Table I dataset inventory.

Regenerates the paper artefact via repro.bench.run_experiment("table1")
and asserts its shape checks hold.  Run with pytest -s to see the
rendered rows/series.
"""


def test_table1(run_report):
    run_report("table1")
