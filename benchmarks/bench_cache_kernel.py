"""Throughput of the vectorized cache kernels vs the reference loop.

Measures accesses/second on the validation-simulator workloads (the
SpMV traces of ``bench_validation_simulator.py``) for each replacement
policy, at the native scaled cache geometry and at 4x scale — the
geometry regime where the BRRIP/DRRIP skew guard admits the bimodal
policies to the kernel path (enough sets for the lockstep fixed point
to amortize; see ``_RRIP_MIN_DENSITY`` in ``repro.sim._kernels``).
Results go to ``BENCH_cache_kernel.json`` at the repo root — the perf
trajectory tracked across PRs.

Each row records whether ``kernel="auto"`` actually dispatched to the
kernel path (observed via the ``cache.kernel_batches`` counter, not
predicted), so the JSON is an honest account of what the auto heuristic
pays on every (workload, policy) cell.

Run standalone (``PYTHONPATH=src python benchmarks/bench_cache_kernel.py``)
or under pytest with the rest of the benchmark suite.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro import obs
from repro.bench import workloads as default_workloads
from repro.core import format_table
from repro.generate import load_dataset
from repro.obs import metrics as obs_metrics
from repro.sim import AddressSpace, CacheConfig, SetAssociativeCache, spmv_trace

_REPO_ROOT = Path(__file__).resolve().parent.parent
_OUTPUT = _REPO_ROOT / "BENCH_cache_kernel.json"

#: (name, scale) cells; scale None = the shared validation workload.
#: The 4x workloads push the scaled geometry to 128 sets, where the
#: near-balanced SpMV traces clear the BRRIP/DRRIP skew guard.
_WORKLOADS = (
    ("twtr-mini", None),
    ("sk-mini", None),
    ("twtr-mini", 4.0),
    ("sk-mini", 4.0),
)
_POLICIES = ("lru", "srrip", "brrip", "drrip")


def _time_simulate(config, lines, mode, repeats):
    """Best-of-N timing; also observes whether the kernel path ran."""
    best = np.inf
    misses = None
    kernel_batches = 0
    for _ in range(repeats):
        cache = SetAssociativeCache(config)
        with obs.recording(fresh=True):
            t0 = time.perf_counter()
            result = cache.simulate(lines, kernel=mode)
            best = min(best, time.perf_counter() - t0)
            kernel_batches += obs_metrics.registry.counter(
                "cache.kernel_batches"
            ).value
        misses = result.num_misses
    return best, misses, kernel_batches > 0


def run_bench(shared_workloads=None, repeats: int = 3) -> dict:
    """Measure all (workload, policy) cells and return the JSON payload."""
    wl = shared_workloads if shared_workloads is not None else default_workloads
    rows = []
    for name, scale in _WORKLOADS:
        if scale is None:
            graph = wl.graph(name)
            label = name
        else:
            graph = load_dataset(name, scale=scale)
            label = f"{name}@{scale:g}x"
        space = AddressSpace(graph.num_vertices, graph.num_edges)
        lines = spmv_trace(graph, space).lines
        scaled = CacheConfig.scaled_for(graph.num_vertices)
        for policy in _POLICIES:
            config = CacheConfig(
                num_sets=scaled.num_sets, ways=scaled.ways, policy=policy
            )
            ref_s, ref_misses, _ = _time_simulate(
                config, lines, "reference", max(1, repeats - 1)
            )
            ker_s, ker_misses, dispatched = _time_simulate(
                config, lines, "auto", repeats
            )
            assert ref_misses == ker_misses, (label, policy)
            n = int(lines.shape[0])
            rows.append(
                {
                    "workload": label,
                    "policy": policy,
                    "num_accesses": n,
                    "num_sets": scaled.num_sets,
                    "ways": scaled.ways,
                    "misses": int(ref_misses),
                    "kernel_dispatched": bool(dispatched),
                    "reference_seconds": ref_s,
                    "kernel_seconds": ker_s,
                    "reference_acc_per_s": n / ref_s,
                    "kernel_acc_per_s": n / ker_s,
                    "speedup": ref_s / ker_s,
                }
            )
    dispatched_rows = [r for r in rows if r["kernel_dispatched"]]
    bimodal_rows = [
        r for r in dispatched_rows if r["policy"] in ("brrip", "drrip")
    ]
    payload = {
        "bench": "cache_kernel",
        "description": (
            "accesses/sec, reference per-access loop vs auto-dispatched "
            "vectorized kernel, validation-simulator workloads (native "
            "and 4x scale)"
        ),
        "results": rows,
        "summary": {
            "best_speedup": max(r["speedup"] for r in rows),
            "dispatched_cells": len(dispatched_rows),
            "dispatched_geomean_speedup": float(
                np.exp(
                    np.mean([np.log(r["speedup"]) for r in dispatched_rows])
                )
            ),
            "dispatched_min_speedup": min(
                r["speedup"] for r in dispatched_rows
            ),
            "bimodal_dispatched_cells": len(bimodal_rows),
            "bimodal_best_speedup": max(
                (r["speedup"] for r in bimodal_rows), default=0.0
            ),
            "note": (
                "brrip/drrip dispatch is gated on set-count/skew "
                "(_RRIP_MIN_DENSITY): the 32-set native workloads decline "
                "to the reference loop, the 128-set 4x workloads run all "
                "four policies through the kernel (see DESIGN.md section 7)"
            ),
        },
    }
    return payload


def _report(payload: dict) -> str:
    table_rows = [
        [
            r["workload"],
            r["policy"],
            "yes" if r["kernel_dispatched"] else "no",
            r["num_accesses"] / 1e3,
            r["reference_acc_per_s"] / 1e6,
            r["kernel_acc_per_s"] / 1e6,
            r["speedup"],
        ]
        for r in payload["results"]
    ]
    return format_table(
        [
            "workload",
            "policy",
            "kernel",
            "accesses (K)",
            "ref Macc/s",
            "auto Macc/s",
            "speedup",
        ],
        table_rows,
        title="Cache-simulation kernel throughput (validation workloads)",
        precision=2,
    )


def write_json(payload: dict, path: Path = _OUTPUT) -> None:
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")


def _assert_gates(payload: dict) -> None:
    """The CI contract for the auto-dispatch heuristic.

    1. No cell regresses meaningfully below the reference loop (the
       declined cells pay only the O(n) guard, so ~1.0x).
    2. Every cell the heuristic *does* dispatch wins by >= 1.1x — a
       dispatch that loses means the guard thresholds have drifted.
    3. At least one workload dispatches all four policies, and the
       bimodal (BRRIP/DRRIP) kernel path shows a real > 1.2x win there.
    """
    rows = payload["results"]
    for r in rows:
        assert r["speedup"] > 0.8, r
    for r in rows:
        if r["kernel_dispatched"]:
            assert r["speedup"] >= 1.1, r
    by_workload = {}
    for r in rows:
        by_workload.setdefault(r["workload"], []).append(r)
    assert any(
        all(r["kernel_dispatched"] for r in cell) and len(cell) == len(_POLICIES)
        for cell in by_workload.values()
    ), "no workload dispatches all four policies"
    assert payload["summary"]["bimodal_best_speedup"] > 1.2, payload["summary"]
    assert payload["summary"]["best_speedup"] > 2.0


def test_cache_kernel_throughput(benchmark, shared_workloads):
    payload = benchmark.pedantic(
        run_bench, args=(shared_workloads,), kwargs={"repeats": 2}, rounds=1,
        iterations=1,
    )
    write_json(payload)
    print()
    print(_report(payload))
    _assert_gates(payload)


if __name__ == "__main__":
    data = run_bench()
    write_json(data)
    print(_report(data))
    _assert_gates(data)
    print(f"wrote {_OUTPUT}")
