"""Throughput of the vectorized cache kernels vs the reference loop.

Measures accesses/second on the validation-simulator workloads (the
SpMV traces of ``bench_validation_simulator.py`` at the same scaled
cache geometry) for each replacement policy, and writes the results to
``BENCH_cache_kernel.json`` at the repo root — the first point on the
perf trajectory tracked across PRs.

Run standalone (``PYTHONPATH=src python benchmarks/bench_cache_kernel.py``)
or under pytest with the rest of the benchmark suite.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.bench import workloads as default_workloads
from repro.core import format_table
from repro.sim import AddressSpace, CacheConfig, SetAssociativeCache, spmv_trace

_REPO_ROOT = Path(__file__).resolve().parent.parent
_OUTPUT = _REPO_ROOT / "BENCH_cache_kernel.json"

_WORKLOADS = ("twtr-mini", "sk-mini")
#: auto dispatch sends brrip/drrip to the reference loop (see
#: repro.sim._kernels); they are measured anyway so the JSON records the
#: honest mix the validation workload pays.
_POLICIES = ("lru", "srrip", "drrip")


def _time_simulate(config, lines, mode, repeats):
    best = np.inf
    misses = None
    for _ in range(repeats):
        cache = SetAssociativeCache(config)
        t0 = time.perf_counter()
        result = cache.simulate(lines, kernel=mode)
        best = min(best, time.perf_counter() - t0)
        misses = result.num_misses
    return best, misses


def run_bench(shared_workloads=None, repeats: int = 3) -> dict:
    """Measure all (workload, policy) cells and return the JSON payload."""
    wl = shared_workloads if shared_workloads is not None else default_workloads
    rows = []
    for name in _WORKLOADS:
        graph = wl.graph(name)
        space = AddressSpace(graph.num_vertices, graph.num_edges)
        lines = spmv_trace(graph, space).lines
        scaled = CacheConfig.scaled_for(graph.num_vertices)
        for policy in _POLICIES:
            config = CacheConfig(
                num_sets=scaled.num_sets, ways=scaled.ways, policy=policy
            )
            ref_s, ref_misses = _time_simulate(config, lines, "reference", max(1, repeats - 1))
            ker_s, ker_misses = _time_simulate(config, lines, "auto", repeats)
            assert ref_misses == ker_misses, (name, policy)
            n = int(lines.shape[0])
            rows.append(
                {
                    "workload": name,
                    "policy": policy,
                    "num_accesses": n,
                    "num_sets": scaled.num_sets,
                    "ways": scaled.ways,
                    "misses": int(ref_misses),
                    "reference_seconds": ref_s,
                    "kernel_seconds": ker_s,
                    "reference_acc_per_s": n / ref_s,
                    "kernel_acc_per_s": n / ker_s,
                    "speedup": ref_s / ker_s,
                }
            )
    kernel_rows = [r for r in rows if r["policy"] in ("lru", "srrip")]
    payload = {
        "bench": "cache_kernel",
        "description": (
            "accesses/sec, reference per-access loop vs auto-dispatched "
            "vectorized kernel, validation-simulator workloads"
        ),
        "results": rows,
        "summary": {
            "best_speedup": max(r["speedup"] for r in rows),
            "lru_srrip_geomean_speedup": float(
                np.exp(np.mean([np.log(r["speedup"]) for r in kernel_rows]))
            ),
            "note": (
                "brrip/drrip auto-dispatch to the reference loop (global "
                "draw-rank coupling; see DESIGN.md), so their speedup is ~1.0 "
                "by construction"
            ),
        },
    }
    return payload


def _report(payload: dict) -> str:
    table_rows = [
        [
            r["workload"],
            r["policy"],
            r["num_accesses"] / 1e3,
            r["reference_acc_per_s"] / 1e6,
            r["kernel_acc_per_s"] / 1e6,
            r["speedup"],
        ]
        for r in payload["results"]
    ]
    return format_table(
        ["workload", "policy", "accesses (K)", "ref Macc/s", "kernel Macc/s", "speedup"],
        table_rows,
        title="Cache-simulation kernel throughput (validation workloads)",
        precision=2,
    )


def write_json(payload: dict, path: Path = _OUTPUT) -> None:
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")


def test_cache_kernel_throughput(benchmark, shared_workloads):
    payload = benchmark.pedantic(
        run_bench, args=(shared_workloads,), kwargs={"repeats": 2}, rounds=1,
        iterations=1,
    )
    write_json(payload)
    print()
    print(_report(payload))
    # The kernel must never lose to the reference loop it replaces, and
    # the pure-kernel policies must show a real win.
    for r in payload["results"]:
        assert r["speedup"] > 0.8, r
    assert payload["summary"]["best_speedup"] > 2.0


if __name__ == "__main__":
    data = run_bench()
    write_json(data)
    print(_report(data))
    print(f"wrote {_OUTPUT}")
