"""Benchmark: Figure 5 degree range decomposition.

Regenerates the paper artefact via repro.bench.run_experiment("fig5")
and asserts its shape checks hold.  Run with pytest -s to see the
rendered rows/series.
"""


def test_fig5(run_report):
    run_report("fig5")
