"""Benchmark: Table V average effective cache size.

Regenerates the paper artefact via repro.bench.run_experiment("table5")
and asserts its shape checks hold.  Run with pytest -s to see the
rendered rows/series.
"""


def test_table5(run_report):
    run_report("table5")
