"""Benchmark: Figure 6 hub edge coverage.

Regenerates the paper artefact via repro.bench.run_experiment("fig6")
and asserts its shape checks hold.  Run with pytest -s to see the
rendered rows/series.
"""


def test_fig6(run_report):
    run_report("fig6")
