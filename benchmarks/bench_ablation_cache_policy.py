"""Ablation: cache replacement policy (LRU vs SRRIP vs BRRIP vs DRRIP).

The paper's simulator implements the dueling BRRIP/SRRIP (DRRIP) policy
of its Xeon's L3.  This ablation quantifies how much the policy choice
moves the headline miss counts — DRRIP should track the better of its
two constituent policies on every workload.
"""

import numpy as np

from repro.core import format_table
from repro.sim import CacheConfig, SetAssociativeCache, SimulationConfig, simulate_spmv


def test_cache_policy_ablation(benchmark, shared_workloads):
    def run():
        rows = []
        results = {}
        for dataset in ("twtr-mini", "sk-mini"):
            graph = shared_workloads.graph(dataset)
            base = SimulationConfig.scaled_for(graph)
            trace = simulate_spmv(graph, base).trace  # reuse the trace
            row = [dataset]
            for policy in ("lru", "srrip", "brrip", "drrip"):
                config = CacheConfig(
                    num_sets=base.cache.num_sets,
                    ways=base.cache.ways,
                    line_size=base.cache.line_size,
                    policy=policy,
                )
                misses = SetAssociativeCache(config).simulate(trace.lines).num_misses
                results[(dataset, policy)] = misses
                row.append(misses / 1e3)
            rows.append(row)
        return rows, results

    rows, results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["dataset", "LRU (K)", "SRRIP (K)", "BRRIP (K)", "DRRIP (K)"],
            rows,
            title="L3 misses by replacement policy",
            precision=1,
        )
    )
    for dataset in ("twtr-mini", "sk-mini"):
        drrip = results[(dataset, "drrip")]
        best_static = min(results[(dataset, "srrip")], results[(dataset, "brrip")])
        # set dueling should land within 10% of the better static policy
        assert drrip <= best_static * 1.10, (dataset, drrip, best_static)
