"""Benchmark: Table VI CSC vs CSR read traversals.

Regenerates the paper artefact via repro.bench.run_experiment("table6")
and asserts its shape checks hold.  Run with pytest -s to see the
rendered rows/series.
"""


def test_table6(run_report):
    run_report("table6")
