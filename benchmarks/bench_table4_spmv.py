"""Benchmark: Table IV SpMV execution results.

Regenerates the paper artefact via repro.bench.run_experiment("table4")
and asserts its shape checks hold.  Run with pytest -s to see the
rendered rows/series.
"""


def test_table4(run_report):
    run_report("table4")
