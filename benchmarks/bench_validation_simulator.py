"""Simulator accuracy validation (the Section V-B methodology check).

The paper reports 15 % average absolute error against the real machine
and 1.4 % average relative error between reordered versions of a graph.
This bench reproduces both error notions against an independent exact
model (fully-associative LRU from exact reuse distances) — see
`repro.core.validation` for the mapping.
"""

from repro.core import format_table, validate_simulator
from repro.sim import CacheConfig


def test_simulator_validation(benchmark, shared_workloads):
    def run():
        rows = []
        reports = []
        for dataset, algorithm in (
            ("twtr-mini", "gorder"),
            ("sk-mini", "rabbit"),
        ):
            graph = shared_workloads.graph(dataset)
            reordered = shared_workloads.reordered_graph(dataset, algorithm)
            cache = CacheConfig.scaled_for(graph.num_vertices)
            report = validate_simulator(graph, reordered, cache)
            reports.append(report)
            rows.append(
                [
                    f"{dataset} ({algorithm})",
                    report.exact_baseline_misses / 1e3,
                    report.lru_baseline_misses / 1e3,
                    report.absolute_error_percent,
                    report.exact_improvement_percent,
                    report.drrip_improvement_percent,
                    report.relative_disagreement_percent,
                ]
            )
        return rows, reports

    rows, reports = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["workload", "exact L3(K)", "sim LRU L3(K)", "abs err %",
             "exact improv %", "DRRIP improv %", "rel disagree %"],
            rows,
            title="Simulator vs exact reuse-distance model "
            "(paper: 15% abs / 1.4% rel vs hardware)",
            precision=2,
        )
    )
    for report in reports:
        assert report.absolute_error_percent < 20.0
        assert report.relative_disagreement_percent < 10.0
