"""Serving benchmark: cold vs. warm Zipf load against repro.serve.

Boots an in-process :class:`~repro.serve.app.ReorderService` on an
ephemeral port with a fresh artifact store, then replays the *same*
seeded Zipf request mix twice:

* **cold** — empty store: every distinct job computes its pipeline;
* **warm** — same store: every request resolves to store hits (or
  coalesces onto an in-flight twin).

``BENCH_serve.json`` records throughput and nearest-rank p50/p95/p99
latencies for both passes plus the store-hit ratios, and the gates
assert the claim the subsystem exists to make: the warm pass has a
strictly higher store-hit ratio and a lower p95 than the cold pass.

Run standalone (``PYTHONPATH=src python benchmarks/bench_serve.py``) or
under pytest with the rest of the benchmark suite; CI's ``serve-smoke``
job publishes the numbers to the step summary.
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
_OUTPUT = _REPO_ROOT / "BENCH_serve.json"

#: The benchmark shrinks the dataset registry so the *serving* overhead
#: (HTTP, coalescing, store round-trips) is what gets measured, not
#: graph generation throughput; the scale factor participates in every
#: job fingerprint, so these artifacts never collide with full-size runs.
_BENCH_SCALE = "0.1"

_DATASETS = ("twtr-mini", "frnd-mini", "webb-mini")
_ALGORITHMS = ("identity", "degree", "hubsort")
_NUM_REQUESTS = 48
_CONCURRENCY = 6
_SEED = 7


def _load_spec():
    from repro.serve.loadgen import LoadSpec

    return LoadSpec(
        datasets=_DATASETS,
        algorithms=_ALGORITHMS,
        kind="simulate",
        zipf_s=1.1,
        num_requests=_NUM_REQUESTS,
        concurrency=_CONCURRENCY,
        seed=_SEED,
    )


async def _drive(store_root: str) -> dict:
    from repro.serve.app import ReorderService
    from repro.serve.loadgen import run_load

    service = ReorderService(
        store_root=store_root,
        max_workers=2,
        max_queue_depth=16,
        executor="thread",
    )
    host, port = await service.start()
    try:
        spec = _load_spec()
        cold = await run_load(host, port, spec)
        warm = await run_load(host, port, spec)
        return {"cold": cold.to_dict(), "warm": warm.to_dict()}
    finally:
        await service.stop()


def run_bench() -> dict:
    """Cold and warm passes over one fresh store; returns the payload."""
    import tempfile

    os.environ["REPRO_SCALE"] = _BENCH_SCALE
    from repro import obs

    obs.enable()
    with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmp:
        passes = asyncio.run(_drive(str(Path(tmp) / "store")))
    cold, warm = passes["cold"], passes["warm"]
    payload = {
        "bench": "serve",
        "description": (
            "reordering-as-a-service: identical seeded Zipf load replayed "
            "against a cold then warm artifact store (in-process server, "
            "thread workers, ephemeral port)"
        ),
        "scale": float(_BENCH_SCALE),
        "datasets": list(_DATASETS),
        "algorithms": list(_ALGORITHMS),
        "cold": cold,
        "warm": warm,
        "gates": {
            "all_completed": {
                "value": cold["completed"] + warm["completed"],
                "threshold": 2 * _NUM_REQUESTS,
                "applicable": True,
                "holds": cold["failed"] == 0 and warm["failed"] == 0
                and cold["completed"] == _NUM_REQUESTS
                and warm["completed"] == _NUM_REQUESTS,
                "note": "every request in both passes answered 200",
            },
            "warm_hit_ratio": {
                "value": warm["store_hit_ratio"],
                "threshold": cold["store_hit_ratio"],
                "applicable": True,
                "holds": warm["store_hit_ratio"] > cold["store_hit_ratio"]
                and warm["stage_computed"] == 0,
                "note": (
                    "warm pass must beat the cold store-hit ratio and "
                    "recompute nothing"
                ),
            },
            "warm_p95_lower": {
                "value": warm["latency_ms"]["p95"],
                "threshold": cold["latency_ms"]["p95"],
                "applicable": True,
                "holds": warm["latency_ms"]["p95"] < cold["latency_ms"]["p95"],
                "note": "p95 latency must drop once the store is warm",
            },
        },
    }
    return payload


def _report(payload: dict) -> str:
    from repro.core import format_table

    rows = []
    for name in ("cold", "warm"):
        entry = payload[name]
        rows.append(
            [
                name,
                entry["completed"],
                entry["coalesced"],
                entry["store_hit_ratio"],
                entry["throughput_rps"],
                entry["latency_ms"]["p50"],
                entry["latency_ms"]["p95"],
                entry["latency_ms"]["p99"],
            ]
        )
    table = format_table(
        ["pass", "done", "coal", "hit ratio", "req/s", "p50 ms", "p95 ms", "p99 ms"],
        rows,
        title=(
            f"Zipf load, {_NUM_REQUESTS} requests x {_CONCURRENCY} clients "
            f"(seed {_SEED})"
        ),
        precision=2,
    )
    gate_lines = ["Gates:"]
    for name, gate in payload["gates"].items():
        status = "ok" if gate["holds"] else "MISS"
        gate_lines.append(
            f"  [{status}] {name} value={gate['value']:.4g} "
            f"vs {gate['threshold']:.4g}"
        )
    return table + "\n\n" + "\n".join(gate_lines)


def gate_summary_lines(payload: dict) -> "list[str]":
    """Markdown bullets for the CI step summary."""
    cold, warm = payload["cold"], payload["warm"]
    lines = [
        (
            f"- cold: `{cold['throughput_rps']}` req/s, hit ratio "
            f"`{cold['store_hit_ratio']}`, p50/p95/p99 = "
            f"`{cold['latency_ms']['p50']}` / `{cold['latency_ms']['p95']}` / "
            f"`{cold['latency_ms']['p99']}` ms"
        ),
        (
            f"- warm: `{warm['throughput_rps']}` req/s, hit ratio "
            f"`{warm['store_hit_ratio']}`, p50/p95/p99 = "
            f"`{warm['latency_ms']['p50']}` / `{warm['latency_ms']['p95']}` / "
            f"`{warm['latency_ms']['p99']}` ms"
        ),
    ]
    for name, gate in payload["gates"].items():
        status = "pass" if gate["holds"] else "**FAIL**"
        lines.append(f"- `{name}` — {status}")
    return lines


def write_json(payload: dict, path: Path = _OUTPUT) -> None:
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")


def _assert_gates(payload: dict) -> None:
    """The CI contract: warm beats cold, and nothing failed."""
    for name, gate in payload["gates"].items():
        assert gate["holds"], (name, gate)


def test_serve_cold_vs_warm(benchmark):
    payload = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    write_json(payload)
    print()
    print(_report(payload))
    _assert_gates(payload)


def main(argv: "list[str]") -> None:
    payload = run_bench()
    write_json(payload)
    print(_report(payload))
    _assert_gates(payload)
    print(f"wrote {_OUTPUT}")


if __name__ == "__main__":
    main(sys.argv)
