"""Benchmark: Figure 2 GCC degree distribution across SB iterations.

Regenerates the paper artefact via repro.bench.run_experiment("fig2")
and asserts its shape checks hold.  Run with pytest -s to see the
rendered rows/series.
"""


def test_fig2(run_report):
    run_report("fig2")
