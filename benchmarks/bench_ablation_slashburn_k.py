"""Ablation: SlashBurn's k parameter (hubs slashed per iteration).

The paper fixes k = 0.02|V| and suggests (Section VIII-C) choosing k
from the cache size instead.  The sweep shows the trade-off k controls:
larger k means fewer, cheaper iterations but cruder hub/community
separation.
"""

from repro.core import format_table
from repro.reorder import SlashBurn
from repro.sim import SimulationConfig, simulate_spmv


def test_slashburn_k_ablation(benchmark, shared_workloads):
    dataset = "twtr-mini"

    def run():
        graph = shared_workloads.graph(dataset)
        config = SimulationConfig.scaled_for(graph)
        rows = []
        for k_ratio in (0.005, 0.02, 0.08, 0.32):
            algorithm = SlashBurn(k_ratio)
            result = algorithm(graph)
            sim = simulate_spmv(result.apply(graph), config)
            rows.append(
                [
                    k_ratio,
                    result.details["num_iterations"],
                    result.preprocessing_seconds,
                    sim.l3_misses / 1e3,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["k / |V|", "iterations", "prep (s)", "L3 (K)"],
            rows,
            title=f"SlashBurn k sweep on {dataset} (paper uses 0.02)",
            precision=3,
        )
    )
    iterations = [row[1] for row in rows]
    assert iterations == sorted(iterations, reverse=True)  # bigger k, fewer iters
