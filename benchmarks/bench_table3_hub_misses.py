"""Benchmark: Table III misses to high-degree vertex data.

Regenerates the paper artefact via repro.bench.run_experiment("table3")
and asserts its shape checks hold.  Run with pytest -s to see the
rendered rows/series.
"""


def test_table3(run_report):
    run_report("table3")
