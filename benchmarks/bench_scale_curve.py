"""Scale tier: streamed-pipeline memory and sharded-simulation speed.

Two measurements on one RM-family benchmark graph, each taken in a
*child interpreter* so ``ru_maxrss`` is an honest per-mode peak rather
than whatever this process touched earlier:

1. **Peak RSS, streamed vs materialized** — the materialized child runs
   :func:`repro.sim.simulate_spmv` (full trace in memory), the streamed
   child runs :func:`repro.sim.simulate_spmv_streamed` (bounded chunks).
   The ratio gate (< 0.4) applies once the graph is big enough that the
   trace, not the interpreter, dominates the materialized peak
   (``_RSS_GATE_MIN_EDGES``); below that the ratio is recorded but not
   gated.
2. **Wall-clock, 4-way sharded vs single-process** — both streamed; the
   sharded child uses ``shard_mode="process"``.  The >= 1.3x gate
   applies only with >= 4 cores *and* >= ``_RSS_GATE_MIN_EDGES`` edges
   (``applicable`` records the decision) — process sharding on one core
   is pure overhead by design, and below acceptance size the serial
   trace-generation share caps the speedup by Amdahl regardless of
   cores.

Every child also reports its headline counters, and the parent asserts
all modes agree bit-exactly — the speed/memory numbers are only
meaningful because the answers are identical.

The payload additionally carries the ``scale_curve`` experiment's
ladder (miss rate / mean AID / effective diameter vs. size), so
``BENCH_scale.json`` tracks the locality-vs-scale curve across PRs.

Run standalone (``PYTHONPATH=src python benchmarks/bench_scale_curve.py
[--vertices N]``) or under pytest with the rest of the benchmark suite;
CI's ``scale-smoke`` job runs the ~10⁶-edge default.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.core import format_table
from repro.bench.experiments.scale_curve import (
    build_ladder_graph,
    ladder_sizes,
    measure_rung,
)

_REPO_ROOT = Path(__file__).resolve().parent.parent
_OUTPUT = _REPO_ROOT / "BENCH_scale.json"

#: Benchmark graph: 2^17 vertices x ~8 average degree = ~10^6 edges —
#: the CI smoke size.  ``--vertices`` (or run_bench(num_vertices=...))
#: lifts it to the 10^7–10^8 acceptance band.
_DEFAULT_VERTICES = 1 << 17

#: The streamed/materialized RSS ratio is gated only above this edge
#: count: below it the interpreter+numpy baseline (~10^8 bytes) and the
#: graph itself dominate both peaks and the ratio says nothing about
#: the trace pipeline.
_RSS_GATE_MIN_EDGES = 4_000_000

#: Absolute streamed-peak ceiling: fixed interpreter+graph allowance
#: plus a per-edge budget.  The graph (CSR both directions + vertex
#: data) is O(edges); the point of the ceiling is that the *trace* term
#: stays O(chunk) instead of O(edges x 3 accesses x ~18 bytes).
_RSS_CEILING_BASE = 400 << 20
_RSS_CEILING_PER_EDGE = 120

_MODES = ("materialized", "streamed", "sharded4")


def _child_main(mode: str, graph_path: str) -> None:
    """Load the shared graph (memmap), run one mode, print a JSON report.

    The graph is built once by the parent and rehydrated here with
    ``mmap_mode="r"`` so each child's ``ru_maxrss`` measures the
    *pipeline*, not the edge-sort transients of graph construction —
    and so the memmap CSR path gets exercised at benchmark scale.
    """
    import resource

    from repro.graph import load_graph_npz
    from repro.sim import SimulationConfig, simulate_spmv, simulate_spmv_streamed

    graph = load_graph_npz(Path(graph_path), mmap_mode="r")
    config = SimulationConfig.scaled_for(graph)
    t0 = time.perf_counter()
    if mode == "materialized":
        result = simulate_spmv(graph, config)
    elif mode == "streamed":
        result = simulate_spmv_streamed(graph, config)
    elif mode == "sharded4":
        result = simulate_spmv_streamed(
            graph, config, num_shards=4, shard_mode="process"
        )
    else:
        raise ValueError(f"unknown child mode {mode!r}")
    seconds = time.perf_counter() - t0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform != "darwin":
        peak *= 1024
    print(
        json.dumps(
            {
                "mode": mode,
                "num_vertices": graph.num_vertices,
                "num_edges": graph.num_edges,
                "num_accesses": int(result.num_accesses),
                "l3_misses": int(result.l3_misses),
                "tlb_misses": int(result.tlb_misses),
                "seconds": seconds,
                "peak_rss_bytes": int(peak),
            }
        )
    )


def _run_child(mode: str, graph_path: Path) -> dict:
    env = dict(os.environ)
    src = str(_REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()), "--child", mode,
         str(graph_path)],
        capture_output=True,
        text=True,
        env=env,
        check=False,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"child mode {mode!r} failed:\n{proc.stdout}\n{proc.stderr}"
        )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def run_bench(num_vertices: int = _DEFAULT_VERTICES) -> dict:
    """Run the per-mode children + the scaling-curve ladder; return JSON."""
    from repro.graph import save_graph_npz

    with tempfile.TemporaryDirectory(prefix="bench-scale-") as tmp:
        graph_path = Path(tmp) / "bench-graph.npz"
        save_graph_npz(build_ladder_graph(num_vertices), graph_path,
                       compressed=False)
        modes = {mode: _run_child(mode, graph_path) for mode in _MODES}

    num_edges = modes["streamed"]["num_edges"]
    rss_ratio = (
        modes["streamed"]["peak_rss_bytes"] / modes["materialized"]["peak_rss_bytes"]
    )
    rss_applicable = num_edges >= _RSS_GATE_MIN_EDGES
    rss_ceiling = _RSS_CEILING_BASE + _RSS_CEILING_PER_EDGE * num_edges
    speedup = modes["streamed"]["seconds"] / modes["sharded4"]["seconds"]
    cores = os.cpu_count() or 1
    # Below ~4M edges the coordinator's serial share (trace gen +
    # interleave, ~17% of the streamed wall at 10^6) caps the best
    # 4-way speedup under the gate by Amdahl alone; the gate is only
    # meaningful where replay dominates.  A waived gate must say so out
    # loud: each inapplicable gate records an explicit ``waived`` reason
    # so BENCH_scale.json (and the CI step summary) never silently
    # passes on a box that could not exercise the gate.
    speedup_applicable = cores >= 4 and num_edges >= _RSS_GATE_MIN_EDGES
    speedup_waived = None
    if cores < 4:
        speedup_waived = f"{cores} core(s) < 4"
    elif num_edges < _RSS_GATE_MIN_EDGES:
        speedup_waived = f"{num_edges} edges < {_RSS_GATE_MIN_EDGES}"
    rss_waived = (
        None
        if rss_applicable
        else f"{num_edges} edges < {_RSS_GATE_MIN_EDGES}"
    )

    # Same pinned-geometry ladder as the scale_curve experiment: the
    # cache is sized once for the smallest rung so the curve walks the
    # working set across a fixed cache boundary.
    from repro.sim import SimulationConfig

    curve = []
    curve_config = None
    for n in ladder_sizes():
        graph = build_ladder_graph(n)
        if curve_config is None:
            curve_config = SimulationConfig.scaled_for(graph)
        curve.append(measure_rung(graph, config=curve_config))
        del graph

    payload = {
        "bench": "scale_curve",
        "description": (
            "scale-tier streamed/sharded simulation: per-mode child peak "
            "RSS and wall-clock on one RM-family graph, plus the "
            "locality-vs-scale ladder (miss rate / AID / effective "
            "diameter vs. size)"
        ),
        "num_vertices": num_vertices,
        "num_edges": num_edges,
        "cpu_count": cores,
        "modes": modes,
        "gates": {
            "bit_exact": {
                "holds": all(
                    modes[m]["num_accesses"] == modes["materialized"]["num_accesses"]
                    and modes[m]["l3_misses"] == modes["materialized"]["l3_misses"]
                    and modes[m]["tlb_misses"] == modes["materialized"]["tlb_misses"]
                    for m in _MODES
                ),
                "applicable": True,
            },
            "rss_ratio": {
                "value": rss_ratio,
                "threshold": 0.4,
                "applicable": rss_applicable,
                "waived": rss_waived,
                "holds": rss_ratio < 0.4,
                "note": (
                    "streamed peak / materialized peak; gated only at "
                    f">= {_RSS_GATE_MIN_EDGES} edges where the trace "
                    "dominates the materialized peak"
                ),
            },
            "rss_ceiling": {
                "value": modes["sharded4"]["peak_rss_bytes"],
                "threshold": rss_ceiling,
                "applicable": True,
                "holds": modes["sharded4"]["peak_rss_bytes"] < rss_ceiling
                and modes["streamed"]["peak_rss_bytes"] < rss_ceiling,
                "note": "coordinator peak stays O(graph + chunk), never O(trace)",
            },
            "shard_speedup": {
                "value": speedup,
                "threshold": 1.3,
                "applicable": speedup_applicable,
                "waived": speedup_waived,
                "holds": speedup >= 1.3,
                "note": (
                    "streamed single-process seconds / sharded4 process-mode "
                    "seconds; gated only with >= 4 cores on a big-enough "
                    "graph (replay must dominate the serial trace gen)"
                ),
            },
        },
        "curve": curve,
    }
    return payload


def _report(payload: dict) -> str:
    mode_rows = [
        [
            r["mode"],
            r["num_accesses"] / 1e6,
            r["seconds"],
            r["peak_rss_bytes"] / (1 << 20),
            r["l3_misses"] / 1e6,
        ]
        for r in payload["modes"].values()
    ]
    curve_rows = [
        [
            r["num_edges"],
            r["effective_diameter"],
            r["mean_aid"],
            r["random_miss_rate"],
        ]
        for r in payload["curve"]
    ]
    sections = [
        format_table(
            ["mode", "Macc", "seconds", "peak MiB", "Mmiss"],
            mode_rows,
            title=(
                f"Scale-tier pipeline modes ({payload['num_edges']} edges, "
                f"{payload['cpu_count']} core(s))"
            ),
            precision=2,
        ),
        format_table(
            ["edges", "eff diam", "mean AID", "rand miss"],
            curve_rows,
            title="Locality-vs-scale ladder",
            precision=2,
        ),
    ]
    gate_lines = ["Gates:"]
    for name, gate in payload["gates"].items():
        status = "ok" if gate["holds"] else "MISS"
        if not gate["applicable"]:
            status = "WAIVED"
        value = gate.get("value")
        shown = f" value={value:.3g}" if isinstance(value, (int, float)) else ""
        if gate.get("waived"):
            shown += f" (waived: {gate['waived']})"
        gate_lines.append(f"  [{status}] {name}{shown}")
    sections.append("\n".join(gate_lines))
    return "\n\n".join(sections)


def gate_summary_lines(payload: dict) -> "list[str]":
    """One markdown line per gate, for the CI step summary.

    Waived gates surface their reason (``[waived: 2 core(s) < 4]``)
    instead of reading like passes.
    """
    lines = []
    for name, gate in payload["gates"].items():
        if gate["applicable"]:
            status = "pass" if gate["holds"] else "**FAIL**"
        else:
            status = f"waived: {gate.get('waived') or 'not applicable'}"
        value = gate.get("value")
        shown = f" `{value:.3g}`" if isinstance(value, (int, float)) else ""
        lines.append(f"- `{name}`{shown} — {status}")
    return lines


def write_json(payload: dict, path: Path = _OUTPUT) -> None:
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")


def _assert_gates(payload: dict) -> None:
    """The CI contract for the scale tier.

    Bit-exactness always holds; the RSS ratio and shard speedup gates
    are enforced only where they are meaningful (big-enough graph,
    enough cores) — their ``applicable`` flags record the decision so
    the JSON shows *why* a gate was waived.
    """
    gates = payload["gates"]
    assert gates["bit_exact"]["holds"], payload["modes"]
    assert gates["rss_ceiling"]["holds"], gates["rss_ceiling"]
    if gates["rss_ratio"]["applicable"]:
        assert gates["rss_ratio"]["holds"], gates["rss_ratio"]
    if gates["shard_speedup"]["applicable"]:
        assert gates["shard_speedup"]["holds"], gates["shard_speedup"]


def test_scale_tier_gates(benchmark):
    payload = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    write_json(payload)
    print()
    print(_report(payload))
    _assert_gates(payload)


def main(argv: "list[str]") -> None:
    if len(argv) >= 4 and argv[1] == "--child":
        _child_main(argv[2], argv[3])
        return
    num_vertices = _DEFAULT_VERTICES
    if len(argv) >= 3 and argv[1] == "--vertices":
        num_vertices = int(argv[2])
    data = run_bench(num_vertices)
    write_json(data)
    print(_report(data))
    _assert_gates(data)
    print(f"wrote {_OUTPUT}")


if __name__ == "__main__":
    main(sys.argv)
