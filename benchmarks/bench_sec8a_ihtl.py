"""Section VIII-A — iHTL-style hybrid traversal vs pure pull/push.

RAs cannot improve hub locality (Section VI-D); iHTL attacks it by
processing dense flipped blocks (edges into the top in-hubs) in push
direction with cache-resident accumulators, and the sparse remainder in
pull.  Expected shape: on web graphs — whose in-hubs dominate — the
hybrid beats pure pull; on social networks the benefit shrinks because
pull already exploits the symmetric out-hubs.
"""

from repro.core import format_table
from repro.sim import (
    CacheConfig,
    SimulationConfig,
    hubs_for_cache,
    simulate_ihtl,
    simulate_spmv,
)


def test_ihtl_hybrid(benchmark, shared_workloads):
    def run():
        rows = []
        misses = {}
        for dataset in ("twtr-mini", "sk-mini", "uu-mini"):
            graph = shared_workloads.graph(dataset)
            cache = CacheConfig.scaled_for(graph.num_vertices)
            pull = simulate_spmv(graph, SimulationConfig(cache=cache, tlb=None))
            push = simulate_spmv(
                graph, SimulationConfig(cache=cache, tlb=None, direction="push")
            )
            hybrid = simulate_ihtl(graph, cache)
            misses[dataset] = (pull.l3_misses, push.l3_misses, hybrid.l3_misses)
            rows.append(
                [
                    dataset,
                    shared_workloads.family(dataset),
                    hubs_for_cache(graph, cache),
                    pull.l3_misses / 1e3,
                    push.l3_misses / 1e3,
                    hybrid.l3_misses / 1e3,
                    (1 - hybrid.l3_misses / pull.l3_misses) * 100.0,
                ]
            )
        return rows, misses

    rows, misses = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["dataset", "type", "flipped hubs", "pull L3(K)", "push L3(K)",
             "iHTL L3(K)", "iHTL vs pull %"],
            rows,
            title="iHTL hybrid traversal (Section VIII-A)",
            precision=1,
        )
    )
    for dataset in ("sk-mini", "uu-mini"):
        pull, _, hybrid = misses[dataset]
        assert hybrid < pull, f"iHTL must beat pure pull on {dataset}"
