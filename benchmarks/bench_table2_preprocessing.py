"""Benchmark: Table II RA preprocessing overheads.

Regenerates the paper artefact via repro.bench.run_experiment("table2")
and asserts its shape checks hold.  Run with pytest -s to see the
rendered rows/series.
"""


def test_table2(run_report):
    run_report("table2")
