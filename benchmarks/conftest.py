"""Shared fixtures for the experiment benchmarks.

Every benchmark regenerates one paper table or figure through
:func:`repro.bench.run_experiment`, printing the same rows/series the
paper reports (run pytest with ``-s`` to see them inline).  Heavy
artefacts (graphs, reorderings, simulations) are cached in a single
process-wide :class:`repro.bench.Workloads`, so the suite cost is paid
once per combination.
"""

from __future__ import annotations

import pytest

from repro.bench import run_experiment, workloads


@pytest.fixture(scope="session")
def shared_workloads():
    """The process-wide workload cache."""
    return workloads


@pytest.fixture
def run_report(benchmark, shared_workloads):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def _run(experiment_id: str):
        report = benchmark.pedantic(
            run_experiment,
            args=(experiment_id, shared_workloads),
            rounds=1,
            iterations=1,
        )
        print()
        print(report.render())
        assert report.all_shapes_hold, (
            f"{experiment_id}: paper shape checks failed: "
            f"{[k for k, v in report.shape_checks.items() if not v]}"
        )
        return report

    return _run
