"""Ablation: GOrder sliding-window size, including the adaptive window.

Section VI-B blames GOrder's fixed window (w = 5) for its weakness on
LDV, and Section VIII-C proposes dynamically resizing it.  This sweep
measures L3 misses across window sizes and the adaptive variant.
"""

from repro.core import format_table
from repro.reorder import GOrder
from repro.sim import SimulationConfig, simulate_spmv


def test_gorder_window_ablation(benchmark, shared_workloads):
    dataset = "twtr-mini"

    def run():
        graph = shared_workloads.graph(dataset)
        config = SimulationConfig.scaled_for(graph)
        rows = []
        for label, algorithm in (
            ("w=2", GOrder(window=2)),
            ("w=5 (paper)", GOrder(window=5)),
            ("w=10", GOrder(window=10)),
            ("adaptive (Sec VIII-C)", GOrder(window=5, adaptive=True)),
        ):
            result = algorithm(graph)
            sim = simulate_spmv(result.apply(graph), config)
            rows.append(
                [
                    label,
                    result.preprocessing_seconds,
                    sim.l3_misses / 1e3,
                    sim.random_miss_rate * 100.0,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["window", "prep (s)", "L3 (K)", "rand miss %"],
            rows,
            title=f"GOrder window sweep on {dataset}",
            precision=2,
        )
    )
    # every configuration must produce a working ordering
    assert all(row[2] > 0 for row in rows)
