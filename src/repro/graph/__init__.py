"""Graph substrate: adjacency structures, cleaning, components, I/O."""

from repro.graph.build import BuildResult, build_graph, compact_vertices, dedup_edges
from repro.graph.communities import (
    CommunityResult,
    label_propagation_communities,
    modularity,
)
from repro.graph.components import (
    ComponentResult,
    connected_components,
    giant_component,
)
from repro.graph.csr import Adjacency
from repro.graph.degrees import (
    DegreeSummary,
    degree_class_edges,
    degree_class_labels,
    degree_histogram,
    degree_summary,
    normalized_degree_frequency,
    power_law_tail_exponent,
)
from repro.graph.diameter import bfs_level_histogram, effective_diameter
from repro.graph.graph import Graph
from repro.graph.io import (
    load_edge_list,
    load_graph_npz,
    mmap_npz_arrays,
    save_edge_list,
    save_graph_npz,
)
from repro.graph.permute import (
    apply_to_edges,
    apply_to_vertex_data,
    check_permutation,
    compose_permutations,
    identity_permutation,
    invert_permutation,
    is_permutation,
    random_permutation,
    sort_order_to_relabeling,
)
from repro.graph.validate import edges_as_keys, validate_graph

__all__ = [
    "Adjacency",
    "Graph",
    "BuildResult",
    "build_graph",
    "compact_vertices",
    "dedup_edges",
    "CommunityResult",
    "label_propagation_communities",
    "modularity",
    "ComponentResult",
    "connected_components",
    "giant_component",
    "DegreeSummary",
    "degree_class_edges",
    "degree_class_labels",
    "degree_histogram",
    "degree_summary",
    "normalized_degree_frequency",
    "power_law_tail_exponent",
    "bfs_level_histogram",
    "effective_diameter",
    "load_edge_list",
    "load_graph_npz",
    "mmap_npz_arrays",
    "save_edge_list",
    "save_graph_npz",
    "apply_to_edges",
    "apply_to_vertex_data",
    "check_permutation",
    "compose_permutations",
    "identity_permutation",
    "invert_permutation",
    "is_permutation",
    "random_permutation",
    "sort_order_to_relabeling",
    "edges_as_keys",
    "validate_graph",
]
