"""Structural validation of graphs.

Used by tests and by entry points that ingest untrusted graph data.
:func:`validate_graph` verifies that the CSR and CSC views describe the
same edge set and that every library invariant holds (sorted neighbour
lists, consistent offsets).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.graph import Graph

__all__ = ["validate_graph", "edges_as_keys"]


def edges_as_keys(num_vertices: int, sources: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Encode edges as sorted scalar keys ``source * n + target``.

    The encoding is collision-free for ``n < 2**31.5`` and lets edge sets
    be compared or probed with :func:`numpy.searchsorted`.
    """
    sources = np.asarray(sources, dtype=np.int64)
    targets = np.asarray(targets, dtype=np.int64)
    if num_vertices and num_vertices > np.iinfo(np.int64).max // num_vertices:
        raise GraphFormatError("graph too large for scalar edge keys")
    return np.sort(sources * np.int64(num_vertices) + targets)


def validate_graph(graph: Graph) -> None:
    """Raise :class:`GraphFormatError` unless every invariant holds.

    Checks: matching vertex/edge counts across directions, sorted
    neighbour lists in both directions, and CSR/CSC describing identical
    edge sets.
    """
    n = graph.num_vertices
    if graph.in_adj.num_vertices != n:
        raise GraphFormatError("CSR/CSC vertex counts differ")
    if graph.out_adj.num_edges != graph.in_adj.num_edges:
        raise GraphFormatError("CSR/CSC edge counts differ")
    if not graph.out_adj.has_sorted_neighbours():
        raise GraphFormatError("CSR neighbour lists are not sorted")
    if not graph.in_adj.has_sorted_neighbours():
        raise GraphFormatError("CSC neighbour lists are not sorted")

    out_src, out_dst = graph.out_adj.edges()
    in_dst, in_src = graph.in_adj.edges()  # CSC enumerates (target, source)
    forward = edges_as_keys(n, out_src, out_dst)
    backward = edges_as_keys(n, in_src, in_dst)
    if not np.array_equal(forward, backward):
        raise GraphFormatError("CSR and CSC describe different edge sets")
