"""Connected components over the undirected view of a graph.

SlashBurn (Section IV-A of the paper) repeatedly removes hubs and finds
the connected components of the remainder, recursing on the giant
connected component (GCC).  This module provides a vectorized label
propagation CC that is fast on the low-diameter power-law graphs and on
the hub-stripped residues SlashBurn produces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphFormatError

__all__ = ["ComponentResult", "connected_components", "giant_component"]


@dataclass(frozen=True)
class ComponentResult:
    """Labels plus summary statistics of a components run.

    ``labels[v]`` is the component ID of vertex ``v`` (component IDs are
    contiguous, ordered by first appearance).  ``sizes[c]`` counts the
    vertices in component ``c`` and ``edge_counts[c]`` the edges whose
    endpoints both lie in ``c``.
    """

    labels: np.ndarray
    sizes: np.ndarray
    edge_counts: np.ndarray

    @property
    def num_components(self) -> int:
        return self.sizes.shape[0]

    def giant_component_id(self, by: str = "edges") -> int:
        """Component with most edges (paper's GCC definition) or vertices."""
        if self.num_components == 0:
            raise GraphFormatError("graph has no components")
        if by == "edges":
            # Break edge-count ties by vertex count for determinism.
            key = self.edge_counts * (self.sizes.max() + 1) + self.sizes
        elif by == "vertices":
            key = self.sizes
        else:
            raise GraphFormatError(f"unknown GCC criterion: {by!r}")
        return int(np.argmax(key))


def connected_components(
    num_vertices: int,
    sources: np.ndarray,
    targets: np.ndarray,
    *,
    active: np.ndarray | None = None,
) -> ComponentResult:
    """Undirected connected components via pointer-jumping label propagation.

    Parameters
    ----------
    num_vertices, sources, targets:
        Graph as parallel edge arrays; direction is ignored.
    active:
        Optional boolean mask; inactive vertices are excluded (edges with
        an inactive endpoint are ignored, each inactive vertex receives
        label ``-1``).  This is how SlashBurn removes hubs without
        rebuilding the edge list every iteration.
    """
    sources = np.asarray(sources, dtype=np.int64)
    targets = np.asarray(targets, dtype=np.int64)
    if active is not None:
        active = np.asarray(active, dtype=bool)
        if active.shape[0] != num_vertices:
            raise GraphFormatError("active mask length must equal num_vertices")
        keep = active[sources] & active[targets]
        sources, targets = sources[keep], targets[keep]

    labels = np.arange(num_vertices, dtype=np.int64)
    while True:
        # Hook: every edge pulls both endpoints to the smaller label.
        edge_min = np.minimum(labels[sources], labels[targets])
        before = labels.copy()
        np.minimum.at(labels, sources, edge_min)
        np.minimum.at(labels, targets, edge_min)
        # Compress: jump each label to its label's label until stable.
        while True:
            jumped = labels[labels]
            if np.array_equal(jumped, labels):
                break
            labels = jumped
        if np.array_equal(labels, before):
            break

    if active is not None:
        labels[~active] = -1
        member_mask = active
    else:
        member_mask = np.ones(num_vertices, dtype=bool)

    # Renumber component roots to contiguous IDs ordered by first member.
    members = np.flatnonzero(member_mask)
    if members.size == 0:
        return ComponentResult(
            labels=labels,
            sizes=np.zeros(0, dtype=np.int64),
            edge_counts=np.zeros(0, dtype=np.int64),
        )
    roots, contiguous = np.unique(labels[members], return_inverse=True)
    final = labels.copy()
    final[members] = contiguous
    sizes = np.bincount(contiguous, minlength=roots.shape[0]).astype(np.int64)
    if sources.size:
        edge_counts = np.bincount(
            final[sources], minlength=roots.shape[0]
        ).astype(np.int64)
    else:
        edge_counts = np.zeros(roots.shape[0], dtype=np.int64)
    return ComponentResult(labels=final, sizes=sizes, edge_counts=edge_counts)


def giant_component(
    num_vertices: int,
    sources: np.ndarray,
    targets: np.ndarray,
    *,
    active: np.ndarray | None = None,
    by: str = "edges",
) -> tuple[np.ndarray, ComponentResult]:
    """Boolean membership mask of the GCC plus the full component result."""
    result = connected_components(num_vertices, sources, targets, active=active)
    if result.num_components == 0:
        return np.zeros(num_vertices, dtype=bool), result
    gcc = result.giant_component_id(by=by)
    return result.labels == gcc, result
