"""Edge-list cleaning and graph construction.

The paper counts vertices *after removing zero-degree vertices* because
of their destructive effect on reordering quality (Table I caption).
:func:`build_graph` reproduces that pipeline: deduplicate edges, drop
self-loops on request, compact away zero-degree vertices, and construct
both adjacency directions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.graph import Graph

__all__ = ["BuildResult", "build_graph", "dedup_edges", "compact_vertices"]


@dataclass(frozen=True)
class BuildResult:
    """Outcome of :func:`build_graph`.

    Attributes
    ----------
    graph:
        The cleaned graph in the compacted ID space.
    old_to_new:
        Array indexed by original vertex ID; ``-1`` marks vertices that
        were removed (zero degree), otherwise the compacted ID.
    num_removed_vertices:
        Count of zero-degree vertices dropped.
    num_removed_edges:
        Count of duplicate (and, if requested, self-loop) edges dropped.
    """

    graph: Graph
    old_to_new: np.ndarray
    num_removed_vertices: int
    num_removed_edges: int


def dedup_edges(
    sources: np.ndarray, targets: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Remove duplicate directed edges, keeping one copy of each."""
    sources = np.asarray(sources, dtype=np.int64)
    targets = np.asarray(targets, dtype=np.int64)
    if sources.size == 0:
        return sources.copy(), targets.copy()
    pairs = np.stack([sources, targets], axis=1)
    unique = np.unique(pairs, axis=0)
    return unique[:, 0], unique[:, 1]


def compact_vertices(
    num_vertices: int, sources: np.ndarray, targets: np.ndarray
) -> tuple[int, np.ndarray, np.ndarray, np.ndarray]:
    """Renumber vertices so only those with degree > 0 remain.

    Relative order of surviving vertices is preserved.  Returns
    ``(new_n, new_sources, new_targets, old_to_new)`` where ``old_to_new``
    maps removed vertices to ``-1``.
    """
    used = np.zeros(num_vertices, dtype=bool)
    used[sources] = True
    used[targets] = True
    old_to_new = np.full(num_vertices, -1, dtype=np.int64)
    survivors = np.flatnonzero(used)
    old_to_new[survivors] = np.arange(survivors.shape[0], dtype=np.int64)
    return survivors.shape[0], old_to_new[sources], old_to_new[targets], old_to_new


def build_graph(
    num_vertices: int,
    sources: np.ndarray,
    targets: np.ndarray,
    *,
    name: str = "",
    dedup: bool = True,
    drop_self_loops: bool = False,
    drop_zero_degree: bool = True,
) -> BuildResult:
    """Clean an edge list and build a :class:`~repro.graph.graph.Graph`.

    Parameters mirror the preprocessing the paper applies to its datasets.
    Self-loop removal is off by default because SpMV tolerates them; RAs
    such as Rabbit-Order handle self-weights explicitly.
    """
    sources = np.asarray(sources, dtype=np.int64)
    targets = np.asarray(targets, dtype=np.int64)
    if sources.shape != targets.shape or sources.ndim != 1:
        raise GraphFormatError("edge arrays must be 1-D and equal length")
    if sources.size and (
        min(sources.min(), targets.min()) < 0
        or max(sources.max(), targets.max()) >= num_vertices
    ):
        raise GraphFormatError(f"edge endpoint outside [0, {num_vertices})")

    original_edge_count = sources.shape[0]
    if drop_self_loops:
        keep = sources != targets
        sources, targets = sources[keep], targets[keep]
    if dedup:
        sources, targets = dedup_edges(sources, targets)
    removed_edges = original_edge_count - sources.shape[0]

    if drop_zero_degree:
        new_n, sources, targets, old_to_new = compact_vertices(
            num_vertices, sources, targets
        )
    else:
        new_n = num_vertices
        old_to_new = np.arange(num_vertices, dtype=np.int64)

    graph = Graph.from_edges(new_n, sources, targets, name=name)
    return BuildResult(
        graph=graph,
        old_to_new=old_to_new,
        num_removed_vertices=num_vertices - new_n,
        num_removed_edges=removed_edges,
    )
