"""Label-propagation community detection over the undirected view.

Per-community reordering (GraphBrewOrder-style, see
:class:`repro.reorder.community.CommunityOrder`) needs a community
partition that is cheap — O(iterations * |E|) — and deterministic for a
given seed.  This module provides a vectorized semi-synchronous label
propagation: every round each vertex adopts the most frequent label
among its undirected neighbours (ties broken toward the smallest
label), and odd rounds update only a seeded random subset of vertices,
which breaks the two-colouring oscillation plain synchronous LPA
exhibits on near-bipartite structures.

Unlike :mod:`repro.graph.components` (which answers *connectivity*),
the labels here split dense subgraphs apart: two vertices share a
label when their neighbourhoods overlap heavily, not merely when a
path connects them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphFormatError

__all__ = ["CommunityResult", "label_propagation_communities", "modularity"]


@dataclass(frozen=True)
class CommunityResult:
    """A community partition plus summary statistics.

    ``labels[v]`` is the community ID of vertex ``v``; IDs are
    contiguous, ordered by first member.  ``sizes[c]`` counts members of
    community ``c`` and ``internal_edges[c]`` the edges with both
    endpoints inside ``c``.  ``rounds`` is the number of propagation
    rounds executed before convergence (or the iteration cap).
    """

    labels: np.ndarray
    sizes: np.ndarray
    internal_edges: np.ndarray
    rounds: int

    @property
    def num_communities(self) -> int:
        return int(self.sizes.shape[0])

    def members_of(self, community: int) -> np.ndarray:
        """Vertex IDs belonging to ``community``, in increasing ID order."""
        return np.flatnonzero(self.labels == community)


def _mode_labels(
    vertices: np.ndarray, labels: np.ndarray, num_vertices: int
) -> "tuple[np.ndarray, np.ndarray]":
    """Per-vertex most frequent incident label (ties -> smallest label).

    ``vertices``/``labels`` are parallel arrays of (endpoint, neighbour
    label) votes.  Returns ``(voters, winner)``: the vertices that
    received at least one vote and their winning label.
    """
    # Collapse duplicate (vertex, label) votes into counts.
    key = vertices.astype(np.int64) * np.int64(num_vertices) + labels
    unique_keys, counts = np.unique(key, return_counts=True)
    vertex_part = unique_keys // num_vertices
    label_part = unique_keys % num_vertices
    # Within one vertex: highest count first, then smallest label.
    pick = np.lexsort((label_part, -counts, vertex_part))
    voters, first = np.unique(vertex_part[pick], return_index=True)
    return voters, label_part[pick][first]


def label_propagation_communities(
    num_vertices: int,
    sources: np.ndarray,
    targets: np.ndarray,
    *,
    seed: int = 0,
    max_rounds: int = 16,
) -> CommunityResult:
    """Seeded semi-synchronous label propagation.

    Parameters
    ----------
    num_vertices, sources, targets:
        Graph as parallel edge arrays; direction is ignored (votes flow
        both ways along every edge).  Self-loops cast no votes.
    seed:
        Seeds the per-round random update subsets; the partition is a
        deterministic function of ``(graph, seed, max_rounds)``.
    max_rounds:
        Hard cap on propagation rounds (LPA converges in a handful of
        rounds on power-law graphs; the cap bounds adversarial inputs).

    Isolated vertices keep their own singleton communities.
    """
    if num_vertices < 0:
        raise GraphFormatError(f"negative vertex count: {num_vertices}")
    if max_rounds < 1:
        raise GraphFormatError(f"max_rounds must be >= 1, got {max_rounds}")
    sources = np.asarray(sources, dtype=np.int64)
    targets = np.asarray(targets, dtype=np.int64)
    if sources.shape != targets.shape or sources.ndim != 1:
        raise GraphFormatError("edge arrays must be 1-D and equal length")
    if sources.size and (
        min(sources.min(), targets.min()) < 0
        or max(sources.max(), targets.max()) >= num_vertices
    ):
        raise GraphFormatError(f"edge endpoint outside [0, {num_vertices})")

    labels = np.arange(num_vertices, dtype=np.int64)
    rounds = 0
    if sources.size:
        loop = sources == targets
        endpoint_u = np.concatenate([sources[~loop], targets[~loop]])
        endpoint_v = np.concatenate([targets[~loop], sources[~loop]])
        rng = np.random.default_rng(seed)
        for round_index in range(max_rounds):
            rounds = round_index + 1
            voters, winner = _mode_labels(
                endpoint_u, labels[endpoint_v], num_vertices
            )
            updated = labels.copy()
            updated[voters] = winner
            if round_index % 2 == 1:
                # Semi-synchronous round: a seeded random half holds its
                # label, breaking synchronous two-colour oscillation.
                hold = rng.random(num_vertices) < 0.5
                updated[hold] = labels[hold]
            if np.array_equal(updated, labels):
                break
            labels = updated

    # Renumber to contiguous community IDs ordered by first member.
    roots, contiguous = np.unique(labels, return_inverse=True)
    final = contiguous.astype(np.int64)
    sizes = np.bincount(final, minlength=roots.shape[0]).astype(np.int64)
    if sources.size:
        internal_mask = final[sources] == final[targets]
        internal = np.bincount(
            final[sources[internal_mask]], minlength=roots.shape[0]
        ).astype(np.int64)
    else:
        internal = np.zeros(roots.shape[0], dtype=np.int64)
    return CommunityResult(
        labels=final, sizes=sizes, internal_edges=internal, rounds=rounds
    )


def modularity(
    num_vertices: int,
    sources: np.ndarray,
    targets: np.ndarray,
    labels: np.ndarray,
) -> float:
    """Newman modularity of a partition over the undirected view.

    ``Q = sum_c (e_c / m  -  (d_c / 2m)^2)`` with ``e_c`` the intra-
    community edge count, ``d_c`` the total degree of community ``c``
    and ``m`` the edge count.  Useful as the id-invariant quality score
    metamorphic tests compare across input relabelings.
    """
    sources = np.asarray(sources, dtype=np.int64)
    targets = np.asarray(targets, dtype=np.int64)
    labels = np.asarray(labels, dtype=np.int64)
    if labels.shape[0] != num_vertices:
        raise GraphFormatError("labels length must equal num_vertices")
    m = sources.shape[0]
    if m == 0:
        return 0.0
    num_communities = int(labels.max()) + 1 if num_vertices else 0
    intra = np.bincount(
        labels[sources[labels[sources] == labels[targets]]],
        minlength=num_communities,
    ).astype(np.float64)
    degree_sum = (
        np.bincount(labels[sources], minlength=num_communities)
        + np.bincount(labels[targets], minlength=num_communities)
    ).astype(np.float64)
    return float((intra / m - (degree_sum / (2.0 * m)) ** 2).sum())
