"""Directed graph with both traversal directions materialized.

A :class:`Graph` pairs the CSR (out-neighbour) and CSC (in-neighbour)
views the paper's SpMV traversals use, together with the degree-based
vertex classification of Section II-A:

* *low-degree vertices* (LDV): degree <= average degree ``m / n``;
* *high-degree vertices* (HDV): degree > average degree;
* *hubs*: degree > ``sqrt(n)``, split into in-hubs and out-hubs.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import Adjacency
from repro.graph.permute import apply_to_edges, check_permutation

__all__ = ["Graph"]


class Graph:
    """Directed graph ``G = (V, E)`` with CSR and CSC adjacency.

    Use :meth:`from_edges` (or :func:`repro.graph.build.build_graph`,
    which also deduplicates and drops zero-degree vertices) rather than
    the raw constructor.
    """

    __slots__ = ("out_adj", "in_adj", "name")

    def __init__(
        self, out_adj: Adjacency, in_adj: Adjacency, *, name: str = ""
    ) -> None:
        if out_adj.num_vertices != in_adj.num_vertices:
            raise GraphFormatError(
                f"CSR has {out_adj.num_vertices} vertices but CSC has "
                f"{in_adj.num_vertices}"
            )
        if out_adj.num_edges != in_adj.num_edges:
            raise GraphFormatError(
                f"CSR has {out_adj.num_edges} edges but CSC has "
                f"{in_adj.num_edges}"
            )
        self.out_adj = out_adj
        self.in_adj = in_adj
        self.name = name

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        sources: np.ndarray,
        targets: np.ndarray,
        *,
        name: str = "",
    ) -> "Graph":
        """Build both directions from parallel edge arrays (no cleaning)."""
        out_adj = Adjacency.from_edges(num_vertices, sources, targets)
        in_adj = Adjacency.from_edges(num_vertices, targets, sources)
        return cls(out_adj, in_adj, name=name)

    # -- shape ---------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return self.out_adj.num_vertices

    @property
    def num_edges(self) -> int:
        return self.out_adj.num_edges

    @property
    def average_degree(self) -> float:
        """``|E| / |V|`` — the LDV/HDV threshold (Section II-A)."""
        if self.num_vertices == 0:
            return 0.0
        return self.num_edges / self.num_vertices

    @property
    def hub_threshold(self) -> float:
        """``sqrt(|V|)`` — the hub-degree threshold (Section II-A)."""
        return math.sqrt(self.num_vertices)

    # -- degrees and classes ---------------------------------------------------

    def out_degrees(self) -> np.ndarray:
        return self.out_adj.degrees()

    def in_degrees(self) -> np.ndarray:
        return self.in_adj.degrees()

    def total_degrees(self) -> np.ndarray:
        """Undirected degree: in-degree + out-degree."""
        return self.out_degrees() + self.in_degrees()

    def in_hubs(self) -> np.ndarray:
        """Vertex IDs whose in-degree exceeds ``sqrt(n)``."""
        return np.flatnonzero(self.in_degrees() > self.hub_threshold)

    def out_hubs(self) -> np.ndarray:
        """Vertex IDs whose out-degree exceeds ``sqrt(n)``."""
        return np.flatnonzero(self.out_degrees() > self.hub_threshold)

    def high_degree_mask(self, direction: str = "in") -> np.ndarray:
        """Boolean mask of HDV (degree above the graph average degree)."""
        return self._degrees(direction) > self.average_degree

    def low_degree_mask(self, direction: str = "in") -> np.ndarray:
        """Boolean mask of LDV (degree at or below the average degree)."""
        return ~self.high_degree_mask(direction)

    def _degrees(self, direction: str) -> np.ndarray:
        if direction == "in":
            return self.in_degrees()
        if direction == "out":
            return self.out_degrees()
        if direction == "total":
            return self.total_degrees()
        raise GraphFormatError(f"unknown degree direction: {direction!r}")

    # -- edges and relabeling ----------------------------------------------------

    def edges(self) -> tuple[np.ndarray, np.ndarray]:
        """All edges as ``(sources, targets)`` arrays (CSR order)."""
        return self.out_adj.edges()

    def permuted(self, relabeling: np.ndarray, *, name: str | None = None) -> "Graph":
        """Rebuild the graph in the new ID space of ``relabeling``.

        This mirrors the paper's workflow: an RA emits a relabeling array
        and the CSR/CSC representations are rebuilt from it.
        """
        relabeling = check_permutation(relabeling, self.num_vertices)
        src, dst = self.edges()
        new_src, new_dst = apply_to_edges(relabeling, src, dst)
        if name is None:
            name = self.name
        return Graph.from_edges(self.num_vertices, new_src, new_dst, name=name)

    def reversed(self) -> "Graph":
        """Graph with every edge direction flipped (swaps CSR and CSC)."""
        return Graph(self.in_adj, self.out_adj, name=self.name)

    # -- dunder -----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self.out_adj == other.out_adj and self.in_adj == other.in_adj

    def __hash__(self) -> int:  # pragma: no cover - explicit unhashability
        # TypeError is what the hashing protocol mandates for unhashable
        # types, so this raise is exempt from the ReproError hierarchy.
        raise TypeError("Graph is not hashable")  # repro-lint: disable=RL004

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"Graph(n={self.num_vertices}, m={self.num_edges}{label})"
