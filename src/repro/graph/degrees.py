"""Degree statistics and vertex classification helpers.

Centralizes the degree-based vocabulary of the paper: LDV/HDV split at
the average degree, hubs at ``sqrt(n)``, degree histograms used for
Figure 2, and the decade-based degree classes ("1-10", "10-100", ...)
used by the degree range decomposition (Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.graph import Graph

__all__ = [
    "DegreeSummary",
    "degree_summary",
    "degree_histogram",
    "normalized_degree_frequency",
    "degree_class_edges",
    "degree_class_labels",
    "power_law_tail_exponent",
]


@dataclass(frozen=True)
class DegreeSummary:
    """Aggregate degree statistics of one direction of a graph."""

    num_vertices: int
    num_edges: int
    average: float
    maximum: int
    hub_threshold: float
    num_hubs: int
    num_hdv: int
    num_ldv: int


def degree_summary(graph: Graph, direction: str = "in") -> DegreeSummary:
    """Summarize the degree distribution of ``graph`` in one direction."""
    degrees = graph._degrees(direction)
    average = graph.average_degree
    hub_threshold = graph.hub_threshold
    return DegreeSummary(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        average=average,
        maximum=int(degrees.max()) if degrees.size else 0,
        hub_threshold=hub_threshold,
        num_hubs=int((degrees > hub_threshold).sum()),
        num_hdv=int((degrees > average).sum()),
        num_ldv=int((degrees <= average).sum()),
    )


def degree_histogram(degrees: np.ndarray, max_degree: int | None = None) -> np.ndarray:
    """Frequency of every integer degree, ``hist[d] = #vertices of degree d``."""
    degrees = np.asarray(degrees, dtype=np.int64)
    if degrees.size and degrees.min() < 0:
        raise GraphFormatError("degrees must be non-negative")
    length = (int(degrees.max()) if degrees.size else 0) + 1
    if max_degree is not None:
        length = max(length, max_degree + 1)
    return np.bincount(degrees, minlength=length).astype(np.int64)


def normalized_degree_frequency(degrees: np.ndarray) -> np.ndarray:
    """Frequency normalized to the peak, as plotted in Figure 2.

    ``result[d] = frequency(d) / max_frequency``; zero where no vertex has
    degree ``d``.
    """
    hist = degree_histogram(degrees)
    peak = hist.max()
    if peak == 0:
        return hist.astype(np.float64)
    return hist / peak


def degree_class_labels(num_classes: int) -> list[str]:
    """Decade labels '1-10', '10-100', ... used by Figure 5."""
    labels = []
    for k in range(num_classes):
        low = 10**k
        high = 10 ** (k + 1)
        labels.append(f"{_compact(low)}-{_compact(high)}")
    return labels


def _compact(value: int) -> str:
    if value >= 1_000_000 and value % 1_000_000 == 0:
        return f"{value // 1_000_000}M"
    if value >= 1_000 and value % 1_000 == 0:
        return f"{value // 1_000}K"
    return str(value)


def degree_class_edges(degrees: np.ndarray) -> np.ndarray:
    """Decade class index for each degree: class k covers [10^k, 10^(k+1)).

    Degree 0 maps to class 0 alongside the 1-10 decade (the paper drops
    zero-degree vertices before analysis, so the case is degenerate).
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    classes = np.zeros(degrees.shape, dtype=np.int64)
    positive = degrees > 0
    classes[positive] = np.floor(np.log10(degrees[positive])).astype(np.int64)
    return classes


def power_law_tail_exponent(degrees: np.ndarray, d_min: int = 10) -> float:
    """Maximum-likelihood (discrete approximation) power-law exponent.

    Uses the standard Clauset-Shalizi-Newman continuous approximation
    ``alpha = 1 + n / sum(ln(d / (d_min - 0.5)))`` over degrees >= d_min.
    Used by the Figure 2 analysis to show the GCC of SlashBurn losing its
    power-law character.  Returns ``nan`` when fewer than two vertices
    exceed ``d_min``.
    """
    degrees = np.asarray(degrees, dtype=np.float64)
    tail = degrees[degrees >= d_min]
    if tail.size < 2:
        return float("nan")
    return float(1.0 + tail.size / np.log(tail / (d_min - 0.5)).sum())
