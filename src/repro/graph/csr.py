"""Compressed sparse adjacency structure.

The paper (Section II-A) represents graph topology in Compressed Sparse
Rows (CSR, out-neighbours) and Compressed Sparse Columns (CSC,
in-neighbours).  Both are the same data structure — an ``offsets`` array
of ``n + 1`` elements and a flat ``targets`` array of ``m`` elements —
differing only in which endpoint of each edge they enumerate.
:class:`Adjacency` implements that shared structure; :class:`repro.graph.graph.Graph`
pairs one instance per direction.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import GraphFormatError

__all__ = ["Adjacency"]


class Adjacency:
    """Immutable compressed adjacency (one direction of a directed graph).

    Parameters
    ----------
    offsets:
        ``int64`` array of ``n + 1`` non-decreasing indices into ``targets``.
        ``targets[offsets[v]:offsets[v + 1]]`` are the neighbours of ``v``.
    targets:
        ``int64`` array of neighbour vertex IDs, each in ``[0, n)``.
    validate:
        When true (default), structural invariants are checked eagerly.

    Neighbour lists are stored in ascending ID order by all constructors
    in this library; :meth:`from_edges` sorts them.  Sortedness is what
    makes the N2N AID metric (Equation 1 of the paper) well defined.
    """

    __slots__ = ("offsets", "targets")

    def __init__(
        self, offsets: np.ndarray, targets: np.ndarray, *, validate: bool = True
    ) -> None:
        offsets = np.asarray(offsets, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        if validate:
            _validate_structure(offsets, targets)
        self.offsets = offsets
        self.targets = targets
        self.offsets.setflags(write=False)
        self.targets.setflags(write=False)

    # -- constructors ----------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        sources: np.ndarray,
        targets: np.ndarray,
        *,
        sort_neighbours: bool = True,
    ) -> "Adjacency":
        """Build adjacency over ``sources[i] -> targets[i]`` edges.

        The result enumerates, for each source vertex, its target
        neighbours.  To obtain the reverse direction, swap the two edge
        arrays at the call site.
        """
        if num_vertices < 0:
            raise GraphFormatError(f"negative vertex count: {num_vertices}")
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        if sources.shape != targets.shape or sources.ndim != 1:
            raise GraphFormatError(
                f"edge arrays must be 1-D and equal length, got shapes "
                f"{sources.shape} and {targets.shape}"
            )
        if sources.size:
            lo = min(int(sources.min()), int(targets.min()))
            hi = max(int(sources.max()), int(targets.max()))
            if lo < 0 or hi >= num_vertices:
                raise GraphFormatError(
                    f"edge endpoint out of range [0, {num_vertices}): "
                    f"saw IDs in [{lo}, {hi}]"
                )
        degrees = np.bincount(sources, minlength=num_vertices).astype(np.int64)
        offsets = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(degrees, out=offsets[1:])
        if sort_neighbours:
            # Sorting by (source, target) groups each neighbour list and
            # orders it ascending in one pass.
            order = np.lexsort((targets, sources))
        else:
            order = np.argsort(sources, kind="stable")
        return cls(offsets, targets[order], validate=False)

    # -- basic shape ------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self.offsets.shape[0] - 1

    @property
    def num_edges(self) -> int:
        """Number of stored edges ``m``."""
        return self.targets.shape[0]

    def degrees(self) -> np.ndarray:
        """Degree of every vertex in this direction (``int64``, length n)."""
        return np.diff(self.offsets)

    def degree(self, vertex: int) -> int:
        """Degree of one vertex."""
        self._check_vertex(vertex)
        return int(self.offsets[vertex + 1] - self.offsets[vertex])

    def neighbours(self, vertex: int) -> np.ndarray:
        """Read-only neighbour array of ``vertex`` (ascending IDs)."""
        self._check_vertex(vertex)
        return self.targets[self.offsets[vertex] : self.offsets[vertex + 1]]

    def iter_neighbour_lists(self) -> Iterator[np.ndarray]:
        """Yield every vertex's neighbour array in vertex-ID order."""
        offsets = self.offsets
        targets = self.targets
        for v in range(self.num_vertices):
            yield targets[offsets[v] : offsets[v + 1]]

    def edge_sources(self) -> np.ndarray:
        """Expand offsets back to a per-edge source-vertex array."""
        return np.repeat(np.arange(self.num_vertices, dtype=np.int64), self.degrees())

    def edges(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(sources, targets)`` edge arrays in storage order."""
        return self.edge_sources(), self.targets.copy()

    def transpose(self) -> "Adjacency":
        """Reverse every edge (CSR <-> CSC)."""
        return Adjacency.from_edges(self.num_vertices, self.targets, self.edge_sources())

    def has_sorted_neighbours(self) -> bool:
        """True when every neighbour list is in ascending order."""
        if self.num_edges == 0:
            return True
        ascending = np.ones(self.num_edges, dtype=bool)
        ascending[1:] = self.targets[1:] >= self.targets[:-1]
        # Positions where a new neighbour list starts may break order.
        starts = self.offsets[1:-1]
        ascending[starts[starts < self.num_edges]] = True
        return bool(ascending.all())

    # -- dunder -----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Adjacency):
            return NotImplemented
        return np.array_equal(self.offsets, other.offsets) and np.array_equal(
            self.targets, other.targets
        )

    def __hash__(self) -> int:  # pragma: no cover - explicit unhashability
        # TypeError is what the hashing protocol mandates for unhashable
        # types, so this raise is exempt from the ReproError hierarchy.
        raise TypeError("Adjacency is not hashable")  # repro-lint: disable=RL004

    def __repr__(self) -> str:
        return f"Adjacency(n={self.num_vertices}, m={self.num_edges})"

    def _check_vertex(self, vertex: int) -> None:
        if not 0 <= vertex < self.num_vertices:
            raise GraphFormatError(
                f"vertex {vertex} out of range [0, {self.num_vertices})"
            )


def _validate_structure(offsets: np.ndarray, targets: np.ndarray) -> None:
    if offsets.ndim != 1 or offsets.shape[0] < 1:
        raise GraphFormatError("offsets must be a 1-D array of length >= 1")
    if targets.ndim != 1:
        raise GraphFormatError("targets must be a 1-D array")
    if offsets[0] != 0:
        raise GraphFormatError(f"offsets[0] must be 0, got {offsets[0]}")
    if offsets[-1] != targets.shape[0]:
        raise GraphFormatError(
            f"offsets[-1] ({offsets[-1]}) must equal number of edges "
            f"({targets.shape[0]})"
        )
    if np.any(np.diff(offsets) < 0):
        raise GraphFormatError("offsets must be non-decreasing")
    n = offsets.shape[0] - 1
    if targets.size and (targets.min() < 0 or targets.max() >= n):
        raise GraphFormatError(f"target vertex IDs must lie in [0, {n})")
