"""Relabeling (permutation) machinery.

A reordering algorithm produces a *relabeling array* of ``n`` elements,
indexed by the old vertex ID and holding the new vertex ID
(Section II-E of the paper).  This module provides validation,
inversion, composition and application of such arrays.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PermutationError

__all__ = [
    "identity_permutation",
    "random_permutation",
    "is_permutation",
    "check_permutation",
    "invert_permutation",
    "compose_permutations",
    "apply_to_edges",
    "apply_to_vertex_data",
    "sort_order_to_relabeling",
]


def identity_permutation(num_vertices: int) -> np.ndarray:
    """The relabeling that keeps every vertex ID unchanged."""
    if num_vertices < 0:
        raise PermutationError(f"negative size: {num_vertices}")
    return np.arange(num_vertices, dtype=np.int64)


def random_permutation(num_vertices: int, seed: int = 0) -> np.ndarray:
    """A uniformly random relabeling, deterministic in ``seed``."""
    rng = np.random.default_rng(seed)
    return rng.permutation(num_vertices).astype(np.int64)


def is_permutation(relabeling: np.ndarray, num_vertices: int | None = None) -> bool:
    """True when ``relabeling`` is a bijection on ``[0, n)``."""
    relabeling = np.asarray(relabeling)
    if relabeling.ndim != 1:
        return False
    n = relabeling.shape[0]
    if num_vertices is not None and n != num_vertices:
        return False
    if n == 0:
        return True
    if relabeling.min() < 0 or relabeling.max() >= n:
        return False
    seen = np.zeros(n, dtype=bool)
    seen[relabeling] = True
    return bool(seen.all())


def check_permutation(relabeling: np.ndarray, num_vertices: int | None = None) -> np.ndarray:
    """Validate and return the relabeling as an ``int64`` array.

    Raises
    ------
    PermutationError
        If the array is not a permutation of ``[0, n)``.
    """
    arr = np.asarray(relabeling, dtype=np.int64)
    if not is_permutation(arr, num_vertices):
        expected = "" if num_vertices is None else f" of length {num_vertices}"
        raise PermutationError(f"relabeling array is not a permutation{expected}")
    return arr


def invert_permutation(relabeling: np.ndarray) -> np.ndarray:
    """Return ``inv`` with ``inv[new_id] = old_id``."""
    relabeling = check_permutation(relabeling)
    inverse = np.empty_like(relabeling)
    inverse[relabeling] = np.arange(relabeling.shape[0], dtype=np.int64)
    return inverse


def compose_permutations(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Relabeling equivalent to applying ``first`` then ``second``.

    ``composed[old] = second[first[old]]``.
    """
    first = check_permutation(first)
    second = check_permutation(second, first.shape[0])
    return second[first]


def apply_to_edges(
    relabeling: np.ndarray, sources: np.ndarray, targets: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Rewrite both endpoints of every edge to the new ID space."""
    relabeling = check_permutation(relabeling)
    sources = np.asarray(sources, dtype=np.int64)
    targets = np.asarray(targets, dtype=np.int64)
    return relabeling[sources], relabeling[targets]


def apply_to_vertex_data(relabeling: np.ndarray, data: np.ndarray) -> np.ndarray:
    """Move per-vertex data so ``result[new_id] == data[old_id]``."""
    relabeling = check_permutation(relabeling)
    data = np.asarray(data)
    if data.shape[0] != relabeling.shape[0]:
        raise PermutationError(
            f"data length {data.shape[0]} does not match relabeling length "
            f"{relabeling.shape[0]}"
        )
    result = np.empty_like(data)
    result[relabeling] = data
    return result


def sort_order_to_relabeling(order: np.ndarray) -> np.ndarray:
    """Convert a processing order into a relabeling array.

    ``order`` lists old vertex IDs in the sequence they should receive new
    IDs (``order[k]`` becomes vertex ``k``); the result is the relabeling
    array indexed by old ID, as produced by the RAs in this library.
    """
    order = check_permutation(order)
    return invert_permutation(order)
