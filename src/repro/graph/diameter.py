"""Sampled effective diameter (the size axis of the scaling-curve study).

The diameter-dependence analysis of arXiv 2111.12281 argues that which
reordering wins depends on graph diameter as well as size: low-diameter
(social) graphs keep hub reuse in cache regardless of layout, while
higher-diameter (web/mesh-like) graphs reward layouts that shorten
neighbour ID distances.  The scaling-curve experiment therefore records
each graph's *effective diameter* next to its miss rate.

The effective diameter at percentile ``q`` is the smallest hop count
``d`` (linearly interpolated between integer levels, as in SNAP) such
that at least a fraction ``q`` of reachable source/target pairs lie
within ``d`` hops.  Exact all-pairs BFS is O(n·m); like the reference
tools we estimate from a fixed sample of BFS sources, which is accurate
to well under one hop for the graph families used here.

Each BFS is frontier-vectorized: one gather per level expands the whole
frontier's neighbour lists with ``np.repeat``/``cumsum`` index
arithmetic, so Python-level work is O(diameter), not O(edges).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import Adjacency
from repro.graph.graph import Graph

__all__ = ["bfs_level_histogram", "effective_diameter"]


def bfs_level_histogram(adj: Adjacency, source: int) -> np.ndarray:
    """Vertices first reached at each BFS level from ``source``.

    ``result[d]`` counts vertices at distance exactly ``d`` (so
    ``result[0] == 1``); unreachable vertices are absent.
    """
    n = adj.num_vertices
    if not 0 <= source < n:
        raise GraphFormatError(f"source {source} out of range [0, {n})")
    offsets = adj.offsets
    targets = adj.targets
    visited = np.zeros(n, dtype=bool)
    visited[source] = True
    frontier = np.asarray([source], dtype=np.int64)
    counts = [1]
    while frontier.size:
        starts = offsets[frontier]
        degs = offsets[frontier + 1] - starts
        total = int(degs.sum())
        if not total:
            break
        cum = np.cumsum(degs)
        # Gather all frontier adjacency slices in one indexed read.
        gather = np.arange(total, dtype=np.int64) + np.repeat(starts - (cum - degs), degs)
        reached = targets[gather]
        reached = reached[~visited[reached]]
        if not reached.size:
            break
        frontier = np.unique(reached)
        visited[frontier] = True
        counts.append(int(frontier.shape[0]))
    return np.asarray(counts, dtype=np.int64)


def effective_diameter(
    graph: Graph,
    *,
    percentile: float = 0.9,
    num_sources: int = 16,
    seed: int = 0,
    direction: str = "out",
) -> float:
    """Sampled, interpolated effective diameter of ``graph``.

    Pools the per-level reach histograms of ``num_sources`` uniformly
    sampled BFS roots and returns the (fractional) level where the
    cumulative pair count crosses ``percentile`` of all reachable pairs.
    Deterministic for a given ``seed``.
    """
    if not 0 < percentile < 1:
        raise GraphFormatError(f"percentile must be in (0, 1), got {percentile}")
    if num_sources <= 0:
        raise GraphFormatError(f"num_sources must be positive, got {num_sources}")
    if direction == "out":
        adj = graph.out_adj
    elif direction == "in":
        adj = graph.in_adj
    else:
        raise GraphFormatError(f"direction must be 'in' or 'out', got {direction!r}")
    n = adj.num_vertices
    if n == 0:
        return 0.0
    rng = np.random.default_rng(seed)
    sources = rng.choice(n, size=min(num_sources, n), replace=False)

    pooled = np.zeros(1, dtype=np.int64)
    for s in sources.tolist():
        hist = bfs_level_histogram(adj, int(s))
        if hist.shape[0] > pooled.shape[0]:
            grown = np.zeros(hist.shape[0], dtype=np.int64)
            grown[: pooled.shape[0]] = pooled
            pooled = grown
        pooled[: hist.shape[0]] += hist
    # Drop the level-0 self-pairs: the metric is over *distinct* pairs.
    pooled[0] = 0
    total = int(pooled.sum())
    if total == 0:
        return 0.0
    cumulative = np.cumsum(pooled)
    threshold = percentile * total
    d = int(np.searchsorted(cumulative, threshold, side="left"))
    below = int(cumulative[d - 1]) if d > 0 else 0
    at = int(pooled[d])
    if at == 0:
        return float(d)
    return float(d - 1 + (threshold - below) / at) if d > 0 else float(d)
