"""Graph persistence: plain-text edge lists and compressed ``.npz``.

Text format is one ``source target`` pair per line (the common SNAP /
Konect layout); lines starting with ``#`` or ``%`` are comments.  The
``.npz`` format stores the CSR arrays directly and round-trips exactly.
"""

from __future__ import annotations

import io
import os
from typing import TextIO, Union

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import Adjacency
from repro.graph.graph import Graph

__all__ = [
    "load_edge_list",
    "save_edge_list",
    "load_graph_npz",
    "save_graph_npz",
]

PathOrFile = Union[str, os.PathLike, TextIO]


def load_edge_list(path_or_file: PathOrFile) -> tuple[int, np.ndarray, np.ndarray]:
    """Read a text edge list; returns ``(num_vertices, sources, targets)``.

    ``num_vertices`` is ``1 + max vertex ID`` seen (0 for an empty list).
    """
    if isinstance(path_or_file, (str, os.PathLike)):
        with open(path_or_file, "r", encoding="utf-8") as handle:
            return _parse_edge_list(handle)
    return _parse_edge_list(path_or_file)


def _parse_edge_list(handle: TextIO) -> tuple[int, np.ndarray, np.ndarray]:
    sources: list[int] = []
    targets: list[int] = []
    for line_number, line in enumerate(handle, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith(("#", "%")):
            continue
        parts = stripped.split()
        if len(parts) < 2:
            raise GraphFormatError(
                f"line {line_number}: expected 'source target', got {stripped!r}"
            )
        try:
            u, v = int(parts[0]), int(parts[1])
        except ValueError as exc:
            raise GraphFormatError(
                f"line {line_number}: non-integer vertex ID in {stripped!r}"
            ) from exc
        if u < 0 or v < 0:
            raise GraphFormatError(f"line {line_number}: negative vertex ID")
        sources.append(u)
        targets.append(v)
    src = np.asarray(sources, dtype=np.int64)
    dst = np.asarray(targets, dtype=np.int64)
    num_vertices = int(max(src.max(), dst.max())) + 1 if src.size else 0
    return num_vertices, src, dst


def save_edge_list(graph: Graph, path_or_file: PathOrFile) -> None:
    """Write the graph's edges as one ``source target`` pair per line."""
    if isinstance(path_or_file, (str, os.PathLike)):
        with open(path_or_file, "w", encoding="utf-8") as handle:
            _write_edge_list(graph, handle)
    else:
        _write_edge_list(graph, path_or_file)


def _write_edge_list(graph: Graph, handle: TextIO) -> None:
    sources, targets = graph.edges()
    buffer = io.StringIO()
    for u, v in zip(sources.tolist(), targets.tolist()):
        buffer.write(f"{u} {v}\n")
    handle.write(buffer.getvalue())


def save_graph_npz(graph: Graph, path: Union[str, os.PathLike]) -> None:
    """Persist both adjacency directions into a compressed ``.npz``."""
    np.savez_compressed(
        path,
        out_offsets=graph.out_adj.offsets,
        out_targets=graph.out_adj.targets,
        in_offsets=graph.in_adj.offsets,
        in_targets=graph.in_adj.targets,
        name=np.asarray(graph.name),
    )


def load_graph_npz(path: Union[str, os.PathLike]) -> Graph:
    """Load a graph previously written by :func:`save_graph_npz`."""
    with np.load(path, allow_pickle=False) as data:
        required = {"out_offsets", "out_targets", "in_offsets", "in_targets"}
        missing = required - set(data.files)
        if missing:
            raise GraphFormatError(f"npz file missing arrays: {sorted(missing)}")
        out_adj = Adjacency(data["out_offsets"], data["out_targets"])
        in_adj = Adjacency(data["in_offsets"], data["in_targets"])
        name = str(data["name"]) if "name" in data.files else ""
    return Graph(out_adj, in_adj, name=name)
