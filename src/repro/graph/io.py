"""Graph persistence: plain-text edge lists and compressed ``.npz``.

Text format is one ``source target`` pair per line (the common SNAP /
Konect layout); lines starting with ``#`` or ``%`` are comments.  The
``.npz`` format stores the CSR arrays directly and round-trips exactly.
"""

from __future__ import annotations

import ast
import io
import os
import struct
import zipfile
from typing import TextIO, Union

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import Adjacency
from repro.graph.graph import Graph

__all__ = [
    "load_edge_list",
    "save_edge_list",
    "load_graph_npz",
    "save_graph_npz",
    "mmap_npz_arrays",
]

PathOrFile = Union[str, os.PathLike, TextIO]

#: Graphs whose CSR+CSC payload exceeds this are stored uncompressed so
#: they can be rehydrated with ``mmap_mode="r"`` (see DESIGN.md §11).
MMAP_SIZE_THRESHOLD = 64 << 20


def load_edge_list(path_or_file: PathOrFile) -> tuple[int, np.ndarray, np.ndarray]:
    """Read a text edge list; returns ``(num_vertices, sources, targets)``.

    ``num_vertices`` is ``1 + max vertex ID`` seen (0 for an empty list).
    """
    if isinstance(path_or_file, (str, os.PathLike)):
        with open(path_or_file, "r", encoding="utf-8") as handle:
            return _parse_edge_list(handle)
    return _parse_edge_list(path_or_file)


def _parse_edge_list(handle: TextIO) -> tuple[int, np.ndarray, np.ndarray]:
    sources: list[int] = []
    targets: list[int] = []
    for line_number, line in enumerate(handle, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith(("#", "%")):
            continue
        parts = stripped.split()
        if len(parts) < 2:
            raise GraphFormatError(
                f"line {line_number}: expected 'source target', got {stripped!r}"
            )
        try:
            u, v = int(parts[0]), int(parts[1])
        except ValueError as exc:
            raise GraphFormatError(
                f"line {line_number}: non-integer vertex ID in {stripped!r}"
            ) from exc
        if u < 0 or v < 0:
            raise GraphFormatError(f"line {line_number}: negative vertex ID")
        sources.append(u)
        targets.append(v)
    src = np.asarray(sources, dtype=np.int64)
    dst = np.asarray(targets, dtype=np.int64)
    num_vertices = int(max(src.max(), dst.max())) + 1 if src.size else 0
    return num_vertices, src, dst


def save_edge_list(graph: Graph, path_or_file: PathOrFile) -> None:
    """Write the graph's edges as one ``source target`` pair per line."""
    if isinstance(path_or_file, (str, os.PathLike)):
        with open(path_or_file, "w", encoding="utf-8") as handle:
            _write_edge_list(graph, handle)
    else:
        _write_edge_list(graph, path_or_file)


def _write_edge_list(graph: Graph, handle: TextIO) -> None:
    sources, targets = graph.edges()
    buffer = io.StringIO()
    for u, v in zip(sources.tolist(), targets.tolist()):
        buffer.write(f"{u} {v}\n")
    handle.write(buffer.getvalue())


def save_graph_npz(
    graph: Graph, path: Union[str, os.PathLike], *, compressed: "bool | None" = None
) -> None:
    """Persist both adjacency directions into an ``.npz``.

    ``compressed=None`` (default) compresses small graphs and stores
    scale-tier graphs (payload above ``MMAP_SIZE_THRESHOLD``) raw, so
    :func:`load_graph_npz` can rehydrate them with ``mmap_mode="r"`` —
    shard workers then share one page cache instead of N heap copies.
    """
    arrays = {
        "out_offsets": graph.out_adj.offsets,
        "out_targets": graph.out_adj.targets,
        "in_offsets": graph.in_adj.offsets,
        "in_targets": graph.in_adj.targets,
        "name": np.asarray(graph.name),
    }
    if compressed is None:
        payload_bytes = sum(
            a.nbytes for k, a in arrays.items() if k != "name"
        )
        compressed = payload_bytes <= MMAP_SIZE_THRESHOLD
    if compressed:
        np.savez_compressed(path, **arrays)
    else:
        np.savez(path, **arrays)


def _npy_member_offset(
    handle: "io.BufferedReader", header_offset: int
) -> tuple[np.dtype, tuple, bool, int]:
    """Parse one STORED zip member's ``.npy`` header without copying data.

    Returns ``(dtype, shape, fortran_order, absolute_data_offset)``.
    The local file header's name/extra lengths are read from the file
    (they can differ from the central directory's), then the standard
    ``.npy`` magic + header dict is parsed with ``ast.literal_eval``.
    """
    handle.seek(header_offset)
    local = handle.read(30)
    if len(local) != 30 or local[:4] != b"PK\x03\x04":
        raise GraphFormatError("corrupt zip local header in npz file")
    name_len, extra_len = struct.unpack("<HH", local[26:30])
    npy_start = header_offset + 30 + name_len + extra_len
    handle.seek(npy_start)
    magic = handle.read(8)
    if magic[:6] != b"\x93NUMPY":
        raise GraphFormatError("zip member is not a .npy array")
    major = magic[6]
    if major == 1:
        (header_len,) = struct.unpack("<H", handle.read(2))
        data_start = npy_start + 10 + header_len
    else:
        (header_len,) = struct.unpack("<I", handle.read(4))
        data_start = npy_start + 12 + header_len
    header = handle.read(header_len).decode("latin1")
    try:
        spec = ast.literal_eval(header)
    except (ValueError, SyntaxError) as exc:
        raise GraphFormatError(f"unparseable .npy header: {header!r}") from exc
    return np.dtype(spec["descr"]), spec["shape"], spec["fortran_order"], data_start


def mmap_npz_arrays(
    path: Union[str, os.PathLike], names: "tuple[str, ...]"
) -> dict:
    """Memory-map selected arrays of an *uncompressed* ``.npz`` file.

    ``np.load(..., mmap_mode=...)`` refuses zip containers, so this
    resolves each member's absolute data offset (zip local header +
    ``.npy`` header) and hands it to :class:`numpy.memmap` directly.
    Raises :class:`~repro.errors.GraphFormatError` for compressed
    members — re-save with ``compressed=False`` to get a mappable file.
    """
    wanted = set(names)
    out: dict = {}
    with zipfile.ZipFile(path) as archive:
        members = {
            info.filename[:-4]: info
            for info in archive.infolist()
            if info.filename.endswith(".npy")
        }
        missing = wanted - set(members)
        if missing:
            raise GraphFormatError(f"npz file missing arrays: {sorted(missing)}")
        with open(path, "rb") as handle:
            for name in names:
                info = members[name]
                if info.compress_type != zipfile.ZIP_STORED:
                    raise GraphFormatError(
                        f"npz member {name!r} is deflate-compressed and cannot "
                        "be memory-mapped; re-save with compressed=False"
                    )
                dtype, shape, fortran, data_start = _npy_member_offset(
                    handle, info.header_offset
                )
                out[name] = np.memmap(
                    path,
                    dtype=dtype,
                    mode="r",
                    offset=data_start,
                    shape=shape,
                    order="F" if fortran else "C",
                )
    return out


_GRAPH_ARRAYS = ("out_offsets", "out_targets", "in_offsets", "in_targets")


def load_graph_npz(
    path: Union[str, os.PathLike], *, mmap_mode: "str | None" = None
) -> Graph:
    """Load a graph previously written by :func:`save_graph_npz`.

    ``mmap_mode="r"`` memory-maps the CSR/CSC arrays instead of reading
    them onto the heap: N shard workers opening the same artifact share
    one page-cached copy, and untouched regions never materialize.
    Structural validation is skipped on this path (the arrays were
    validated at save time and the store checksums payloads); the only
    supported mode is read-only.
    """
    if mmap_mode is not None:
        if mmap_mode != "r":
            raise GraphFormatError(
                f"only mmap_mode='r' is supported, got {mmap_mode!r}"
            )
        arrays = mmap_npz_arrays(path, _GRAPH_ARRAYS)
        with np.load(path, allow_pickle=False) as data:
            name = str(data["name"]) if "name" in data.files else ""
        out_adj = Adjacency(
            arrays["out_offsets"], arrays["out_targets"], validate=False
        )
        in_adj = Adjacency(arrays["in_offsets"], arrays["in_targets"], validate=False)
        return Graph(out_adj, in_adj, name=name)
    with np.load(path, allow_pickle=False) as data:
        required = set(_GRAPH_ARRAYS)
        missing = required - set(data.files)
        if missing:
            raise GraphFormatError(f"npz file missing arrays: {sorted(missing)}")
        out_adj = Adjacency(data["out_offsets"], data["out_targets"])
        in_adj = Adjacency(data["in_offsets"], data["in_targets"])
        name = str(data["name"]) if "name" in data.files else ""
    return Graph(out_adj, in_adj, name=name)
