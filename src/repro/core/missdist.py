"""Cache miss rate degree distribution (Section V-B, Figure 1).

Bins the simulator's random accesses by the degree of the vertex being
processed and reports the miss rate per bin, showing "how RAs affect
locality types II and III of different vertex classes".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.sim.simulator import SimulationResult

from repro.core.binning import DegreeBins, log_bins

__all__ = ["MissRateDistribution", "miss_rate_degree_distribution"]


@dataclass(frozen=True)
class MissRateDistribution:
    """Miss rate (%) per degree bin — one Figure 1 curve."""

    bins: DegreeBins
    miss_rate_percent: np.ndarray
    accesses: np.ndarray
    misses: np.ndarray

    def series(self) -> tuple[np.ndarray, np.ndarray]:
        """(degree bin centers, miss rate %) with empty bins dropped."""
        mask = self.accesses > 0
        return self.bins.centers()[mask], self.miss_rate_percent[mask]

    @property
    def overall_miss_rate_percent(self) -> float:
        total = self.accesses.sum()
        if total == 0:
            return 0.0
        return float(self.misses.sum() / total * 100.0)


def miss_rate_degree_distribution(
    result: SimulationResult,
    *,
    by: str = "proc",
    bins: DegreeBins | None = None,
) -> MissRateDistribution:
    """Degree distribution of the simulated cache miss rate.

    Parameters
    ----------
    result:
        Output of :func:`repro.sim.simulate_spmv`.
    by:
        ``"proc"`` (default, the Figure 1 convention) bins each random
        access by the degree of the vertex being processed; ``"read"``
        bins by the degree of the vertex whose data is accessed.
    """
    if by not in ("proc", "read"):
        raise ReproError(f"by must be 'proc' or 'read', got {by!r}")
    stats = result.random_stats(by=by)
    graph = result.graph
    if by == "proc":
        # Processing degree: the traversal direction's own degree.
        degrees = (
            graph.in_degrees()
            if result.config.direction == "pull"
            else graph.out_degrees()
        )
    else:
        # Access frequency of a vertex's data: the opposite degree.
        degrees = (
            graph.out_degrees()
            if result.config.direction == "pull"
            else graph.in_degrees()
        )
    if bins is None:
        bins = log_bins(max(1, int(degrees.max()) if degrees.size else 1))
    idx = bins.index_of(degrees)
    valid = idx >= 0
    accesses = np.bincount(
        idx[valid], weights=stats.accesses[valid], minlength=bins.num_bins
    ).astype(np.int64)
    misses = np.bincount(
        idx[valid], weights=stats.misses[valid], minlength=bins.num_bins
    ).astype(np.int64)
    with np.errstate(invalid="ignore", divide="ignore"):
        rate = np.where(accesses > 0, misses / np.maximum(accesses, 1) * 100.0, np.nan)
    return MissRateDistribution(
        bins=bins, miss_rate_percent=rate, accesses=accesses, misses=misses
    )
