"""Misses to the data of high-degree vertices (Section VI-B, Table III).

Counts, from a simulation, how many misses occur while *accessing the
data of* vertices whose degree exceeds a threshold.  The relevant degree
is the access frequency of a vertex's data: the out-degree in a pull
traversal (a vertex's data is read once per out-neighbour).

The paper uses these counts ("reloads") to show that GOrder reduces
reloads of moderately-high-degree vertices by allowing the very hottest
hubs to be reloaded more often — trading hub residency for broader
temporal reuse.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.simulator import SimulationResult

__all__ = ["HubMissCount", "hub_data_misses"]


@dataclass(frozen=True)
class HubMissCount:
    """Misses/accesses to data of vertices above a degree threshold."""

    min_degree: int
    num_vertices_above: int
    misses: int
    accesses: int

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses


def hub_data_misses(result: SimulationResult, min_degree: int) -> HubMissCount:
    """Count misses to data of vertices with degree > ``min_degree``."""
    stats = result.random_stats(by="read")
    graph = result.graph
    degrees = (
        graph.out_degrees()
        if result.config.direction == "pull"
        else graph.in_degrees()
    )
    mask = degrees > min_degree
    return HubMissCount(
        min_degree=min_degree,
        num_vertices_above=int(mask.sum()),
        misses=int(stats.misses[mask].sum()),
        accesses=int(stats.accesses[mask].sum()),
    )
