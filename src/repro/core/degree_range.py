"""Degree range decomposition (Section VII-A, Figure 5).

Correlates the degrees of neighbouring vertices: all edges *into*
vertices of an in-degree decade class are binned by the out-degree
decade class of their *source* vertex.  Column ``c`` of the resulting
matrix answers "vertices with in-degree in class ``c`` receive what
percentage of their incoming edges from each out-degree class?"
(columns sum to 100).

In social networks HDV dominate the in-edges of other HDV; in web
graphs LDV dominate every class — the paper's Figure 5 contrast.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.degrees import degree_class_edges, degree_class_labels
from repro.graph.graph import Graph

__all__ = ["DegreeRangeDecomposition", "degree_range_decomposition"]


@dataclass(frozen=True)
class DegreeRangeDecomposition:
    """Percentage matrix: rows = source out-degree class, cols = target
    in-degree class."""

    percent: np.ndarray
    row_labels: list[str]
    col_labels: list[str]
    edge_counts: np.ndarray

    @property
    def num_classes(self) -> int:
        return self.percent.shape[0]

    def high_degree_share(self, col: int, *, first_high_class: int = 2) -> float:
        """Share (%) of a class's in-edges arriving from classes >= ``first_high_class``.

        With decade classes, ``first_high_class=2`` means sources of
        out-degree >= 100 — the "HDV form more than half of the
        neighbours" check of Section VII-A.
        """
        return float(self.percent[first_high_class:, col].sum())


def degree_range_decomposition(graph: Graph) -> DegreeRangeDecomposition:
    """Compute the Figure 5 decomposition matrix of ``graph``."""
    src, dst = graph.edges()
    out_classes = degree_class_edges(graph.out_degrees())
    in_classes = degree_class_edges(graph.in_degrees())
    num_classes = int(max(out_classes.max(initial=0), in_classes.max(initial=0))) + 1

    rows = out_classes[src]
    cols = in_classes[dst]
    counts = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(counts, (rows, cols), 1)

    col_totals = counts.sum(axis=0, keepdims=True)
    with np.errstate(invalid="ignore", divide="ignore"):
        percent = np.where(
            col_totals > 0, counts / np.maximum(col_totals, 1) * 100.0, 0.0
        )
    labels = degree_class_labels(num_classes)
    return DegreeRangeDecomposition(
        percent=percent,
        row_labels=labels,
        col_labels=labels,
        edge_counts=counts,
    )
