"""High-level facade over the paper's locality toolkit.

:class:`LocalityAnalyzer` bundles the per-graph metrics (AID,
asymmetricity, degree range decomposition, hub coverage, gap profile)
and the simulation-backed metrics (miss-rate distribution, ECS, hub
misses, locality types) behind one object, caching the simulation so a
battery of metrics reuses a single traversal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph
from repro.sim.simulator import SimulationConfig, SimulationResult, simulate_spmv

from repro.core.aid import AIDDistribution, aid_degree_distribution, aid_per_vertex
from repro.core.asymmetricity import (
    AsymmetricityDistribution,
    asymmetricity_degree_distribution,
    reciprocity,
)
from repro.core.degree_range import (
    DegreeRangeDecomposition,
    degree_range_decomposition,
)
from repro.core.ecs import ECSMeasurement, ecs_from_result
from repro.core.gap import GapProfile, average_gap_profile
from repro.core.hub_coverage import HubCoverage, hub_coverage
from repro.core.hubs_misses import HubMissCount, hub_data_misses
from repro.core.locality_types import LocalityTypeCounts, classify_locality_types
from repro.core.missdist import MissRateDistribution, miss_rate_degree_distribution

__all__ = ["GraphSummary", "LocalityAnalyzer"]


@dataclass(frozen=True)
class GraphSummary:
    """One-screen structural summary of a graph."""

    name: str
    num_vertices: int
    num_edges: int
    average_degree: float
    max_in_degree: int
    max_out_degree: int
    reciprocity: float
    mean_in_aid: float
    favoured_direction: str


class LocalityAnalyzer:
    """Analyze one graph with the paper's metrics.

    Parameters
    ----------
    graph:
        The graph to analyze (already relabeled, if studying an RA).
    config:
        Optional simulation configuration; when omitted a scaled one is
        derived from the graph the first time a simulation-backed metric
        is requested.  Scans are always enabled so ECS is available.
    """

    def __init__(self, graph: Graph, config: SimulationConfig | None = None):
        self.graph = graph
        self._config = config
        self._result: SimulationResult | None = None

    # -- structural metrics (no simulation needed) -------------------------

    def aid_distribution(self, direction: str = "in") -> AIDDistribution:
        return aid_degree_distribution(self.graph, direction=direction)

    def asymmetricity_distribution(self) -> AsymmetricityDistribution:
        return asymmetricity_degree_distribution(self.graph)

    def degree_range(self) -> DegreeRangeDecomposition:
        return degree_range_decomposition(self.graph)

    def hub_coverage(self) -> HubCoverage:
        return hub_coverage(self.graph)

    def gap_profile(self) -> GapProfile:
        return average_gap_profile(self.graph)

    def summary(self) -> GraphSummary:
        aid = aid_per_vertex(self.graph)
        coverage = self.hub_coverage()
        budget = max(1, self.graph.num_vertices // 100)
        return GraphSummary(
            name=self.graph.name,
            num_vertices=self.graph.num_vertices,
            num_edges=self.graph.num_edges,
            average_degree=self.graph.average_degree,
            max_in_degree=int(self.graph.in_degrees().max(initial=0)),
            max_out_degree=int(self.graph.out_degrees().max(initial=0)),
            reciprocity=reciprocity(self.graph),
            mean_in_aid=float(np.nanmean(aid)) if aid.size else float("nan"),
            favoured_direction=coverage.crossover_favours(budget),
        )

    # -- simulation-backed metrics -------------------------------------------

    @property
    def simulation(self) -> SimulationResult:
        """The cached traversal simulation (run on first use)."""
        if self._result is None:
            config = self._config
            if config is None:
                config = SimulationConfig.scaled_for(self.graph)
            if config.scan_interval == 0:
                approx_len = self.graph.num_edges + self.graph.num_vertices // 4
                config = SimulationConfig(
                    cache=config.cache,
                    tlb=config.tlb,
                    num_threads=config.num_threads,
                    interleave_interval=config.interleave_interval,
                    scan_interval=max(1, approx_len // 64),
                    direction=config.direction,
                    promote_sequential=config.promote_sequential,
                    timing=config.timing,
                )
            self._result = simulate_spmv(self.graph, config)
        return self._result

    def miss_rate_distribution(self, by: str = "proc") -> MissRateDistribution:
        return miss_rate_degree_distribution(self.simulation, by=by)

    def effective_cache_size(self) -> ECSMeasurement:
        return ecs_from_result(self.simulation)

    def hub_misses(self, min_degree: int) -> HubMissCount:
        return hub_data_misses(self.simulation, min_degree)

    def locality_types(self) -> LocalityTypeCounts:
        result = self.simulation
        return classify_locality_types(
            result.trace, result.thread_ids, random_region=result.random_region
        )
