"""Neighbour-to-Neighbour Average ID Distance (N2N AID), Section V-A.

AID is the paper's spatial-locality metric: for a vertex ``v`` with
neighbour IDs sorted ascending,

    AID(v) = sum_{i=2..|N_v|} |N_{v,i} - N_{v,i-1}|  /  |N_v|

Lower AID means a reordering packed the vertex's neighbours into a
narrow ID range, which tends to pack their data onto fewer cache lines
(locality type I).  For a pull SpMV only in-neighbours matter.

The computation is ``O(|E|)`` time, matching the complexity the paper
claims, because neighbour lists are stored sorted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.graph.graph import Graph

from repro.core.binning import DegreeBins, log_bins

__all__ = ["aid_per_vertex", "AIDDistribution", "aid_degree_distribution"]


def aid_per_vertex(graph: Graph, *, direction: str = "in") -> np.ndarray:
    """AID of every vertex (``float64``; NaN for degree-0 vertices).

    A vertex with exactly one neighbour has an empty difference sum and
    therefore AID 0, per Equation 1.
    """
    if direction == "in":
        adj = graph.in_adj
    elif direction == "out":
        adj = graph.out_adj
    else:
        raise ReproError(f"direction must be 'in' or 'out', got {direction!r}")

    n = adj.num_vertices
    targets = adj.targets
    degrees = adj.degrees()
    if targets.size == 0:
        return np.full(n, np.nan)

    # Per-edge gap to the previous neighbour in the same (sorted) list;
    # the first edge of each vertex contributes zero.
    gaps = np.zeros(targets.shape[0], dtype=np.float64)
    gaps[1:] = np.abs(targets[1:] - targets[:-1])
    starts = adj.offsets[:-1]
    gaps[starts[(starts > 0) & (starts < targets.shape[0])]] = 0.0
    # Vertices with offsets[v] == 0 start at position 0, already zero.

    owners = adj.edge_sources()
    sums = np.bincount(owners, weights=gaps, minlength=n)
    with np.errstate(invalid="ignore", divide="ignore"):
        aid = np.where(degrees > 0, sums / np.maximum(degrees, 1), np.nan)
    return aid


@dataclass(frozen=True)
class AIDDistribution:
    """AID averaged per degree bin (the Figure 3 series)."""

    bins: DegreeBins
    mean_aid: np.ndarray
    vertex_counts: np.ndarray

    def series(self) -> tuple[np.ndarray, np.ndarray]:
        """(degree bin centers, mean AID) with empty bins dropped."""
        mask = self.vertex_counts > 0
        return self.bins.centers()[mask], self.mean_aid[mask]


def aid_degree_distribution(
    graph: Graph, *, direction: str = "in", bins: DegreeBins | None = None
) -> AIDDistribution:
    """Degree distribution of AID (Figure 3).

    Each bin averages the AID of the vertices whose degree (in the same
    direction) falls in the bin.
    """
    aid = aid_per_vertex(graph, direction=direction)
    degrees = graph.in_degrees() if direction == "in" else graph.out_degrees()
    if bins is None:
        bins = log_bins(max(1, int(degrees.max()) if degrees.size else 1))
    idx = bins.index_of(degrees)
    valid = (idx >= 0) & ~np.isnan(aid)
    counts = np.bincount(idx[valid], minlength=bins.num_bins).astype(np.int64)
    sums = np.bincount(idx[valid], weights=aid[valid], minlength=bins.num_bins)
    with np.errstate(invalid="ignore", divide="ignore"):
        mean = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
    return AIDDistribution(bins=bins, mean_aid=mean, vertex_counts=counts)
