"""Plain-text rendering of experiment tables and figure series.

The benchmark harness prints the same rows and series the paper's tables
and figures report; this module holds the shared formatting so every
experiment renders consistently.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["format_table", "format_series", "format_value", "format_matrix"]


def format_value(value, *, precision: int = 2) -> str:
    """Human-friendly scalar formatting (SI suffixes for big numbers)."""
    if value is None:
        return "-"
    if isinstance(value, str):
        return value
    if isinstance(value, (bool, np.bool_)):
        return "yes" if value else "no"
    number = float(value)
    if np.isnan(number):
        return "-"
    if float(number).is_integer() and abs(number) < 10_000:
        return str(int(number))
    magnitude = abs(number)
    for threshold, suffix in ((1e9, "B"), (1e6, "M"), (1e3, "K")):
        if magnitude >= threshold:
            return f"{number / threshold:.{precision}f}{suffix}"
    return f"{number:.{precision}f}"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    *,
    title: str = "",
    precision: int = 2,
) -> str:
    """Render an aligned fixed-width table."""
    rendered_rows = [
        [format_value(cell, precision=precision) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("-" * len(header))
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    x: np.ndarray,
    series: dict[str, np.ndarray],
    *,
    x_label: str = "x",
    title: str = "",
    precision: int = 2,
) -> str:
    """Render one or more y-series against a shared x axis."""
    headers = [x_label] + list(series)
    rows = []
    for i, xv in enumerate(np.asarray(x).tolist()):
        row = [xv]
        for values in series.values():
            values = np.asarray(values)
            row.append(values[i] if i < values.shape[0] else None)
        rows.append(row)
    return format_table(headers, rows, title=title, precision=precision)


def format_matrix(
    matrix: np.ndarray,
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    *,
    title: str = "",
    precision: int = 0,
) -> str:
    """Render a labelled 2-D matrix (used by the Figure 5 decomposition)."""
    headers = [""] + list(col_labels)
    rows = []
    for i, label in enumerate(row_labels):
        rows.append([label] + list(np.asarray(matrix)[i]))
    return format_table(headers, rows, title=title, precision=precision)
