"""Reuse-distance (LRU stack distance) analysis.

Background metric the paper positions its tools against (Section I):
reuse-distance curves summarize whole-program locality but "do not
reveal detailed information about the impact of RAs".  Provided here so
that comparison can be reproduced: the histogram feeds a classic
"misses vs cache size" curve for any trace.

The implementation is the standard exact algorithm: a Fenwick tree over
access timestamps marks the most recent position of every line; the
stack distance of an access is the number of distinct lines touched
since the line's previous access.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError

__all__ = ["ReuseProfile", "reuse_distances", "reuse_distance_histogram"]

_COLD = -1


def reuse_distances(lines: np.ndarray) -> np.ndarray:
    """Exact LRU stack distance of every access (``-1`` for cold misses)."""
    lines = np.asarray(lines, dtype=np.int64)
    num_accesses = lines.shape[0]
    distances = np.empty(num_accesses, dtype=np.int64)
    tree = [0] * (num_accesses + 1)  # Fenwick tree over timestamps

    def add(index: int, delta: int) -> None:
        index += 1
        while index <= num_accesses:
            tree[index] += delta
            index += index & (-index)

    def prefix(index: int) -> int:
        index += 1
        total = 0
        while index > 0:
            total += tree[index]
            index -= index & (-index)
        return total

    last_position: dict[int, int] = {}
    total_marked = 0
    for t, line in enumerate(lines.tolist()):
        prev = last_position.get(line)
        if prev is None:
            distances[t] = _COLD
        else:
            # Distinct lines touched strictly after prev: marks in (prev, t).
            distances[t] = total_marked - prefix(prev)
            add(prev, -1)
            total_marked -= 1
        add(t, 1)
        total_marked += 1
        last_position[line] = t
    return distances


@dataclass(frozen=True)
class ReuseProfile:
    """Histogram of reuse distances in power-of-two buckets."""

    bucket_upper: np.ndarray  # exclusive upper edge of each bucket
    counts: np.ndarray
    cold_misses: int

    @property
    def total_reuses(self) -> int:
        return int(self.counts.sum())

    def miss_count_for_cache(self, num_lines: int) -> int:
        """Misses of a fully-associative LRU cache of ``num_lines`` lines.

        Exact for distances that fall on bucket boundaries; conservative
        (counts the whole straddling bucket as misses) otherwise.
        """
        if num_lines <= 0:
            raise SimulationError("cache size must be positive")
        missed = self.counts[self.bucket_upper > num_lines].sum()
        return int(missed) + self.cold_misses


def reuse_distance_histogram(lines: np.ndarray) -> ReuseProfile:
    """Bucket the exact reuse distances of a trace by powers of two."""
    distances = reuse_distances(lines)
    cold = int((distances == _COLD).sum())
    reuses = distances[distances >= 0]
    if reuses.size == 0:
        return ReuseProfile(
            bucket_upper=np.zeros(0, dtype=np.int64),
            counts=np.zeros(0, dtype=np.int64),
            cold_misses=cold,
        )
    max_bucket = int(np.ceil(np.log2(max(1, int(reuses.max())) + 1))) + 1
    upper = np.power(2, np.arange(1, max_bucket + 1), dtype=np.int64)
    idx = np.searchsorted(upper, reuses, side="right")
    idx = np.minimum(idx, upper.shape[0] - 1)
    counts = np.bincount(idx, minlength=upper.shape[0]).astype(np.int64)
    return ReuseProfile(bucket_upper=upper, counts=counts, cold_misses=cold)
