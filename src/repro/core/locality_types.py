"""Locality type classification (Section IV-D of the paper).

The paper identifies five patterns of vertex-data reuse in a parallel
SpMV traversal:

* **Type I** — spatial reuse *within* one vertex's neighbour list:
  consecutive neighbours of ``v`` share a cache line.
* **Type II** — temporal reuse across processed vertices: ``v`` and a
  subsequently processed vertex share a neighbour ``u``.
* **Type III** — spatio-temporal: distinct neighbours of subsequently
  processed vertices land on the same cache line.
* **Type IV** — like II but across *threads* through the shared cache.
* **Type V** — like III but across threads.

This module classifies every random-access *reuse* (an access to a line
that has been touched before) in a simulated trace by comparing it to
the most recent access to the same line.  RAs target types I-III; IV
and V depend on partitioning and scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.address_space import Region
from repro.sim.trace import MemoryTrace

__all__ = ["LocalityTypeCounts", "classify_locality_types"]


@dataclass(frozen=True)
class LocalityTypeCounts:
    """Reuse-event counts per locality type."""

    type_i: int
    type_ii: int
    type_iii: int
    type_iv: int
    type_v: int
    cold: int

    @property
    def total_reuses(self) -> int:
        return self.type_i + self.type_ii + self.type_iii + self.type_iv + self.type_v

    def fractions(self) -> dict[str, float]:
        """Each type's share of all reuse events."""
        total = self.total_reuses
        if total == 0:
            return {name: 0.0 for name in ("I", "II", "III", "IV", "V")}
        return {
            "I": self.type_i / total,
            "II": self.type_ii / total,
            "III": self.type_iii / total,
            "IV": self.type_iv / total,
            "V": self.type_v / total,
        }


def classify_locality_types(
    trace: MemoryTrace,
    thread_ids: np.ndarray | None = None,
    *,
    random_region: int = Region.VERTEX_DATA,
) -> LocalityTypeCounts:
    """Classify every random-access reuse in the trace.

    ``thread_ids`` is the per-access thread attribution produced by
    :func:`repro.sim.parallel.interleave_traces`; when omitted the trace
    is treated as single-threaded (types IV/V cannot occur).
    """
    mask = trace.kinds == random_region
    lines = trace.lines[mask]
    read_v = trace.read_vertex[mask]
    proc_v = trace.proc_vertex[mask]
    if thread_ids is None:
        threads = np.zeros(lines.shape[0], dtype=np.int64)
    else:
        threads = np.asarray(thread_ids)[mask]

    counts = [0, 0, 0, 0, 0]
    cold = 0
    last: dict[int, tuple[int, int, int]] = {}
    for line, u, v, t in zip(
        lines.tolist(), read_v.tolist(), proc_v.tolist(), threads.tolist()
    ):
        prev = last.get(line)
        last[line] = (t, v, u)
        if prev is None:
            cold += 1
            continue
        pt, pv, pu = prev
        if pt != t:
            counts[3 if pu == u else 4] += 1  # IV / V
        elif pv == v:
            counts[0] += 1  # I: same processed vertex, spatial reuse
        elif pu == u:
            counts[1] += 1  # II: common neighbour of two vertices
        else:
            counts[2] += 1  # III: distinct neighbours sharing a line
    return LocalityTypeCounts(
        type_i=counts[0],
        type_ii=counts[1],
        type_iii=counts[2],
        type_iv=counts[3],
        type_v=counts[4],
        cold=cold,
    )
