"""The paper's contribution: locality metrics, analyses and reporting."""

from repro.core.aid import AIDDistribution, aid_degree_distribution, aid_per_vertex
from repro.core.analyzer import GraphSummary, LocalityAnalyzer
from repro.core.asymmetricity import (
    AsymmetricityDistribution,
    asymmetricity_degree_distribution,
    asymmetricity_per_vertex,
    reciprocity,
)
from repro.core.binning import DegreeBins, log_bins
from repro.core.degree_range import (
    DegreeRangeDecomposition,
    degree_range_decomposition,
)
from repro.core.ecs import ECSMeasurement, ecs_from_result, measure_ecs
from repro.core.gap import GapProfile, average_gap_profile
from repro.core.hub_coverage import HubCoverage, coverage_at, hub_coverage
from repro.core.hubs_misses import HubMissCount, hub_data_misses
from repro.core.locality_types import LocalityTypeCounts, classify_locality_types
from repro.core.missdist import MissRateDistribution, miss_rate_degree_distribution
from repro.core.report import format_matrix, format_series, format_table, format_value
from repro.core.reuse import ReuseProfile, reuse_distance_histogram, reuse_distances
from repro.core.validation import ValidationReport, validate_simulator

__all__ = [
    "AIDDistribution",
    "aid_degree_distribution",
    "aid_per_vertex",
    "GraphSummary",
    "LocalityAnalyzer",
    "AsymmetricityDistribution",
    "asymmetricity_degree_distribution",
    "asymmetricity_per_vertex",
    "reciprocity",
    "DegreeBins",
    "log_bins",
    "DegreeRangeDecomposition",
    "degree_range_decomposition",
    "ECSMeasurement",
    "ecs_from_result",
    "measure_ecs",
    "GapProfile",
    "average_gap_profile",
    "HubCoverage",
    "coverage_at",
    "hub_coverage",
    "HubMissCount",
    "hub_data_misses",
    "LocalityTypeCounts",
    "classify_locality_types",
    "MissRateDistribution",
    "miss_rate_degree_distribution",
    "format_matrix",
    "format_series",
    "format_table",
    "format_value",
    "ReuseProfile",
    "reuse_distance_histogram",
    "reuse_distances",
    "ValidationReport",
    "validate_simulator",
]
