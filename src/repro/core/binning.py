"""Logarithmic degree binning shared by all degree distributions.

The paper's Figures 1, 3 and 4 plot metrics against degree on a log
axis with 1-2-5 tick structure.  :func:`log_bins` reproduces that
binning; every per-degree distribution in :mod:`repro.core` aggregates
into these bins so curves from different metrics line up.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError

__all__ = ["DegreeBins", "log_bins"]

_MANTISSAS = (1, 2, 5)


@dataclass(frozen=True)
class DegreeBins:
    """Half-open degree bins ``[lower[i], lower[i+1])``.

    ``lower`` has one extra element acting as the exclusive upper edge of
    the last bin.
    """

    lower: np.ndarray

    @property
    def num_bins(self) -> int:
        return self.lower.shape[0] - 1

    def centers(self) -> np.ndarray:
        """Geometric bin centers, for plotting on a log axis."""
        lo = self.lower[:-1].astype(np.float64)
        hi = self.lower[1:].astype(np.float64)
        return np.sqrt(lo * hi)

    def labels(self) -> list[str]:
        """Human-readable bin labels like ``'5-10'``."""
        return [
            f"{int(self.lower[i])}-{int(self.lower[i + 1])}"
            for i in range(self.num_bins)
        ]

    def index_of(self, degrees: np.ndarray) -> np.ndarray:
        """Bin index per degree; ``-1`` for degrees below the first edge."""
        degrees = np.asarray(degrees, dtype=np.int64)
        idx = np.searchsorted(self.lower, degrees, side="right") - 1
        idx[idx >= self.num_bins] = self.num_bins - 1
        return idx


def log_bins(max_degree: int, *, min_degree: int = 1) -> DegreeBins:
    """1-2-5 logarithmic bins covering ``[min_degree, max_degree]``."""
    if max_degree < min_degree:
        raise ReproError(
            f"max_degree {max_degree} below min_degree {min_degree}"
        )
    if min_degree < 1:
        raise ReproError(f"min_degree must be >= 1, got {min_degree}")
    edges: list[int] = []
    power = 1
    while True:
        for mantissa in _MANTISSAS:
            edge = mantissa * power
            if edge > max_degree:
                edges.append(edge)
                break
            if edge >= min_degree:
                edges.append(edge)
        else:
            power *= 10
            continue
        break
    if not edges or edges[0] > min_degree:
        edges.insert(0, min_degree)
    return DegreeBins(lower=np.asarray(edges, dtype=np.int64))
