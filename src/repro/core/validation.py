"""Simulator accuracy validation (the Section V-B methodology check).

The paper validates its cache simulator against the real machine: 15 %
average absolute error on total misses, and 1.4 % average *relative*
error when comparing two reorderings of the same graph — concluding
that between-RA differences above 1.4 % are meaningful.

Without the paper's hardware, this module validates the simulator
against an independent exact model instead: fully-associative LRU miss
counts derived from exact reuse distances.  Two quantities mirror the
paper's two errors:

* **absolute error** — set-associative LRU simulation vs the exact
  fully-associative count at equal capacity (the cost of associativity
  plus set-imbalance, which is what separates a real cache from the
  textbook model);
* **relative disagreement** — the improvement of a reordering measured
  by the production DRRIP simulator vs measured by the exact model.
  Small disagreement means between-RA comparisons are robust to the
  modelling details, the property the paper's analysis rests on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph
from repro.sim.cache import CacheConfig, SetAssociativeCache
from repro.sim.trace import spmv_trace

from repro.core.reuse import reuse_distances

__all__ = ["ValidationReport", "validate_simulator"]


@dataclass(frozen=True)
class ValidationReport:
    """Accuracy of the simulator on one (graph, reordered graph) pair."""

    capacity_lines: int
    exact_baseline_misses: int
    exact_reordered_misses: int
    lru_baseline_misses: int
    drrip_baseline_misses: int
    drrip_reordered_misses: int

    @property
    def absolute_error_percent(self) -> float:
        """Set-associative LRU vs exact fully-associative LRU."""
        if self.exact_baseline_misses == 0:
            return 0.0
        return (
            abs(self.lru_baseline_misses - self.exact_baseline_misses)
            / self.exact_baseline_misses
            * 100.0
        )

    @property
    def exact_improvement_percent(self) -> float:
        if self.exact_baseline_misses == 0:
            return 0.0
        return (
            (self.exact_baseline_misses - self.exact_reordered_misses)
            / self.exact_baseline_misses
            * 100.0
        )

    @property
    def drrip_improvement_percent(self) -> float:
        if self.drrip_baseline_misses == 0:
            return 0.0
        return (
            (self.drrip_baseline_misses - self.drrip_reordered_misses)
            / self.drrip_baseline_misses
            * 100.0
        )

    @property
    def relative_disagreement_percent(self) -> float:
        """How much the two models disagree on the reordering's benefit."""
        return abs(self.exact_improvement_percent - self.drrip_improvement_percent)


def _exact_lru_misses(lines: np.ndarray, capacity: int) -> int:
    distances = reuse_distances(lines)
    return int((distances == -1).sum() + (distances >= capacity).sum())


def validate_simulator(
    baseline: Graph, reordered: Graph, cache: CacheConfig
) -> ValidationReport:
    """Measure both validation errors for one reordering of one graph."""
    from repro.sim.address_space import AddressSpace

    capacity = cache.num_lines
    results = {}
    for key, graph in (("baseline", baseline), ("reordered", reordered)):
        space = AddressSpace(
            graph.num_vertices, graph.num_edges, line_size=cache.line_size
        )
        trace = spmv_trace(graph, space)
        results[(key, "exact")] = _exact_lru_misses(trace.lines, capacity)
        lru = CacheConfig(
            num_sets=cache.num_sets,
            ways=cache.ways,
            line_size=cache.line_size,
            policy="lru",
        )
        results[(key, "lru")] = (
            SetAssociativeCache(lru).simulate(trace.lines).num_misses
        )
        drrip = CacheConfig(
            num_sets=cache.num_sets,
            ways=cache.ways,
            line_size=cache.line_size,
            policy="drrip",
        )
        results[(key, "drrip")] = (
            SetAssociativeCache(drrip).simulate(trace.lines).num_misses
        )

    return ValidationReport(
        capacity_lines=capacity,
        exact_baseline_misses=results[("baseline", "exact")],
        exact_reordered_misses=results[("reordered", "exact")],
        lru_baseline_misses=results[("baseline", "lru")],
        drrip_baseline_misses=results[("baseline", "drrip")],
        drrip_reordered_misses=results[("reordered", "drrip")],
    )
