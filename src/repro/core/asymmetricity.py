"""Asymmetricity and its degree distribution (Section VII-A, Figure 4).

The asymmetricity of a vertex is the fraction of its in-neighbours that
are not also out-neighbours:

    Asym(v) = |{(u,v) in E : (v,u) not in E}| / |{(u,v) in E}|

Social networks have almost-symmetric in-hubs (in-hubs are out-hubs);
web graphs do not — the structural contrast that explains which RA
helps which graph family.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph
from repro.graph.validate import edges_as_keys

from repro.core.binning import DegreeBins, log_bins

__all__ = [
    "asymmetricity_per_vertex",
    "AsymmetricityDistribution",
    "asymmetricity_degree_distribution",
    "reciprocity",
]


def asymmetricity_per_vertex(graph: Graph) -> np.ndarray:
    """Asymmetricity of every vertex (NaN where in-degree is 0)."""
    n = graph.num_vertices
    in_deg = graph.in_degrees()
    if graph.num_edges == 0:
        return np.full(n, np.nan)

    # In-edges of v are pairs (u, v); the reverse (v, u) exists iff its
    # scalar key appears in the sorted forward key set.
    src, dst = graph.edges()
    forward_keys = edges_as_keys(n, src, dst)  # sorted
    reverse_keys = dst * np.int64(n) + src
    pos = np.searchsorted(forward_keys, reverse_keys)
    pos = np.minimum(pos, forward_keys.shape[0] - 1)
    reciprocated = forward_keys[pos] == reverse_keys

    symmetric_in = np.bincount(
        dst, weights=reciprocated.astype(np.float64), minlength=n
    )
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(
            in_deg > 0, 1.0 - symmetric_in / np.maximum(in_deg, 1), np.nan
        )


def reciprocity(graph: Graph) -> float:
    """Fraction of all edges whose reverse edge exists."""
    if graph.num_edges == 0:
        return 0.0
    asym = asymmetricity_per_vertex(graph)
    in_deg = graph.in_degrees().astype(np.float64)
    valid = ~np.isnan(asym)
    symmetric_edges = ((1.0 - asym[valid]) * in_deg[valid]).sum()
    return float(symmetric_edges / graph.num_edges)


@dataclass(frozen=True)
class AsymmetricityDistribution:
    """Mean asymmetricity (%) per in-degree bin — one Figure 4 curve."""

    bins: DegreeBins
    mean_percent: np.ndarray
    vertex_counts: np.ndarray

    def series(self) -> tuple[np.ndarray, np.ndarray]:
        mask = self.vertex_counts > 0
        return self.bins.centers()[mask], self.mean_percent[mask]


def asymmetricity_degree_distribution(
    graph: Graph, *, bins: DegreeBins | None = None
) -> AsymmetricityDistribution:
    """Degree distribution of asymmetricity, binned by in-degree."""
    asym = asymmetricity_per_vertex(graph)
    in_deg = graph.in_degrees()
    if bins is None:
        bins = log_bins(max(1, int(in_deg.max()) if in_deg.size else 1))
    idx = bins.index_of(in_deg)
    valid = (idx >= 0) & ~np.isnan(asym)
    counts = np.bincount(idx[valid], minlength=bins.num_bins).astype(np.int64)
    sums = np.bincount(idx[valid], weights=asym[valid], minlength=bins.num_bins)
    with np.errstate(invalid="ignore", divide="ignore"):
        mean = np.where(counts > 0, sums / np.maximum(counts, 1) * 100.0, np.nan)
    return AsymmetricityDistribution(
        bins=bins, mean_percent=mean, vertex_counts=counts
    )
