"""Effective Cache Size (ECS), Section VI-F and Table V of the paper.

ECS is "the percentage of cache capacity dedicated to caching randomly
accessed data" — in SpMV, the share of resident lines holding the old
vertex data ``Di`` rather than streamed topology.  It is measured by
functional simulation with periodic scans of cache contents.

The paper's counter-intuitive finding, which the reproduction checks:
RAs with *worse* locality (SlashBurn) show the *largest* ECS, because
destroyed locality evicts topology lines faster; the RA with the best
locality usually has the lowest ECS.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.graph.graph import Graph
from repro.sim.simulator import SimulationConfig, SimulationResult, simulate_spmv

__all__ = ["ECSMeasurement", "measure_ecs", "ecs_from_result"]

_DEFAULT_NUM_SCANS = 64


@dataclass(frozen=True)
class ECSMeasurement:
    """ECS samples over one traversal."""

    samples: np.ndarray
    scan_interval: int

    @property
    def average_percent(self) -> float:
        """The Table V number."""
        if self.samples.size == 0:
            raise SimulationError("no ECS samples collected")
        return float(self.samples.mean())

    @property
    def final_percent(self) -> float:
        return float(self.samples[-1])


def ecs_from_result(result: SimulationResult) -> ECSMeasurement:
    """Extract ECS from a simulation that was run with scans enabled."""
    samples = result.effective_cache_size_samples()
    if samples.size == 0:
        raise SimulationError(
            "simulation has no cache snapshots; rerun with scan_interval > 0"
        )
    return ECSMeasurement(samples=samples, scan_interval=result.config.scan_interval)


def measure_ecs(
    graph: Graph,
    config: SimulationConfig | None = None,
    *,
    num_scans: int = _DEFAULT_NUM_SCANS,
    **scaled_kwargs,
) -> ECSMeasurement:
    """Run a traversal with periodic scans and return its ECS.

    ``num_scans`` spaces the scans evenly over the (estimated) trace
    length when the supplied config does not already request scanning.
    """
    if config is not None and config.scan_interval > 0:
        return ecs_from_result(simulate_spmv(graph, config))
    if config is None:
        config = SimulationConfig.scaled_for(graph, **scaled_kwargs)
    elif scaled_kwargs:
        raise SimulationError("pass either a config or scaling kwargs, not both")
    # Trace length is close to m random accesses plus sequential lines.
    approx_len = graph.num_edges + graph.num_vertices // 4
    interval = max(1, approx_len // max(1, num_scans))
    config = SimulationConfig(
        cache=config.cache,
        tlb=config.tlb,
        num_threads=config.num_threads,
        interleave_interval=config.interleave_interval,
        scan_interval=interval,
        direction=config.direction,
        promote_sequential=config.promote_sequential,
        timing=config.timing,
    )
    return ecs_from_result(simulate_spmv(graph, config))
