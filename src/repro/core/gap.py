"""Average gap profile — the related-work metric AID is compared to.

Section V-A contrasts N2N AID with the "average gap profile" of Barik
et al. [23], which averages ``|id(u) - id(v)|`` over the endpoints of
every edge.  The key difference: neighbours need to be close *to each
other* for spatial locality, not close to the vertex that links them —
AID captures that; the gap profile does not.  Both are provided so the
comparison can be made empirically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph

__all__ = ["GapProfile", "average_gap_profile"]


@dataclass(frozen=True)
class GapProfile:
    """Summary of edge-endpoint ID gaps."""

    mean_gap: float
    median_gap: float
    p90_gap: float

    def as_dict(self) -> dict[str, float]:
        return {
            "mean": self.mean_gap,
            "median": self.median_gap,
            "p90": self.p90_gap,
        }


def average_gap_profile(graph: Graph) -> GapProfile:
    """Mean/median/90th-percentile of ``|u - v|`` over all edges."""
    src, dst = graph.edges()
    if src.size == 0:
        return GapProfile(0.0, 0.0, 0.0)
    gaps = np.abs(src - dst).astype(np.float64)
    return GapProfile(
        mean_gap=float(gaps.mean()),
        median_gap=float(np.median(gaps)),
        p90_gap=float(np.percentile(gaps, 90)),
    )
