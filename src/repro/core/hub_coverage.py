"""Push vs pull locality: edge coverage of hubs (Section VII-B, Figure 6).

For a budget of ``H`` hub vertices kept in cache, what percentage of all
edges is "covered" — i.e. processed against cached data?  In a pull/CSC
traversal the cached vertices are *out-hubs* (their data is read by
many vertices); in a push/CSR traversal they are *in-hubs*.  Web graphs
have far more powerful in-hubs (push locality); social networks have
more powerful out-hubs (pull locality).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.graph.graph import Graph

__all__ = ["HubCoverage", "hub_coverage", "coverage_at"]


@dataclass(frozen=True)
class HubCoverage:
    """Coverage curves for both hub kinds of one graph.

    ``hub_counts[i]`` hubs cover ``in_percent[i]`` of edges when the
    hubs are chosen by in-degree, ``out_percent[i]`` when by out-degree.
    """

    hub_counts: np.ndarray
    in_percent: np.ndarray
    out_percent: np.ndarray

    def crossover_favours(self, hub_budget: int) -> str:
        """Which traversal direction the graph favours at this budget.

        Returns ``"push"`` when in-hubs cover more edges (CSR/push
        benefits) or ``"pull"`` otherwise.
        """
        in_cov = coverage_at(self.hub_counts, self.in_percent, hub_budget)
        out_cov = coverage_at(self.hub_counts, self.out_percent, hub_budget)
        return "push" if in_cov > out_cov else "pull"


def _cumulative_percent(degrees: np.ndarray, total_edges: int, counts: np.ndarray) -> np.ndarray:
    ordered = np.sort(degrees)[::-1].astype(np.float64)
    cumulative = np.concatenate([[0.0], np.cumsum(ordered)])
    clamped = np.minimum(counts, degrees.shape[0])
    if total_edges == 0:
        return np.zeros(counts.shape[0])
    return cumulative[clamped] / total_edges * 100.0


def hub_coverage(graph: Graph, *, num_points: int = 0) -> HubCoverage:
    """Compute both Figure 6 curves.

    ``num_points`` caps the number of logarithmically spaced hub counts;
    0 means one point per power of ten plus intermediate 2x/5x steps up
    to ``n``.
    """
    n = graph.num_vertices
    if n == 0:
        raise ReproError("empty graph has no hubs")
    counts: list[int] = []
    value = 1
    while value <= n:
        for mantissa in (1, 2, 5):
            candidate = mantissa * value
            if candidate <= n:
                counts.append(candidate)
        value *= 10
    if counts[-1] != n:
        counts.append(n)
    hub_counts = np.asarray(sorted(set(counts)), dtype=np.int64)
    if num_points and hub_counts.shape[0] > num_points:
        pick = np.linspace(0, hub_counts.shape[0] - 1, num_points).astype(np.int64)
        hub_counts = hub_counts[pick]

    return HubCoverage(
        hub_counts=hub_counts,
        in_percent=_cumulative_percent(graph.in_degrees(), graph.num_edges, hub_counts),
        out_percent=_cumulative_percent(graph.out_degrees(), graph.num_edges, hub_counts),
    )


def coverage_at(hub_counts: np.ndarray, percent: np.ndarray, budget: int) -> float:
    """Interpolated coverage percentage at an arbitrary hub budget."""
    if budget <= 0:
        return 0.0
    return float(np.interp(budget, hub_counts, percent))
