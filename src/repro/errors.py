"""Exception hierarchy for the :mod:`repro` package.

All errors raised deliberately by this library derive from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while letting programming errors propagate.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphFormatError(ReproError):
    """A graph, edge list, or adjacency structure is malformed."""


class PermutationError(ReproError):
    """A relabeling array is not a valid permutation of vertex IDs."""


class SimulationError(ReproError):
    """A cache/TLB/traversal simulation was configured inconsistently."""


class ReorderingError(ReproError):
    """A reordering algorithm received invalid input or parameters."""


class ExperimentError(ReproError):
    """An experiment harness was asked to run an unknown or bad config."""


class LintError(ReproError):
    """The static-analysis tooling hit a usage or configuration problem."""


class StoreError(ReproError):
    """The artifact store was misused or hit an unrecoverable state."""


class ObservabilityError(ReproError):
    """The tracing/metrics layer was misused (bad metric type, bad run file)."""


class ServeError(ReproError):
    """A serving request was malformed or the service was misconfigured."""


class ServiceSaturatedError(ServeError):
    """Admission control rejected a job: the worker queue is full.

    ``retry_after_s`` is the server's estimate of when capacity frees
    up; HTTP handlers surface it as a ``Retry-After`` header on 429.
    """

    def __init__(self, message: str, *, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s
