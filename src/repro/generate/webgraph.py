"""Web-graph dataset family.

Stands in for WebBase, SK-Domain, UK-Union, Web-CC12 and ClueWeb09
(Table I, type WG).  The generator builds the host-page hierarchy that
real crawls exhibit and that drives the paper's web-graph findings:

* vertices are grouped into *hosts* with power-law host sizes; pages of
  a host occupy consecutive IDs (the crawl's lexicographic URL order),
  so the *initial* ordering already has good locality — exactly why the
  paper's web graphs respond differently to RAs than social networks;
* most links are intra-host between nearby pages: LDV neighbourhoods are
  made of other LDV (Figure 5, right);
* cross-host links point at *host front pages* chosen with a power-law
  popularity, creating in-hubs with huge in-degree but small out-degree;
  the linking pages rarely receive a reverse link, so in-hubs are highly
  asymmetric (Figure 4) and in-hub edge coverage dwarfs out-hub coverage
  (Figure 6, push locality).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.build import build_graph
from repro.graph.graph import Graph

__all__ = ["web_graph", "host_sizes"]


def host_sizes(
    num_vertices: int, mean_host_size: int, *, alpha: float = 1.6, seed: int = 0
) -> np.ndarray:
    """Power-law host sizes summing exactly to ``num_vertices``."""
    if num_vertices <= 0:
        raise GraphFormatError("need at least one vertex")
    if mean_host_size <= 0:
        raise GraphFormatError("mean host size must be positive")
    rng = np.random.default_rng(seed)
    sizes: list[int] = []
    remaining = num_vertices
    while remaining > 0:
        # Pareto-distributed sizes, clamped to what is left.
        size = int(min(remaining, 1 + rng.pareto(alpha) * mean_host_size))
        sizes.append(size)
        remaining -= size
    return np.asarray(sizes, dtype=np.int64)


def web_graph(
    num_vertices: int = 16384,
    average_degree: float = 16.0,
    *,
    mean_host_size: int = 48,
    intra_fraction: float = 0.75,
    intra_window: int = 24,
    popularity_alpha: float = 0.8,
    disorder: float = 0.10,
    name: str = "web",
    seed: int = 0,
) -> Graph:
    """Generate a web-graph-like graph.

    Parameters
    ----------
    num_vertices:
        Page count before zero-degree removal.
    average_degree:
        Target ``|E| / |V|`` before deduplication.
    mean_host_size:
        Mean pages per host; host sizes follow a Pareto distribution.
    intra_fraction:
        Fraction of links that stay inside the source page's host.
    intra_window:
        Intra-host links target pages within this ID distance — the
        navigational-menu locality of real sites.
    popularity_alpha:
        Zipf exponent of cross-host front-page popularity
        (``p(rank) ~ rank**-popularity_alpha``); larger values
        concentrate more in-links on fewer front pages.
    disorder:
        Fraction of pages whose IDs are shuffled among themselves —
        the imperfection of a real crawl order (late-discovered pages,
        re-crawls).  Leaves room for a community-clustering RA to
        improve on the initial order, as Rabbit-Order does on the
        paper's web graphs.
    """
    if not 0.0 <= intra_fraction <= 1.0:
        raise GraphFormatError(f"intra_fraction must be in [0, 1], got {intra_fraction}")
    if not 0.0 <= disorder <= 1.0:
        raise GraphFormatError(f"disorder must be in [0, 1], got {disorder}")
    rng = np.random.default_rng(seed)
    sizes = host_sizes(num_vertices, mean_host_size, seed=seed)
    num_hosts = sizes.shape[0]
    host_start = np.zeros(num_hosts + 1, dtype=np.int64)
    np.cumsum(sizes, out=host_start[1:])
    # host_of[p] = host index of page p; page IDs are consecutive per host.
    host_of = np.repeat(np.arange(num_hosts, dtype=np.int64), sizes)

    num_edges = int(num_vertices * average_degree)
    num_intra = int(num_edges * intra_fraction)
    num_cross = num_edges - num_intra

    # Per-page link budgets are heavy-tailed but bounded: most pages
    # carry a handful of links, a few index pages carry hundreds.  This
    # keeps LDV the dominant *sources* of edges (Figure 5, web side)
    # while in-degree alone forms the hubs.
    page_weight = 1.0 + rng.pareto(2.0, size=num_vertices)
    page_prob = page_weight / page_weight.sum()

    # Intra-host links: target within +-intra_window inside the same
    # host (reflected at host boundaries).
    intra_src = rng.choice(num_vertices, size=num_intra, p=page_prob).astype(np.int64)
    delta = rng.integers(1, intra_window + 1, size=num_intra, dtype=np.int64)
    sign = rng.integers(0, 2, size=num_intra, dtype=np.int64) * 2 - 1
    raw = intra_src + sign * delta
    lo = host_start[host_of[intra_src]]
    hi = host_start[host_of[intra_src] + 1] - 1
    intra_dst = np.clip(raw, lo, hi)
    # Clipping can create self-loops; nudge them to a neighbour when the
    # host has more than one page.
    loops = intra_dst == intra_src
    multi = hi > lo
    fix = loops & multi
    intra_dst[fix] = np.where(intra_src[fix] < hi[fix], intra_src[fix] + 1, intra_src[fix] - 1)

    # Cross-host links: target a host drawn from a heavy-tailed
    # popularity distribution, landing on its front page or (with
    # geometrically decaying probability) one of its first section pages.
    cross_src = rng.choice(num_vertices, size=num_cross, p=page_prob).astype(np.int64)
    popularity = 1.0 / np.power(
        np.arange(1, num_hosts + 1, dtype=np.float64), popularity_alpha
    )
    popularity /= popularity.sum()
    # Hash host ranks so popular hosts are spread over the ID space.
    rank_to_host = rng.permutation(num_hosts)
    picked_rank = rng.choice(num_hosts, size=num_cross, p=popularity)
    picked_host = rank_to_host[picked_rank]
    section = rng.geometric(0.5, size=num_cross).astype(np.int64) - 1
    section = np.minimum(section, sizes[picked_host] - 1)
    cross_dst = host_start[picked_host] + section

    sources = np.concatenate([intra_src, cross_src])
    targets = np.concatenate([intra_dst, cross_dst])

    if disorder > 0.0:
        # Shuffle a fraction of page IDs among themselves: the crawl
        # order is good but not perfect.
        relabel = np.arange(num_vertices, dtype=np.int64)
        moved = rng.random(num_vertices) < disorder
        moved_ids = np.flatnonzero(moved)
        relabel[moved_ids] = moved_ids[rng.permutation(moved_ids.shape[0])]
        sources = relabel[sources]
        targets = relabel[targets]

    result = build_graph(num_vertices, sources, targets, name=name)
    return result.graph
