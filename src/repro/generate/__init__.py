"""Synthetic dataset generators standing in for the paper's Table I graphs."""

from repro.generate.datasets import (
    DATASETS,
    DatasetSpec,
    dataset_names,
    load_dataset,
    scale_factor,
)
from repro.generate.random_graphs import (
    chung_lu_edges,
    erdos_renyi_edges,
    planted_partition_edges,
    ring_edges,
)
from repro.generate.rmat import rmat_edges
from repro.generate.social import social_network
from repro.generate.webgraph import host_sizes, web_graph

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "dataset_names",
    "load_dataset",
    "scale_factor",
    "chung_lu_edges",
    "erdos_renyi_edges",
    "planted_partition_edges",
    "ring_edges",
    "rmat_edges",
    "social_network",
    "host_sizes",
    "web_graph",
]
