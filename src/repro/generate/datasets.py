"""Dataset registry mirroring Table I of the paper.

The paper evaluates nine real graphs of 1-8 billion edges (WebBase,
Twitter-MPI, Friendster, SK-Domain, Web-CC12, UK-Delis, UK-Union,
UK-Domain, ClueWeb09).  Those datasets and the 768 GB machine they need
are unavailable here, so the registry provides *scaled synthetic
analogues* — one per paper dataset — produced by the structural
generators in :mod:`repro.generate.social` and
:mod:`repro.generate.webgraph` (see DESIGN.md, substitution table).

Every entry records the paper dataset it stands in for, its family
(``SN`` social network / ``WG`` web graph) and the generator parameters.
Graph sizes scale with the ``REPRO_SCALE`` environment variable
(float multiplier, default 1.0) so experiments can be rerun larger.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Callable

from repro.errors import ExperimentError
from repro.graph.graph import Graph

from repro.generate.social import social_network
from repro.generate.webgraph import web_graph

__all__ = ["DatasetSpec", "DATASETS", "dataset_names", "load_dataset", "scale_factor"]


def scale_factor() -> float:
    """Workload multiplier from the ``REPRO_SCALE`` environment variable."""
    raw = os.environ.get("REPRO_SCALE", "1.0")
    try:
        value = float(raw)
    except ValueError as exc:
        raise ExperimentError(f"REPRO_SCALE must be a float, got {raw!r}") from exc
    if value <= 0:
        raise ExperimentError(f"REPRO_SCALE must be positive, got {value}")
    return value


@dataclass(frozen=True)
class DatasetSpec:
    """One row of the (scaled) Table I registry."""

    name: str
    paper_name: str
    family: str  # "SN" or "WG"
    base_vertices: int
    average_degree: float
    seed: int
    builder: Callable[["DatasetSpec", float], Graph]

    def build(self, scale: float | None = None) -> Graph:
        """Generate the graph, honouring ``REPRO_SCALE`` unless overridden."""
        if scale is None:
            scale = scale_factor()
        return self.builder(self, scale)


def _build_social(spec: DatasetSpec, scale: float) -> Graph:
    target = max(1024, int(spec.base_vertices * scale))
    log_scale = max(10, int(round(math.log2(target))))
    return social_network(
        scale=log_scale,
        average_degree=spec.average_degree,
        name=spec.name,
        seed=spec.seed,
    )


def _build_web(spec: DatasetSpec, scale: float) -> Graph:
    num_vertices = max(1024, int(spec.base_vertices * scale))
    return web_graph(
        num_vertices=num_vertices,
        average_degree=spec.average_degree,
        name=spec.name,
        seed=spec.seed,
    )


def _spec(
    name: str,
    paper_name: str,
    family: str,
    base_vertices: int,
    average_degree: float,
    seed: int,
) -> DatasetSpec:
    builder = _build_social if family == "SN" else _build_web
    return DatasetSpec(
        name=name,
        paper_name=paper_name,
        family=family,
        base_vertices=base_vertices,
        average_degree=average_degree,
        seed=seed,
        builder=builder,
    )


#: Scaled analogues of Table I.  ``base_vertices`` and ``average_degree``
#: keep the *relative* proportions of the paper's datasets (average
#: degrees match the paper: e.g. Twitter-MPI ~ 36, UK-Domain ~ 63).
DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        _spec("webb-mini", "WebBase-2001", "WG", 24576, 9.0, 101),
        _spec("twtr-mini", "Twitter MPI", "SN", 16384, 36.0, 102),
        _spec("frnd-mini", "Friendster", "SN", 16384, 28.0, 103),
        _spec("sk-mini", "SK-Domain", "WG", 16384, 40.0, 104),
        _spec("wbcc-mini", "Web-CC12", "WG", 20480, 22.0, 105),
        _spec("ukdls-mini", "UK-Delis", "WG", 20480, 36.0, 106),
        _spec("uu-mini", "UK-Union", "WG", 24576, 41.0, 107),
        _spec("ukdmn-mini", "UK-Domain", "WG", 20480, 63.0, 108),
        _spec("clwb-mini", "ClueWeb09", "WG", 32768, 4.6, 109),
    ]
}


def dataset_names(family: str | None = None) -> list[str]:
    """Registry names, optionally filtered to one family ('SN'/'WG')."""
    if family is None:
        return list(DATASETS)
    if family not in ("SN", "WG"):
        raise ExperimentError(f"unknown dataset family: {family!r}")
    return [name for name, spec in DATASETS.items() if spec.family == family]


def load_dataset(name: str, *, scale: float | None = None) -> Graph:
    """Generate the named dataset analogue (deterministic per name)."""
    if name not in DATASETS:
        raise ExperimentError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        )
    return DATASETS[name].build(scale)
