"""Dataset registry mirroring Table I of the paper.

The paper evaluates nine real graphs of 1-8 billion edges (WebBase,
Twitter-MPI, Friendster, SK-Domain, Web-CC12, UK-Delis, UK-Union,
UK-Domain, ClueWeb09).  Those datasets and the 768 GB machine they need
are unavailable here, so the registry provides *scaled synthetic
analogues* — one per paper dataset — produced by the structural
generators in :mod:`repro.generate.social` and
:mod:`repro.generate.webgraph` (see DESIGN.md, substitution table).

Every entry records the paper dataset it stands in for, its family
(``SN`` social network / ``WG`` web graph) and the generator parameters.
Graph sizes scale with the ``REPRO_SCALE`` environment variable
(float multiplier, default 1.0) so experiments can be rerun larger.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Callable

from repro.errors import ExperimentError
from repro.graph.build import build_graph
from repro.graph.graph import Graph
from repro.lint.contracts import declares_effects

from repro.generate.rmat import rmat_edges
from repro.generate.social import social_network
from repro.generate.webgraph import web_graph

__all__ = [
    "DatasetSpec",
    "DATASETS",
    "SCALE_DATASETS",
    "dataset_names",
    "load_dataset",
    "scale_factor",
]


@declares_effects("env-read")
def scale_factor() -> float:
    """Workload multiplier from the ``REPRO_SCALE`` environment variable.

    Declared carve-out: the value is itself fingerprinted into every
    dataset content key (it appears in each stage's ``key`` dict), so
    two runs with different ``REPRO_SCALE`` produce *different* keys
    rather than silently colliding — the read is audited, not hidden.
    """
    raw = os.environ.get("REPRO_SCALE", "1.0")
    try:
        value = float(raw)
    except ValueError as exc:
        raise ExperimentError(f"REPRO_SCALE must be a float, got {raw!r}") from exc
    if value <= 0:
        raise ExperimentError(f"REPRO_SCALE must be positive, got {value}")
    return value


@dataclass(frozen=True)
class DatasetSpec:
    """One row of the (scaled) Table I registry."""

    name: str
    paper_name: str
    family: str  # "SN" or "WG"
    base_vertices: int
    average_degree: float
    seed: int
    builder: Callable[["DatasetSpec", float], Graph]

    def build(self, scale: float | None = None) -> Graph:
        """Generate the graph, honouring ``REPRO_SCALE`` unless overridden."""
        if scale is None:
            scale = scale_factor()
        return self.builder(self, scale)


def _build_social(spec: DatasetSpec, scale: float) -> Graph:
    target = max(1024, int(spec.base_vertices * scale))
    log_scale = max(10, int(round(math.log2(target))))
    return social_network(
        scale=log_scale,
        average_degree=spec.average_degree,
        name=spec.name,
        seed=spec.seed,
    )


def _build_web(spec: DatasetSpec, scale: float) -> Graph:
    num_vertices = max(1024, int(spec.base_vertices * scale))
    return web_graph(
        num_vertices=num_vertices,
        average_degree=spec.average_degree,
        name=spec.name,
        seed=spec.seed,
    )


def _build_rmat(spec: DatasetSpec, scale: float) -> Graph:
    target = max(1024, int(spec.base_vertices * scale))
    log_scale = max(10, int(round(math.log2(target))))
    num_edges = int((1 << log_scale) * spec.average_degree)
    sources, targets = rmat_edges(log_scale, num_edges, seed=spec.seed)
    return build_graph(1 << log_scale, sources, targets, name=spec.name).graph


_BUILDERS: dict[str, Callable[[DatasetSpec, float], Graph]] = {
    "SN": _build_social,
    "WG": _build_web,
    "RM": _build_rmat,
}


def _spec(
    name: str,
    paper_name: str,
    family: str,
    base_vertices: int,
    average_degree: float,
    seed: int,
) -> DatasetSpec:
    builder = _BUILDERS[family]
    return DatasetSpec(
        name=name,
        paper_name=paper_name,
        family=family,
        base_vertices=base_vertices,
        average_degree=average_degree,
        seed=seed,
        builder=builder,
    )


#: Scaled analogues of Table I.  ``base_vertices`` and ``average_degree``
#: keep the *relative* proportions of the paper's datasets (average
#: degrees match the paper: e.g. Twitter-MPI ~ 36, UK-Domain ~ 63).
DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        _spec("webb-mini", "WebBase-2001", "WG", 24576, 9.0, 101),
        _spec("twtr-mini", "Twitter MPI", "SN", 16384, 36.0, 102),
        _spec("frnd-mini", "Friendster", "SN", 16384, 28.0, 103),
        _spec("sk-mini", "SK-Domain", "WG", 16384, 40.0, 104),
        _spec("wbcc-mini", "Web-CC12", "WG", 20480, 22.0, 105),
        _spec("ukdls-mini", "UK-Delis", "WG", 20480, 36.0, 106),
        _spec("uu-mini", "UK-Union", "WG", 24576, 41.0, 107),
        _spec("ukdmn-mini", "UK-Domain", "WG", 20480, 63.0, 108),
        _spec("clwb-mini", "ClueWeb09", "WG", 32768, 4.6, 109),
    ]
}


#: Scale tier (ISSUE 7 / ROADMAP item 4): one entry per generator family
#: at ~10⁷ edges for ``REPRO_SCALE=1``, reaching the 10⁸ band at
#: ``REPRO_SCALE=10``.  These are the sizes where the diameter-dependence
#: study (arXiv 2111.12281) predicts reordering rankings start to shift;
#: run them through :func:`repro.sim.simulator.simulate_spmv_streamed`,
#: not the materializing pipeline.
SCALE_DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        _spec("rmat-scale", "RMAT ~2^21x8", "RM", 1 << 21, 8.0, 201),
        _spec("web-scale", "WebBase-2001", "WG", 1 << 20, 12.0, 202),
        _spec("social-scale", "Twitter MPI", "SN", 1 << 20, 16.0, 203),
    ]
}

_TIERS = ("mini", "scale", "all")


def _registry(tier: str) -> dict[str, DatasetSpec]:
    if tier == "mini":
        return DATASETS
    if tier == "scale":
        return SCALE_DATASETS
    if tier == "all":
        return {**DATASETS, **SCALE_DATASETS}
    raise ExperimentError(f"unknown dataset tier {tier!r}; expected one of {_TIERS}")


def dataset_names(family: str | None = None, *, tier: str = "mini") -> list[str]:
    """Registry names, optionally filtered to one family ('SN'/'WG'/'RM').

    ``tier`` selects the registry: ``"mini"`` (default, the Table I
    analogues), ``"scale"`` (the 10⁷–10⁸-edge tier) or ``"all"``.
    """
    registry = _registry(tier)
    if family is None:
        return list(registry)
    if family not in _BUILDERS:
        raise ExperimentError(f"unknown dataset family: {family!r}")
    return [name for name, spec in registry.items() if spec.family == family]


def load_dataset(name: str, *, scale: float | None = None) -> Graph:
    """Generate the named dataset analogue (deterministic per name).

    Looks the name up across both tiers — mini analogues and the
    scale-tier entries.
    """
    registry = _registry("all")
    if name not in registry:
        raise ExperimentError(
            f"unknown dataset {name!r}; available: {sorted(registry)}"
        )
    return registry[name].build(scale)
