"""Baseline random graph generators used by tests and ablations.

These are not dataset stand-ins; they provide controlled structures
(uniform randomness, fixed-degree rings, planted communities) against
which metric implementations can be checked analytically.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphFormatError

__all__ = ["erdos_renyi_edges", "chung_lu_edges", "ring_edges", "planted_partition_edges"]


def erdos_renyi_edges(
    num_vertices: int, num_edges: int, *, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Uniformly random directed edges (duplicates possible)."""
    if num_vertices <= 0 and num_edges > 0:
        raise GraphFormatError("cannot place edges in an empty vertex set")
    rng = np.random.default_rng(seed)
    sources = rng.integers(0, max(num_vertices, 1), size=num_edges, dtype=np.int64)
    targets = rng.integers(0, max(num_vertices, 1), size=num_edges, dtype=np.int64)
    return sources, targets


def chung_lu_edges(
    out_weights: np.ndarray,
    in_weights: np.ndarray,
    num_edges: int,
    *,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Directed Chung-Lu model: endpoint picked proportional to weight.

    Expected out-degree of ``v`` is ``num_edges * out_weights[v] / sum``,
    and likewise for in-degrees, so arbitrary degree-sequence shapes
    (including fully asymmetric hubs) can be planted directly.
    """
    out_weights = np.asarray(out_weights, dtype=np.float64)
    in_weights = np.asarray(in_weights, dtype=np.float64)
    if out_weights.shape != in_weights.shape or out_weights.ndim != 1:
        raise GraphFormatError("weight arrays must be 1-D and equal length")
    if out_weights.size == 0:
        raise GraphFormatError("empty weight arrays")
    if out_weights.min() < 0 or in_weights.min() < 0:
        raise GraphFormatError("weights must be non-negative")
    if out_weights.sum() == 0 or in_weights.sum() == 0:
        raise GraphFormatError("weights must not all be zero")
    rng = np.random.default_rng(seed)
    sources = rng.choice(
        out_weights.size, size=num_edges, p=out_weights / out_weights.sum()
    ).astype(np.int64)
    targets = rng.choice(
        in_weights.size, size=num_edges, p=in_weights / in_weights.sum()
    ).astype(np.int64)
    return sources, targets


def ring_edges(num_vertices: int, hops: int = 1) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic ring: edges ``v -> (v + h) mod n`` for h in 1..hops.

    Every vertex has in-degree == out-degree == ``hops``, making locality
    metrics exactly computable by hand in tests.
    """
    if num_vertices <= 0:
        raise GraphFormatError("ring needs at least one vertex")
    if hops < 1 or hops >= num_vertices:
        raise GraphFormatError(f"hops must be in [1, {num_vertices}), got {hops}")
    vertices = np.arange(num_vertices, dtype=np.int64)
    sources = np.tile(vertices, hops)
    offsets = np.repeat(np.arange(1, hops + 1, dtype=np.int64), num_vertices)
    targets = (sources + offsets) % num_vertices
    return sources, targets


def planted_partition_edges(
    num_communities: int,
    community_size: int,
    intra_edges_per_vertex: int,
    inter_edges_per_vertex: int,
    *,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Communities with dense intra- and sparse inter-community edges.

    Ground-truth community structure for testing the community-oriented
    RAs (Rabbit-Order should co-locate each planted block).
    """
    if num_communities <= 0 or community_size <= 0:
        raise GraphFormatError("need at least one community with one vertex")
    n = num_communities * community_size
    rng = np.random.default_rng(seed)
    community = np.repeat(np.arange(num_communities), community_size)
    vertices = np.arange(n, dtype=np.int64)

    intra_src = np.repeat(vertices, intra_edges_per_vertex)
    local = rng.integers(0, community_size, size=intra_src.size, dtype=np.int64)
    intra_dst = community[intra_src] * community_size + local

    inter_src = np.repeat(vertices, inter_edges_per_vertex)
    inter_dst = rng.integers(0, n, size=inter_src.size, dtype=np.int64)

    return (
        np.concatenate([intra_src, inter_src]),
        np.concatenate([intra_dst, inter_dst]),
    )
