"""Social-network dataset family.

Stands in for Twitter-MPI and Friendster (Table I, type SN).  The
structural properties the paper's analysis depends on — and which this
generator plants by construction — are:

* heavy-tailed in- *and* out-degree distributions with the *same* hubs
  (in-hubs are out-hubs), produced by a skewed R-MAT kernel whose source
  and target skew coincide plus explicit edge symmetrization, so the
  asymmetricity of high-in-degree vertices is low (Figure 4);
* a tightly interconnected HDV core: HDV form a large share of the
  neighbourhood of other HDV (Figure 5, left);
* friend-circle *communities* among the low-degree users, blended into
  the R-MAT backbone — the structure Rabbit-Order's merging phase
  detects (Figure 3) and late SlashBurn iterations destroy (Table VII);
* an arbitrary (uninformative) initial vertex order: real social graphs
  are numbered by crawl/account ID, which carries no locality, so the
  generated IDs are scrambled by a seeded random permutation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.build import build_graph
from repro.graph.graph import Graph
from repro.graph.permute import random_permutation

from repro.generate.rmat import rmat_edges

__all__ = ["social_network"]


def social_network(
    scale: int = 14,
    average_degree: float = 16.0,
    *,
    reciprocity: float = 0.65,
    rmat_b: float = 0.24,
    rmat_c: float = 0.14,
    community_fraction: float = 0.30,
    mean_community_size: int = 40,
    id_dispersion: float = 0.01,
    name: str = "social",
    seed: int = 0,
) -> Graph:
    """Generate a social-network-like graph.

    Parameters
    ----------
    scale:
        ``2**scale`` vertices before zero-degree removal.
    average_degree:
        Target ``|E| / |V|`` before deduplication.
    reciprocity:
        Fraction of sampled edges that also get their reverse edge —
        drives the symmetric-hub structure of Figure 4.  Twitter-scale
        social graphs show high reciprocity among high-degree accounts.
    rmat_b, rmat_c:
        R-MAT quadrant probabilities.  ``rmat_b > rmat_c`` makes the
        out-degree tail heavier than the in-degree tail, giving the
        graph the *more powerful out-hubs* (pull locality) the paper
        observes for social networks in Figure 6.
    community_fraction:
        Fraction of edges drawn inside friend-circle communities rather
        than from the R-MAT backbone.
    mean_community_size:
        Mean community size (sizes are Pareto distributed).
    id_dispersion:
        How arbitrary the initial vertex order is, as a fraction of
        ``|V|``.  Account IDs follow sign-up time, and friends tend to
        join within the same era, so the order is noisy but weakly
        correlated with the communities: each vertex's initial position
        is its community position plus uniform noise of this width.
        ``1.0`` degenerates to a full scramble.
    seed:
        Seeds edge sampling and the scrambling permutation.
    """
    if not 0.0 <= community_fraction < 1.0:
        raise GraphFormatError(
            f"community_fraction must be in [0, 1), got {community_fraction}"
        )
    num_vertices = 1 << scale
    total_edges = int(num_vertices * average_degree / (1.0 + reciprocity))
    backbone_edges = int(total_edges * (1.0 - community_fraction))
    community_edges = total_edges - backbone_edges
    sources, targets = rmat_edges(
        scale, backbone_edges, b=rmat_b, c=rmat_c, seed=seed
    )

    if community_edges:
        c_src, c_dst = _community_edges(
            num_vertices, community_edges, mean_community_size, seed + 3
        )
        sources = np.concatenate([sources, c_src])
        targets = np.concatenate([targets, c_dst])

    # Symmetrize a fraction of the edges: (u, v) also gains (v, u).
    rng = np.random.default_rng(seed + 1)
    mutual = rng.random(sources.shape[0]) < reciprocity
    all_src = np.concatenate([sources, targets[mutual]])
    all_dst = np.concatenate([targets, sources[mutual]])

    # Initial vertex order: noisy sign-up order.  Pre-scramble IDs are
    # community-contiguous, so position + wide uniform noise yields an
    # order that is mostly arbitrary but weakly community-correlated —
    # like account IDs of friends who joined in the same era.
    noise_rng = np.random.default_rng(seed + 2)
    if id_dispersion >= 1.0:
        scramble = random_permutation(num_vertices, seed=seed + 2)
    else:
        keys = (
            np.arange(num_vertices, dtype=np.float64)
            + noise_rng.uniform(0, max(1e-9, id_dispersion) * num_vertices,
                                size=num_vertices)
        )
        scramble = np.empty(num_vertices, dtype=np.int64)
        scramble[np.argsort(keys, kind="stable")] = np.arange(
            num_vertices, dtype=np.int64
        )
    all_src = scramble[all_src]
    all_dst = scramble[all_dst]

    result = build_graph(num_vertices, all_src, all_dst, name=name)
    return result.graph


def _community_edges(
    num_vertices: int, num_edges: int, mean_size: int, seed: int
) -> tuple[np.ndarray, np.ndarray]:
    """Edges inside Pareto-sized friend circles (uniform within each)."""
    rng = np.random.default_rng(seed)
    sizes: list[int] = []
    remaining = num_vertices
    while remaining > 0:
        size = int(min(remaining, 2 + rng.pareto(1.8) * mean_size))
        sizes.append(size)
        remaining -= size
    sizes_arr = np.asarray(sizes, dtype=np.int64)
    starts = np.zeros(sizes_arr.shape[0] + 1, dtype=np.int64)
    np.cumsum(sizes_arr, out=starts[1:])
    community_of = np.repeat(np.arange(sizes_arr.shape[0]), sizes_arr)

    src = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    comm = community_of[src]
    local = rng.integers(0, np.iinfo(np.int64).max, size=num_edges) % sizes_arr[comm]
    dst = starts[comm] + local
    return src, dst
