"""Vectorized R-MAT (Recursive MATrix) edge generator.

R-MAT [Chakrabarti et al., SDM'04] recursively subdivides the adjacency
matrix into quadrants with probabilities ``(a, b, c, d)`` and samples one
quadrant per bit of the vertex ID.  With the classic skewed parameters it
yields the heavy-tailed degree distributions of social networks; it is
the basis of :mod:`repro.generate.social`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphFormatError

__all__ = ["rmat_edges"]


def rmat_edges(
    scale: int,
    num_edges: int,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample ``num_edges`` directed edges over ``2**scale`` vertices.

    Parameters follow the Graph500 convention: ``d = 1 - a - b - c``.
    The samples may contain duplicates and self-loops; callers clean them
    via :func:`repro.graph.build.build_graph`.

    Returns ``(sources, targets)`` int64 arrays.
    """
    if scale < 0 or scale > 30:
        raise GraphFormatError(f"scale must be in [0, 30], got {scale}")
    if num_edges < 0:
        raise GraphFormatError(f"negative edge count: {num_edges}")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0 or max(a, b, c, d) > 1:
        raise GraphFormatError(f"invalid quadrant probabilities a={a} b={b} c={c}")

    rng = np.random.default_rng(seed)
    sources = np.zeros(num_edges, dtype=np.int64)
    targets = np.zeros(num_edges, dtype=np.int64)
    # One quadrant decision per bit; noise on the probabilities at each
    # level (the standard R-MAT "smoothing") prevents exact self-similar
    # staircases in the degree distribution.
    for level in range(scale):
        noise = rng.uniform(0.95, 1.05, size=4)
        pa, pb, pc, pd = np.array([a, b, c, d]) * noise
        total = pa + pb + pc + pd
        pa, pb, pc = pa / total, pb / total, pc / total
        u = rng.random(num_edges)
        in_b = (u >= pa) & (u < pa + pb)
        in_c = (u >= pa + pb) & (u < pa + pb + pc)
        in_d = u >= pa + pb + pc
        bit = np.int64(1) << np.int64(scale - 1 - level)
        sources += bit * (in_c | in_d)
        targets += bit * (in_b | in_d)
    return sources, targets
