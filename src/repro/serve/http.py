"""Minimal stdlib asyncio HTTP/1.1 layer: parsing, JSON responses, client.

The service speaks a deliberately small subset of HTTP/1.1 — JSON
bodies, ``Content-Length`` framing (no chunked encoding), keep-alive
connections — implemented directly on :func:`asyncio.start_server` so
:mod:`repro.serve` matches the zero-dependency ethos of
:mod:`repro.obs`.  :class:`HttpClient` is the matching keep-alive
client the load harness and tests drive the service with.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Dict, Optional, Tuple

from repro.errors import ServeError

__all__ = [
    "MAX_BODY_BYTES",
    "HttpRequest",
    "HttpResponse",
    "read_request",
    "write_response",
    "start_http_server",
    "HttpClient",
    "request_once",
]

#: Upper bound on request/response bodies — a graph submitted as JSON
#: has no business being bigger than this, and the cap keeps a
#: misbehaving client from ballooning the server.
MAX_BODY_BYTES = 16 << 20

_MAX_LINE_BYTES = 64 << 10

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


@dataclass
class HttpRequest:
    """One parsed request: method, path and a raw (possibly empty) body."""

    method: str
    path: str
    headers: Dict[str, str]
    body: bytes = b""

    def json(self) -> Dict[str, Any]:
        """The body decoded as a JSON object (``{}`` for an empty body)."""
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ServeError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ServeError(
                f"request body must be a JSON object, got {type(payload).__name__}"
            )
        return payload

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


@dataclass
class HttpResponse:
    """A JSON response: status code, payload, and extra headers."""

    status: int
    payload: Dict[str, Any]
    headers: Dict[str, str] = field(default_factory=dict)


async def read_request(reader: asyncio.StreamReader) -> Optional[HttpRequest]:
    """Parse one request off the stream; ``None`` on a clean EOF.

    Malformed framing raises :class:`ServeError`; the connection loop
    answers 400 and closes.
    """
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError) as exc:
        raise ServeError(f"broken request stream: {exc}") from exc
    if not line:
        return None
    if len(line) > _MAX_LINE_BYTES:
        raise ServeError("request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise ServeError(f"malformed request line: {line!r}")
    method, target, _version = parts
    path = target.split("?", 1)[0]
    headers: Dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if not raw:
            raise ServeError("connection closed mid-headers")
        text = raw.decode("latin-1").strip()
        if not text:
            break
        name, sep, value = text.partition(":")
        if not sep:
            raise ServeError(f"malformed header line: {text!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError as exc:
        raise ServeError(f"bad Content-Length: {length_text!r}") from exc
    if length < 0 or length > MAX_BODY_BYTES:
        raise ServeError(f"Content-Length {length} outside [0, {MAX_BODY_BYTES}]")
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise ServeError("connection closed mid-body") from exc
    return HttpRequest(method=method.upper(), path=path, headers=headers, body=body)


async def write_response(
    writer: asyncio.StreamWriter, response: HttpResponse, *, keep_alive: bool
) -> None:
    """Serialize one JSON response with Content-Length framing."""
    body = json.dumps(response.payload, sort_keys=True).encode("utf-8")
    reason = _REASONS.get(response.status, "Unknown")
    lines = [
        f"HTTP/1.1 {response.status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in sorted(response.headers.items()):
        lines.append(f"{name}: {value}")
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
    await writer.drain()


Handler = Callable[[HttpRequest], Awaitable[HttpResponse]]


async def _serve_connection(
    handler: Handler, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> None:
    try:
        while True:
            try:
                request = await read_request(reader)
            except ServeError as exc:
                await write_response(
                    writer,
                    HttpResponse(400, {"error": str(exc)}),
                    keep_alive=False,
                )
                return
            if request is None:
                return
            try:
                response = await handler(request)
            except Exception as exc:  # handler bugs must not kill the server
                response = HttpResponse(
                    500, {"error": f"{type(exc).__name__}: {exc}"}
                )
            keep = request.keep_alive and response.status != 400
            await write_response(writer, response, keep_alive=keep)
            if not keep:
                return
    except ConnectionError:
        return
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def start_http_server(
    handler: Handler, host: str, port: int
) -> Tuple[asyncio.AbstractServer, str, int]:
    """Bind and start serving; returns (server, bound host, bound port).

    ``port=0`` binds an ephemeral port — the returned port is the real
    one, which tests and the in-process benchmark rely on.
    """

    async def connection(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        await _serve_connection(handler, reader, writer)

    server = await asyncio.start_server(connection, host=host, port=port)
    if not server.sockets:
        raise ServeError(f"could not bind {host}:{port}")
    bound_host, bound_port = server.sockets[0].getsockname()[:2]
    return server, str(bound_host), int(bound_port)


class HttpClient:
    """Keep-alive JSON client for one (host, port).

    Lazily connects on first use; :meth:`request` serializes the payload,
    reads the framed response and returns ``(status, payload, headers)``.
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def _ensure_connected(
        self,
    ) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        if self._reader is None or self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )
        return self._reader, self._writer

    async def request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        *,
        close: bool = False,
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        reader, writer = await self._ensure_connected()
        body = b"" if payload is None else json.dumps(payload).encode("utf-8")
        lines = [
            f"{method.upper()} {path} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
            f"Content-Length: {len(body)}",
            "Content-Type: application/json",
        ]
        if close:
            lines.append("Connection: close")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()
        status, response_body, headers = await self._read_response(reader)
        if close or headers.get("connection", "").lower() == "close":
            await self.close()
        if not response_body:
            return status, {}, headers
        try:
            decoded = json.loads(response_body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ServeError(f"response body is not JSON: {exc}") from exc
        if not isinstance(decoded, dict):
            raise ServeError("response body must be a JSON object")
        return status, decoded, headers

    async def _read_response(
        self, reader: asyncio.StreamReader
    ) -> Tuple[int, bytes, Dict[str, str]]:
        line = await reader.readline()
        if not line:
            raise ServeError("server closed the connection before responding")
        parts = line.decode("latin-1").strip().split(None, 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/"):
            raise ServeError(f"malformed status line: {line!r}")
        try:
            status = int(parts[1])
        except ValueError as exc:
            raise ServeError(f"malformed status code: {parts[1]!r}") from exc
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if not raw:
                raise ServeError("connection closed mid-headers")
            text = raw.decode("latin-1").strip()
            if not text:
                break
            name, sep, value = text.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        body = await reader.readexactly(length) if length else b""
        return status, body, headers

    async def close(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._reader = None
        self._writer = None


async def request_once(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Optional[Dict[str, Any]] = None,
) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
    """One request on a fresh connection (convenience for tests/curl-alikes)."""
    client = HttpClient(host, port)
    try:
        return await client.request(method, path, payload, close=True)
    finally:
        await client.close()
