"""``python -m repro.serve`` — boot the service or drive it with load.

Two subcommands::

    python -m repro.serve serve --store /tmp/store --port 8080 --workers 2
    python -m repro.serve load  --port 8080 --requests 128 --concurrency 8

``serve`` runs until interrupted; ``load`` replays a seeded Zipf
request mix against a running server and prints the
throughput/latency/store-hit report as JSON.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import IO, List, Optional, Sequence

from repro.errors import ReproError
from repro.obs import enable as obs_enable
from repro.serve.app import ReorderService
from repro.serve.jobs import JOB_KINDS
from repro.serve.loadgen import LoadSpec, generate_load

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Reordering-as-a-service: HTTP server and Zipf load harness.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    serve = commands.add_parser("serve", help="boot the HTTP service")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080, help="0 = ephemeral")
    serve.add_argument(
        "--store", default=None, metavar="DIR",
        help="artifact store root shared with workers (strongly recommended)",
    )
    serve.add_argument("--workers", type=int, default=2)
    serve.add_argument("--queue-depth", type=int, default=8)
    serve.add_argument(
        "--executor", choices=("process", "thread"), default="process"
    )

    load = commands.add_parser("load", help="drive a running service")
    load.add_argument("--host", default="127.0.0.1")
    load.add_argument("--port", type=int, required=True)
    load.add_argument("--kind", choices=JOB_KINDS, default="simulate")
    load.add_argument("--requests", type=int, default=64)
    load.add_argument("--concurrency", type=int, default=4)
    load.add_argument("--zipf-s", type=float, default=1.1)
    load.add_argument("--seed", type=int, default=0)
    load.add_argument(
        "--dataset", action="append", default=None, metavar="NAME",
        help="restrict the mix (repeatable; default: first four mini datasets)",
    )
    load.add_argument(
        "--algorithm", action="append", default=None, metavar="NAME",
        help="restrict the mix (repeatable; default: identity/degree/hubsort)",
    )
    return parser


async def _serve(args: argparse.Namespace, out: IO[str]) -> int:
    service = ReorderService(
        store_root=args.store,
        max_workers=args.workers,
        max_queue_depth=args.queue_depth,
        executor=args.executor,
    )
    host, port = await service.start(args.host, args.port)
    out.write(
        json.dumps(
            {
                "listening": f"http://{host}:{port}",
                "store": args.store,
                "workers": args.workers,
                "queue_depth": args.queue_depth,
                "executor": args.executor,
            }
        )
        + "\n"
    )
    out.flush()
    try:
        await service.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await service.stop()
    return 0


def main(argv: Optional[Sequence[str]] = None, out: IO[str] = sys.stdout) -> int:
    args = _build_parser().parse_args(argv)
    obs_enable()
    try:
        if args.command == "serve":
            try:
                return asyncio.run(_serve(args, out))
            except KeyboardInterrupt:
                return 0
        datasets: List[str] = args.dataset or []
        algorithms: List[str] = args.algorithm or []
        spec = LoadSpec(
            datasets=tuple(datasets),
            algorithms=tuple(algorithms),
            kind=args.kind,
            zipf_s=args.zipf_s,
            num_requests=args.requests,
            concurrency=args.concurrency,
            seed=args.seed,
        )
        result = generate_load(args.host, args.port, spec)
        out.write(json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n")
        return 0 if result.failed == 0 else 1
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
