"""Zipf-distributed synthetic traffic for the reordering service.

Real request streams are skewed: a handful of (graph, algorithm) pairs
dominate while a long tail appears once.  The generator ranks every
``dataset x algorithm`` combination and draws requests from a Zipf
law over ranks (``p_i ~ (i+1)^-s``), seeded — the same spec always
produces the same request sequence, so cold-vs-warm comparisons replay
identical traffic.

:func:`run_load` drives the service with a fixed-size pool of
keep-alive clients and reports throughput, nearest-rank latency
percentiles (the same :func:`repro.obs.metrics.percentiles` definition
the server's histograms use) and the store-hit ratio observed across
responses.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ServeError
from repro.generate.datasets import dataset_names
from repro.obs.metrics import percentiles
from repro.reorder import algorithm_names
from repro.serve.http import HttpClient
from repro.serve.jobs import JOB_KINDS

__all__ = ["LoadSpec", "LoadResult", "zipf_requests", "run_load", "generate_load"]

#: How many times one request is re-tried after 429 before being
#: counted as failed (each retry honours the server's Retry-After,
#: capped so a short load run cannot stall forever).
_MAX_RETRIES = 100

_MAX_RETRY_SLEEP_S = 0.5


@dataclass(frozen=True)
class LoadSpec:
    """One reproducible traffic mix."""

    datasets: Tuple[str, ...] = ()
    algorithms: Tuple[str, ...] = ()
    kind: str = "simulate"
    zipf_s: float = 1.1
    num_requests: int = 64
    concurrency: int = 4
    seed: int = 0

    def resolved(self) -> "LoadSpec":
        """Fill empty dataset/algorithm tuples from the registries."""
        datasets = self.datasets or tuple(dataset_names(tier="mini")[:4])
        algorithms = self.algorithms or ("identity", "degree", "hubsort")
        return LoadSpec(
            datasets=datasets,
            algorithms=algorithms,
            kind=self.kind,
            zipf_s=self.zipf_s,
            num_requests=self.num_requests,
            concurrency=self.concurrency,
            seed=self.seed,
        )

    def validate(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ServeError(
                f"load kind {self.kind!r} must be one of {JOB_KINDS}"
            )
        if self.zipf_s <= 0:
            raise ServeError(f"zipf_s must be > 0, got {self.zipf_s}")
        if self.num_requests < 1:
            raise ServeError(f"num_requests must be >= 1, got {self.num_requests}")
        if self.concurrency < 1:
            raise ServeError(f"concurrency must be >= 1, got {self.concurrency}")
        unknown_algorithms = set(self.algorithms) - set(algorithm_names())
        if unknown_algorithms:
            raise ServeError(
                f"unknown algorithm(s) in load spec: {sorted(unknown_algorithms)}"
            )
        unknown_datasets = set(self.datasets) - set(dataset_names(tier="all"))
        if unknown_datasets:
            raise ServeError(
                f"unknown dataset(s) in load spec: {sorted(unknown_datasets)}"
            )


def zipf_requests(spec: LoadSpec) -> List[Dict[str, Any]]:
    """The spec's deterministic request payload sequence.

    Combinations are ranked dataset-major, and rank *i* is drawn with
    probability proportional to ``(i + 1) ** -zipf_s``.  A fixed seed
    fixes the whole sequence.
    """
    spec = spec.resolved()
    spec.validate()
    combos = [
        {"dataset": dataset, "algorithm": algorithm}
        for dataset in spec.datasets
        for algorithm in spec.algorithms
    ]
    weights = np.arange(1, len(combos) + 1, dtype=np.float64) ** -float(spec.zipf_s)
    probabilities = weights / weights.sum()
    rng = np.random.default_rng(spec.seed)
    draws = rng.choice(len(combos), size=spec.num_requests, p=probabilities)
    return [dict(combos[int(index)]) for index in draws]


@dataclass
class LoadResult:
    """Aggregate outcome of one load run."""

    spec: LoadSpec
    duration_s: float = 0.0
    completed: int = 0
    failed: int = 0
    retries_429: int = 0
    coalesced: int = 0
    stage_hits: int = 0
    stage_computed: int = 0
    latencies_ms: List[float] = field(default_factory=list)

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def store_hit_ratio(self) -> float:
        touched = self.stage_hits + self.stage_computed
        return self.stage_hits / touched if touched else 0.0

    def latency_percentiles(self) -> Dict[str, float]:
        if not self.latencies_ms:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        return percentiles(self.latencies_ms)

    def to_dict(self) -> Dict[str, Any]:
        quantiles = self.latency_percentiles()
        return {
            "kind": self.spec.kind,
            "num_requests": self.spec.num_requests,
            "concurrency": self.spec.concurrency,
            "zipf_s": self.spec.zipf_s,
            "seed": self.spec.seed,
            "duration_s": round(self.duration_s, 4),
            "completed": self.completed,
            "failed": self.failed,
            "retries_429": self.retries_429,
            "coalesced": self.coalesced,
            "stage_hits": self.stage_hits,
            "stage_computed": self.stage_computed,
            "store_hit_ratio": round(self.store_hit_ratio, 4),
            "throughput_rps": round(self.throughput_rps, 2),
            "latency_ms": {
                name: round(value, 3) for name, value in quantiles.items()
            },
        }


async def _drive_one(
    client: HttpClient,
    path: str,
    payload: Dict[str, Any],
    result: LoadResult,
) -> None:
    loop = asyncio.get_running_loop()
    for _attempt in range(_MAX_RETRIES):
        started = loop.time()
        status, body, _headers = await client.request("POST", path, payload)
        elapsed_ms = (loop.time() - started) * 1e3
        if status == 429:
            result.retries_429 += 1
            retry_after = float(body.get("retry_after_s", 0.1))
            await asyncio.sleep(min(_MAX_RETRY_SLEEP_S, max(0.01, retry_after)))
            continue
        if status != 200:
            result.failed += 1
            return
        result.completed += 1
        result.latencies_ms.append(elapsed_ms)
        if body.get("coalesced"):
            result.coalesced += 1
        else:
            stages = body.get("stages", {})
            result.stage_hits += int(stages.get("hits", 0))
            result.stage_computed += int(stages.get("computed", 0))
        return
    result.failed += 1


async def run_load(host: str, port: int, spec: LoadSpec) -> LoadResult:
    """Replay the spec's request sequence with ``spec.concurrency`` clients."""
    spec = spec.resolved()
    requests = zipf_requests(spec)
    result = LoadResult(spec=spec)
    queue: "asyncio.Queue[Optional[Dict[str, Any]]]" = asyncio.Queue()
    for payload in requests:
        queue.put_nowait(payload)
    for _ in range(spec.concurrency):
        queue.put_nowait(None)
    path = f"/{spec.kind}"

    async def worker() -> None:
        client = HttpClient(host, port)
        try:
            while True:
                payload = await queue.get()
                if payload is None:
                    return
                await _drive_one(client, path, payload, result)
        finally:
            await client.close()

    started = time.perf_counter()
    await asyncio.gather(*(worker() for _ in range(spec.concurrency)))
    result.duration_s = time.perf_counter() - started
    return result


def generate_load(host: str, port: int, spec: LoadSpec) -> LoadResult:
    """Synchronous entry point for the CLI and benchmarks."""
    return asyncio.run(run_load(host, port, spec))
