"""The reordering service: routing, coalescing, admission, metrics.

Request lifecycle for the three job endpoints::

    POST body --canonical_job--> job dict --job_fingerprint--> key
        |                                                       |
        |            +--- in flight for key? ---> await leader's future
        |            |                            (serve.coalesced)
        +---> SingleFlight
                     |
                     +--- WorkerPool.submit(execute_job, job, store_root)
                             |           (429 + Retry-After when saturated)
                             +---> content-addressed store (cross-time dedup)

Coalescing is checked *before* admission on purpose: a burst of
identical requests against a saturated server still collapses to the
one in-flight computation instead of being bounced 429 one by one.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional, Tuple

from repro.errors import ServeError, ServiceSaturatedError
from repro.obs import metrics
from repro.serve.coalesce import SingleFlight
from repro.serve.http import (
    HttpRequest,
    HttpResponse,
    start_http_server,
)
from repro.serve.jobs import JOB_KINDS, canonical_job, job_fingerprint
from repro.serve.pool import WorkerPool
from repro.serve.worker import execute_job
from repro.store.store import ArtifactStore

__all__ = ["ReorderService"]

_HEX = set("0123456789abcdef")


class ReorderService:
    """One service instance: a worker pool, a single-flight table, a store.

    The store root is shared with the worker processes — it *is* the
    response cache.  Boot one with :meth:`start` (``port=0`` for an
    ephemeral port), stop with :meth:`stop`.
    """

    def __init__(
        self,
        *,
        store_root: Optional[str] = None,
        max_workers: int = 2,
        max_queue_depth: int = 8,
        executor: str = "process",
    ) -> None:
        self.store_root = store_root
        self.store = ArtifactStore(store_root) if store_root is not None else None
        self.pool = WorkerPool(
            max_workers=max_workers,
            max_queue_depth=max_queue_depth,
            executor=executor,
        )
        self.flights = SingleFlight()
        self._server: Optional[asyncio.AbstractServer] = None
        self.host: Optional[str] = None
        self.port: Optional[int] = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Bind and begin serving; returns the bound (host, port)."""
        if self._server is not None:
            raise ServeError("service already started")
        self._server, self.host, self.port = await start_http_server(
            self.handle, host, port
        )
        return self.host, self.port

    async def serve_forever(self) -> None:
        if self._server is None:
            raise ServeError("service not started; call start() first")
        await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.pool.shutdown()

    # -- routing -------------------------------------------------------------

    async def handle(self, request: HttpRequest) -> HttpResponse:
        """Route one request; every error is a structured JSON response."""
        metrics.registry.counter("serve.requests").inc()
        try:
            return await self._route(request)
        except ServiceSaturatedError as exc:
            metrics.registry.counter("serve.rejected").inc()
            return HttpResponse(
                429,
                {"error": str(exc), "retry_after_s": exc.retry_after_s},
                headers={"Retry-After": f"{exc.retry_after_s:g}"},
            )
        except ServeError as exc:
            metrics.registry.counter("serve.bad_requests").inc()
            return HttpResponse(400, {"error": str(exc)})
        except Exception as exc:
            metrics.registry.counter("serve.errors").inc()
            return HttpResponse(500, {"error": f"{type(exc).__name__}: {exc}"})

    async def _route(self, request: HttpRequest) -> HttpResponse:
        path = request.path.rstrip("/") or "/"
        if request.method == "POST":
            kind = path.lstrip("/")
            if kind in JOB_KINDS:
                return await self._job_endpoint(kind, request)
            return HttpResponse(404, {"error": f"no POST endpoint {path!r}"})
        if request.method == "GET":
            if path == "/healthz":
                return self._healthz()
            if path == "/metrics":
                return HttpResponse(200, {"metrics": metrics.registry.snapshot()})
            if path.startswith("/artifacts/"):
                return self._artifact(path[len("/artifacts/"):])
            return HttpResponse(404, {"error": f"no GET endpoint {path!r}"})
        return HttpResponse(
            405, {"error": f"method {request.method} not supported"}
        )

    # -- job endpoints -------------------------------------------------------

    async def _job_endpoint(self, kind: str, request: HttpRequest) -> HttpResponse:
        job = canonical_job(request.json(), kind=kind)
        key = job_fingerprint(job)
        metrics.registry.counter(f"serve.{kind}.requests").inc()
        loop = asyncio.get_running_loop()
        started = loop.time()

        async def compute() -> Dict[str, Any]:
            return await self.pool.submit(execute_job, job, self.store_root)

        outcome, coalesced = await self.flights.do(key, compute)
        elapsed_ms = (loop.time() - started) * 1e3
        metrics.registry.histogram(f"serve.{kind}.latency_ms").observe(elapsed_ms)
        if coalesced:
            metrics.registry.counter("serve.coalesced").inc()
        else:
            stages = outcome.get("stages", {})
            metrics.registry.counter("serve.stage_hits").inc(
                int(stages.get("hits", 0))
            )
            metrics.registry.counter("serve.stage_computed").inc(
                int(stages.get("computed", 0))
            )
        payload = dict(outcome)
        payload["fingerprint"] = key
        payload["coalesced"] = coalesced
        return HttpResponse(200, payload)

    # -- read-only endpoints -------------------------------------------------

    def _healthz(self) -> HttpResponse:
        return HttpResponse(
            200,
            {
                "status": "ok",
                "in_flight": self.pool.in_flight,
                "capacity": self.pool.capacity,
                "coalescing_keys": self.flights.in_flight(),
                "store": self.store_root,
            },
        )

    def _artifact(self, key_prefix: str) -> HttpResponse:
        if self.store is None:
            return HttpResponse(
                404, {"error": "service running without an artifact store"}
            )
        prefix = key_prefix.strip().lower()
        if len(prefix) < 8 or not set(prefix) <= _HEX:
            raise ServeError(
                "artifact keys are hex strings of at least 8 characters"
            )
        infos = self.store.find(prefix)
        if not infos:
            return HttpResponse(
                404, {"error": f"no artifact with key prefix {prefix!r}"}
            )
        return HttpResponse(
            200,
            {
                "artifacts": [
                    {
                        "key": info.key,
                        "kind": info.kind,
                        "size_bytes": int(info.size_bytes),
                        "created_at": float(info.created_at),
                        "checksum": info.checksum,
                        "provenance": info.provenance,
                    }
                    for info in infos
                ]
            },
        )
