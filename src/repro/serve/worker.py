"""Worker-side job execution: the replay-safe process-pool entry point.

:func:`execute_job` is what the service's bounded worker pool runs.  It
mirrors ``run_experiments(executor="process")`` (the harness's process
fan-out): each worker rebuilds a store-backed
:class:`~repro.bench.workloads.Workloads` cache, and the
content-addressed store is the sharing mechanism — identical jobs
across workers, requests, or server restarts resolve to warm artifacts
with zero recomputation.

The entry point is listed under ``effects-replay-safe`` in
``[tool.repro-lint]``, so RL007 audits it like the shard workers:
re-running a job must be undetectable.  The effects it reaches are
declared on :func:`_run_pipeline` and are replay-safe by construction:
store writes are content-addressed and atomic (a re-run rewrites
identical bytes), clock readings land only in provenance sidecars and
manifests, the single environment read (``REPRO_SCALE``) participates
in every content key, and the uuid draws name scratch files and run
ids only.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Optional

import numpy as np

from repro.bench.workloads import Workloads
from repro.core.aid import aid_degree_distribution, aid_per_vertex
from repro.core.ecs import ECSMeasurement, ecs_from_result
from repro.core.missdist import miss_rate_degree_distribution
from repro.errors import ServeError
from repro.generate.datasets import scale_factor
from repro.graph.graph import Graph
from repro.lint.contracts import declares_effects
from repro.reorder import ReorderResult, get_algorithm
from repro.serve.jobs import JOB_KINDS
from repro.sim.simulator import SimulationConfig, SimulationResult, simulate_spmv
from repro.store.memo import cached_stage
from repro.store.serializers import StoredSimulation
from repro.store.store import ArtifactStore

__all__ = ["execute_job"]

#: Code scope of the serve-owned stages below — the same modules the
#: workloads stages version, so serve artifacts self-invalidate on the
#: same edits.
_STAGE_CODE = ("repro.generate", "repro.graph", "repro.reorder", "repro.sim")


# -- serve-owned cached stages ----------------------------------------------
#
# Reorder jobs on registry datasets flow through the *workloads* stages
# (shared with the experiment harness, so a benchmark's artifacts warm
# the service and vice versa).  Jobs that differ from the harness's
# fixed simulation shape — a chosen policy/pressure, or a graph
# submitted by fingerprint — get their own stages with those choices in
# the key, because the workloads keys do not carry them.


@cached_stage(
    "reordering",
    code=_STAGE_CODE,
    key=lambda graph, graph_key, algorithm, params: {
        "graph_fingerprint": graph_key,
        "algorithm": algorithm,
        "params": params,
    },
)
def _stored_reordering_stage(
    graph: Graph, graph_key: str, algorithm: str, params: Dict[str, Any]
) -> ReorderResult:
    return get_algorithm(algorithm, **params)(graph)


@cached_stage(
    "reordered-graph",
    code=_STAGE_CODE,
    key=lambda graph, result, graph_key, algorithm, params: {
        "graph_fingerprint": graph_key,
        "algorithm": algorithm,
        "params": params,
    },
)
def _stored_reordered_graph_stage(
    graph: Graph,
    result: ReorderResult,
    graph_key: str,
    algorithm: str,
    params: Dict[str, Any],
) -> Graph:
    return result.apply(graph)


@cached_stage(
    "simulation",
    code=_STAGE_CODE,
    key=lambda graph, config, identity: {**identity, "scale": scale_factor()},
    encode=StoredSimulation.from_result,
    decode=lambda stored, graph, config, identity: stored.to_result(graph, config),
)
def _serve_simulation_stage(
    graph: Graph, config: SimulationConfig, identity: Dict[str, Any]
) -> SimulationResult:
    return simulate_spmv(graph, config)


# -- graph resolution --------------------------------------------------------


def _stored_graph(workloads: Workloads, graph_key: str) -> Graph:
    store = workloads.store
    if store is None:
        raise ServeError(
            "graph-by-fingerprint jobs need a server-side artifact store"
        )
    graph = store.get(graph_key, "graph")
    if graph is None:
        raise ServeError(f"no stored graph artifact with key {graph_key!r}")
    return graph


def _reordered_graph(workloads: Workloads, job: Dict[str, Any]) -> Graph:
    dataset = job.get("dataset")
    algorithm = job["algorithm"]
    params: Dict[str, Any] = job["params"]
    if dataset is not None:
        return workloads.reordered_graph(dataset, algorithm, **params)
    graph_key: str = job["graph_fingerprint"]
    graph = _stored_graph(workloads, graph_key)
    if algorithm == "identity":
        return graph
    result = _stored_reordering_stage(
        graph, graph_key, algorithm, params, **_stage_kwargs(workloads)
    )
    return _stored_reordered_graph_stage(
        graph, result, graph_key, algorithm, params, **_stage_kwargs(workloads)
    )


def _stage_kwargs(workloads: Workloads) -> Dict[str, Any]:
    return {
        "store": workloads.store,
        "refresh": False,
        "manifest": workloads.manifest,
    }


def _scan_config(
    graph: Graph, *, policy: str, direction: str, pressure: float
) -> SimulationConfig:
    """The job's cache geometry, with ECS scans enabled (DESIGN.md §13)."""
    base = SimulationConfig.scaled_for(
        graph, direction=direction, policy=policy, pressure=pressure
    )
    approx_len = graph.num_edges + graph.num_vertices // 4
    return SimulationConfig(
        cache=base.cache,
        tlb=base.tlb,
        num_threads=base.num_threads,
        interleave_interval=base.interleave_interval,
        scan_interval=max(1, approx_len // 64),
        direction=base.direction,
        promote_sequential=base.promote_sequential,
        timing=base.timing,
    )


def _simulation(workloads: Workloads, job: Dict[str, Any]) -> SimulationResult:
    graph = _reordered_graph(workloads, job)
    config = _scan_config(
        graph,
        policy=job["policy"],
        direction=job["direction"],
        pressure=job["pressure"],
    )
    identity = {
        "graph": job.get("dataset") or job["graph_fingerprint"],
        "algorithm": job["algorithm"],
        "params": job["params"],
        "policy": job["policy"],
        "direction": job["direction"],
        "pressure": job["pressure"],
    }
    return _serve_simulation_stage(
        graph, config, identity, **_stage_kwargs(workloads)
    )


# -- per-kind responses ------------------------------------------------------


def _reorder_response(workloads: Workloads, job: Dict[str, Any]) -> Dict[str, Any]:
    dataset = job.get("dataset")
    algorithm = job["algorithm"]
    params: Dict[str, Any] = job["params"]
    if dataset is not None:
        result = workloads.reordering(dataset, algorithm, **params)
    else:
        graph_key: str = job["graph_fingerprint"]
        graph = _stored_graph(workloads, graph_key)
        if algorithm == "identity":
            result = ReorderResult(
                algorithm="identity",
                relabeling=np.arange(graph.num_vertices, dtype=np.int64),
                preprocessing_seconds=0.0,
            )
        else:
            result = _stored_reordering_stage(
                graph, graph_key, algorithm, params, **_stage_kwargs(workloads)
            )
    order = np.ascontiguousarray(result.relabeling)
    payload: Dict[str, Any] = {
        "algorithm": result.algorithm,
        "num_vertices": int(order.size),
        "preprocessing_seconds": float(result.preprocessing_seconds),
        "order_sha256": hashlib.sha256(order.tobytes()).hexdigest(),
    }
    if job["include_order"]:
        payload["order"] = order.tolist()
    return payload


def _ecs_payload(ecs: ECSMeasurement) -> Dict[str, Any]:
    return {
        "average_percent": float(ecs.average_percent),
        "final_percent": float(ecs.final_percent),
        "samples_percent": [float(v) for v in ecs.samples],
    }


def _simulate_response(workloads: Workloads, job: Dict[str, Any]) -> Dict[str, Any]:
    sim = _simulation(workloads, job)
    curve = miss_rate_degree_distribution(sim)
    centers, rates = curve.series()
    return {
        "num_accesses": int(sim.num_accesses),
        "l3_misses": int(sim.l3_misses),
        "tlb_misses": int(sim.tlb_misses),
        "miss_rate_percent": float(curve.overall_miss_rate_percent),
        "miss_rate_by_degree": {
            "degree": [float(v) for v in centers],
            "miss_rate_percent": [float(v) for v in rates],
        },
        "ecs": _ecs_payload(ecs_from_result(sim)),
    }


def _analyze_response(workloads: Workloads, job: Dict[str, Any]) -> Dict[str, Any]:
    graph = _reordered_graph(workloads, job)
    aid_direction = "in" if job["direction"] == "pull" else "out"
    aid = aid_per_vertex(graph, direction=aid_direction)
    distribution = aid_degree_distribution(graph, direction=aid_direction)
    centers, mean_aid = distribution.series()
    sim = _simulation(workloads, job)
    finite = aid[np.isfinite(aid)]
    return {
        "num_vertices": int(graph.num_vertices),
        "num_edges": int(graph.num_edges),
        "aid": {
            "direction": aid_direction,
            "mean": float(finite.mean()) if finite.size else 0.0,
            "by_degree": {
                "degree": [float(v) for v in centers],
                "mean_aid": [float(v) for v in mean_aid],
            },
        },
        "miss_rate_percent": float(100.0 * sim.l3_misses / max(1, sim.num_accesses)),
        "ecs": _ecs_payload(ecs_from_result(sim)),
    }


# -- entry point -------------------------------------------------------------


@declares_effects("time", "rng-unseeded", "env-read", "dict-order-sensitive")
def _workloads_for(store_root: Optional[str]) -> Workloads:
    """Fresh worker-side workload cache over the shared store.

    Declared carve-outs: the run manifest draws a wall-clock stamp and a
    uuid for its *run id*, and the environment snapshot reads platform
    facts — provenance metadata only, never content.  One cache per job
    keeps workers stateless; artifact reuse lives entirely in the store.
    """
    store = ArtifactStore(store_root) if store_root is not None else None
    return Workloads(store=store)


@declares_effects(
    "time", "rng-unseeded", "env-read", "fs-write", "global-mutate",
    "thread-spawn", "dict-order-sensitive", "float-reduction-order",
)
def _run_pipeline(workloads: Workloads, job: Dict[str, Any]) -> Dict[str, Any]:
    """Dispatch one canonical job through the store-backed stages.

    Declared carve-outs, each replay-safe: ``fs-write`` is the
    content-addressed store committing artifacts (atomic, idempotent —
    a replay rewrites identical bytes); ``time``/``rng-unseeded`` are
    provenance clocks and scratch-file tokens; ``env-read`` is
    ``REPRO_SCALE``, fingerprinted into every key; the remaining bits
    are the simulator's internal bookkeeping, bit-exact by the
    kernel-equivalence and shard property suites.
    """
    kind = job["kind"]
    if kind == "reorder":
        return _reorder_response(workloads, job)
    if kind == "simulate":
        return _simulate_response(workloads, job)
    if kind == "analyze":
        return _analyze_response(workloads, job)
    raise ServeError(f"unknown job kind {kind!r}; expected one of {JOB_KINDS}")


def execute_job(job: Dict[str, Any], store_root: Optional[str]) -> Dict[str, Any]:
    """Process-pool entry point: run one canonical job to a JSON response.

    Returns the per-kind ``result`` plus stage accounting (store hits
    vs. computed) and the content keys of every artifact the job
    touched, so clients can ``GET /artifacts/<key>`` or resubmit a
    graph by fingerprint.
    """
    workloads = _workloads_for(store_root)
    result = _run_pipeline(workloads, job)
    manifest = workloads.manifest
    artifacts: Dict[str, str] = {}
    for record in manifest.records:
        if record.key and record.stage not in artifacts:
            artifacts[record.stage] = record.key
    return {
        "result": result,
        "stages": {
            "hits": manifest.hit_count(),
            "computed": manifest.computed_count(),
        },
        "artifacts": artifacts,
    }
