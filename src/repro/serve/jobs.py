"""Job specs: validation, canonicalization and fingerprinting.

A serving job is a plain JSON object.  :func:`canonical_job` validates
a request payload and fills every default so that all equivalent
requests produce the *same* canonical dict, and :func:`job_fingerprint`
hashes that dict — together with the ``REPRO_SCALE`` factor and the
producing code version — into the key that names the computation.

That one key drives the whole service: in-flight coalescing
(single-flight per fingerprint), response identity (two requests with
equal fingerprints receive byte-identical results) and artifact lookup
all share the same notion of "the same job" the content-addressed
store uses for "the same artifact".
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.errors import ReorderingError, ServeError
from repro.generate.datasets import dataset_names, scale_factor
from repro.reorder import algorithm_names, get_algorithm
from repro.store.fingerprint import code_version, fingerprint

__all__ = [
    "JOB_KINDS",
    "POLICIES",
    "DIRECTIONS",
    "JOB_CODE_MODULES",
    "canonical_job",
    "job_fingerprint",
]

#: The three computation shapes the service exposes, one per endpoint.
JOB_KINDS = ("reorder", "simulate", "analyze")

#: Replacement policies the simulator accepts (DESIGN.md §2/§7).
POLICIES = ("lru", "srrip", "brrip", "drrip")

DIRECTIONS = ("pull", "push")

#: Modules whose source text versions every serve response: bumping any
#: of them changes all job fingerprints, so a redeployed server never
#: serves stale coalesced identities for changed code (stored stage
#: artifacts carry their own, finer-grained code versions).
JOB_CODE_MODULES = (
    "repro.generate",
    "repro.graph",
    "repro.reorder",
    "repro.sim",
    "repro.serve",
)

#: Fields accepted per job kind (everything else is a 400, catching
#: typos like "dataest" before they silently select defaults).
_COMMON_FIELDS = ("kind", "dataset", "graph_fingerprint", "algorithm", "params")
_FIELDS_BY_KIND = {
    "reorder": _COMMON_FIELDS + ("include_order",),
    "simulate": _COMMON_FIELDS + ("policy", "direction", "pressure"),
    "analyze": _COMMON_FIELDS + ("policy", "direction", "pressure"),
}

_MAX_PARAMS = 16


def _require_str(payload: Dict[str, Any], field: str) -> Optional[str]:
    value = payload.get(field)
    if value is None:
        return None
    if not isinstance(value, str) or not value:
        raise ServeError(f"{field!r} must be a non-empty string, got {value!r}")
    return value


def _check_params(raw: Any) -> Dict[str, Any]:
    if raw is None:
        return {}
    if not isinstance(raw, dict):
        raise ServeError(f"'params' must be a JSON object, got {type(raw).__name__}")
    if len(raw) > _MAX_PARAMS:
        raise ServeError(f"'params' carries {len(raw)} entries (max {_MAX_PARAMS})")
    out: Dict[str, Any] = {}
    for key in sorted(raw):
        value = raw[key]
        if not isinstance(key, str):
            raise ServeError(f"'params' keys must be strings, got {key!r}")
        if not isinstance(value, (bool, int, float, str)):
            raise ServeError(
                f"'params.{key}' must be a JSON scalar, got {type(value).__name__}"
            )
        out[key] = value
    return out


def _check_choice(name: str, value: Any, choices: Tuple[str, ...]) -> str:
    if value not in choices:
        raise ServeError(f"{name!r} must be one of {list(choices)}, got {value!r}")
    return str(value)


def canonical_job(payload: Dict[str, Any], *, kind: str) -> Dict[str, Any]:
    """Validate one request payload into its canonical job dict.

    The result is fully defaulted and key-sorted-stable, so two payloads
    describing the same computation canonicalize identically — the
    property fingerprint-keyed coalescing rests on.  Raises
    :class:`ServeError` (HTTP 400) on any validation failure.
    """
    if kind not in JOB_KINDS:
        raise ServeError(f"unknown job kind {kind!r}; expected one of {JOB_KINDS}")
    if not isinstance(payload, dict):
        raise ServeError("job payload must be a JSON object")
    allowed = _FIELDS_BY_KIND[kind]
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise ServeError(
            f"unknown field(s) {unknown} for a {kind} job; accepted: {list(allowed)}"
        )
    declared_kind = payload.get("kind")
    if declared_kind is not None and declared_kind != kind:
        raise ServeError(
            f"payload kind {declared_kind!r} does not match the {kind} endpoint"
        )

    dataset = _require_str(payload, "dataset")
    graph_fingerprint = _require_str(payload, "graph_fingerprint")
    if (dataset is None) == (graph_fingerprint is None):
        raise ServeError(
            "a job names exactly one graph source: 'dataset' (registry name) "
            "or 'graph_fingerprint' (a graph artifact already in the store)"
        )
    if dataset is not None and dataset not in dataset_names(tier="all"):
        raise ServeError(
            f"unknown dataset {dataset!r}; available: {dataset_names(tier='all')}"
        )
    if graph_fingerprint is not None and len(graph_fingerprint) != 64:
        raise ServeError(
            "'graph_fingerprint' must be a full 64-hex-digit artifact key"
        )

    algorithm = _require_str(payload, "algorithm") or "identity"
    if algorithm not in algorithm_names():
        raise ServeError(
            f"unknown algorithm {algorithm!r}; available: {algorithm_names()}"
        )
    params = _check_params(payload.get("params"))
    # The worker runs get_algorithm(algorithm, **params); construct it here
    # so bad params (unknown kwarg, invalid value, bad composite inner) are
    # a 400 at admission, not a 500 out of the worker.  Constructors only
    # validate and store parameters, so this is cheap.
    try:
        get_algorithm(algorithm, **params)
    except (ReorderingError, TypeError) as exc:
        raise ServeError(
            f"invalid params for algorithm {algorithm!r}: {exc}"
        ) from exc

    job: Dict[str, Any] = {
        "kind": kind,
        "dataset": dataset,
        "graph_fingerprint": graph_fingerprint,
        "algorithm": algorithm,
        "params": params,
    }
    if kind == "reorder":
        include_order = payload.get("include_order", False)
        if not isinstance(include_order, bool):
            raise ServeError(
                f"'include_order' must be a boolean, got {include_order!r}"
            )
        job["include_order"] = include_order
    else:
        job["policy"] = _check_choice(
            "policy", payload.get("policy", "drrip"), POLICIES
        )
        job["direction"] = _check_choice(
            "direction", payload.get("direction", "pull"), DIRECTIONS
        )
        pressure = payload.get("pressure", 0.08)
        if isinstance(pressure, bool) or not isinstance(pressure, (int, float)):
            raise ServeError(f"'pressure' must be a number, got {pressure!r}")
        if not 0.0 < float(pressure) <= 1.0:
            raise ServeError(f"'pressure' must be in (0, 1], got {pressure}")
        job["pressure"] = float(pressure)
    return job


def job_fingerprint(job: Dict[str, Any]) -> str:
    """The content key of one canonical job.

    ``REPRO_SCALE`` joins the material (two differently scaled registries
    must never coalesce) and the code version covers every module that
    shapes the response, so fingerprints self-invalidate across code
    changes exactly like store keys do.
    """
    material = dict(job)
    material["scale"] = scale_factor()
    return fingerprint("serve-job", material, code_version(*JOB_CODE_MODULES))
