"""repro.serve — reordering-as-a-service (DESIGN.md §13).

An asyncio HTTP service over the experiment pipeline: jobs canonicalize
to content-addressed fingerprints, concurrent identical requests
coalesce onto one in-flight computation, a bounded worker pool applies
admission control (429 + Retry-After when saturated), and the artifact
store doubles as the response cache shared across workers and restarts.
Ships with a seeded Zipf load harness (:mod:`repro.serve.loadgen`).
"""

from __future__ import annotations

from repro.serve.app import ReorderService
from repro.serve.coalesce import SingleFlight
from repro.serve.http import HttpClient, HttpRequest, HttpResponse, request_once
from repro.serve.jobs import (
    DIRECTIONS,
    JOB_KINDS,
    POLICIES,
    canonical_job,
    job_fingerprint,
)
from repro.serve.loadgen import LoadResult, LoadSpec, generate_load, run_load, zipf_requests
from repro.serve.pool import WorkerPool
from repro.serve.worker import execute_job

__all__ = [
    "ReorderService",
    "SingleFlight",
    "WorkerPool",
    "HttpClient",
    "HttpRequest",
    "HttpResponse",
    "request_once",
    "JOB_KINDS",
    "POLICIES",
    "DIRECTIONS",
    "canonical_job",
    "job_fingerprint",
    "LoadSpec",
    "LoadResult",
    "zipf_requests",
    "run_load",
    "generate_load",
    "execute_job",
]
