"""Bounded worker pool with queue-depth admission control.

The pool wraps a :mod:`concurrent.futures` executor (process by
default, mirroring ``run_experiments(executor="process")``; thread for
tests and single-process deployments) behind an explicit admission
gate: at most ``max_workers`` jobs run while ``max_queue_depth`` more
may wait.  A job arriving beyond that capacity is *rejected
immediately* with :class:`~repro.errors.ServiceSaturatedError` — the
service answers 429 with a ``Retry-After`` estimated from recent
service times, instead of building an unbounded queue whose tail
latency nobody asked for.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Optional

from repro.errors import ServeError, ServiceSaturatedError
from repro.obs import metrics

__all__ = ["WorkerPool"]

#: Smoothing factor for the exponentially weighted moving average of
#: per-job service time that prices ``Retry-After``.
_EWMA_ALPHA = 0.3

_DEFAULT_SERVICE_S = 1.0


class WorkerPool:
    """Admission-controlled bridge from the event loop to an executor.

    ``submit`` raises :class:`ServiceSaturatedError` once
    ``max_workers + max_queue_depth`` jobs are in flight; otherwise it
    awaits the job on the executor and feeds its duration into the
    Retry-After estimate.
    """

    def __init__(
        self,
        *,
        max_workers: int = 2,
        max_queue_depth: int = 8,
        executor: str = "process",
    ) -> None:
        if max_workers < 1:
            raise ServeError(f"max_workers must be >= 1, got {max_workers}")
        if max_queue_depth < 0:
            raise ServeError(
                f"max_queue_depth must be >= 0, got {max_queue_depth}"
            )
        if executor not in ("process", "thread"):
            raise ServeError(
                f"executor must be 'process' or 'thread', got {executor!r}"
            )
        self.max_workers = max_workers
        self.max_queue_depth = max_queue_depth
        self.executor_kind = executor
        self._executor: Optional[Executor] = None
        self._in_flight = 0
        self._ewma_service_s = _DEFAULT_SERVICE_S
        self._depth_gauge = metrics.registry.gauge("serve.pool.in_flight")

    # -- capacity accounting -------------------------------------------------

    @property
    def capacity(self) -> int:
        return self.max_workers + self.max_queue_depth

    @property
    def in_flight(self) -> int:
        return self._in_flight

    def retry_after_s(self) -> float:
        """Seconds until a queue slot plausibly frees up.

        The wait to clear one queued job is roughly one EWMA service
        time per job ahead of it per worker, floored at one second so
        well-behaved clients do not hammer a briefly saturated server.
        """
        queued = max(0, self._in_flight - self.max_workers)
        waves = (queued // self.max_workers) + 1
        return max(1.0, round(self._ewma_service_s * waves, 1))

    # -- lifecycle -----------------------------------------------------------

    def _ensure_executor(self) -> Executor:
        if self._executor is None:
            if self.executor_kind == "process":
                self._executor = ProcessPoolExecutor(max_workers=self.max_workers)
            else:
                self._executor = ThreadPoolExecutor(max_workers=self.max_workers)
        return self._executor

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # -- submission ----------------------------------------------------------

    async def submit(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Run ``fn(*args)`` on the pool, or reject if saturated."""
        if self._in_flight >= self.capacity:
            raise ServiceSaturatedError(
                f"{self._in_flight} jobs in flight >= capacity {self.capacity} "
                f"({self.max_workers} workers + {self.max_queue_depth} queue slots)",
                retry_after_s=self.retry_after_s(),
            )
        executor = self._ensure_executor()
        loop = asyncio.get_running_loop()
        self._in_flight += 1
        self._depth_gauge.set(self._in_flight)
        started = loop.time()
        try:
            return await loop.run_in_executor(executor, fn, *args)
        finally:
            self._in_flight -= 1
            self._depth_gauge.set(self._in_flight)
            elapsed = loop.time() - started
            self._ewma_service_s = (
                _EWMA_ALPHA * elapsed + (1.0 - _EWMA_ALPHA) * self._ewma_service_s
            )
