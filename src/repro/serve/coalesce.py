"""Single-flight request coalescing keyed on job fingerprint.

While a job with fingerprint *F* is computing, every further request
for *F* attaches to the in-flight future instead of queuing a duplicate
— the asyncio analogue of Go's ``singleflight``.  Combined with the
content-addressed store this gives two layers of dedup: coalescing
collapses *concurrent* identical work, the store collapses *repeated*
identical work across time and processes.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Dict, Tuple

__all__ = ["SingleFlight"]


class SingleFlight:
    """Deduplicate concurrent calls sharing one key.

    ``do(key, supplier)`` runs ``supplier`` for the first caller and
    parks every concurrent caller with the same key on the same future;
    all of them receive the leader's result (or its exception).  The key
    is forgotten the moment the flight lands, so *sequential* repeats
    re-run the supplier — persistence across time is the store's job,
    not this class's.
    """

    def __init__(self) -> None:
        self._inflight: Dict[str, "asyncio.Future[Any]"] = {}

    def in_flight(self) -> int:
        """Number of distinct keys currently computing."""
        return len(self._inflight)

    async def do(
        self, key: str, supplier: Callable[[], Awaitable[Any]]
    ) -> Tuple[Any, bool]:
        """Returns ``(result, coalesced)``; ``coalesced`` is True for followers.

        The leader's exception propagates to every waiter.  A follower
        being cancelled does not cancel the flight — other waiters (and
        the leader's store write) still complete.
        """
        existing = self._inflight.get(key)
        if existing is not None:
            return await asyncio.shield(existing), True

        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Any]" = loop.create_future()
        self._inflight[key] = future
        try:
            result = await supplier()
        except BaseException as exc:
            future.set_exception(exc)
            # Touch the exception so a flight with zero followers does
            # not log "Future exception was never retrieved".
            future.exception()
            raise
        else:
            future.set_result(result)
            return result, False
        finally:
            self._inflight.pop(key, None)
