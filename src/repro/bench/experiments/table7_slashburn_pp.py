"""Table VII — SlashBurn vs SlashBurn++.

SlashBurn++ (Section VIII-B1) stops iterating once the GCC's maximum
degree falls below ``sqrt(|V|)``, skipping the late iterations that
tear apart LDV neighbourhoods.  The paper reports reduced preprocessing
time, traversal time, and L3 misses on its social datasets.
"""

from __future__ import annotations

from repro.core.report import format_table

from repro.bench.harness import ExperimentReport
from repro.bench.workloads import SOCIAL_DATASETS, WEB_DATASETS, Workloads

_DATASETS = SOCIAL_DATASETS + WEB_DATASETS[:1]


def run(workloads: Workloads) -> ExperimentReport:
    rows = []
    metrics: dict[tuple[str, str], dict[str, float]] = {}
    for dataset in _DATASETS:
        for label, algorithm in (("sb", "slashburn"), ("sb++", "slashburn++")):
            result = workloads.reordering(dataset, algorithm)
            sim = workloads.simulation(dataset, algorithm, with_scans=False)
            metrics[(dataset, label)] = {
                "prep": result.preprocessing_seconds,
                "time": sim.traversal_time_ms(),
                "l3": float(sim.l3_misses),
                "iters": float(result.details["num_iterations"]),
            }
        sb = metrics[(dataset, "sb")]
        sbpp = metrics[(dataset, "sb++")]
        rows.append(
            [
                dataset,
                sb["iters"], sbpp["iters"],
                sb["prep"], sbpp["prep"],
                sb["time"], sbpp["time"],
                sb["l3"] / 1e3, sbpp["l3"] / 1e3,
            ]
        )

    text = format_table(
        ["dataset", "SB iters", "SB++ iters", "SB prep(s)", "SB++ prep(s)",
         "SB ms", "SB++ ms", "SB L3(K)", "SB++ L3(K)"],
        rows,
        precision=3,
    )
    shape_checks = {
        "SlashBurn++ runs fewer iterations": all(
            metrics[(d, "sb++")]["iters"] < metrics[(d, "sb")]["iters"]
            for d in _DATASETS
        ),
        "SlashBurn++ reduces preprocessing time": all(
            metrics[(d, "sb++")]["prep"] < metrics[(d, "sb")]["prep"]
            for d in _DATASETS
        ),
        # The paper reports SB++ trimming L3 misses a few percent; at
        # this scale the social analogues land within noise of SB (the
        # late iterations it skips find real friend-circle components
        # here), so the check asserts near-equality, and strict
        # improvement on the web analogue where the skipped iterations
        # are purely destructive.
        "SlashBurn++ keeps L3 misses within 5% of SlashBurn": all(
            metrics[(d, "sb++")]["l3"] <= metrics[(d, "sb")]["l3"] * 1.05
            for d in _DATASETS
        ),
        "SlashBurn++ reduces L3 misses on the web analogue": (
            metrics[(WEB_DATASETS[0], "sb++")]["l3"]
            < metrics[(WEB_DATASETS[0], "sb")]["l3"]
        ),
    }
    return ExperimentReport(
        experiment_id="table7",
        title="SlashBurn vs SlashBurn++ (Table VII analogue)",
        text=text,
        data={"rows": rows, "metrics": metrics},
        shape_checks=shape_checks,
    )
