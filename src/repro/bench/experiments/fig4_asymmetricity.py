"""Figure 4 — asymmetricity degree distribution.

Shape claims from Section VII-A: the social network's high-in-degree
vertices are almost symmetric (in-hubs are out-hubs), while the web
graph's in-hubs are almost entirely asymmetric.
"""

from __future__ import annotations

import numpy as np

from repro.core.asymmetricity import asymmetricity_degree_distribution
from repro.core.binning import log_bins
from repro.core.report import format_series

from repro.bench.harness import ExperimentReport
from repro.bench.workloads import SOCIAL_DATASETS, WEB_DATASETS, Workloads


def run(workloads: Workloads) -> ExperimentReport:
    social_name, web_name = SOCIAL_DATASETS[0], WEB_DATASETS[1]
    social = workloads.graph(social_name)
    web = workloads.graph(web_name)
    max_degree = max(
        int(social.in_degrees().max(initial=1)),
        int(web.in_degrees().max(initial=1)),
    )
    bins = log_bins(max(1, max_degree))
    social_dist = asymmetricity_degree_distribution(social, bins=bins)
    web_dist = asymmetricity_degree_distribution(web, bins=bins)

    text = format_series(
        bins.centers().round(1),
        {social_name: social_dist.mean_percent, web_name: web_dist.mean_percent},
        x_label="in-degree",
        title="Mean asymmetricity % per in-degree bin",
        precision=1,
    )

    shape_checks = {
        "social in-hubs are mostly symmetric (< 40% asym)": bool(
            _hub_band(social_dist, social.hub_threshold) < 40.0
        ),
        "web in-hubs are mostly asymmetric (> 70% asym)": bool(
            _hub_band(web_dist, web.hub_threshold) > 70.0
        ),
        "web hubs are more asymmetric than social hubs": bool(
            _hub_band(web_dist, web.hub_threshold)
            > _hub_band(social_dist, social.hub_threshold)
        ),
    }
    return ExperimentReport(
        experiment_id="fig4",
        title="Asymmetricity degree distribution (Figure 4 analogue)",
        text=text,
        data={"social": social_dist, "web": web_dist},
        shape_checks=shape_checks,
    )


def _hub_band(dist, hub_threshold: float) -> float:
    """Vertex-weighted mean asymmetricity over the hub-degree bins."""
    mask = (dist.bins.lower[1:] > hub_threshold) & (dist.vertex_counts > 0)
    if not mask.any():
        return float("nan")
    weights = dist.vertex_counts[mask]
    return float(np.average(dist.mean_percent[mask], weights=weights))
