"""Section VIII-B2 — EDR-restricted Rabbit-Order.

The paper derives an *efficacy degree range* from the Figure 1 curves
and relabels only the vertices inside it, reporting reduced
preprocessing time "without affecting the traversal time" (Frndstr
139 s -> 103 s, TwtrMpi 66 s -> 12 s).
"""

from __future__ import annotations

from repro.core.binning import log_bins
from repro.core.missdist import miss_rate_degree_distribution
from repro.core.report import format_table
from repro.errors import ReorderingError
from repro.reorder.edr import EDRRestricted, efficacy_degree_range
from repro.reorder.rabbit import RabbitOrder

from repro.bench.harness import ExperimentReport
from repro.bench.workloads import SOCIAL_DATASETS, WEB_DATASETS, Workloads

_DATASETS = (SOCIAL_DATASETS[0], WEB_DATASETS[0])
_TRAVERSAL_TOLERANCE = 1.20  # "without affecting the traversal time"


def run(workloads: Workloads) -> ExperimentReport:
    rows = []
    metrics: dict[str, dict[str, float]] = {}
    for dataset in _DATASETS:
        full = workloads.reordering(dataset, "rabbit")
        full_sim = workloads.simulation(dataset, "rabbit", with_scans=False)

        lo, hi = _efficacy_range(workloads, dataset)
        edr_factory = lambda lo=lo, hi=hi: EDRRestricted(RabbitOrder(), lo, hi)  # noqa: E731
        restricted = workloads.reordering(
            dataset, "edr+rabbit", factory=edr_factory, lo=lo, hi=hi
        )
        restricted_sim = workloads.simulation(
            dataset, "edr+rabbit", with_scans=False, factory=edr_factory, lo=lo, hi=hi
        )

        metrics[dataset] = {
            "full_prep": full.preprocessing_seconds,
            "edr_prep": restricted.preprocessing_seconds,
            "full_time": full_sim.traversal_time_ms(),
            "edr_time": restricted_sim.traversal_time_ms(),
            "in_range": restricted.details["num_in_range"],
            "skipped": restricted.details["num_skipped"],
        }
        rows.append(
            [
                dataset,
                f"[{lo}, {hi}]",
                metrics[dataset]["in_range"],
                metrics[dataset]["skipped"],
                metrics[dataset]["full_prep"],
                metrics[dataset]["edr_prep"],
                metrics[dataset]["full_time"],
                metrics[dataset]["edr_time"],
            ]
        )

    text = format_table(
        ["dataset", "EDR", "in range", "skipped",
         "RO prep(s)", "RO+EDR prep(s)", "RO ms", "RO+EDR ms"],
        rows,
        precision=3,
    )
    shape_checks = {
        "EDR restriction reduces preprocessing time": all(
            m["edr_prep"] < m["full_prep"] for m in metrics.values()
        ),
        "EDR restriction leaves traversal time unaffected (within 20%)": all(
            m["edr_time"] <= m["full_time"] * _TRAVERSAL_TOLERANCE
            for m in metrics.values()
        ),
    }
    return ExperimentReport(
        experiment_id="sec8_edr",
        title="EDR-restricted Rabbit-Order (Section VIII-B2 analogue)",
        text=text,
        data={"rows": rows, "metrics": metrics},
        shape_checks=shape_checks,
    )


def _efficacy_range(workloads: Workloads, dataset: str) -> tuple[int, int]:
    """EDR from the Figure 1 curves, with a degree-band fallback.

    Only bins Rabbit-Order improves by more than two percentage points
    count (the paper validates its simulator to a 1.4 % relative error,
    so smaller deltas are noise).  When no meaningful bin exists, or the
    range excludes almost nothing, fall back to the LDV band RO is built
    for — the paper applies its EDR cut to exactly that band.
    """
    graph = workloads.graph(dataset)
    fallback = (1, max(2, int(4 * graph.average_degree)))
    bins = log_bins(max(1, int(graph.in_degrees().max(initial=1))))
    initial = miss_rate_degree_distribution(
        workloads.simulation(dataset, "identity"), bins=bins
    )
    reordered = miss_rate_degree_distribution(
        workloads.simulation(dataset, "rabbit"), bins=bins
    )
    try:
        lo, hi = efficacy_degree_range(
            initial, reordered, min_improvement_percent=2.0
        )
    except ReorderingError:
        return fallback
    degrees = graph.total_degrees()
    covered = ((degrees >= lo) & (degrees <= hi)).sum() / graph.num_vertices
    if covered > 0.95:
        return fallback
    return lo, hi
