"""Figure 6 — edges covered by in-hubs vs out-hubs.

Shape claims from Section VII-B: keeping the top hubs cached, the web
graph covers far more edges through *in-hubs* (push/CSR locality),
while the social network covers more through *out-hubs* (pull/CSC
locality).
"""

from __future__ import annotations

from repro.core.hub_coverage import coverage_at, hub_coverage
from repro.core.report import format_series

from repro.bench.harness import ExperimentReport
from repro.bench.workloads import SOCIAL_DATASETS, WEB_DATASETS, Workloads


def run(workloads: Workloads) -> ExperimentReport:
    social_name, web_name = SOCIAL_DATASETS[0], WEB_DATASETS[0]
    sections = []
    coverages = {}
    for dataset in (social_name, web_name):
        graph = workloads.graph(dataset)
        coverage = hub_coverage(graph)
        coverages[dataset] = coverage
        sections.append(
            format_series(
                coverage.hub_counts,
                {
                    "in-hub edge %": coverage.in_percent,
                    "out-hub edge %": coverage.out_percent,
                },
                x_label="# hubs",
                title=f"{dataset}: edge coverage of the top-H hubs",
                precision=1,
            )
        )

    budgets = {
        dataset: max(1, workloads.graph(dataset).num_vertices // 100)
        for dataset in (social_name, web_name)
    }
    social_cov = coverages[social_name]
    web_cov = coverages[web_name]
    shape_checks = {
        "social network favours pull (out-hubs cover more edges)": (
            social_cov.crossover_favours(budgets[social_name]) == "pull"
        ),
        "web graph favours push (in-hubs cover more edges)": (
            web_cov.crossover_favours(budgets[web_name]) == "push"
        ),
        "web in-hub coverage dwarfs its out-hub coverage (>3x)": (
            coverage_at(web_cov.hub_counts, web_cov.in_percent, budgets[web_name])
            > 3.0
            * coverage_at(web_cov.hub_counts, web_cov.out_percent, budgets[web_name])
        ),
    }
    return ExperimentReport(
        experiment_id="fig6",
        title="Hub edge coverage: push vs pull locality (Figure 6 analogue)",
        text="\n\n".join(sections),
        data=coverages,
        shape_checks=shape_checks,
    )
