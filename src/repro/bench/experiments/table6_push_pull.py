"""Table VI — CSC vs CSR read traversals.

The paper isolates the *format* effect of push vs pull by running the
same read operation over both: each vertex sums the data of its
in-neighbours (CSC traversal) or its out-neighbours (CSR traversal).
A CSR read traversal of ``G`` is exactly a pull traversal of the
reversed graph, which is how it is simulated here.

Shape claim: web graphs have a faster CSR traversal (fewer misses —
their in-hubs become the reused data), social networks a faster CSC
traversal (their out-hubs are the stronger ones).
"""

from __future__ import annotations

from repro.core.report import format_table

from repro.bench.harness import ExperimentReport
from repro.bench.workloads import (
    SIM_DATASETS,
    SOCIAL_DATASETS,
    WEB_DATASETS,
    Workloads,
)


def run(workloads: Workloads) -> ExperimentReport:
    rows = []
    misses: dict[tuple[str, str], int] = {}
    for dataset in SIM_DATASETS:
        csc = workloads.simulation(dataset, "identity")
        # A CSR read traversal of G is a pull traversal of reversed(G).
        csr = workloads.simulation(dataset, "identity", reverse=True, with_scans=False)
        misses[(dataset, "csc")] = csc.l3_misses
        misses[(dataset, "csr")] = csr.l3_misses
        rows.append(
            [
                dataset,
                workloads.family(dataset),
                csc.l3_misses / 1e3,
                csr.l3_misses / 1e3,
                csc.traversal_time_ms(),
                csr.traversal_time_ms(),
            ]
        )

    text = format_table(
        ["dataset", "type", "CSC L3(K)", "CSR L3(K)", "CSC ms", "CSR ms"],
        rows,
        precision=2,
    )
    shape_checks = {
        "web graphs: CSR read traversal has fewer L3 misses": all(
            misses[(d, "csr")] < misses[(d, "csc")] for d in WEB_DATASETS
        ),
        "social networks: CSC read traversal has fewer L3 misses": all(
            misses[(d, "csc")] < misses[(d, "csr")] for d in SOCIAL_DATASETS
        ),
    }
    return ExperimentReport(
        experiment_id="table6",
        title="CSC vs CSR read traversals (Table VI analogue)",
        text=text,
        data={"rows": rows, "misses": misses},
        shape_checks=shape_checks,
    )
