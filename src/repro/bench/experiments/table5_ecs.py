"""Table V — average effective cache size.

ECS is the percentage of cache capacity holding randomly-accessed
vertex data (Section VI-F).  The paper's finding, checked here: RAs do
not come close to using the whole cache for random accesses, SlashBurn
(the locality destroyer) has the largest ECS on web graphs, and the RA
with the best locality for a dataset has a lower ECS than SlashBurn.
"""

from __future__ import annotations

from repro.core.report import format_table

from repro.bench.harness import ExperimentReport
from repro.bench.workloads import (
    EXTENDED_ALGORITHMS,
    SIM_DATASETS,
    STUDIED_ALGORITHMS,
    WEB_DATASETS,
    Workloads,
)


def run(workloads: Workloads) -> ExperimentReport:
    rows = []
    ecs: dict[tuple[str, str], float] = {}
    l3: dict[tuple[str, str], int] = {}
    for dataset in SIM_DATASETS:
        row: list = [dataset]
        for algorithm in STUDIED_ALGORITHMS + EXTENDED_ALGORITHMS:
            sim = workloads.simulation(dataset, algorithm)
            ecs[(dataset, algorithm)] = sim.effective_cache_size()
            l3[(dataset, algorithm)] = sim.l3_misses
            row.append(ecs[(dataset, algorithm)])
        rows.append(row)

    text = format_table(
        ["dataset", "Initial", "SB", "GO", "RO", "DBG", "CO", "HO"],
        rows,
        precision=1,
    )

    # The paper hedges with "usually": on its social rows (e.g. TwtrMpi)
    # Rabbit-Order's ECS exceeds SlashBurn's, so the hard checks are
    # scoped to the web graphs where the inversion is unambiguous.
    best_ra_has_lower_ecs_than_sb = []
    for dataset in WEB_DATASETS:
        candidates = [a for a in STUDIED_ALGORITHMS if a != "slashburn"]
        best = min(candidates, key=lambda a: l3[(dataset, a)])
        best_ra_has_lower_ecs_than_sb.append(
            ecs[(dataset, best)] <= ecs[(dataset, "slashburn")]
        )

    shape_checks = {
        "no RA uses the full cache for random accesses (all ECS < 100%)": all(
            value < 100.0 for value in ecs.values()
        ),
        "SlashBurn inflates ECS above the initial order on web graphs": all(
            ecs[(d, "slashburn")] > ecs[(d, "identity")] for d in WEB_DATASETS
        ),
        "web: the best-locality RA has a lower ECS than SlashBurn": all(
            best_ra_has_lower_ecs_than_sb
        ),
    }
    return ExperimentReport(
        experiment_id="table5",
        title="Average effective cache size % (Table V analogue)",
        text=text,
        data={"rows": rows, "ecs": ecs},
        shape_checks=shape_checks,
    )
