"""One experiment module per paper table and figure (see DESIGN.md §4).

Every module exposes ``run(workloads) -> ExperimentReport``.
"""
