"""Figure 5 — degree range decomposition of neighbours.

Shape claims from Section VII-A: in the social network, high-out-degree
sources provide more than half of the in-edges of the hub vertices
("HDV have close connection to each other"); in the web graph,
low-out-degree sources dominate ("LDV are the main constituents of all
degree classes").  The decade-class matrix is rendered as in the paper;
the shape checks are evaluated at edge level with the HDV boundary at
twice the average degree, because the fixed decade boundaries of the
figure do not align with the average degree of the scaled analogues.
"""

from __future__ import annotations

import numpy as np

from repro.core.degree_range import degree_range_decomposition
from repro.core.report import format_matrix

from repro.bench.harness import ExperimentReport
from repro.bench.workloads import SOCIAL_DATASETS, WEB_DATASETS, Workloads


def run(workloads: Workloads) -> ExperimentReport:
    social_name, web_name = SOCIAL_DATASETS[0], WEB_DATASETS[0]
    sections = []
    decompositions = {}
    for dataset in (social_name, web_name):
        decomposition = degree_range_decomposition(workloads.graph(dataset))
        decompositions[dataset] = decomposition
        sections.append(
            format_matrix(
                decomposition.percent,
                decomposition.row_labels,
                decomposition.col_labels,
                title=(
                    f"{dataset}: % of class-column in-edges arriving from "
                    "each out-degree class row"
                ),
                precision=0,
            )
        )

    social_share = _hub_inedge_share_from_hdv(workloads, social_name)
    web_share = _hub_inedge_share_from_hdv(workloads, web_name)
    shape_checks = {
        "social: HDV sources provide >50% of hub in-edges": social_share > 50.0,
        "web: LDV sources provide >50% of hub in-edges": 100.0 - web_share > 50.0,
        "hub-to-hub connectivity is much tighter in the social network":
            social_share > 1.5 * web_share,
    }
    return ExperimentReport(
        experiment_id="fig5",
        title="Degree range decomposition (Figure 5 analogue)",
        text="\n\n".join(sections),
        data={
            "decompositions": decompositions,
            "social_hdv_share": social_share,
            "web_hdv_share": web_share,
        },
        shape_checks=shape_checks,
    )


def _hub_inedge_share_from_hdv(workloads: Workloads, dataset: str) -> float:
    """Percentage of hub in-edges whose source out-degree > 2x average."""
    graph = workloads.graph(dataset)
    src, dst = graph.edges()
    out_deg = graph.out_degrees()
    in_deg = graph.in_degrees()
    hub_edges = in_deg[dst] > graph.hub_threshold
    if not hub_edges.any():
        return float("nan")
    from_hdv = out_deg[src] > 2.0 * graph.average_degree
    return float(np.count_nonzero(hub_edges & from_hdv) / hub_edges.sum() * 100.0)
