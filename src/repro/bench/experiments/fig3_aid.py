"""Figure 3 — AID degree distribution, initial vs community-aware RAs.

Shape claims from Section VI-C: Rabbit-Order reduces the AID of
low-degree vertices (the DFS phase packs community members onto nearby
IDs), but as degree grows DFS cannot keep all neighbours consecutive,
so the AID of the Rabbit-Order curve rises with degree.  The
per-community RA (ROADMAP item 3) makes the same structural move —
contiguous community blocks — through explicit label propagation, so
it inherits the LDV claim.
"""

from __future__ import annotations

import numpy as np

from repro.core.aid import aid_degree_distribution
from repro.core.binning import log_bins
from repro.core.report import format_series

from repro.bench.harness import ExperimentReport
from repro.bench.workloads import SOCIAL_DATASETS, WEB_DATASETS, Workloads


def run(workloads: Workloads) -> ExperimentReport:
    sections = []
    shape_checks = {}
    data = {}
    for dataset in (SOCIAL_DATASETS[0], WEB_DATASETS[1]):
        graph = workloads.graph(dataset)
        reordered = workloads.reordered_graph(dataset, "rabbit")
        bins = log_bins(max(1, int(graph.in_degrees().max(initial=1))))
        initial = aid_degree_distribution(graph, bins=bins)
        rabbit = aid_degree_distribution(reordered, bins=bins)
        community = aid_degree_distribution(
            workloads.reordered_graph(dataset, "community"), bins=bins
        )
        data[dataset] = {
            "initial": initial,
            "rabbit": rabbit,
            "community": community,
        }
        sections.append(
            format_series(
                bins.centers().round(1),
                {
                    "Initial": initial.mean_aid,
                    "RabbitOrder": rabbit.mean_aid,
                    "CommunityOrder": community.mean_aid,
                },
                x_label="degree",
                title=f"{dataset}: mean in-neighbour AID per degree bin",
                precision=1,
            )
        )

        avg = graph.average_degree
        ldv = bins.lower[:-1] <= avg
        populated = (initial.vertex_counts > 0) & (rabbit.vertex_counts > 0)
        ldv_mask = ldv & populated
        shape_checks[f"{dataset}: Rabbit-Order reduces the AID of LDV"] = bool(
            np.nanmean(rabbit.mean_aid[ldv_mask])
            < np.nanmean(initial.mean_aid[ldv_mask])
        )
        community_mask = ldv & (initial.vertex_counts > 0) & (
            community.vertex_counts > 0
        )
        shape_checks[
            f"{dataset}: per-community order reduces the AID of LDV"
        ] = bool(
            np.nanmean(community.mean_aid[community_mask])
            < np.nanmean(initial.mean_aid[community_mask])
        )
        # "AID of Rabbit-Order is increased for HDV": the RO curve rises
        # from the lowest degrees towards the average-degree bin.  (At
        # the extreme hubs the metric is pigeonhole-bounded — a vertex
        # with ~|V| neighbours cannot have large consecutive gaps — so
        # the comparison stops at the average-degree bin.)
        pop_idx = np.flatnonzero(populated)
        avg_bin = pop_idx[bins.lower[pop_idx] <= avg][-1]
        first_bin = pop_idx[0]
        shape_checks[f"{dataset}: Rabbit-Order AID grows with degree"] = bool(
            rabbit.mean_aid[avg_bin] > rabbit.mean_aid[first_bin]
        )
    return ExperimentReport(
        experiment_id="fig3",
        title="AID degree distribution (Figure 3 analogue)",
        text="\n\n".join(sections),
        data=data,
        shape_checks=shape_checks,
    )
