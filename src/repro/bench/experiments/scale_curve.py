"""Scaling curve — locality metrics vs. graph size and effective diameter.

The paper's evaluation (and the follow-up diameter-dependence study,
arXiv 2111.12281) argues that reordering behaviour shifts with graph
*scale*: as the vertex working set outgrows the LLC the random-region
miss rate climbs, while the effective diameter of a scale-free graph
grows only logarithmically — so ever-larger graphs concentrate their
traffic on a structurally "small world" whose locality reordering can
still exploit.  This experiment walks an RM-family size ladder through
the streaming simulator (:func:`repro.sim.simulator.simulate_spmv_streamed`)
and records, per size: edge count, 90th-percentile effective diameter,
mean AID and the random-region miss rate.

The ladder doubles from ``base_vertices * REPRO_SCALE``; the default
tier keeps the run inside the tier-1 budget, and ``REPRO_SCALE`` lifts
the same curve into the 10⁷–10⁸-edge band (see ``SCALE_DATASETS`` and
``benchmarks/bench_scale_curve.py``, which reuses this module).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.aid import aid_per_vertex
from repro.core.report import format_series
from repro.generate.datasets import SCALE_DATASETS, scale_factor
from repro.generate.rmat import rmat_edges
from repro.graph.build import build_graph
from repro.graph.diameter import effective_diameter
from repro.graph.graph import Graph
from repro.sim.simulator import SimulationConfig, simulate_spmv_streamed

from repro.bench.harness import ExperimentReport
from repro.bench.workloads import Workloads

#: Rungs on the doubling ladder.  Four octaves is enough to see the
#: working set cross the cache boundary at every tier.
NUM_SIZES = 4

#: Smallest rung at ``REPRO_SCALE=1`` (vertices).  The scale-tier spec
#: ``rmat-scale`` sits ~2^11 above this, so ``REPRO_SCALE=2048`` walks
#: the ladder straight into the 10⁷–10⁸-edge band.
BASE_VERTICES = 1 << 10


def ladder_sizes(scale: "float | None" = None) -> list[int]:
    """The vertex counts of the ladder, honouring ``REPRO_SCALE``."""
    if scale is None:
        scale = scale_factor()
    target = max(BASE_VERTICES, int(BASE_VERTICES * scale))
    base = 1 << max(10, int(round(math.log2(target))))
    return [base << i for i in range(NUM_SIZES)]


def build_ladder_graph(num_vertices: int) -> Graph:
    """The RM-family graph at one ladder rung (deterministic per size).

    Shared with ``benchmarks/bench_scale_curve.py`` so the benchmark's
    gated numbers and the experiment's curve come from the same graphs.
    """
    spec = SCALE_DATASETS["rmat-scale"]
    log_scale = int(round(math.log2(num_vertices)))
    num_edges = int(num_vertices * spec.average_degree)
    sources, targets = rmat_edges(log_scale, num_edges, seed=spec.seed)
    return build_graph(
        num_vertices, sources, targets, name=f"rmat-2^{log_scale}"
    ).graph


def measure_rung(
    graph: Graph,
    *,
    config: "SimulationConfig | None" = None,
    num_shards: int = 1,
) -> dict:
    """Structure + streamed-simulation metrics for one built graph."""
    diameter = effective_diameter(graph, percentile=0.9, num_sources=8, seed=7)
    aid = aid_per_vertex(graph)
    result = simulate_spmv_streamed(graph, config, num_shards=num_shards)
    return {
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "effective_diameter": float(diameter),
        "mean_aid": float(np.nanmean(aid)),
        "random_miss_rate": float(result.random_miss_rate),
        "miss_rate": float(result.l3_misses / max(1, result.num_accesses)),
    }


def run(workloads: Workloads) -> ExperimentReport:
    sizes = ladder_sizes()
    # Pin the cache geometry to the smallest rung so the ladder actually
    # walks the working set *across* the cache boundary — a cache scaled
    # per rung would hide exactly the effect the curve measures.  Rungs
    # are built one at a time and dropped: at large REPRO_SCALE holding
    # the whole ladder would defeat the streaming pipeline.
    config: "SimulationConfig | None" = None
    rows = []
    for n in sizes:
        graph = build_ladder_graph(n)
        if config is None:
            config = SimulationConfig.scaled_for(graph)
        rows.append(measure_rung(graph, config=config))
        del graph
    edges = np.array([row["num_edges"] for row in rows], dtype=np.float64)
    diam = np.array([row["effective_diameter"] for row in rows], dtype=np.float64)
    aid = np.array([row["mean_aid"] for row in rows], dtype=np.float64)
    miss = np.array([row["random_miss_rate"] for row in rows], dtype=np.float64)

    text = format_series(
        edges,
        {
            "EffDiam(0.9)": diam,
            "MeanAID": aid,
            "RandMissRate": miss,
        },
        x_label="edges",
        title="RM-family scaling curve (streamed simulation)",
        precision=2,
    )

    shape_checks = {
        # Vertex state outgrows the LLC as the ladder climbs, so the
        # random-region miss rate must end above where it started.
        "random miss rate climbs as the working set outgrows the cache": bool(
            miss[-1] > miss[0]
        ),
        # Random IDs spread neighbours across the whole ID range, so the
        # mean AID grows with the graph.
        "mean AID grows with graph size": bool(np.all(np.diff(aid) > 0)),
        # The 2111.12281 hypothesis: scale-free effective diameter grows
        # far slower than size — each doubling adds at most O(1) hops.
        "effective diameter grows sublinearly in size": bool(
            (diam[-1] / max(diam[0], 1e-9)) < (edges[-1] / edges[0]) ** 0.5
        ),
    }
    data = {
        "sizes": [int(n) for n in sizes],
        "rows": rows,
    }
    return ExperimentReport(
        experiment_id="scale_curve",
        title="Locality vs. scale and effective diameter (scaling curve)",
        text=text,
        data=data,
        shape_checks=shape_checks,
    )
