"""Figure 2 — GCC degree distribution across SlashBurn iterations.

The paper's Figure 2 plots the (peak-normalized) degree distribution of
the giant connected component after 1, 2, 4, 8, 16 SlashBurn
iterations, showing the GCC "does not maintain the power-law property":
after a few iterations the residual network is an almost-uniform
low-degree mesh, which is why late SlashBurn iterations destroy LDV
neighbourhoods.
"""

from __future__ import annotations

import numpy as np

from repro.core.report import format_table
from repro.graph.degrees import power_law_tail_exponent
from repro.reorder.slashburn import slashburn_iterations

from repro.bench.harness import ExperimentReport
from repro.bench.workloads import SOCIAL_DATASETS, WEB_DATASETS, Workloads

_SNAPSHOT_ITERATIONS = (1, 2, 4, 8, 16)


def run(workloads: Workloads) -> ExperimentReport:
    sections = []
    max_degrees: dict[str, list[int]] = {}
    for dataset in (SOCIAL_DATASETS[0], WEB_DATASETS[0]):
        graph = workloads.graph(dataset)
        snapshots = slashburn_iterations(graph, max_iterations=16)
        initial_degrees = graph.total_degrees()
        rows = [
            [
                "initial",
                graph.num_vertices,
                graph.num_edges,
                int(initial_degrees.max(initial=0)),
                float(np.median(initial_degrees)),
                power_law_tail_exponent(initial_degrees),
            ]
        ]
        max_list = [int(initial_degrees.max(initial=0))]
        for snap in snapshots:
            if snap.iteration not in _SNAPSHOT_ITERATIONS:
                continue
            rows.append(
                [
                    f"iter {snap.iteration}",
                    snap.gcc_vertices,
                    snap.gcc_edges,
                    snap.gcc_max_degree,
                    float(np.median(snap.gcc_degrees)) if snap.gcc_degrees.size else 0.0,
                    power_law_tail_exponent(snap.gcc_degrees),
                ]
            )
            max_list.append(snap.gcc_max_degree)
        max_degrees[dataset] = max_list
        sections.append(
            format_table(
                ["state", "GCC |V|", "GCC |E|", "max deg", "median deg", "PL alpha"],
                rows,
                title=f"{dataset}: GCC across SlashBurn iterations",
                precision=2,
            )
        )

    shape_checks = {}
    for dataset, degrees in max_degrees.items():
        graph = workloads.graph(dataset)
        shape_checks[f"{dataset}: GCC max degree collapses monotonically"] = all(
            b <= a for a, b in zip(degrees, degrees[1:])
        )
        shape_checks[
            f"{dataset}: GCC loses its heavy tail (max degree < sqrt(|V|) eventually)"
        ] = degrees[-1] < graph.hub_threshold
    return ExperimentReport(
        experiment_id="fig2",
        title="GCC degree distribution across SB iterations (Figure 2 analogue)",
        text="\n\n".join(sections),
        data={"max_degrees": max_degrees},
        shape_checks=shape_checks,
    )
