"""Table IV — SpMV execution results per RA.

The paper's headline table: traversal time, per-thread idle percentage,
L3 misses and DTLB misses for the baseline and the three RAs on every
dataset.  The headline shape claims it encodes:

* GOrder reduces L3 misses and time on social networks;
* Rabbit-Order improves web graphs;
* SlashBurn usually destroys locality on web graphs.
"""

from __future__ import annotations

from repro.core.report import format_table

from repro.bench.harness import ExperimentReport
from repro.bench.workloads import (
    SIM_DATASETS,
    SOCIAL_DATASETS,
    STUDIED_ALGORITHMS,
    WEB_DATASETS,
    Workloads,
)


def run(workloads: Workloads) -> ExperimentReport:
    rows = []
    l3: dict[tuple[str, str], int] = {}
    time_ms: dict[tuple[str, str], float] = {}
    for dataset in SIM_DATASETS:
        row: list = [dataset, workloads.family(dataset)]
        for algorithm in STUDIED_ALGORITHMS:
            sim = workloads.simulation(dataset, algorithm)
            l3[(dataset, algorithm)] = sim.l3_misses
            time_ms[(dataset, algorithm)] = sim.traversal_time_ms()
            row.extend(
                [
                    time_ms[(dataset, algorithm)],
                    sim.schedule().idle_percent,
                    sim.l3_misses / 1e3,
                    sim.tlb_misses,
                ]
            )
        rows.append(row)

    headers = ["dataset", "type"]
    for label in ("Bl", "SB", "GO", "RO"):
        headers.extend(
            [f"{label} ms", f"{label} idle%", f"{label} L3(K)", f"{label} TLB"]
        )
    text = format_table(headers, rows, precision=2)

    shape_checks = {
        "GOrder reduces L3 misses of every social network": all(
            l3[(d, "gorder")] < l3[(d, "identity")] for d in SOCIAL_DATASETS
        ),
        "GOrder is the fastest RA on social networks (avg time)": (
            _avg(time_ms, SOCIAL_DATASETS, "gorder")
            <= min(
                _avg(time_ms, SOCIAL_DATASETS, a)
                for a in ("identity", "slashburn", "rabbit")
            )
        ),
        "Rabbit-Order reduces L3 misses of every web graph": all(
            l3[(d, "rabbit")] < l3[(d, "identity")] for d in WEB_DATASETS
        ),
        "SlashBurn increases L3 misses of every web graph": all(
            l3[(d, "slashburn")] > l3[(d, "identity")] for d in WEB_DATASETS
        ),
    }
    return ExperimentReport(
        experiment_id="table4",
        title="SpMV execution results (Table IV analogue, simulated)",
        text=text,
        data={"rows": rows, "l3": l3, "time_ms": time_ms},
        shape_checks=shape_checks,
    )


def _avg(values: dict[tuple[str, str], float], datasets, algorithm: str) -> float:
    return sum(values[(d, algorithm)] for d in datasets) / len(datasets)
