"""Table III — misses for accessing data of vertices with degree > M.

Counts the simulated "reloads" of high-degree vertices' data under each
RA.  The paper's reading: GOrder has the fewest reloads of moderately
high-degree vertices (degree > ~avg) because it deliberately lets the
extreme hubs be reloaded to free cache for broader temporal reuse,
while Rabbit-Order has the most reloads of hubs on social networks.
"""

from __future__ import annotations

import math

from repro.core.hubs_misses import hub_data_misses
from repro.core.report import format_table

from repro.bench.harness import ExperimentReport
from repro.bench.workloads import SOCIAL_DATASETS, STUDIED_ALGORITHMS, Workloads


def run(workloads: Workloads) -> ExperimentReport:
    rows = []
    per_row_misses: dict[tuple[str, int], dict[str, int]] = {}
    for dataset in SOCIAL_DATASETS:
        graph = workloads.graph(dataset)
        low = int(graph.average_degree)
        high = 4 * int(math.sqrt(graph.num_vertices))
        for min_degree in (high, low):
            row: list = [dataset, min_degree]
            misses: dict[str, int] = {}
            for algorithm in STUDIED_ALGORITHMS:
                sim = workloads.simulation(dataset, algorithm)
                count = hub_data_misses(sim, min_degree)
                misses[algorithm] = count.misses
                row.append(count.misses)
            per_row_misses[(dataset, min_degree)] = misses
            rows.append(row)

    text = format_table(
        ["dataset", "min degree", "Initial", "SB", "GO", "RO"], rows
    )
    shape_checks = {
        "GOrder reloads HDV data less than the initial order": all(
            m["gorder"] < m["identity"] for m in per_row_misses.values()
        ),
        "Rabbit-Order has the most hub reloads among the RAs": all(
            m["rabbit"] >= max(m["slashburn"], m["gorder"])
            for m in per_row_misses.values()
        ),
    }
    return ExperimentReport(
        experiment_id="table3",
        title="Misses to data of vertices with degree > M (Table III analogue)",
        text=text,
        data={"rows": rows, "misses": per_row_misses},
        shape_checks=shape_checks,
    )
