"""Figure 1 — cache miss rate degree distribution per RA.

One curve per RA per dataset: the simulated miss rate of random
accesses, binned by the degree of the processed vertex.  Shape claims
encoded from Section VI:

* GOrder lowers the miss rate of HDV on social networks but cannot
  help LDV much;
* Rabbit-Order lowers the miss rate of LDV on web graphs;
* SlashBurn lowers the hub miss rate below the other RAs' hub miss
  rate on social networks (the ECS side effect of Section VI-F).
"""

from __future__ import annotations

import numpy as np

from repro.core.binning import log_bins
from repro.core.missdist import miss_rate_degree_distribution
from repro.core.report import format_series

from repro.bench.harness import ExperimentReport
from repro.bench.workloads import (
    EXTENDED_ALGORITHMS,
    SOCIAL_DATASETS,
    STUDIED_ALGORITHMS,
    WEB_DATASETS,
    Workloads,
)

_LABELS = {
    "identity": "Initial",
    "slashburn": "SB",
    "gorder": "GO",
    "rabbit": "RO",
    "dbg": "DBG",
    "community": "CO",
    "hisorder": "HO",
}


def run(workloads: Workloads) -> ExperimentReport:
    datasets = (SOCIAL_DATASETS[0], SOCIAL_DATASETS[1], WEB_DATASETS[0], WEB_DATASETS[1])
    sections: list[str] = []
    distributions: dict[tuple[str, str], object] = {}
    for dataset in datasets:
        graph = workloads.graph(dataset)
        bins = log_bins(max(1, int(graph.in_degrees().max(initial=1))))
        series = {}
        for algorithm in STUDIED_ALGORITHMS + EXTENDED_ALGORITHMS:
            sim = workloads.simulation(dataset, algorithm)
            dist = miss_rate_degree_distribution(sim, bins=bins)
            distributions[(dataset, algorithm)] = dist
            series[_LABELS[algorithm]] = dist.miss_rate_percent
        sections.append(
            format_series(
                bins.centers().round(1),
                series,
                x_label="degree",
                title=f"{dataset} ({workloads.family(dataset)}) miss rate %",
                precision=1,
            )
        )

    shape_checks = {}
    for dataset in SOCIAL_DATASETS:
        initial = distributions[(dataset, "identity")]
        gorder = distributions[(dataset, "gorder")]
        shape_checks[f"{dataset}: GOrder lowers the HDV miss rate"] = (
            _band_rate(gorder, workloads.graph(dataset).average_degree, None)
            < _band_rate(initial, workloads.graph(dataset).average_degree, None)
        )
    for dataset in WEB_DATASETS:
        initial = distributions[(dataset, "identity")]
        rabbit = distributions[(dataset, "rabbit")]
        avg = workloads.graph(dataset).average_degree
        shape_checks[f"{dataset}: Rabbit-Order lowers the LDV miss rate"] = (
            _band_rate(rabbit, None, avg) < _band_rate(initial, None, avg)
        )
    for dataset in SOCIAL_DATASETS:
        hub = workloads.graph(dataset).hub_threshold
        initial = _band_rate(distributions[(dataset, "identity")], hub, None)
        sb = _band_rate(distributions[(dataset, "slashburn")], hub, None)
        ro = _band_rate(distributions[(dataset, "rabbit")], hub, None)
        shape_checks[f"{dataset}: SlashBurn reduces the hub miss rate"] = sb < initial
        shape_checks[f"{dataset}: SlashBurn beats Rabbit-Order on hubs"] = sb < ro
    # The extended RAs (ROADMAP item 3): DBG's hot-first degree classes
    # concentrate hub reuse (type II) like HubSort, so hub misses drop on
    # the skewed social graphs; per-community packing attacks LDV spatial
    # locality (type IV/V) exactly where Rabbit-Order does — web graphs.
    for dataset in SOCIAL_DATASETS:
        hub = workloads.graph(dataset).hub_threshold
        initial = _band_rate(distributions[(dataset, "identity")], hub, None)
        dbg = _band_rate(distributions[(dataset, "dbg")], hub, None)
        shape_checks[f"{dataset}: DBG reduces the hub miss rate"] = dbg < initial
    for dataset in WEB_DATASETS:
        avg = workloads.graph(dataset).average_degree
        initial = _band_rate(distributions[(dataset, "identity")], None, avg)
        community = _band_rate(distributions[(dataset, "community")], None, avg)
        shape_checks[
            f"{dataset}: per-community order lowers the LDV miss rate"
        ] = community < initial

    return ExperimentReport(
        experiment_id="fig1",
        title="Cache miss rate degree distribution (Figure 1 analogue)",
        text="\n\n".join(sections),
        data={"distributions": distributions},
        shape_checks=shape_checks,
    )


def _band_rate(dist, min_degree, max_degree) -> float:
    """Aggregate miss rate (%) over the bins inside a degree band."""
    lower = dist.bins.lower[:-1]
    mask = np.ones(lower.shape[0], dtype=bool)
    if min_degree is not None:
        mask &= dist.bins.lower[1:] > min_degree
    if max_degree is not None:
        mask &= lower <= max_degree
    accesses = dist.accesses[mask].sum()
    if accesses == 0:
        return float("nan")
    return float(dist.misses[mask].sum() / accesses * 100.0)
