"""Table I — dataset inventory.

The paper's Table I lists its nine datasets with vertex/edge counts and
type (web graph vs social network).  This reproduction lists the scaled
synthetic analogues and verifies the structural property that separates
the two families throughout the paper: social networks are strongly
reciprocal, web graphs are not.
"""

from __future__ import annotations

from repro.core.asymmetricity import reciprocity
from repro.core.report import format_table
from repro.generate.datasets import DATASETS

from repro.bench.harness import ExperimentReport
from repro.bench.workloads import Workloads


def run(workloads: Workloads) -> ExperimentReport:
    rows = []
    reciprocities: dict[str, float] = {}
    for name, spec in DATASETS.items():
        graph = workloads.graph(name)
        r = reciprocity(graph)
        reciprocities[name] = r
        rows.append(
            [
                name,
                spec.paper_name,
                spec.family,
                graph.num_vertices,
                graph.num_edges,
                graph.average_degree,
                int(graph.in_degrees().max(initial=0)),
                int(graph.out_degrees().max(initial=0)),
                r * 100.0,
            ]
        )

    text = format_table(
        ["dataset", "stands in for", "type", "|V|", "|E|", "avg deg",
         "max in", "max out", "recip %"],
        rows,
    )
    social = [reciprocities[n] for n, s in DATASETS.items() if s.family == "SN"]
    web = [reciprocities[n] for n, s in DATASETS.items() if s.family == "WG"]
    shape_checks = {
        "social networks are more reciprocal than every web graph":
            min(social) > max(web),
        "all nine Table I datasets generated": len(rows) == 9,
    }
    return ExperimentReport(
        experiment_id="table1",
        title="Datasets (scaled synthetic analogues of Table I)",
        text=text,
        data={"rows": rows},
        shape_checks=shape_checks,
    )
