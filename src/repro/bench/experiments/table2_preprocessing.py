"""Table II — preprocessing time and memory footprint of the RAs.

The paper measures each RA's reordering time (seconds) and peak memory
(GB).  At this scale the absolute numbers shrink by orders of
magnitude; the report keeps the same rows (dataset x {SB, GO, RO}) in
seconds and MB.
"""

from __future__ import annotations

from repro.core.report import format_table
from repro.graph.permute import is_permutation

from repro.bench.harness import ExperimentReport
from repro.bench.workloads import SIM_DATASETS, Workloads

_ALGORITHMS = ("slashburn", "gorder", "rabbit")


def run(workloads: Workloads) -> ExperimentReport:
    rows = []
    valid = True
    for dataset in SIM_DATASETS:
        graph = workloads.graph(dataset)
        row: list = [dataset]
        for algorithm in _ALGORITHMS:
            # Time comes from the untracked run (tracemalloc inflates it).
            result = workloads.reordering(dataset, algorithm)
            valid &= is_permutation(result.relabeling, graph.num_vertices)
            row.append(result.preprocessing_seconds)
        for algorithm in _ALGORITHMS:
            tracked = workloads.reordering(dataset, algorithm, track_memory=True)
            row.append(tracked.peak_memory_bytes / 1e6)
        rows.append(row)

    text = format_table(
        ["dataset", "SB time(s)", "GO time(s)", "RO time(s)",
         "SB mem(MB)", "GO mem(MB)", "RO mem(MB)"],
        rows,
        precision=3,
    )
    shape_checks = {
        "every RA produced a valid permutation on every dataset": valid,
        "every preprocessing run took measurable time":
            all(r[1] > 0 and r[2] > 0 and r[3] > 0 for r in rows),
    }
    return ExperimentReport(
        experiment_id="table2",
        title="RA preprocessing overheads (Table II analogue)",
        text=text,
        data={"rows": rows},
        shape_checks=shape_checks,
    )
