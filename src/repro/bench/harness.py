"""Experiment harness: run any paper table/figure and render its report.

Each experiment module under :mod:`repro.bench.experiments` exposes a
``run(workloads) -> ExperimentReport``; this module provides the report
type, a registry, and :func:`run_experiment` used by the benchmark
drivers, the examples and the CLI-style ``python -m``-ish entry points.
"""

from __future__ import annotations

import importlib
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.errors import ExperimentError
from repro.obs import enabled as obs_enabled
from repro.obs import metrics as obs_metrics
from repro.obs import span
from repro.store.manifest import environment_snapshot
from repro.store.store import ArtifactStore
from repro.bench.workloads import Workloads, workloads as default_workloads

__all__ = [
    "ExperimentReport",
    "EXPERIMENTS",
    "run_experiment",
    "run_experiments",
    "experiment_ids",
]


@dataclass
class ExperimentReport:
    """Rendered experiment output plus its structured data.

    ``data`` is experiment-specific (rows, series, matrices) so tests
    and downstream tooling can assert on values instead of re-parsing
    the rendered text.  ``shape_checks`` maps each paper claim the
    experiment verifies to a boolean outcome.  ``duration_s`` and
    ``environment`` are provenance the harness fills in — the same
    schema store manifests use (:func:`repro.store.manifest.environment_snapshot`).
    ``metrics`` holds the counter increments this experiment caused
    (``sim.accesses``, ``store.hit``, ...) when tracing is enabled.
    """

    experiment_id: str
    title: str
    text: str
    data: dict = field(default_factory=dict)
    shape_checks: dict[str, bool] = field(default_factory=dict)
    duration_s: float = 0.0
    environment: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)

    @property
    def all_shapes_hold(self) -> bool:
        return all(self.shape_checks.values())

    def render(self) -> str:
        lines = [f"== {self.experiment_id}: {self.title} ==", self.text]
        if self.shape_checks:
            lines.append("")
            lines.append("Shape checks (paper claim -> holds?):")
            for claim, holds in self.shape_checks.items():
                lines.append(f"  [{'ok' if holds else 'MISMATCH'}] {claim}")
        return "\n".join(lines)


#: Experiment id -> module path (one per paper table and figure).
EXPERIMENTS: dict[str, str] = {
    "table1": "repro.bench.experiments.table1_datasets",
    "table2": "repro.bench.experiments.table2_preprocessing",
    "table3": "repro.bench.experiments.table3_hub_misses",
    "table4": "repro.bench.experiments.table4_spmv",
    "table5": "repro.bench.experiments.table5_ecs",
    "table6": "repro.bench.experiments.table6_push_pull",
    "table7": "repro.bench.experiments.table7_slashburn_pp",
    "fig1": "repro.bench.experiments.fig1_missrate",
    "fig2": "repro.bench.experiments.fig2_sb_gcc",
    "fig3": "repro.bench.experiments.fig3_aid",
    "fig4": "repro.bench.experiments.fig4_asymmetricity",
    "fig5": "repro.bench.experiments.fig5_degree_range",
    "fig6": "repro.bench.experiments.fig6_hub_coverage",
    "sec8_edr": "repro.bench.experiments.sec8_edr",
    "scale_curve": "repro.bench.experiments.scale_curve",
}


def experiment_ids() -> list[str]:
    """All runnable experiment IDs."""
    return list(EXPERIMENTS)


def run_experiment(
    experiment_id: str, workloads: Workloads | None = None
) -> ExperimentReport:
    """Run one experiment and return its report."""
    if experiment_id not in EXPERIMENTS:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; available: {experiment_ids()}"
        )
    module = importlib.import_module(EXPERIMENTS[experiment_id])
    if workloads is None:
        workloads = default_workloads
    before = obs_metrics.registry.snapshot() if obs_enabled() else {}
    start = time.perf_counter()
    with span(f"bench.{experiment_id}"):
        report = module.run(workloads)
    if not isinstance(report, ExperimentReport):
        raise ExperimentError(
            f"experiment {experiment_id!r} returned {type(report).__name__}, "
            "expected ExperimentReport"
        )
    report.duration_s = time.perf_counter() - start
    if not report.environment:
        report.environment = environment_snapshot()
    if obs_enabled():
        report.metrics = obs_metrics.registry.counter_delta(before)
    return report


_EXECUTORS = ("serial", "thread", "process")


def _run_in_worker(
    experiment_id: str, store_root: "str | None", refresh: bool
) -> ExperimentReport:
    """Process-pool entry point: rebuild a (store-backed) cache and run.

    Each worker re-derives its workloads, but with a store root the
    expensive stages come back from disk — so a process fan-out shares
    work through the artifact store instead of recomputing per worker.
    """
    workloads = None
    if store_root is not None:
        workloads = Workloads(store=ArtifactStore(store_root), refresh=refresh)
    return run_experiment(experiment_id, workloads)


def run_experiments(
    ids: "list[str] | None" = None,
    workloads: Workloads | None = None,
    *,
    executor: str = "serial",
    max_workers: int | None = None,
    store: ArtifactStore | None = None,
    refresh: bool = False,
) -> "dict[str, ExperimentReport]":
    """Run several experiments, optionally fanned out across workers.

    Parameters
    ----------
    ids:
        Experiment IDs to run (defaults to all registered experiments).
    workloads:
        Shared workload cache; only valid for ``serial``/``thread``
        executors (process workers rebuild the default cache).
    executor:
        ``"serial"`` (default) runs in-process; ``"thread"`` uses a
        ``ThreadPoolExecutor`` (worthwhile only when several cores are
        available — NumPy releases the GIL for large array ops);
        ``"process"`` uses a ``ProcessPoolExecutor`` for full isolation
        at the cost of re-deriving workloads per worker.
    store:
        Attach an artifact store so every stage is memoized on disk.
        With the process executor the store *is* the sharing mechanism:
        workers pull stages other workers (or earlier runs) computed.
        Mutually exclusive with an explicit ``workloads``.
    refresh:
        Recompute every stage and overwrite its stored artifact.

    Returns reports keyed by experiment ID, in the order requested.
    Unknown IDs raise before anything runs.
    """
    if executor not in _EXECUTORS:
        raise ExperimentError(
            f"unknown executor {executor!r}; expected one of {_EXECUTORS}"
        )
    if store is not None and workloads is not None:
        raise ExperimentError(
            "pass either a workloads cache or a store (which builds one), not both"
        )
    if ids is None:
        ids = experiment_ids()
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        raise ExperimentError(
            f"unknown experiments {unknown!r}; available: {experiment_ids()}"
        )
    if executor in ("serial", "thread") and workloads is None and store is not None:
        workloads = Workloads(store=store, refresh=refresh)
    if executor == "serial":
        return {i: run_experiment(i, workloads) for i in ids}
    if executor == "process":
        if workloads is not None and store is None:
            raise ExperimentError(
                "a shared workloads cache cannot cross process boundaries; "
                "use executor='serial' or 'thread' with custom workloads, "
                "or pass a store for disk-level sharing"
            )
        store_root = str(store.root) if store is not None else None
        results: "dict[str, ExperimentReport]" = {}
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = {
                i: pool.submit(_run_in_worker, i, store_root, refresh) for i in ids
            }
            for i in ids:
                results[i] = futures[i].result()
        return results
    results = {}
    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        thread_futures = {i: pool.submit(run_experiment, i, workloads) for i in ids}
        for i in ids:
            results[i] = thread_futures[i].result()
    return results
