"""Experiment harness: run any paper table/figure and render its report.

Each experiment module under :mod:`repro.bench.experiments` exposes a
``run(workloads) -> ExperimentReport``; this module provides the report
type, a registry, and :func:`run_experiment` used by the benchmark
drivers, the examples and the CLI-style ``python -m``-ish entry points.
"""

from __future__ import annotations

import importlib
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.errors import ExperimentError
from repro.bench.workloads import Workloads, workloads as default_workloads

__all__ = [
    "ExperimentReport",
    "EXPERIMENTS",
    "run_experiment",
    "run_experiments",
    "experiment_ids",
]


@dataclass
class ExperimentReport:
    """Rendered experiment output plus its structured data.

    ``data`` is experiment-specific (rows, series, matrices) so tests
    and downstream tooling can assert on values instead of re-parsing
    the rendered text.  ``shape_checks`` maps each paper claim the
    experiment verifies to a boolean outcome.
    """

    experiment_id: str
    title: str
    text: str
    data: dict = field(default_factory=dict)
    shape_checks: dict[str, bool] = field(default_factory=dict)

    @property
    def all_shapes_hold(self) -> bool:
        return all(self.shape_checks.values())

    def render(self) -> str:
        lines = [f"== {self.experiment_id}: {self.title} ==", self.text]
        if self.shape_checks:
            lines.append("")
            lines.append("Shape checks (paper claim -> holds?):")
            for claim, holds in self.shape_checks.items():
                lines.append(f"  [{'ok' if holds else 'MISMATCH'}] {claim}")
        return "\n".join(lines)


#: Experiment id -> module path (one per paper table and figure).
EXPERIMENTS: dict[str, str] = {
    "table1": "repro.bench.experiments.table1_datasets",
    "table2": "repro.bench.experiments.table2_preprocessing",
    "table3": "repro.bench.experiments.table3_hub_misses",
    "table4": "repro.bench.experiments.table4_spmv",
    "table5": "repro.bench.experiments.table5_ecs",
    "table6": "repro.bench.experiments.table6_push_pull",
    "table7": "repro.bench.experiments.table7_slashburn_pp",
    "fig1": "repro.bench.experiments.fig1_missrate",
    "fig2": "repro.bench.experiments.fig2_sb_gcc",
    "fig3": "repro.bench.experiments.fig3_aid",
    "fig4": "repro.bench.experiments.fig4_asymmetricity",
    "fig5": "repro.bench.experiments.fig5_degree_range",
    "fig6": "repro.bench.experiments.fig6_hub_coverage",
    "sec8_edr": "repro.bench.experiments.sec8_edr",
}


def experiment_ids() -> list[str]:
    """All runnable experiment IDs."""
    return list(EXPERIMENTS)


def run_experiment(
    experiment_id: str, workloads: Workloads | None = None
) -> ExperimentReport:
    """Run one experiment and return its report."""
    if experiment_id not in EXPERIMENTS:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; available: {experiment_ids()}"
        )
    module = importlib.import_module(EXPERIMENTS[experiment_id])
    if workloads is None:
        workloads = default_workloads
    report = module.run(workloads)
    if not isinstance(report, ExperimentReport):
        raise ExperimentError(
            f"experiment {experiment_id!r} returned {type(report).__name__}, "
            "expected ExperimentReport"
        )
    return report


_EXECUTORS = ("serial", "thread", "process")


def run_experiments(
    ids: "list[str] | None" = None,
    workloads: Workloads | None = None,
    *,
    executor: str = "serial",
    max_workers: int | None = None,
) -> "dict[str, ExperimentReport]":
    """Run several experiments, optionally fanned out across workers.

    Parameters
    ----------
    ids:
        Experiment IDs to run (defaults to all registered experiments).
    workloads:
        Shared workload cache; only valid for ``serial``/``thread``
        executors (process workers rebuild the default cache).
    executor:
        ``"serial"`` (default) runs in-process; ``"thread"`` uses a
        ``ThreadPoolExecutor`` (worthwhile only when several cores are
        available — NumPy releases the GIL for large array ops);
        ``"process"`` uses a ``ProcessPoolExecutor`` for full isolation
        at the cost of re-deriving workloads per worker.

    Returns reports keyed by experiment ID, in the order requested.
    Unknown IDs raise before anything runs.
    """
    if executor not in _EXECUTORS:
        raise ExperimentError(
            f"unknown executor {executor!r}; expected one of {_EXECUTORS}"
        )
    if ids is None:
        ids = experiment_ids()
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        raise ExperimentError(
            f"unknown experiments {unknown!r}; available: {experiment_ids()}"
        )
    if executor == "serial":
        return {i: run_experiment(i, workloads) for i in ids}
    if executor == "process":
        if workloads is not None:
            raise ExperimentError(
                "a shared workloads cache cannot cross process boundaries; "
                "use executor='serial' or 'thread' with custom workloads"
            )
        pool_cls = ProcessPoolExecutor
        jobs = {i: (i, None) for i in ids}
    else:
        pool_cls = ThreadPoolExecutor
        jobs = {i: (i, workloads) for i in ids}
    results: "dict[str, ExperimentReport]" = {}
    with pool_cls(max_workers=max_workers) as pool:
        futures = {i: pool.submit(run_experiment, *args) for i, args in jobs.items()}
        for i in ids:
            results[i] = futures[i].result()
    return results
