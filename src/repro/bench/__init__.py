"""Experiment harness regenerating every table and figure of the paper."""

from repro.bench.harness import (
    EXPERIMENTS,
    ExperimentReport,
    experiment_ids,
    run_experiment,
    run_experiments,
)
from repro.bench.workloads import (
    SIM_DATASETS,
    SOCIAL_DATASETS,
    STUDIED_ALGORITHMS,
    WEB_DATASETS,
    Workloads,
    workloads,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentReport",
    "experiment_ids",
    "run_experiment",
    "run_experiments",
    "SIM_DATASETS",
    "SOCIAL_DATASETS",
    "STUDIED_ALGORITHMS",
    "WEB_DATASETS",
    "Workloads",
    "workloads",
]
