"""Shared workload definitions and caching for the experiment harness.

Every experiment draws its graphs, reorderings and simulations from
here, so repeated benchmark invocations of the same (dataset, RA,
config) combination are computed once per process.  Workload sizes
scale with ``REPRO_SCALE`` (see :mod:`repro.generate.datasets`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ExperimentError
from repro.generate.datasets import DATASETS, load_dataset
from repro.graph.graph import Graph
from repro.reorder import ReorderResult, get_algorithm
from repro.sim.simulator import SimulationConfig, SimulationResult, simulate_spmv

__all__ = [
    "SOCIAL_DATASETS",
    "WEB_DATASETS",
    "SIM_DATASETS",
    "STUDIED_ALGORITHMS",
    "Workloads",
    "workloads",
]

#: Dataset analogues used by the simulation-heavy experiments (two per
#: family keeps Table III/IV/V/VII and Figure 1 runtimes reasonable; the
#: cheap structural experiments use the full registry).
SOCIAL_DATASETS = ("twtr-mini", "frnd-mini")
WEB_DATASETS = ("sk-mini", "uu-mini")
SIM_DATASETS = SOCIAL_DATASETS + WEB_DATASETS

#: The RAs the paper studies, in its table column order (Bl, SB, GO, RO).
STUDIED_ALGORITHMS = ("identity", "slashburn", "gorder", "rabbit")


@dataclass(frozen=True)
class _SimKey:
    dataset: str
    algorithm: str
    direction: str
    with_scans: bool


class Workloads:
    """Process-wide cache of graphs, reorderings and simulations."""

    def __init__(self) -> None:
        self._graphs: dict[str, Graph] = {}
        self._reorderings: dict[tuple[str, str, bool], ReorderResult] = {}
        self._reordered_graphs: dict[tuple[str, str], Graph] = {}
        self._simulations: dict[_SimKey, SimulationResult] = {}

    def graph(self, dataset: str) -> Graph:
        """The named dataset analogue (generated once)."""
        if dataset not in self._graphs:
            self._graphs[dataset] = load_dataset(dataset)
        return self._graphs[dataset]

    def reordering(
        self, dataset: str, algorithm: str, *, track_memory: bool = False, **kwargs
    ) -> ReorderResult:
        """RA result on the dataset.

        ``track_memory=True`` wraps the run in tracemalloc (an order of
        magnitude slower), so only the Table II experiment requests it —
        and reads the preprocessing *time* from the untracked run.
        """
        key = (dataset, algorithm, track_memory)
        if key not in self._reorderings:
            graph = self.graph(dataset)
            self._reorderings[key] = get_algorithm(algorithm, **kwargs)(
                graph, track_memory=track_memory
            )
        return self._reorderings[key]

    def reordered_graph(self, dataset: str, algorithm: str) -> Graph:
        """The dataset rebuilt in the RA's new ID space."""
        key = (dataset, algorithm)
        if key not in self._reordered_graphs:
            if algorithm == "identity":
                self._reordered_graphs[key] = self.graph(dataset)
            else:
                result = self.reordering(dataset, algorithm)
                self._reordered_graphs[key] = result.apply(self.graph(dataset))
        return self._reordered_graphs[key]

    def simulation(
        self,
        dataset: str,
        algorithm: str = "identity",
        *,
        direction: str = "pull",
        with_scans: bool = True,
    ) -> SimulationResult:
        """Cached SpMV cache simulation of (dataset, RA, direction)."""
        key = _SimKey(dataset, algorithm, direction, with_scans)
        if key not in self._simulations:
            graph = self.reordered_graph(dataset, algorithm)
            config = SimulationConfig.scaled_for(graph, direction=direction)
            if with_scans:
                approx_len = graph.num_edges + graph.num_vertices // 4
                config = SimulationConfig(
                    cache=config.cache,
                    tlb=config.tlb,
                    num_threads=config.num_threads,
                    interleave_interval=config.interleave_interval,
                    scan_interval=max(1, approx_len // 64),
                    direction=config.direction,
                    promote_sequential=config.promote_sequential,
                    timing=config.timing,
                )
            self._simulations[key] = simulate_spmv(graph, config)
        return self._simulations[key]

    def family(self, dataset: str) -> str:
        """'SN' or 'WG' for a registered dataset."""
        if dataset not in DATASETS:
            raise ExperimentError(f"unknown dataset {dataset!r}")
        return DATASETS[dataset].family

    def clear(self) -> None:
        """Drop every cached artefact (tests use this for isolation)."""
        self._graphs.clear()
        self._reorderings.clear()
        self._reordered_graphs.clear()
        self._simulations.clear()


#: The shared process-wide instance the benchmarks use.
workloads = Workloads()
