"""Shared workload definitions and caching for the experiment harness.

Every experiment draws its graphs, reorderings and simulations from
here, so repeated benchmark invocations of the same (dataset, RA,
config) combination are computed once per process.  When a
:class:`~repro.store.store.ArtifactStore` is attached, each stage is
additionally memoized *on disk* through :func:`repro.store.memo.cached_stage`:
the expensive upstream stages (dataset build -> reorder -> rebuild ->
cache simulation) are computed once ever per (parameters, code version)
and every later run — in this process or the next — loads them back
verified from the store.  Workload sizes scale with ``REPRO_SCALE``
(see :mod:`repro.generate.datasets`), which participates in every
content key.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ExperimentError
from repro.generate.datasets import DATASETS, load_dataset, scale_factor
from repro.obs import span
from repro.graph.graph import Graph
from repro.reorder import ReorderResult, get_algorithm
from repro.sim.simulator import SimulationConfig, SimulationResult, simulate_spmv
from repro.store.manifest import RunManifest
from repro.store.memo import cached_stage
from repro.store.serializers import StoredSimulation
from repro.store.store import ArtifactStore

__all__ = [
    "SOCIAL_DATASETS",
    "WEB_DATASETS",
    "SIM_DATASETS",
    "STUDIED_ALGORITHMS",
    "EXTENDED_ALGORITHMS",
    "Workloads",
    "workloads",
]

#: Dataset analogues used by the simulation-heavy experiments (two per
#: family keeps Table III/IV/V/VII and Figure 1 runtimes reasonable; the
#: cheap structural experiments use the full registry).
SOCIAL_DATASETS = ("twtr-mini", "frnd-mini")
WEB_DATASETS = ("sk-mini", "uu-mini")
SIM_DATASETS = SOCIAL_DATASETS + WEB_DATASETS

#: The RAs the paper studies, in its table column order (Bl, SB, GO, RO).
STUDIED_ALGORITHMS = ("identity", "slashburn", "gorder", "rabbit")

#: RAs from the related literature (ROADMAP item 3) the simulation-heavy
#: experiments report alongside the paper's own columns: Degree-Based
#: Grouping, per-community composition, and trace-profiled clustering.
EXTENDED_ALGORITHMS = ("dbg", "community", "hisorder")


def _params_key(params: dict) -> tuple:
    """Hashable in-memory key component for algorithm kwargs."""
    return tuple(sorted(params.items()))


# -- store-backed pipeline stages -------------------------------------------
#
# Module-level functions so the `cached_stage` decorator key derivation
# stays independent of any Workloads instance; the instance threads its
# store/refresh/manifest through the reserved keyword arguments.

@cached_stage(
    "graph",
    code=("repro.generate", "repro.graph"),
    key=lambda dataset: {"dataset": dataset, "scale": scale_factor()},
)
def _graph_stage(dataset: str) -> Graph:
    return load_dataset(dataset)


@cached_stage(
    "reordering",
    code=("repro.generate", "repro.graph", "repro.reorder"),
    key=lambda graph, dataset, algorithm, track_memory, params, factory: {
        "dataset": dataset,
        "scale": scale_factor(),
        "algorithm": algorithm,
        "track_memory": track_memory,
        "params": params,
    },
)
def _reordering_stage(
    graph: Graph,
    dataset: str,
    algorithm: str,
    track_memory: bool,
    params: dict,
    factory: "Optional[Callable[[], object]]",
) -> ReorderResult:
    instance = factory() if factory is not None else get_algorithm(algorithm, **params)
    return instance(graph, track_memory=track_memory)  # type: ignore[operator]


@cached_stage(
    "reordered-graph",
    code=("repro.generate", "repro.graph", "repro.reorder"),
    key=lambda graph, result, dataset, algorithm, params: {
        "dataset": dataset,
        "scale": scale_factor(),
        "algorithm": algorithm,
        "params": params,
    },
)
def _reordered_graph_stage(
    graph: Graph,
    result: ReorderResult,
    dataset: str,
    algorithm: str,
    params: dict,
) -> Graph:
    return result.apply(graph)


@cached_stage(
    "simulation",
    code=("repro.generate", "repro.graph", "repro.reorder", "repro.sim"),
    key=lambda graph, config, dataset, algorithm, params, direction, with_scans, reverse: {
        "dataset": dataset,
        "scale": scale_factor(),
        "algorithm": algorithm,
        "params": params,
        "direction": direction,
        "with_scans": with_scans,
        "reverse": reverse,
    },
    encode=StoredSimulation.from_result,
    decode=lambda stored, graph, config, *rest: stored.to_result(graph, config),
)
def _simulation_stage(
    graph: Graph,
    config: SimulationConfig,
    dataset: str,
    algorithm: str,
    params: dict,
    direction: str,
    with_scans: bool,
    reverse: bool,
) -> SimulationResult:
    return simulate_spmv(graph, config)


def _scan_config(graph: Graph, direction: str) -> SimulationConfig:
    """The ECS-sampling config the simulation-heavy experiments use."""
    config = SimulationConfig.scaled_for(graph, direction=direction)
    approx_len = graph.num_edges + graph.num_vertices // 4
    return SimulationConfig(
        cache=config.cache,
        tlb=config.tlb,
        num_threads=config.num_threads,
        interleave_interval=config.interleave_interval,
        scan_interval=max(1, approx_len // 64),
        direction=config.direction,
        promote_sequential=config.promote_sequential,
        timing=config.timing,
    )


class Workloads:
    """Process-wide cache of graphs, reorderings and simulations.

    ``store`` attaches a content-addressed on-disk layer underneath the
    in-memory dictionaries; ``refresh=True`` recomputes every stage and
    overwrites its stored artifact.  ``manifest`` (created automatically)
    records one entry per stage call — hit or computed, with durations —
    and :attr:`stats` aggregates it for cache-behavior assertions.
    """

    def __init__(
        self,
        store: "ArtifactStore | None" = None,
        *,
        refresh: bool = False,
        manifest: "RunManifest | None" = None,
    ) -> None:
        self._store = store
        self._refresh = refresh
        self.manifest = manifest if manifest is not None else RunManifest.start()
        self._graphs: dict[str, Graph] = {}
        self._reorderings: dict[tuple, ReorderResult] = {}
        self._reordered_graphs: dict[tuple, Graph] = {}
        self._simulations: dict[tuple, SimulationResult] = {}

    @property
    def store(self) -> "ArtifactStore | None":
        return self._store

    @property
    def stats(self) -> dict:
        """Per-stage ``{"hits": n, "computed": n}`` from the manifest."""
        return self.manifest.counts()

    def _stage_kwargs(self) -> dict:
        return {
            "store": self._store,
            "refresh": self._refresh,
            "manifest": self.manifest,
        }

    def graph(self, dataset: str) -> Graph:
        """The named dataset analogue (generated once, store-backed)."""
        if dataset not in DATASETS:
            raise ExperimentError(
                f"unknown dataset {dataset!r}; available: {sorted(DATASETS)}"
            )
        if dataset not in self._graphs:
            with span("workload.graph", dataset=dataset):
                self._graphs[dataset] = _graph_stage(
                    dataset, **self._stage_kwargs()
                )
        return self._graphs[dataset]

    def reordering(
        self,
        dataset: str,
        algorithm: str,
        *,
        track_memory: bool = False,
        factory: "Callable[[], object] | None" = None,
        **kwargs,
    ) -> ReorderResult:
        """RA result on the dataset.

        ``kwargs`` parameterize the algorithm and join the memo key, so
        variants (a custom SlashBurn ``k``, an EDR window) cache
        independently.  ``factory`` builds a non-registry algorithm
        instance; the ``algorithm`` name + kwargs still form the key, so
        callers must give variant factories distinct names.

        ``track_memory=True`` wraps the run in tracemalloc (an order of
        magnitude slower), so only the Table II experiment requests it —
        and reads the preprocessing *time* from the untracked run.
        """
        key = (dataset, algorithm, track_memory, _params_key(kwargs))
        if key not in self._reorderings:
            graph = self.graph(dataset)
            with span("workload.reordering", dataset=dataset, algorithm=algorithm):
                self._reorderings[key] = _reordering_stage(
                    graph,
                    dataset,
                    algorithm,
                    track_memory,
                    dict(kwargs),
                    factory,
                    **self._stage_kwargs(),
                )
        return self._reorderings[key]

    def reordered_graph(
        self,
        dataset: str,
        algorithm: str,
        *,
        factory: "Callable[[], object] | None" = None,
        **kwargs,
    ) -> Graph:
        """The dataset rebuilt in the RA's new ID space."""
        key = (dataset, algorithm, _params_key(kwargs))
        if key not in self._reordered_graphs:
            if algorithm == "identity":
                self._reordered_graphs[key] = self.graph(dataset)
            else:
                result = self.reordering(
                    dataset, algorithm, factory=factory, **kwargs
                )
                self._reordered_graphs[key] = _reordered_graph_stage(
                    self.graph(dataset),
                    result,
                    dataset,
                    algorithm,
                    dict(kwargs),
                    **self._stage_kwargs(),
                )
        return self._reordered_graphs[key]

    def simulation(
        self,
        dataset: str,
        algorithm: str = "identity",
        *,
        direction: str = "pull",
        with_scans: bool = True,
        reverse: bool = False,
        factory: "Callable[[], object] | None" = None,
        **kwargs,
    ) -> SimulationResult:
        """Cached SpMV cache simulation of (dataset, RA, direction).

        ``reverse=True`` simulates the reversed graph (a CSR read
        traversal — Table VI's comparison); ``with_scans`` adds the
        periodic resident-set snapshots the ECS metric needs.
        """
        key = (dataset, algorithm, direction, with_scans, reverse, _params_key(kwargs))
        if key not in self._simulations:
            graph = self.reordered_graph(
                dataset, algorithm, factory=factory, **kwargs
            )
            if reverse:
                graph = graph.reversed()
            if with_scans:
                config = _scan_config(graph, direction)
            else:
                config = SimulationConfig.scaled_for(graph, direction=direction)
            with span("workload.simulation", dataset=dataset, algorithm=algorithm):
                self._simulations[key] = _simulation_stage(
                    graph,
                    config,
                    dataset,
                    algorithm,
                    dict(kwargs),
                    direction,
                    with_scans,
                    reverse,
                    **self._stage_kwargs(),
                )
        return self._simulations[key]

    def family(self, dataset: str) -> str:
        """'SN' or 'WG' for a registered dataset."""
        if dataset not in DATASETS:
            raise ExperimentError(f"unknown dataset {dataset!r}")
        return DATASETS[dataset].family

    def clear(self) -> None:
        """Drop every in-memory artefact (tests use this for isolation)."""
        self._graphs.clear()
        self._reorderings.clear()
        self._reordered_graphs.clear()
        self._simulations.clear()


#: The shared process-wide instance the benchmarks use (no disk store:
#: attaching one is an explicit choice of the examples CLI / harness).
workloads = Workloads()
