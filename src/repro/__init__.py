"""repro — locality analysis of graph reordering algorithms.

A from-scratch Python reproduction of *"Locality Analysis of Graph
Reordering Algorithms"* (Koohi Esfahani, Kilpatrick, Vandierendonck,
IISWC 2021): the paper's measurement toolkit (graph-specific cache
simulation, N2N AID, miss-rate degree distributions, effective cache
size), the three reordering algorithms it studies (SlashBurn, GOrder,
Rabbit-Order), its structural dataset analyses, and the improvements it
proposes (SlashBurn++, EDR restriction, the hybrid RO+GO ordering).

Quickstart::

    from repro import load_dataset, get_algorithm, LocalityAnalyzer

    graph = load_dataset("twtr-mini")
    result = get_algorithm("gorder")(graph)
    analyzer = LocalityAnalyzer(result.apply(graph))
    print(analyzer.miss_rate_distribution().series())
"""

from repro.core import (
    LocalityAnalyzer,
    aid_degree_distribution,
    aid_per_vertex,
    asymmetricity_degree_distribution,
    degree_range_decomposition,
    ecs_from_result,
    hub_coverage,
    hub_data_misses,
    measure_ecs,
    miss_rate_degree_distribution,
)
from repro.errors import (
    ExperimentError,
    GraphFormatError,
    PermutationError,
    ReorderingError,
    ReproError,
    SimulationError,
)
from repro.generate import (
    DATASETS,
    dataset_names,
    load_dataset,
    social_network,
    web_graph,
)
from repro.graph import Graph, build_graph, validate_graph
from repro.reorder import (
    ReorderResult,
    ReorderingAlgorithm,
    algorithm_names,
    get_algorithm,
)
from repro.sim import (
    CacheConfig,
    SimulationConfig,
    SimulationResult,
    TLBConfig,
    bfs_levels,
    pagerank,
    simulate_ihtl,
    simulate_spmv,
    spmv_pull,
    spmv_push,
    sssp_distances,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "LocalityAnalyzer",
    "aid_degree_distribution",
    "aid_per_vertex",
    "asymmetricity_degree_distribution",
    "degree_range_decomposition",
    "ecs_from_result",
    "hub_coverage",
    "hub_data_misses",
    "measure_ecs",
    "miss_rate_degree_distribution",
    "ExperimentError",
    "GraphFormatError",
    "PermutationError",
    "ReorderingError",
    "ReproError",
    "SimulationError",
    "DATASETS",
    "dataset_names",
    "load_dataset",
    "social_network",
    "web_graph",
    "Graph",
    "build_graph",
    "validate_graph",
    "ReorderResult",
    "ReorderingAlgorithm",
    "algorithm_names",
    "get_algorithm",
    "CacheConfig",
    "SimulationConfig",
    "SimulationResult",
    "TLBConfig",
    "bfs_levels",
    "pagerank",
    "simulate_ihtl",
    "simulate_spmv",
    "spmv_pull",
    "spmv_push",
    "sssp_distances",
]
