"""Linting engine: file discovery, parsing, rule dispatch, suppression.

The engine is deliberately free of rule knowledge: it parses each module
once, builds a :class:`ModuleContext`, runs every enabled rule from the
registry, then applies the two suppression layers — per-line
``# repro-lint: disable=RLxxx`` comments and the committed baseline file.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Sequence, Set, Tuple

from repro.errors import LintError
from repro.lint.baseline import Baseline
from repro.lint.config import LintConfig
from repro.lint.rules import (
    RULES,
    Finding,
    ModuleContext,
    Rule,
    Severity,
    collect_import_aliases,
    resolve_rules,
)

_ALL_CODES = frozenset(RULES) | {"RL000"}

__all__ = ["LintReport", "lint_paths", "lint_source"]

_DISABLE_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")


@dataclass
class LintReport:
    """Outcome of one lint run, after all suppression layers."""

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    disabled: int = 0  # count suppressed by inline disable comments
    files_checked: int = 0

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARN]

    @property
    def ok(self) -> bool:
        return not self.findings


def lint_paths(
    paths: Sequence[Path],
    config: LintConfig,
    *,
    baseline: "Baseline | None" = None,
    select: Iterable[str] = (),
) -> LintReport:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    rules = resolve_rules(select)
    rules = [r for r in rules if config.rule_enabled(r.code)]
    report = LintReport()
    raw: List[Finding] = []
    for path in _discover(paths):
        relpath = _relpath(path, config.root)
        try:
            source = path.read_text()
        except OSError as exc:
            raise LintError(f"cannot read {path}: {exc}") from exc
        file_findings, disabled = _lint_module(source, relpath, config, rules)
        raw.extend(file_findings)
        report.disabled += disabled
        report.files_checked += 1
    raw.sort(key=lambda f: (f.relpath, f.line, f.col, f.code))
    if baseline is not None:
        report.findings, report.baselined = baseline.filter(raw)
    else:
        report.findings = raw
    return report


def lint_source(
    source: str,
    relpath: str,
    config: LintConfig,
    *,
    select: Iterable[str] = (),
) -> List[Finding]:
    """Lint one in-memory module (test and tooling entry point)."""
    rules = [r for r in resolve_rules(select) if config.rule_enabled(r.code)]
    findings, _ = _lint_module(source, relpath, config, rules)
    findings.sort(key=lambda f: (f.line, f.col, f.code))
    return findings


def _lint_module(
    source: str,
    relpath: str,
    config: LintConfig,
    rules: Sequence[Rule],
) -> Tuple[List[Finding], int]:
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        finding = Finding(
            code="RL000",
            severity=Severity.ERROR,
            relpath=relpath,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            message=f"syntax error: {exc.msg}",
            source_line=(exc.text or "").strip(),
        )
        return [finding], 0
    module = ModuleContext(
        path=config.root / relpath,
        relpath=relpath,
        tree=tree,
        lines=lines,
        config=config,
    )
    collect_import_aliases(module)
    findings: List[Finding] = []
    disabled = 0
    for rule in rules:
        for finding in rule.check(module):
            if finding.code in _disabled_codes(module, finding.line):
                disabled += 1
            else:
                findings.append(finding)
    return findings, disabled


def _disabled_codes(module: ModuleContext, lineno: int) -> Set[str]:
    """Rule codes disabled on one physical line (``all`` disables every rule)."""
    match = _DISABLE_RE.search(module.source_line(lineno))
    if not match:
        return set()
    codes = {token.strip() for token in match.group(1).split(",") if token.strip()}
    if "all" in codes:
        return set(_ALL_CODES)
    return codes


def _discover(paths: Sequence[Path]) -> List[Path]:
    files: List[Path] = []
    seen: Set[Path] = set()
    for path in paths:
        if not path.exists():
            raise LintError(f"no such file or directory: {path}")
        candidates = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                files.append(candidate)
    return files


def _relpath(path: Path, root: Path) -> str:
    resolved = path.resolve()
    try:
        return resolved.relative_to(root.resolve()).as_posix()
    except ValueError:
        return resolved.as_posix()
