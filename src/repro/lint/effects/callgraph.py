"""Project-wide call-graph construction for the effect analyzer.

Two layers:

:func:`summarize_module`
    Parses one module and extracts, per function, its *intrinsic*
    effects (direct ``time.time()``-style hazards, found by
    :mod:`repro.lint.effects.inference`), its declared-effect
    annotation, and every call site resolved as far as a single module
    can — to sibling/nested functions, imported project functions,
    classes (constructor and methods, including through parameter
    annotations, ``self`` attribute types and local constructor
    assignments).  The result is a :class:`ModuleSummary`, the unit the
    on-disk analysis cache stores.

:class:`ProjectIndex`
    Links the summaries: maps dotted module paths to summaries and
    resolves symbolic :class:`CallRef`\\ s to concrete function ids,
    walking class bases for method lookup.

Resolution is deliberately **optimistic**: a call the linker cannot
resolve statically (a callable parameter, a registry dispatch, a
method on an unannotated object) contributes *no* effects.  The
analyzer is a determinism tripwire with an explanation chain for every
alarm, not a soundness proof — DESIGN.md §12 spells out the contract.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.effects.inference import IntrinsicDetector
from repro.lint.effects.model import (
    CallRef,
    ClassSummary,
    FunctionSummary,
    ModuleSummary,
)

__all__ = ["module_dotted", "summarize_module", "ProjectIndex", "FunctionId"]

#: (relpath, qualname) — the global identity of one analyzed function.
FunctionId = Tuple[str, str]


def module_dotted(relpath: str) -> str:
    """Dotted module path of a project-relative ``.py`` file.

    A leading ``src/`` component is stripped so ``src/repro/sim/shard.py``
    resolves imports of ``repro.sim.shard``; ``__init__.py`` names the
    package itself.
    """
    parts = relpath.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return ""
    leaf = parts[-1]
    if leaf == "__init__.py":
        parts = parts[:-1]
    elif leaf.endswith(".py"):
        parts[-1] = leaf[: -len(".py")]
    return ".".join(parts)


class _ImportTable:
    """Module-wide import bindings (module-level and function-local)."""

    def __init__(self, tree: ast.Module, dotted: str, is_package: bool) -> None:
        #: local name -> dotted module path (``import x.y as z``)
        self.module_aliases: Dict[str, str] = {}
        #: local name -> (dotted module, attr) (``from x import y``)
        self.from_imports: Dict[str, Tuple[str, str]] = {}
        package = dotted if is_package else dotted.rsplit(".", 1)[0] if "." in dotted else ""
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.asname:
                        self.module_aliases[bound] = alias.name
                    else:
                        self.module_aliases[bound] = alias.name.split(".")[0]
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    anchor = package.split(".") if package else []
                    up = node.level - 1
                    if up:
                        anchor = anchor[:-up] if up <= len(anchor) else []
                    base = ".".join(anchor + ([node.module] if node.module else []))
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self.from_imports[bound] = (base, alias.name)


def _attr_chain(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` as ``["a", "b", "c"]``; None for non-name-rooted chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def _decorator_name(dec: ast.expr) -> Optional[str]:
    """Trailing name of a decorator expression (``x``, ``m.x``, ``x(...)``)."""
    if isinstance(dec, ast.Call):
        dec = dec.func
    if isinstance(dec, ast.Attribute):
        return dec.attr
    if isinstance(dec, ast.Name):
        return dec.id
    return None


def _declared_from_decorators(
    decorators: Sequence[ast.expr],
) -> Optional[Tuple[str, ...]]:
    """Effect names from an AST-level ``@declares_effects(...)``."""
    for dec in decorators:
        if isinstance(dec, ast.Call) and _decorator_name(dec) == "declares_effects":
            names = tuple(
                arg.value
                for arg in dec.args
                if isinstance(arg, ast.Constant) and isinstance(arg.value, str)
            )
            return names
    return None


def _is_cached_stage(decorators: Sequence[ast.expr]) -> bool:
    return any(
        isinstance(dec, ast.Call) and _decorator_name(dec) == "cached_stage"
        for dec in decorators
    )


ClassRef = Tuple[Optional[str], str]  # (module-or-None, ClassName)


class _ModuleExtractor:
    """Single-module walk building the :class:`ModuleSummary`."""

    def __init__(self, tree: ast.Module, relpath: str, dotted: str) -> None:
        self.tree = tree
        self.relpath = relpath
        self.dotted = dotted
        is_package = relpath.endswith("__init__.py")
        self.imports = _ImportTable(tree, dotted, is_package)
        self.summary = ModuleSummary(relpath=relpath, dotted=dotted)
        #: every module-level binding (for global-mutate shadow checks)
        self.module_globals: Set[str] = set(self.imports.module_aliases)
        self.module_globals.update(self.imports.from_imports)
        self.top_functions: Set[str] = set()
        self.top_classes: Set[str] = set()
        self._collect_module_scope()

    # -- module scope ---------------------------------------------------

    def _collect_module_scope(self) -> None:
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.top_functions.add(node.name)
                self.module_globals.add(node.name)
            elif isinstance(node, ast.ClassDef):
                self.top_classes.add(node.name)
                self.module_globals.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    for name_node in ast.walk(target):
                        if isinstance(name_node, ast.Name):
                            self.module_globals.add(name_node.id)
                if (
                    len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, ast.Call)
                ):
                    ref = self._class_ref_of_call(node.value)
                    if ref is not None:
                        self.summary.global_types[node.targets[0].id] = ref
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                self.module_globals.add(node.target.id)

    def _class_ref_of_name(self, name: str) -> Optional[ClassRef]:
        """Resolve a bare name to a (possibly imported) class reference."""
        if name in self.top_classes:
            return (None, name)
        if name in self.imports.from_imports:
            module, attr = self.imports.from_imports[name]
            return (module, attr)
        return None

    def _class_ref_of_call(self, call: ast.Call) -> Optional[ClassRef]:
        """``ClassName(...)`` / ``mod.ClassName(...)`` as a class ref."""
        chain = _attr_chain(call.func)
        if chain is None:
            return None
        if len(chain) == 1:
            return self._class_ref_of_name(chain[0])
        if len(chain) == 2 and chain[0] in self.imports.module_aliases:
            return (self.imports.module_aliases[chain[0]], chain[1])
        return None

    def _class_ref_of_annotation(self, ann: Optional[ast.expr]) -> Optional[ClassRef]:
        """Unwrap ``C``, ``Optional[C]``, ``C | None``, ``"C | None"``."""
        if ann is None:
            return None
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            try:
                ann = ast.parse(ann.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(ann, ast.Subscript):
            chain = _attr_chain(ann.value)
            wrapper = chain[-1] if chain else None
            if wrapper in ("Optional", "Union"):
                inner = ann.slice
                if isinstance(inner, ast.Tuple):
                    for elt in inner.elts:
                        ref = self._class_ref_of_annotation(elt)
                        if ref is not None:
                            return ref
                    return None
                return self._class_ref_of_annotation(inner)
            return None
        if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
            return self._class_ref_of_annotation(
                ann.left
            ) or self._class_ref_of_annotation(ann.right)
        if isinstance(ann, ast.Name):
            return self._class_ref_of_name(ann.id)
        if isinstance(ann, ast.Attribute):
            chain = _attr_chain(ann)
            if chain and len(chain) == 2 and chain[0] in self.imports.module_aliases:
                return (self.imports.module_aliases[chain[0]], chain[1])
        return None

    # -- extraction -----------------------------------------------------

    def run(self) -> ModuleSummary:
        self._walk_body(self.tree.body, prefix="", class_name=None, enclosing=[])
        return self.summary

    def _walk_body(
        self,
        body: Sequence[ast.stmt],
        prefix: str,
        class_name: Optional[str],
        enclosing: List[Dict[str, str]],
    ) -> None:
        """Recursive scope walk registering functions and classes.

        ``enclosing`` maps visible nested-function names to qualnames,
        innermost scope last, so sibling/outer nested calls resolve.
        """
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{node.name}"
                self._extract_function(node, qualname, class_name, enclosing)
                nested_scope = {
                    child.name: f"{qualname}.{child.name}"
                    for child in node.body
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                }
                self._walk_body(
                    node.body,
                    prefix=f"{qualname}.",
                    class_name=None,
                    enclosing=enclosing + [nested_scope],
                )
            elif isinstance(node, ast.ClassDef):
                qualname = f"{prefix}{node.name}"
                self._extract_class(node, qualname)
                self._walk_body(
                    node.body,
                    prefix=f"{qualname}.",
                    class_name=qualname,
                    enclosing=enclosing,
                )

    def _extract_class(self, node: ast.ClassDef, qualname: str) -> None:
        cls = ClassSummary(name=qualname)
        for base in node.bases:
            chain = _attr_chain(base)
            if chain is None:
                continue
            if len(chain) == 1:
                ref = self._class_ref_of_name(chain[0])
                if ref is not None:
                    cls.bases.append(ref)
            elif len(chain) == 2 and chain[0] in self.imports.module_aliases:
                cls.bases.append((self.imports.module_aliases[chain[0]], chain[1]))
        for child in node.body:
            if isinstance(child, ast.AnnAssign) and isinstance(child.target, ast.Name):
                ref = self._class_ref_of_annotation(child.annotation)
                if ref is not None:
                    cls.attr_types[child.target.id] = ref
            elif (
                isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                and child.name == "__init__"
            ):
                for stmt in ast.walk(child):
                    if (
                        isinstance(stmt, ast.Assign)
                        and len(stmt.targets) == 1
                        and isinstance(stmt.targets[0], ast.Attribute)
                        and isinstance(stmt.targets[0].value, ast.Name)
                        and stmt.targets[0].value.id == "self"
                        and isinstance(stmt.value, ast.Call)
                    ):
                        ref = self._class_ref_of_call(stmt.value)
                        if ref is not None:
                            cls.attr_types[stmt.targets[0].attr] = ref
                    elif (
                        isinstance(stmt, ast.AnnAssign)
                        and isinstance(stmt.target, ast.Attribute)
                        and isinstance(stmt.target.value, ast.Name)
                        and stmt.target.value.id == "self"
                    ):
                        ref = self._class_ref_of_annotation(stmt.annotation)
                        if ref is not None:
                            cls.attr_types[stmt.target.attr] = ref
        self.summary.classes[qualname] = cls

    def _extract_function(
        self,
        node: "ast.FunctionDef | ast.AsyncFunctionDef",
        qualname: str,
        class_name: Optional[str],
        enclosing: List[Dict[str, str]],
    ) -> None:
        fn = FunctionSummary(
            qualname=qualname,
            lineno=node.lineno,
            declared=_declared_from_decorators(node.decorator_list),
            cached_stage=_is_cached_stage(node.decorator_list),
        )
        own_nodes = list(_own_nodes(node))
        local_types = self._local_types(node, own_nodes)
        locals_bound = _local_bindings(node, own_nodes)
        aliases = _global_aliases(own_nodes, self.module_globals, locals_bound)

        detector = IntrinsicDetector(
            imports=self.imports,
            local_shadow=locals_bound,
            module_globals=self.module_globals,
            global_aliases=aliases,
        )
        fn.intrinsics = detector.scan(own_nodes)

        nested_here = {
            child.name: f"{qualname}.{child.name}"
            for child in node.body
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        scopes = enclosing + [nested_here]
        for sub in own_nodes:
            if isinstance(sub, ast.Call):
                ref = self._resolve_call(sub, class_name, local_types, scopes, locals_bound)
                if ref is not None:
                    fn.calls.append(ref)
        self.summary.functions[qualname] = fn

    def _local_types(
        self,
        node: "ast.FunctionDef | ast.AsyncFunctionDef",
        own_nodes: Sequence[ast.AST],
    ) -> Dict[str, ClassRef]:
        """Parameter-annotation and constructor-assignment types."""
        types: Dict[str, ClassRef] = {}
        args = node.args
        all_args = (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        )
        for arg in all_args:
            ref = self._class_ref_of_annotation(arg.annotation)
            if ref is not None:
                types[arg.arg] = ref
        for sub in own_nodes:
            if (
                isinstance(sub, ast.Assign)
                and len(sub.targets) == 1
                and isinstance(sub.targets[0], ast.Name)
                and isinstance(sub.value, ast.Call)
            ):
                ref = self._class_ref_of_call(sub.value)
                if ref is not None:
                    types[sub.targets[0].id] = ref
            elif (
                isinstance(sub, ast.AnnAssign)
                and isinstance(sub.target, ast.Name)
            ):
                ref = self._class_ref_of_annotation(sub.annotation)
                if ref is not None:
                    types[sub.target.id] = ref
        return types

    def _resolve_call(
        self,
        call: ast.Call,
        class_name: Optional[str],
        local_types: Dict[str, ClassRef],
        scopes: List[Dict[str, str]],
        locals_bound: Set[str],
    ) -> Optional[CallRef]:
        chain = _attr_chain(call.func)
        if chain is None:
            return None
        line = call.lineno
        head = chain[0]
        # self.method() / self.attr.method()
        if head == "self" and class_name is not None:
            cls = self.summary.classes.get(class_name)
            if len(chain) == 2:
                return CallRef(None, f"{class_name}.{chain[1]}", line)
            if len(chain) == 3 and cls is not None:
                attr_type = cls.attr_types.get(chain[1])
                if attr_type is not None:
                    return CallRef(attr_type[0], f"{attr_type[1]}.{chain[2]}", line)
            return None
        # typed local / parameter: obj.method()
        if head in local_types and len(chain) == 2:
            mod, cls_name = local_types[head]
            return CallRef(mod, f"{cls_name}.{chain[1]}", line)
        if head in locals_bound:
            return None  # other locals shadow everything below
        # plain name: nested scopes, then module functions/classes, imports
        if len(chain) == 1:
            for scope in reversed(scopes):
                if head in scope:
                    return CallRef(None, scope[head], line)
            if head in self.top_functions or head in self.top_classes:
                return CallRef(None, head, line)
            if head in self.imports.from_imports:
                module, attr = self.imports.from_imports[head]
                return CallRef(module, attr, line)
            return None
        # module alias: mod.func(), mod.var.method()
        if head in self.imports.module_aliases:
            return CallRef(
                self.imports.module_aliases[head], ".".join(chain[1:]), line
            )
        # from-import: name.method() (class-or-module attribute)
        if head in self.imports.from_imports:
            module, attr = self.imports.from_imports[head]
            return CallRef(module, ".".join([attr] + chain[1:]), line)
        # module-level class or typed module-level var
        if head in self.top_classes and len(chain) == 2:
            return CallRef(None, f"{head}.{chain[1]}", line)
        if head in self.summary.global_types and len(chain) == 2:
            mod, cls_name = self.summary.global_types[head]
            return CallRef(mod, f"{cls_name}.{chain[1]}", line)
        return None


def _own_nodes(
    node: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> Iterator[ast.AST]:
    """The nodes belonging to one function body, excluding nested defs.

    Nested functions/classes are separate analysis units (their effects
    flow only through resolved calls); lambda bodies and decorator
    expressions are likewise deferred work, not part of this body's
    execution, and are skipped (documented optimism, DESIGN.md §12).
    """
    stack: List[ast.AST] = list(node.body)
    while stack:
        current = stack.pop()
        yield current
        if isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(current))


def _local_bindings(
    node: "ast.FunctionDef | ast.AsyncFunctionDef",
    own_nodes: Sequence[ast.AST],
) -> Set[str]:
    """Names bound locally (params + any Store), minus ``global`` names."""
    bound: Set[str] = set()
    args = node.args
    for arg in (
        list(args.posonlyargs)
        + list(args.args)
        + list(args.kwonlyargs)
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        bound.add(arg.arg)
    declared_global: Set[str] = set()
    for sub in own_nodes:
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, (ast.Store, ast.Del)):
            bound.add(sub.id)
        elif isinstance(sub, ast.Global):
            declared_global.update(sub.names)
        elif isinstance(sub, (ast.Import, ast.ImportFrom)):
            for alias in sub.names:
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(sub.name)
    return bound - declared_global


def _global_aliases(
    own_nodes: Sequence[ast.AST],
    module_globals: Set[str],
    locals_bound: Set[str],
) -> Dict[str, str]:
    """Locals that alias a module-level name (``state = _STATE``).

    Single-assignment only: a name reassigned anywhere else in the
    function is dropped (it may point elsewhere by mutation time).
    """
    candidates: Dict[str, str] = {}
    reassigned: Set[str] = set()
    store_counts: Dict[str, int] = {}
    for sub in own_nodes:
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, (ast.Store, ast.Del)):
            store_counts[sub.id] = store_counts.get(sub.id, 0) + 1
    for sub in own_nodes:
        if (
            isinstance(sub, ast.Assign)
            and len(sub.targets) == 1
            and isinstance(sub.targets[0], ast.Name)
            and isinstance(sub.value, ast.Name)
            and sub.value.id in module_globals
            and sub.value.id not in locals_bound
        ):
            name = sub.targets[0].id
            if store_counts.get(name, 0) == 1:
                candidates[name] = sub.value.id
            else:
                reassigned.add(name)
    return {k: v for k, v in candidates.items() if k not in reassigned}


def summarize_module(source: str, relpath: str) -> ModuleSummary:
    """Parse and summarize one module (raises ``SyntaxError`` as-is)."""
    tree = ast.parse(source, filename=relpath)
    return _ModuleExtractor(tree, relpath, module_dotted(relpath)).run()


class ProjectIndex:
    """Linked view over every module summary in the analyzed tree."""

    def __init__(self, summaries: Sequence[ModuleSummary]) -> None:
        self.by_relpath: Dict[str, ModuleSummary] = {
            s.relpath: s for s in summaries
        }
        self.by_dotted: Dict[str, ModuleSummary] = {}
        for summary in summaries:
            if summary.dotted:
                self.by_dotted[summary.dotted] = summary

    def functions(self) -> Iterator[Tuple[FunctionId, FunctionSummary]]:
        for summary in self.by_relpath.values():
            for qualname, fn in summary.functions.items():
                yield (summary.relpath, qualname), fn

    def get(self, fid: FunctionId) -> Optional[FunctionSummary]:
        summary = self.by_relpath.get(fid[0])
        if summary is None:
            return None
        return summary.functions.get(fid[1])

    def resolve(self, caller: ModuleSummary, ref: CallRef) -> Optional[FunctionId]:
        """Concrete function id for a call reference, or None (dropped)."""
        target = caller if ref.module is None else self.by_dotted.get(ref.module)
        if target is None:
            return None
        return self._resolve_in(
            target, ref.qualname, cross_module=ref.module is not None, depth=0
        )

    def _resolve_in(
        self, target: ModuleSummary, qualname: str, cross_module: bool, depth: int
    ) -> Optional[FunctionId]:
        if depth > 4:
            return None
        if qualname in target.functions:
            return (target.relpath, qualname)
        parts = qualname.split(".")
        if parts[0] in target.classes:
            method = parts[1] if len(parts) > 1 else "__init__"
            return self._find_method(target, parts[0], method)
        if parts[0] in target.global_types and len(parts) == 2:
            mod, cls_name = target.global_types[parts[0]]
            home = target if mod is None else self.by_dotted.get(mod)
            if home is not None:
                return self._find_method(home, cls_name, parts[1])
        # submodule hop: ``from repro.sim import _kernels`` then
        # ``_kernels.kernel_mode(...)`` arrives as ("repro.sim",
        # "_kernels.kernel_mode") — descend into the real module.
        if target.dotted and len(parts) > 1:
            sub = self.by_dotted.get(f"{target.dotted}.{parts[0]}")
            if sub is not None:
                return self._resolve_in(
                    sub, ".".join(parts[1:]), cross_module=True, depth=depth + 1
                )
        # one package-indirection hop: ``from repro.store import cached_stage``
        # re-exports ``repro.store.memo.cached_stage`` — chase __init__ bodies
        # by scanning the package's sibling modules for the name.
        if cross_module and target.dotted and target.relpath.endswith("__init__.py"):
            prefix = target.dotted + "."
            for dotted in sorted(self.by_dotted):
                if not dotted.startswith(prefix):
                    continue
                summary = self.by_dotted[dotted]
                if qualname in summary.functions:
                    return (summary.relpath, qualname)
                if parts[0] in summary.classes:
                    method = parts[1] if len(parts) > 1 else "__init__"
                    found = self._find_method(summary, parts[0], method)
                    if found is not None:
                        return found
        return None

    def _find_method(
        self, module: ModuleSummary, class_name: str, method: str, depth: int = 0
    ) -> Optional[FunctionId]:
        """Method lookup walking base classes (bounded, cross-module)."""
        if depth > 8:
            return None
        cls = module.classes.get(class_name)
        if cls is None:
            return None
        qualname = f"{class_name}.{method}"
        if qualname in module.functions:
            return (module.relpath, qualname)
        for base_mod, base_name in cls.bases:
            home = module if base_mod is None else self.by_dotted.get(base_mod)
            if home is None:
                continue
            found = self._find_method(home, base_name, method, depth + 1)
            if found is not None:
                return found
        return None
