"""Vocabulary of the whole-program effect analyzer.

Effects are a fixed eight-element lattice (:data:`EFFECT_NAMES`,
shared with the runtime registry in :mod:`repro.lint.contracts`)
represented as bitmasks so the fixed-point propagation is integer
unions.  Every function carries two masks:

``undeclared``
    Effects reaching the function through chains that never cross a
    ``@declares_effects`` boundary — these are the hazards the
    contract rules (RL006/RL007) fire on.
``declared``
    Effects absorbed by an annotated function somewhere down the
    chain — audited carve-outs, reported but never failing.

Module summaries — the per-module intrinsic effects, declared sets and
symbolic call references — are plain dataclasses with exact JSON
round-trips, because they are what the on-disk analysis cache stores
(:mod:`repro.lint.effects.cache`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import LintError
from repro.lint.contracts import EFFECT_NAMES

__all__ = [
    "EFFECT_NAMES",
    "EFFECT_BIT",
    "DETERMINISTIC_FORBIDDEN",
    "REPLAY_SAFE_FORBIDDEN",
    "ALL_EFFECTS",
    "EFFECT_RULES",
    "mask_of",
    "mask_names",
    "IntrinsicEffect",
    "CallRef",
    "FunctionSummary",
    "ClassSummary",
    "ModuleSummary",
]

#: name -> single-bit mask, in lattice order.
EFFECT_BIT: Dict[str, int] = {name: 1 << i for i, name in enumerate(EFFECT_NAMES)}

ALL_EFFECTS: int = (1 << len(EFFECT_NAMES)) - 1


def mask_of(*names: str) -> int:
    """Union mask of the named effects (raises on unknown names)."""
    mask = 0
    for name in names:
        try:
            mask |= EFFECT_BIT[name]
        except KeyError:
            raise LintError(
                f"unknown effect {name!r}; known: {', '.join(EFFECT_NAMES)}"
            ) from None
    return mask


def mask_names(mask: int) -> Tuple[str, ...]:
    """The effect names present in a mask, in lattice order."""
    return tuple(name for name in EFFECT_NAMES if mask & EFFECT_BIT[name])


#: A ``@cached_stage`` function (and everything it calls) must carry
#: none of these undeclared: the content-addressed store assumes the
#: stage is a pure function of its fingerprinted inputs.
DETERMINISTIC_FORBIDDEN: int = mask_of("time", "rng-unseeded", "env-read")

#: Shard worker entry points additionally must not write shared state:
#: the serial≡process bit-exactness contract of ``repro.sim.shard``
#: leaves no channel through which a write could be replayed.
REPLAY_SAFE_FORBIDDEN: int = DETERMINISTIC_FORBIDDEN | mask_of(
    "fs-write", "global-mutate"
)

#: Whole-program rules the effect pass contributes (code -> (name,
#: default severity string)).  Kept here — not in the per-file rule
#: registry — because they need the cross-module analysis, but the CLI
#: folds them into ``--list-rules`` and the severity/disable config.
EFFECT_RULES: Dict[str, Tuple[str, str]] = {
    "RL006": ("nondeterministic-cached-stage", "error"),
    "RL007": ("impure-shard-worker", "error"),
    "RL008": ("undeclared-effect-escalation", "error"),
}


@dataclass(frozen=True)
class IntrinsicEffect:
    """One effect performed directly by a function body."""

    effect: str
    line: int
    detail: str  # human-readable source, e.g. "time.time()"

    def to_json(self) -> List[Any]:
        return [self.effect, self.line, self.detail]

    @classmethod
    def from_json(cls, data: List[Any]) -> "IntrinsicEffect":
        return cls(effect=data[0], line=int(data[1]), detail=data[2])


@dataclass(frozen=True)
class CallRef:
    """A statically resolved (or resolvable) call site.

    ``module`` is the dotted project-module path the callee lives in,
    or ``None`` for the current module; ``qualname`` is the dotted
    in-module path (``f``, ``C.m``, ``outer.inner``).  The linker drops
    references that resolve to nothing — the analyzer is deliberately
    optimistic about dynamic dispatch (DESIGN.md §12).
    """

    module: Optional[str]
    qualname: str
    line: int

    def to_json(self) -> List[Any]:
        return [self.module, self.qualname, self.line]

    @classmethod
    def from_json(cls, data: List[Any]) -> "CallRef":
        return cls(module=data[0], qualname=data[1], line=int(data[2]))


@dataclass
class FunctionSummary:
    """Everything the propagation needs to know about one function."""

    qualname: str
    lineno: int
    intrinsics: List[IntrinsicEffect] = field(default_factory=list)
    calls: List[CallRef] = field(default_factory=list)
    #: Effect names from ``@declares_effects(...)``; ``None`` = undecorated.
    declared: Optional[Tuple[str, ...]] = None
    #: True when decorated with ``@cached_stage(...)`` — an RL006 root.
    cached_stage: bool = False

    def to_json(self) -> Dict[str, Any]:
        return {
            "qualname": self.qualname,
            "lineno": self.lineno,
            "intrinsics": [i.to_json() for i in self.intrinsics],
            "calls": [c.to_json() for c in self.calls],
            "declared": list(self.declared) if self.declared is not None else None,
            "cached_stage": self.cached_stage,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "FunctionSummary":
        declared = data.get("declared")
        return cls(
            qualname=data["qualname"],
            lineno=int(data["lineno"]),
            intrinsics=[IntrinsicEffect.from_json(i) for i in data["intrinsics"]],
            calls=[CallRef.from_json(c) for c in data["calls"]],
            declared=tuple(declared) if declared is not None else None,
            cached_stage=bool(data.get("cached_stage", False)),
        )


@dataclass
class ClassSummary:
    """Per-class method/base/attribute-type tables for call resolution."""

    name: str
    #: Base classes as ``(module-or-None, ClassName)`` references.
    bases: List[Tuple[Optional[str], str]] = field(default_factory=list)
    #: ``self.<attr>`` types inferred from ``__init__`` constructor
    #: assignments and class-body annotations.
    attr_types: Dict[str, Tuple[Optional[str], str]] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "bases": [list(b) for b in self.bases],
            "attr_types": {k: list(v) for k, v in self.attr_types.items()},
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "ClassSummary":
        return cls(
            name=data["name"],
            bases=[(b[0], b[1]) for b in data["bases"]],
            attr_types={k: (v[0], v[1]) for k, v in data["attr_types"].items()},
        )


@dataclass
class ModuleSummary:
    """The cacheable analysis unit: one module's functions and classes."""

    relpath: str
    dotted: str
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    classes: Dict[str, ClassSummary] = field(default_factory=dict)
    #: Module-level names whose values are instances of a known class
    #: (``registry = MetricsRegistry()``), for attr-call resolution.
    global_types: Dict[str, Tuple[Optional[str], str]] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        return {
            "relpath": self.relpath,
            "dotted": self.dotted,
            "functions": {q: f.to_json() for q, f in self.functions.items()},
            "classes": {n: c.to_json() for n, c in self.classes.items()},
            "global_types": {k: list(v) for k, v in self.global_types.items()},
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "ModuleSummary":
        return cls(
            relpath=data["relpath"],
            dotted=data["dotted"],
            functions={
                q: FunctionSummary.from_json(f) for q, f in data["functions"].items()
            },
            classes={
                n: ClassSummary.from_json(c) for n, c in data["classes"].items()
            },
            global_types={
                k: (v[0], v[1]) for k, v in data["global_types"].items()
            },
        )
