"""Effect inference: intrinsic detectors + fixed-point propagation.

:class:`IntrinsicDetector` recognizes the *direct* effects a function
body performs — the ``time.time()`` call, the ``np.random.rand`` draw,
the ``os.environ`` read — by resolving attribute chains through the
module's import table.  :class:`EffectAnalysis` then propagates those
bits over the linked call graph to a fixed point, tracking two masks
per function:

``raw_und``
    Effects reaching the function through chains that never cross a
    ``@declares_effects`` boundary.  Contract rules fire on these.
``raw_dec``
    Effects absorbed by a declared carve-out somewhere down the chain —
    audited, visible in chains, never failing RL006/RL007.

An annotated function *exports* exactly its declared set (flagged
declared); its internal raw masks are still computed so RL008 can flag
stale annotations and so contract roots may carry their own carve-outs.
Witnesses (one per function × effect bit × channel) are assigned in a
single deterministic pass after convergence, so explanation chains are
stable under function reordering within a module.
"""

from __future__ import annotations

import ast
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.lint.effects.model import (
    EFFECT_BIT,
    EFFECT_NAMES,
    IntrinsicEffect,
    mask_of,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (callgraph imports us)
    from repro.lint.effects.callgraph import FunctionId, ProjectIndex, _ImportTable

__all__ = ["IntrinsicDetector", "EffectAnalysis", "Witness"]

#: ("intrinsic", line, detail) | ("call", callee_fid, line) | ("declared", line)
Witness = Tuple[object, ...]


# --------------------------------------------------------------------------
# intrinsic detection tables (full dotted call paths after import resolution)
# --------------------------------------------------------------------------

_TIME_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "time.clock_gettime_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: flagged only when called without explicit time data.
_TIME_DEFAULT_NOW = frozenset({"time.gmtime", "time.localtime", "time.ctime"})

_ENV_READ_METHODS = frozenset({"get", "items", "keys", "values", "copy"})
_ENV_MUTATE_METHODS = frozenset({"setdefault", "update", "pop", "popitem", "clear"})

_FS_WRITE_CALLS = frozenset(
    {
        "os.remove",
        "os.unlink",
        "os.rename",
        "os.replace",
        "os.rmdir",
        "os.removedirs",
        "os.makedirs",
        "os.mkdir",
        "os.utime",
        "os.symlink",
        "os.link",
        "os.truncate",
        "os.chmod",
        "os.chown",
        "shutil.copy",
        "shutil.copy2",
        "shutil.copyfile",
        "shutil.copytree",
        "shutil.move",
        "shutil.rmtree",
        "shutil.make_archive",
        "tempfile.mkstemp",
        "tempfile.mkdtemp",
        "tempfile.NamedTemporaryFile",
        "tempfile.TemporaryFile",
        "tempfile.SpooledTemporaryFile",
        "tempfile.TemporaryDirectory",
        "json.dump",
        "pickle.dump",
        "numpy.save",
        "numpy.savez",
        "numpy.savez_compressed",
        "numpy.savetxt",
    }
)

#: pathlib-style mutating methods, matched on any receiver (documented
#: over-approximation; ``replace``/``write`` are excluded — too common
#: on strings and streams).
_FS_WRITE_METHODS = frozenset(
    {
        "write_text",
        "write_bytes",
        "touch",
        "symlink_to",
        "hardlink_to",
    }
)

#: RNG constructors that fall back to OS entropy when called seedless.
_RNG_SEEDABLE_CONSTRUCTORS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.SeedSequence",
        "numpy.random.PCG64",
        "numpy.random.PCG64DXSM",
        "numpy.random.MT19937",
        "numpy.random.Philox",
        "numpy.random.SFC64",
        "numpy.random.RandomState",
        "random.Random",
    }
)

#: stdlib ``random`` module-level draw functions (module-global state;
#: treated as unseeded regardless of earlier ``random.seed`` calls).
_RANDOM_DRAWS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "expovariate",
        "betavariate",
        "triangular",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
        "getrandbits",
        "randbytes",
    }
)

_RNG_ALWAYS = frozenset(
    {"uuid.uuid1", "uuid.uuid4", "os.urandom", "random.SystemRandom"}
)

#: numpy legacy-API names that are *not* draws (seeding/construction).
_NUMPY_RANDOM_NON_DRAWS = frozenset(
    {
        "default_rng",
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "Philox",
        "SFC64",
        "RandomState",
        "seed",
    }
)

_THREAD_CALLS = frozenset(
    {
        "threading.Thread",
        "threading.Timer",
        "multiprocessing.Process",
        "multiprocessing.Pool",
        "multiprocessing.pool.ThreadPool",
        "concurrent.futures.ThreadPoolExecutor",
        "concurrent.futures.ProcessPoolExecutor",
        "subprocess.run",
        "subprocess.Popen",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
    }
)

#: spawn-ish methods on unresolved receivers (``ctx.Process(...)``).
_THREAD_METHODS = frozenset(
    {"Process", "Pool", "ThreadPoolExecutor", "ProcessPoolExecutor"}
)

#: calls producing unordered iterables (flagged only at iteration or
#: reduction sites; wrapping in ``sorted()`` naturally suppresses).
_UNORDERED_CALLS = frozenset(
    {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
)
_UNORDERED_METHODS = frozenset({"iterdir", "glob", "rglob", "scandir"})

#: order-insensitive consumers of unordered iterables — not flagged.
_ORDER_SAFE_CONSUMERS = frozenset(
    {"sorted", "min", "max", "len", "any", "all", "set", "frozenset"}
)


def _attr_chain(node: ast.AST) -> Optional[List[str]]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


class IntrinsicDetector:
    """Direct-effect scanner for one function body.

    ``imports`` is the module's import table (name → dotted module /
    (module, attr)); ``local_shadow`` the names bound locally (which
    shadow imports for resolution); ``module_globals`` every
    module-level binding and ``global_aliases`` locals that are
    single-assignment aliases of a module-level name — both feed the
    ``global-mutate`` detector.
    """

    def __init__(
        self,
        imports: "_ImportTable",
        local_shadow: Set[str],
        module_globals: Set[str],
        global_aliases: Dict[str, str],
    ) -> None:
        self.imports = imports
        self.local_shadow = local_shadow
        self.module_globals = module_globals
        self.global_aliases = global_aliases

    # -- chain resolution ------------------------------------------------

    def full_path(self, chain: Sequence[str]) -> Optional[str]:
        """Canonical dotted path of a name chain through the imports."""
        head = chain[0]
        if head in self.local_shadow:
            return None
        if head in self.imports.module_aliases:
            return ".".join([self.imports.module_aliases[head], *chain[1:]])
        if head in self.imports.from_imports:
            module, attr = self.imports.from_imports[head]
            base = f"{module}.{attr}" if module else attr
            return ".".join([base, *chain[1:]])
        return None

    def _call_path(self, call: ast.Call) -> Tuple[Optional[str], Optional[List[str]]]:
        chain = _attr_chain(call.func)
        if chain is None:
            return None, None
        return self.full_path(chain), chain

    # -- entry point -----------------------------------------------------

    def scan(self, own_nodes: Sequence[ast.AST]) -> List[IntrinsicEffect]:
        found: Set[IntrinsicEffect] = set()
        global_decls: Set[str] = set()
        for node in own_nodes:
            if isinstance(node, ast.Global):
                global_decls.update(node.names)
        for node in own_nodes:
            if isinstance(node, ast.Call):
                self._scan_call(node, found)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                detail = self._unordered(node.iter)
                if detail is not None:
                    found.add(
                        IntrinsicEffect(
                            "dict-order-sensitive",
                            node.lineno,
                            f"iteration over {detail}",
                        )
                    )
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for gen in node.generators:
                    detail = self._unordered(gen.iter)
                    if detail is not None:
                        found.add(
                            IntrinsicEffect(
                                "dict-order-sensitive",
                                node.lineno,
                                f"comprehension over {detail}",
                            )
                        )
            elif isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                if node.id in global_decls:
                    found.add(
                        IntrinsicEffect(
                            "global-mutate",
                            node.lineno,
                            f"assignment to global {node.id!r}",
                        )
                    )
            elif isinstance(node, (ast.Attribute, ast.Subscript)) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                self._scan_mutation_target(node, found)
        return sorted(found, key=lambda i: (i.line, i.effect, i.detail))

    # -- call classification ---------------------------------------------

    def _scan_call(self, call: ast.Call, found: Set[IntrinsicEffect]) -> None:
        full, chain = self._call_path(call)
        line = call.lineno
        nargs = len(call.args)

        if full is not None:
            if full in _TIME_CALLS:
                found.add(IntrinsicEffect("time", line, f"{full}()"))
                return
            if full in _TIME_DEFAULT_NOW and nargs == 0 and not call.keywords:
                found.add(IntrinsicEffect("time", line, f"{full}() (implicit now)"))
                return
            if full == "time.strftime" and nargs < 2:
                found.add(
                    IntrinsicEffect("time", line, "time.strftime() (implicit now)")
                )
                return
            if full == "os.getenv":
                found.add(IntrinsicEffect("env-read", line, "os.getenv()"))
                return
            if full.startswith("os.environ."):
                method = full[len("os.environ.") :]
                if method in _ENV_MUTATE_METHODS:
                    found.add(
                        IntrinsicEffect(
                            "global-mutate", line, f"os.environ.{method}()"
                        )
                    )
                else:
                    found.add(
                        IntrinsicEffect("env-read", line, f"os.environ.{method}()")
                    )
                return
            if full == "os.putenv":
                found.add(IntrinsicEffect("global-mutate", line, "os.putenv()"))
                return
            if full in _FS_WRITE_CALLS:
                found.add(IntrinsicEffect("fs-write", line, f"{full}()"))
                return
            if full in _RNG_ALWAYS:
                found.add(IntrinsicEffect("rng-unseeded", line, f"{full}()"))
                return
            if full in _RNG_SEEDABLE_CONSTRUCTORS:
                if nargs == 0 and not call.keywords:
                    found.add(
                        IntrinsicEffect(
                            "rng-unseeded", line, f"{full}() without a seed"
                        )
                    )
                return
            if full.startswith("numpy.random."):
                attr = full[len("numpy.random.") :]
                if "." not in attr and attr not in _NUMPY_RANDOM_NON_DRAWS:
                    found.add(
                        IntrinsicEffect(
                            "rng-unseeded", line, f"legacy numpy.random.{attr}()"
                        )
                    )
                return
            if full.startswith("random."):
                attr = full[len("random.") :]
                if attr in _RANDOM_DRAWS:
                    found.add(
                        IntrinsicEffect(
                            "rng-unseeded", line, f"global random.{attr}()"
                        )
                    )
                return
            if full.startswith("secrets."):
                found.add(IntrinsicEffect("rng-unseeded", line, f"{full}()"))
                return
            if full in _THREAD_CALLS:
                found.add(IntrinsicEffect("thread-spawn", line, f"{full}()"))
                return

        if chain is not None and len(chain) == 1:
            name = chain[0]
            if name not in self.local_shadow:
                if name == "open":
                    mode = self._open_mode(call)
                    if mode is not None and any(c in mode for c in "wax+"):
                        found.add(
                            IntrinsicEffect(
                                "fs-write", line, f"open(..., {mode!r})"
                            )
                        )
                    return
                if name == "sum" and nargs >= 1:
                    detail = self._reduction_over_unordered(call.args[0])
                    if detail is not None:
                        found.add(
                            IntrinsicEffect(
                                "float-reduction-order",
                                line,
                                f"sum() over {detail}",
                            )
                        )
                    return
                if name in ("list", "tuple") and nargs >= 1:
                    detail = self._unordered(call.args[0])
                    if detail is not None:
                        found.add(
                            IntrinsicEffect(
                                "dict-order-sensitive",
                                line,
                                f"{name}() materializes {detail}",
                            )
                        )
                    return

        if chain is not None and len(chain) >= 2:
            method = chain[-1]
            if method in _FS_WRITE_METHODS:
                found.add(IntrinsicEffect("fs-write", line, f".{method}()"))
                return
            if method in _THREAD_METHODS:
                found.add(IntrinsicEffect("thread-spawn", line, f".{method}()"))
                return
            if method == "join" and nargs >= 1:
                detail = self._unordered(call.args[0])
                if detail is not None:
                    found.add(
                        IntrinsicEffect(
                            "dict-order-sensitive",
                            line,
                            f".join() over {detail}",
                        )
                    )

    @staticmethod
    def _open_mode(call: ast.Call) -> Optional[str]:
        mode: Optional[ast.expr] = None
        if len(call.args) >= 2:
            mode = call.args[1]
        else:
            for kw in call.keywords:
                if kw.arg == "mode":
                    mode = kw.value
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            return mode.value
        return None

    # -- unordered-iterable classification --------------------------------

    def _unordered(self, expr: ast.expr) -> Optional[str]:
        if isinstance(expr, ast.Set):
            return "a set literal"
        if isinstance(expr, ast.SetComp):
            return "a set comprehension"
        if isinstance(expr, ast.Call):
            chain = _attr_chain(expr.func)
            if chain is None:
                return None
            if (
                len(chain) == 1
                and chain[0] in ("set", "frozenset")
                and chain[0] not in self.local_shadow
            ):
                return f"{chain[0]}(...)"
            full = self.full_path(chain)
            if full in _UNORDERED_CALLS:
                return f"{full}()"
            if len(chain) >= 2 and chain[-1] in _UNORDERED_METHODS:
                return f".{chain[-1]}()"
        return None

    def _reduction_over_unordered(self, arg: ast.expr) -> Optional[str]:
        direct = self._unordered(arg)
        if direct is not None:
            return direct
        if isinstance(arg, (ast.GeneratorExp, ast.SetComp)):
            for gen in arg.generators:
                detail = self._unordered(gen.iter)
                if detail is not None:
                    return f"a generator over {detail}"
        return None

    # -- mutation targets --------------------------------------------------

    def _scan_mutation_target(
        self, target: ast.AST, found: Set[IntrinsicEffect]
    ) -> None:
        """Attribute/subscript stores whose base is module-level state."""
        base = target
        while isinstance(base, (ast.Attribute, ast.Subscript)):
            base = base.value
        if not isinstance(base, ast.Name):
            return
        name = base.id
        lineno = getattr(target, "lineno", 0)
        # os.environ[...] = ... is both env and global mutation surface
        if isinstance(target, ast.Subscript):
            chain = _attr_chain(target.value)
            if chain is not None and self.full_path(chain) == "os.environ":
                found.add(
                    IntrinsicEffect(
                        "global-mutate", lineno, "os.environ[...] assignment"
                    )
                )
                return
        if name == "self":
            return
        if name in self.global_aliases:
            found.add(
                IntrinsicEffect(
                    "global-mutate",
                    lineno,
                    f"mutation through alias {name!r} of module-level "
                    f"{self.global_aliases[name]!r}",
                )
            )
            return
        if name in self.local_shadow:
            return
        if name in self.module_globals:
            found.add(
                IntrinsicEffect(
                    "global-mutate",
                    lineno,
                    f"mutation of module-level {name!r}",
                )
            )


# --------------------------------------------------------------------------
# fixed-point propagation
# --------------------------------------------------------------------------


class EffectAnalysis:
    """Converged effect masks + witnesses over a linked project index."""

    def __init__(self, index: "ProjectIndex") -> None:
        self.index = index
        self.raw_und: Dict["FunctionId", int] = {}
        self.raw_dec: Dict["FunctionId", int] = {}
        self.declared_mask: Dict["FunctionId", int] = {}
        self.is_annotated: Dict["FunctionId", bool] = {}
        self._intrinsic: Dict["FunctionId", int] = {}
        self._edges: Dict["FunctionId", List[Tuple["FunctionId", int]]] = {}
        self.unresolved_calls: int = 0
        self.resolved_calls: int = 0
        self.wit_und: Dict[Tuple["FunctionId", int], Witness] = {}
        self.wit_dec: Dict[Tuple["FunctionId", int], Witness] = {}
        self._build()
        self._converge()
        self._assign_witnesses()

    # -- graph construction -----------------------------------------------

    def _build(self) -> None:
        for fid, fn in self.index.functions():
            mask = 0
            for intr in fn.intrinsics:
                mask |= EFFECT_BIT[intr.effect]
            self._intrinsic[fid] = mask
            self.raw_und[fid] = mask
            self.raw_dec[fid] = 0
            self.is_annotated[fid] = fn.declared is not None
            self.declared_mask[fid] = (
                mask_of(*fn.declared) if fn.declared is not None else 0
            )
            edges: List[Tuple["FunctionId", int]] = []
            seen: Set["FunctionId"] = set()
            caller_module = self.index.by_relpath[fid[0]]
            for ref in fn.calls:
                callee = self.index.resolve(caller_module, ref)
                if callee is None:
                    self.unresolved_calls += 1
                    continue
                self.resolved_calls += 1
                if callee not in seen and callee != fid:
                    seen.add(callee)
                    edges.append((callee, ref.line))
            self._edges[fid] = edges

    def export_und(self, fid: "FunctionId") -> int:
        return 0 if self.is_annotated[fid] else self.raw_und[fid]

    def export_dec(self, fid: "FunctionId") -> int:
        if self.is_annotated[fid]:
            return self.declared_mask[fid]
        return self.raw_dec[fid]

    def _converge(self) -> None:
        callers: Dict["FunctionId", Set["FunctionId"]] = {}
        for fid, edges in self._edges.items():
            for callee, _line in edges:
                callers.setdefault(callee, set()).add(fid)
        worklist: List["FunctionId"] = sorted(self._edges)
        queued: Set["FunctionId"] = set(worklist)
        while worklist:
            fid = worklist.pop()
            queued.discard(fid)
            und = self._intrinsic[fid]
            dec = 0
            for callee, _line in self._edges[fid]:
                und |= self.export_und(callee)
                dec |= self.export_dec(callee)
            if und == self.raw_und[fid] and dec == self.raw_dec[fid]:
                continue
            before_eu = self.export_und(fid)
            before_ed = self.export_dec(fid)
            self.raw_und[fid] = und
            self.raw_dec[fid] = dec
            if (
                self.export_und(fid) != before_eu
                or self.export_dec(fid) != before_ed
            ):
                for caller in callers.get(fid, ()):
                    if caller not in queued:
                        queued.add(caller)
                        worklist.append(caller)

    def _assign_witnesses(self) -> None:
        """One deterministic pass deriving witnesses from converged masks.

        Intrinsics (by line) take precedence over call edges (in body
        order), so a chain always bottoms out at the nearest concrete
        hazard and is independent of worklist scheduling.
        """
        for fid, fn in self.index.functions():
            for intr in fn.intrinsics:
                key = (fid, EFFECT_BIT[intr.effect])
                if key not in self.wit_und:
                    self.wit_und[key] = ("intrinsic", intr.line, intr.detail)
            if self.is_annotated[fid]:
                for name in EFFECT_NAMES:
                    bit = EFFECT_BIT[name]
                    if self.declared_mask[fid] & bit:
                        self.wit_dec.setdefault(
                            (fid, bit), ("declared", fn.lineno)
                        )
            for callee, line in self._edges[fid]:
                eu = self.export_und(callee)
                ed = self.export_dec(callee)
                for name in EFFECT_NAMES:
                    bit = EFFECT_BIT[name]
                    if eu & bit:
                        self.wit_und.setdefault((fid, bit), ("call", callee, line))
                    if ed & bit:
                        self.wit_dec.setdefault((fid, bit), ("call", callee, line))

    # -- reporting ---------------------------------------------------------

    def explain(self, fid: "FunctionId", effect: str) -> List[str]:
        """Human-readable call chain from ``fid`` down to the hazard.

        Follows the undeclared channel while possible (contract
        violations always have one), switching to the declared channel
        only when the effect reaches ``fid`` solely through carve-outs.
        """
        bit = EFFECT_BIT[effect]
        channel = self.wit_und if (self.raw_und.get(fid, 0) & bit) else self.wit_dec
        lines: List[str] = []
        current = fid
        visited: Set["FunctionId"] = set()
        while len(lines) < 50:
            if current in visited:
                lines.append("    ... (cycle)")
                break
            visited.add(current)
            witness = channel.get((current, bit))
            if witness is None:
                break
            kind = witness[0]
            if kind == "intrinsic":
                _, line, detail = witness
                lines.append(
                    f"    {current[0]}::{current[1]}:{line} -> {detail}"
                )
                break
            if kind == "declared":
                _, line = witness
                lines.append(
                    f"    {current[0]}::{current[1]}:{line} "
                    f"declares_effects({effect!r})"
                )
                break
            _, callee, line = witness
            assert isinstance(callee, tuple)
            lines.append(
                f"    {current[0]}::{current[1]}:{line} calls "
                f"{callee[0]}::{callee[1]}"
            )
            if channel is self.wit_und and not (self.raw_und.get(callee, 0) & bit):
                channel = self.wit_dec
            current = callee
        return lines

    def observed(self, fid: "FunctionId") -> int:
        """All effects reaching ``fid``, ignoring its own annotation."""
        return self.raw_und.get(fid, 0) | self.raw_dec.get(fid, 0)
