"""On-disk per-module analysis cache.

One JSON entry per analyzed module, keyed twice:

``source_sha``
    sha256 of the module's raw bytes — computable without parsing, so
    a warm hit never touches :mod:`ast` at all.
``analyzer_version``
    the store's ``code_version("repro.lint")`` fingerprint — any edit
    to the analyzer (new detector, changed resolution) invalidates the
    whole cache, mirroring how ``@cached_stage`` artifacts self-expire.

Entry filenames are ``sha256(relpath)`` so arbitrary project layouts
map to flat cache files; writes are atomic (tmp + ``os.replace``) so
concurrent lint runs never observe torn JSON.  Hits and misses tick the
``lint.effects.cache_hit`` / ``lint.effects.cache_miss`` counters in
:mod:`repro.obs` (no-ops unless observability is enabled).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Optional, Tuple

from repro.lint.effects.callgraph import summarize_module
from repro.lint.effects.model import ModuleSummary

__all__ = ["analyzer_version", "load_or_summarize", "entry_path"]

_FORMAT_VERSION = 1


def analyzer_version() -> str:
    """Cache-invalidation fingerprint: the analyzer's own source hash."""
    # Imported lazily: repro.store pulls in numpy-backed serializers the
    # pure-AST path otherwise never needs.
    from repro.store.fingerprint import code_version

    return code_version("repro.lint")


def entry_path(cache_dir: Path, relpath: str) -> Path:
    digest = hashlib.sha256(relpath.encode("utf-8")).hexdigest()
    return cache_dir / f"{digest}.json"


def load_or_summarize(
    path: Path,
    relpath: str,
    cache_dir: Optional[Path],
    version: str,
) -> Tuple[ModuleSummary, str, bool]:
    """(summary, source text, was-cache-hit) for one module.

    Raises ``SyntaxError`` (from :func:`ast.parse`) on the miss path;
    cache entries that are unreadable, mismatched, or malformed are
    treated as misses and overwritten.
    """
    from repro.obs.metrics import registry

    data = path.read_bytes()
    source = data.decode("utf-8")
    source_sha = hashlib.sha256(data).hexdigest()
    entry_file = entry_path(cache_dir, relpath) if cache_dir is not None else None

    if entry_file is not None:
        summary = _try_load(entry_file, source_sha, version)
        if summary is not None:
            registry.counter("lint.effects.cache_hit").inc()
            return summary, source, True

    registry.counter("lint.effects.cache_miss").inc()
    summary = summarize_module(source, relpath)
    if entry_file is not None:
        _write_entry(entry_file, source_sha, version, summary)
    return summary, source, False


def _try_load(
    entry_file: Path, source_sha: str, version: str
) -> Optional[ModuleSummary]:
    try:
        with open(entry_file, "r", encoding="utf-8") as fh:
            entry = json.load(fh)
    except (OSError, ValueError):
        return None
    if not isinstance(entry, dict):
        return None
    if (
        entry.get("format") != _FORMAT_VERSION
        or entry.get("source_sha") != source_sha
        or entry.get("analyzer_version") != version
    ):
        return None
    try:
        summary = ModuleSummary.from_json(entry["summary"])
    except (KeyError, TypeError, ValueError, IndexError):
        return None
    return summary


def _write_entry(
    entry_file: Path, source_sha: str, version: str, summary: ModuleSummary
) -> None:
    entry = {
        "format": _FORMAT_VERSION,
        "source_sha": source_sha,
        "analyzer_version": version,
        "summary": summary.to_json(),
    }
    try:
        entry_file.parent.mkdir(parents=True, exist_ok=True)
        tmp = entry_file.with_name(f"{entry_file.name}.{os.getpid()}.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(entry, fh, separators=(",", ":"), sort_keys=True)
        os.replace(tmp, entry_file)
    except OSError:
        # A read-only cache directory degrades to cold analysis; the
        # cache is an accelerator, never a correctness dependency.
        return
