"""Whole-program effect & determinism analysis (``--effects``).

Orchestrates the pass end to end: discover every ``.py`` file under the
requested paths, load-or-summarize each module through the on-disk
cache (:mod:`repro.lint.effects.cache`), link the summaries into a
project call graph (:mod:`repro.lint.effects.callgraph`), propagate
effects to a fixed point (:mod:`repro.lint.effects.inference`) and
evaluate the determinism contracts
(:mod:`repro.lint.effects.contracts`): RL006 nondeterministic cached
stage, RL007 impure shard worker, RL008 stale ``@declares_effects``
annotation.

This package is imported lazily by the CLI — never at
``repro.lint`` import time — because production modules import
``repro.lint.contracts`` (the decorator registry) which executes
``repro/lint/__init__.py``; an eager import here would re-enter
``repro.obs`` / ``repro.store`` while they are still initializing.
"""

from __future__ import annotations

import dataclasses
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set

from repro.errors import LintError
from repro.lint.config import LintConfig
from repro.lint.effects.cache import analyzer_version, load_or_summarize
from repro.lint.effects.callgraph import ProjectIndex
from repro.lint.effects.contracts import EffectFinding, evaluate_contracts
from repro.lint.effects.inference import EffectAnalysis
from repro.lint.effects.model import EFFECT_NAMES, EFFECT_RULES, ModuleSummary

__all__ = ["EffectReport", "analyze_effects", "EFFECT_NAMES", "EFFECT_RULES"]


@dataclass
class EffectReport:
    """Outcome of one ``--effects`` pass, before baseline filtering."""

    findings: List[EffectFinding] = field(default_factory=list)
    modules_analyzed: int = 0
    functions_analyzed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    disabled: int = 0  # suppressed by inline disable on the def line
    skipped_syntax: List[str] = field(default_factory=list)
    resolved_calls: int = 0
    unresolved_calls: int = 0
    contract_counts: Dict[str, int] = field(default_factory=dict)

    def summary_json(self) -> Dict[str, object]:
        """Machine-readable summary for CI step tables."""
        return {
            "modules_analyzed": self.modules_analyzed,
            "functions_analyzed": self.functions_analyzed,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "resolved_calls": self.resolved_calls,
            "unresolved_calls": self.unresolved_calls,
            "disabled_inline": self.disabled,
            "skipped_syntax": list(self.skipped_syntax),
            "contracts": dict(self.contract_counts),
        }


def analyze_effects(
    paths: Sequence[Path],
    config: LintConfig,
    *,
    cache_dir: Optional[Path] = None,
) -> EffectReport:
    """Run the whole-program pass over every module under ``paths``.

    ``cache_dir=None`` disables the on-disk cache (every module is
    parsed cold).  Modules that fail to parse are skipped here — the
    per-file engine already reports them as RL000.
    """
    # Local import: engine is cli-adjacent; keep this package importable
    # without dragging the full rule registry into non-CLI consumers.
    from repro.lint.engine import _DISABLE_RE, _discover, _relpath

    report = EffectReport()
    version = analyzer_version()
    summaries: List[ModuleSummary] = []
    source_lines: Dict[str, List[str]] = {}
    for path in _discover(paths):
        relpath = _relpath(path, config.root)
        try:
            summary, source, hit = load_or_summarize(
                path, relpath, cache_dir, version
            )
        except OSError as exc:
            raise LintError(f"cannot read {path}: {exc}") from exc
        except SyntaxError:
            report.skipped_syntax.append(relpath)
            continue
        summaries.append(summary)
        source_lines[relpath] = source.splitlines()
        report.modules_analyzed += 1
        if hit:
            report.cache_hits += 1
        else:
            report.cache_misses += 1

    index = ProjectIndex(summaries)
    analysis = EffectAnalysis(index)
    report.functions_analyzed = sum(
        len(s.functions) for s in summaries
    )
    report.resolved_calls = analysis.resolved_calls
    report.unresolved_calls = analysis.unresolved_calls

    findings, counts = evaluate_contracts(index, analysis, config)
    report.contract_counts = counts
    for ef in findings:
        if ef.finding.code in _disabled_codes(
            _DISABLE_RE, source_lines, ef.finding.relpath, ef.finding.line
        ):
            report.disabled += 1
            report.contract_counts[ef.finding.code] -= 1
            continue
        lines = source_lines.get(ef.finding.relpath)
        if lines and 1 <= ef.finding.line <= len(lines):
            ef.finding = dataclasses.replace(
                ef.finding, source_line=lines[ef.finding.line - 1].strip()
            )
        report.findings.append(ef)
    return report


def _disabled_codes(
    disable_re: "re.Pattern[str]",
    source_lines: Dict[str, List[str]],
    relpath: str,
    lineno: int,
) -> Set[str]:
    lines = source_lines.get(relpath)
    if not lines or not (1 <= lineno <= len(lines)):
        return set()
    match = disable_re.search(lines[lineno - 1])
    if not match:
        return set()
    codes = {tok.strip() for tok in match.group(1).split(",") if tok.strip()}
    if "all" in codes:
        return set(EFFECT_RULES)
    return codes
