"""Contract evaluation: RL006/RL007/RL008 over the converged analysis.

Contract roots come from two places:

* every function carrying a ``@cached_stage(...)`` decorator is
  automatically a *deterministic* root (RL006) — the content-addressed
  store assumes it is a pure function of its fingerprinted inputs;
* ``[tool.repro-lint]`` lists additional roots by
  ``relpath::qualname`` — ``effects-deterministic`` for RL006 (the memo
  wrapper itself) and ``effects-replay-safe`` for RL007 (shard worker
  entry points, which additionally must not write shared state).

A config entry naming a file outside the analyzed set is skipped (so
fixture projects run with the repo defaults), but an entry naming a
missing *function* in an analyzed file raises: that is a stale config.

RL008 audits every ``@declares_effects`` annotation: the function's
observed effects (its own intrinsics plus everything its callees
export, declared or not) must stay within the declaration — carve-outs
are audited claims, not opt-outs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.errors import LintError
from repro.lint.config import LintConfig
from repro.lint.effects.callgraph import FunctionId, ProjectIndex
from repro.lint.effects.inference import EffectAnalysis
from repro.lint.effects.model import (
    DETERMINISTIC_FORBIDDEN,
    EFFECT_RULES,
    REPLAY_SAFE_FORBIDDEN,
    mask_names,
)
from repro.lint.rules.base import Finding, Severity

__all__ = ["EffectFinding", "evaluate_contracts", "contract_roots"]


@dataclass
class EffectFinding:
    """A contract violation plus its call-graph explanation chain."""

    finding: Finding
    chain: Tuple[str, ...]


def contract_roots(
    index: ProjectIndex, config: LintConfig
) -> Tuple[List[FunctionId], List[FunctionId]]:
    """(deterministic roots, replay-safe roots), sorted and deduped."""
    deterministic: Set[FunctionId] = set()
    for fid, fn in index.functions():
        if fn.cached_stage:
            deterministic.add(fid)
    deterministic.update(
        _config_roots(index, config.effects_deterministic, "effects-deterministic")
    )
    replay_safe = set(
        _config_roots(index, config.effects_replay_safe, "effects-replay-safe")
    )
    return sorted(deterministic), sorted(replay_safe)


def _config_roots(
    index: ProjectIndex, specs: Sequence[str], key: str
) -> List[FunctionId]:
    roots: List[FunctionId] = []
    for spec in specs:
        relpath, sep, qualname = spec.partition("::")
        if not sep or not qualname:
            raise LintError(
                f"[tool.repro-lint] {key}: entry {spec!r} must be "
                "'relpath::qualname'"
            )
        module = index.by_relpath.get(relpath)
        if module is None:
            continue  # file not part of this run (fixture projects)
        if qualname not in module.functions:
            raise LintError(
                f"[tool.repro-lint] {key}: {spec!r} names no function in "
                f"{relpath} (stale entry?)"
            )
        roots.append((relpath, qualname))
    return roots


def evaluate_contracts(
    index: ProjectIndex,
    analysis: EffectAnalysis,
    config: LintConfig,
) -> Tuple[List[EffectFinding], Dict[str, int]]:
    """All effect-contract findings plus per-contract counts for CI."""
    det_roots, replay_roots = contract_roots(index, config)
    findings: List[EffectFinding] = []

    def emit(code: str, fid: FunctionId, effect: str, message: str) -> None:
        if not config.rule_enabled(code):
            return
        fn = index.get(fid)
        assert fn is not None
        default = Severity(EFFECT_RULES[code][1])
        findings.append(
            EffectFinding(
                finding=Finding(
                    code=code,
                    severity=config.severity_for(code, default),
                    relpath=fid[0],
                    line=fn.lineno,
                    col=0,
                    message=message,
                    source_line=f"def {fid[1].rsplit('.', 1)[-1]}",
                ),
                chain=tuple(analysis.explain(fid, effect)),
            )
        )

    for fid in det_roots:
        violation = (
            analysis.raw_und.get(fid, 0)
            & DETERMINISTIC_FORBIDDEN
            & ~analysis.declared_mask.get(fid, 0)
        )
        for effect in mask_names(violation):
            emit(
                "RL006",
                fid,
                effect,
                f"cached stage {fid[1]!r} can reach effect '{effect}' — "
                "memoized stages must be deterministic in their "
                "fingerprinted inputs (declare a carve-out with "
                "@declares_effects or remove the hazard)",
            )

    for fid in replay_roots:
        violation = (
            analysis.raw_und.get(fid, 0)
            & REPLAY_SAFE_FORBIDDEN
            & ~analysis.declared_mask.get(fid, 0)
        )
        for effect in mask_names(violation):
            emit(
                "RL007",
                fid,
                effect,
                f"shard worker {fid[1]!r} can reach effect '{effect}' — "
                "workers must be replay-safe (serial≡process bit-exactness "
                "leaves no channel for nondeterminism or shared writes)",
            )

    annotated = 0
    for fid, fn in sorted(index.functions()):
        if fn.declared is None:
            continue
        annotated += 1
        escaped = analysis.observed(fid) & ~analysis.declared_mask[fid]
        for effect in mask_names(escaped):
            emit(
                "RL008",
                fid,
                effect,
                f"{fid[1]!r} declares effects {sorted(fn.declared)} but can "
                f"also reach '{effect}' — the @declares_effects annotation "
                "is stale; extend it or remove the new hazard",
            )

    findings.sort(
        key=lambda ef: (
            ef.finding.relpath,
            ef.finding.line,
            ef.finding.code,
            ef.finding.message,
        )
    )
    counts = {
        "deterministic_roots": len(det_roots),
        "replay_safe_roots": len(replay_roots),
        "annotated_functions": annotated,
        "RL006": sum(1 for ef in findings if ef.finding.code == "RL006"),
        "RL007": sum(1 for ef in findings if ef.finding.code == "RL007"),
        "RL008": sum(1 for ef in findings if ef.finding.code == "RL008"),
    }
    return findings, counts
