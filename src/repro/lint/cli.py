"""Command-line interface: ``python -m repro.lint [paths]``.

Exit codes: 0 clean, 1 findings remain after suppression, 2 usage or
configuration error.

``--effects`` adds the whole-program effect & determinism pass
(:mod:`repro.lint.effects`) on top of the per-file rules: RL006
nondeterministic cached stage, RL007 impure shard worker, RL008 stale
``@declares_effects`` annotation — each printed with its call-graph
explanation chain.  The effects package is imported lazily: production
modules import :mod:`repro.lint.contracts` (which executes this
package's ``__init__``), and an eager import here would re-enter
``repro.obs``/``repro.store`` mid-initialization.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import TYPE_CHECKING, IO, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - lazy-import boundary (see module doc)
    from repro.lint.effects import EffectReport

from repro.errors import LintError
from repro.lint.baseline import Baseline
from repro.lint.config import LintConfig, find_root, load_config
from repro.lint.engine import LintReport, lint_paths
from repro.lint.rules import RULES

__all__ = ["main", "build_parser"]

EXIT_OK = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based invariant linter for the repro simulation stack "
            "(dtype discipline, seeded RNG threading, hot-path loop "
            "hygiene, exception discipline, mutable defaults, and — with "
            "--effects — whole-program determinism contracts)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: src, else cwd)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="project root owning pyproject.toml and the baseline "
        "(default: auto-discovered from the first path upward)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline file overriding the configured one",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring the baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept all current findings into the baseline and exit 0",
    )
    parser.add_argument(
        "--check-baseline",
        action="store_true",
        help="verify no baseline entry references a deleted file, then exit "
        "(0 clean, 1 stale entries found)",
    )
    parser.add_argument(
        "--select",
        default="",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--effects",
        action="store_true",
        help="run the whole-program effect & determinism analysis "
        "(RL006-RL008) in addition to the per-file rules",
    )
    parser.add_argument(
        "--effects-cache",
        type=Path,
        default=None,
        metavar="DIR",
        help="analysis cache directory (default: <root>/.repro-lint-cache "
        "or the configured effects-cache)",
    )
    parser.add_argument(
        "--no-effects-cache",
        action="store_true",
        help="analyze every module cold, ignoring the on-disk cache",
    )
    parser.add_argument(
        "--effects-summary",
        type=Path,
        default=None,
        metavar="FILE",
        help="write a JSON summary of the effects pass (per-contract "
        "counts, cache hits) for CI step tables",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress the summary line (findings are still printed)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None, stream: "IO[str] | None" = None) -> int:
    out = stream if stream is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        from repro.lint.effects.model import EFFECT_RULES

        for code in sorted(RULES):
            rule = RULES[code]
            print(
                f"{code}  {rule.name:<24} default={rule.default_severity}",
                file=out,
            )
        for code in sorted(EFFECT_RULES):
            name, severity = EFFECT_RULES[code]
            print(
                f"{code}  {name:<24} default={severity} (--effects)",
                file=out,
            )
        return EXIT_OK

    chains: Dict[int, Tuple[str, ...]] = {}
    effects_report = None
    try:
        paths = _default_paths(args.paths)
        root = (args.root or find_root(paths[0])).resolve()
        config = load_config(root)
        baseline_path = (
            (root / args.baseline) if args.baseline else config.baseline_path
        )
        select = [c.strip() for c in args.select.split(",") if c.strip()]

        if args.check_baseline:
            stale = Baseline.load(baseline_path).stale_entries(root)
            for fingerprint in stale:
                print(f"stale baseline entry: {fingerprint}", file=out)
            if stale:
                print(
                    f"{len(stale)} stale baseline entr(ies); regenerate with "
                    f"--write-baseline",
                    file=out,
                )
                return EXIT_FINDINGS
            print("baseline: no stale entries", file=out)
            return EXIT_OK

        report = lint_paths(paths, config, baseline=None, select=select)
        raw = list(report.findings)

        if args.effects:
            from repro.lint.effects import analyze_effects

            effects_report = analyze_effects(
                paths, config, cache_dir=_cache_dir(args, root, config)
            )
            for ef in effects_report.findings:
                raw.append(ef.finding)
                chains[id(ef.finding)] = ef.chain
            report.disabled += effects_report.disabled
        raw.sort(key=lambda f: (f.relpath, f.line, f.col, f.code))

        if args.write_baseline:
            Baseline.from_findings(raw).save(baseline_path)
            print(f"wrote {len(raw)} finding(s) to {baseline_path}", file=out)
            return EXIT_OK

        baseline = None if args.no_baseline else Baseline.load(baseline_path)
        if baseline is not None:
            report.findings, report.baselined = baseline.filter(raw)
        else:
            report.findings = raw
    except LintError as exc:
        print(f"repro.lint: error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    for finding in report.findings:
        print(finding.render(), file=out)
        for chain_line in chains.get(id(finding), ()):
            print(chain_line, file=out)
    if effects_report is not None and args.effects_summary is not None:
        summary = effects_report.summary_json()
        args.effects_summary.parent.mkdir(parents=True, exist_ok=True)
        args.effects_summary.write_text(json.dumps(summary, indent=2) + "\n")
    if not args.quiet:
        print(_summary(report), file=out)
        if effects_report is not None:
            print(_effects_summary_line(effects_report), file=out)
    return EXIT_OK if report.ok else EXIT_FINDINGS


def _cache_dir(
    args: argparse.Namespace, root: Path, config: LintConfig
) -> Optional[Path]:
    if args.no_effects_cache:
        return None
    if args.effects_cache is not None:
        return args.effects_cache
    return root / config.effects_cache


def _default_paths(paths: List[Path]) -> List[Path]:
    if paths:
        return paths
    src = Path("src")
    return [src] if src.is_dir() else [Path(".")]


def _summary(report: LintReport) -> str:
    if report.ok:
        detail = []
        if report.baselined:
            detail.append(f"{len(report.baselined)} baselined")
        if report.disabled:
            detail.append(f"{report.disabled} disabled inline")
        extra = f" ({', '.join(detail)})" if detail else ""
        return f"ok: {report.files_checked} file(s) clean{extra}"
    return (
        f"{len(report.findings)} finding(s): {len(report.errors)} error(s), "
        f"{len(report.warnings)} warning(s) in {report.files_checked} file(s); "
        f"{len(report.baselined)} baselined, {report.disabled} disabled inline"
    )


def _effects_summary_line(report: "EffectReport") -> str:
    counts = report.contract_counts
    return (
        f"effects: {report.modules_analyzed} module(s), "
        f"{report.functions_analyzed} function(s); "
        f"{counts.get('deterministic_roots', 0)} deterministic root(s), "
        f"{counts.get('replay_safe_roots', 0)} replay-safe root(s), "
        f"{counts.get('annotated_functions', 0)} annotated; "
        f"cache {report.cache_hits} hit / {report.cache_misses} miss"
    )
