"""Command-line interface: ``python -m repro.lint [paths]``.

Exit codes: 0 clean, 1 findings remain after suppression, 2 usage or
configuration error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import IO, List, Optional, Sequence

from repro.errors import LintError
from repro.lint.baseline import Baseline
from repro.lint.config import LintConfig, find_root, load_config
from repro.lint.engine import LintReport, lint_paths
from repro.lint.rules import RULES

__all__ = ["main", "build_parser"]

EXIT_OK = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based invariant linter for the repro simulation stack "
            "(dtype discipline, seeded RNG threading, hot-path loop "
            "hygiene, exception discipline, mutable defaults)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: src, else cwd)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="project root owning pyproject.toml and the baseline "
        "(default: auto-discovered from the first path upward)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline file overriding the configured one",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring the baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept all current findings into the baseline and exit 0",
    )
    parser.add_argument(
        "--select",
        default="",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress the summary line (findings are still printed)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None, stream: "IO[str] | None" = None) -> int:
    out = stream if stream is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for code in sorted(RULES):
            rule = RULES[code]
            print(
                f"{code}  {rule.name:<24} default={rule.default_severity}",
                file=out,
            )
        return EXIT_OK

    try:
        paths = _default_paths(args.paths)
        root = (args.root or find_root(paths[0])).resolve()
        config = load_config(root)
        baseline_path = (
            (root / args.baseline) if args.baseline else config.baseline_path
        )
        select = [c.strip() for c in args.select.split(",") if c.strip()]

        if args.write_baseline:
            report = lint_paths(paths, config, baseline=None, select=select)
            Baseline.from_findings(report.findings).save(baseline_path)
            print(
                f"wrote {len(report.findings)} finding(s) to {baseline_path}",
                file=out,
            )
            return EXIT_OK

        baseline = None if args.no_baseline else Baseline.load(baseline_path)
        report = lint_paths(paths, config, baseline=baseline, select=select)
    except LintError as exc:
        print(f"repro.lint: error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    for finding in report.findings:
        print(finding.render(), file=out)
    if not args.quiet:
        print(_summary(report), file=out)
    return EXIT_OK if report.ok else EXIT_FINDINGS


def _default_paths(paths: List[Path]) -> List[Path]:
    if paths:
        return paths
    src = Path("src")
    return [src] if src.is_dir() else [Path(".")]


def _summary(report: LintReport) -> str:
    if report.ok:
        detail = []
        if report.baselined:
            detail.append(f"{len(report.baselined)} baselined")
        if report.disabled:
            detail.append(f"{report.disabled} disabled inline")
        extra = f" ({', '.join(detail)})" if detail else ""
        return f"ok: {report.files_checked} file(s) clean{extra}"
    return (
        f"{len(report.findings)} finding(s): {len(report.errors)} error(s), "
        f"{len(report.warnings)} warning(s) in {report.files_checked} file(s); "
        f"{len(report.baselined)} baselined, {report.disabled} disabled inline"
    )
