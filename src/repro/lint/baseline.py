"""Baseline file: accepted findings that should not block CI.

The baseline maps finding *fingerprints* — ``relpath::code::source-line``,
deliberately line-number-free so unrelated edits don't invalidate it — to
occurrence counts.  ``python -m repro.lint --write-baseline`` regenerates
it from the current findings; anything beyond the recorded count (a new
violation, or a duplicated old one) is reported again.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Tuple

from repro.errors import LintError
from repro.lint.rules.base import Finding

__all__ = ["Baseline"]

_VERSION = 1


class Baseline:
    """Fingerprint -> accepted-occurrence-count store."""

    def __init__(self, entries: "Dict[str, int] | None" = None) -> None:
        self.entries: Dict[str, int] = dict(entries or {})

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not path.is_file():
            return cls()
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise LintError(f"cannot read baseline {path}: {exc}") from exc
        if not isinstance(data, dict) or data.get("version") != _VERSION:
            raise LintError(
                f"baseline {path} has unsupported format; regenerate with "
                f"--write-baseline"
            )
        entries = data.get("entries", {})
        if not isinstance(entries, dict) or not all(
            isinstance(k, str) and isinstance(v, int) for k, v in entries.items()
        ):
            raise LintError(f"baseline {path}: entries must map strings to ints")
        return cls(entries)

    @classmethod
    def from_findings(cls, findings: List[Finding]) -> "Baseline":
        counts = Counter(f.fingerprint() for f in findings)
        return cls(dict(counts))

    def save(self, path: Path) -> None:
        payload = {
            "version": _VERSION,
            "entries": {k: self.entries[k] for k in sorted(self.entries)},
        }
        path.write_text(json.dumps(payload, indent=2) + "\n")

    def stale_entries(self, root: Path) -> List[str]:
        """Fingerprints whose file no longer exists under ``root``.

        A stale entry means the baselined file was deleted or renamed;
        the entry is dead weight and should be pruned (CI asserts this
        list is empty so the baseline can never rot silently).
        """
        stale: List[str] = []
        for fingerprint in sorted(self.entries):
            relpath = fingerprint.split("::", 1)[0]
            if not (root / relpath).is_file():
                stale.append(fingerprint)
        return stale

    def filter(
        self, findings: List[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Split findings into (fresh, suppressed-by-baseline).

        The first ``count`` occurrences of each fingerprint (in report
        order) are suppressed; later duplicates are fresh findings.
        """
        budget = Counter(self.entries)
        fresh: List[Finding] = []
        suppressed: List[Finding] = []
        for finding in findings:
            fp = finding.fingerprint()
            if budget[fp] > 0:
                budget[fp] -= 1
                suppressed.append(finding)
            else:
                fresh.append(finding)
        return fresh, suppressed
