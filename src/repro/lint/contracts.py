"""Runtime effect-contract registry: the ``@declares_effects`` decorator.

The whole-program effect analyzer (:mod:`repro.lint.effects`) infers,
for every function in the project, which determinism-relevant effects
it can perform — wall-clock reads, unseeded RNG draws, environment
reads, filesystem writes, and so on.  Most functions must infer to
*no* effects when they sit inside a memoized pipeline stage or a shard
worker; the handful that legitimately perform one (the store's
``duration_s`` provenance clock, the ``REPRO_SCALE`` read whose value
is itself fingerprinted into every content key) declare it **at the
use site**:

.. code-block:: python

    from repro.lint.contracts import declares_effects

    @declares_effects("env-read")
    def scale_factor() -> float:
        ...

A declaration is an audited carve-out, not an opt-out: the analyzer
stops RL006/RL007 propagation at a declared boundary, but rule RL008
re-checks every annotated function — if its *inferred* effects ever
exceed its declaration, the annotation is stale and the gate fails.

This module is deliberately dependency-free (stdlib + ``repro.errors``)
so production modules — ``repro.obs``, ``repro.store``, ``repro.sim`` —
can import it without pulling in the analyzer.  The decorator itself is
zero-cost at call time: it tags the function object and returns it
unchanged, no wrapper frame.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, Tuple, TypeVar

from repro.errors import LintError

__all__ = ["EFFECT_NAMES", "DECLARED_EFFECTS_ATTR", "declares_effects", "declared_effects"]

#: The effect lattice, in canonical order.  Must stay in sync with
#: :mod:`repro.lint.effects.model` (which imports this tuple).
EFFECT_NAMES: Tuple[str, ...] = (
    "time",
    "rng-unseeded",
    "env-read",
    "fs-write",
    "global-mutate",
    "thread-spawn",
    "dict-order-sensitive",
    "float-reduction-order",
)

#: Attribute the decorator sets on the function object.
DECLARED_EFFECTS_ATTR = "__declared_effects__"

_VALID = frozenset(EFFECT_NAMES)

F = TypeVar("F", bound=Callable[..., Any])

#: Runtime registry of every decorated function seen this process:
#: ``qualified name -> declared effect set`` (diagnostics / tests).
REGISTRY: Dict[str, FrozenSet[str]] = {}


def declares_effects(*effects: str) -> Callable[[F], F]:
    """Mark a function as intentionally performing the named effects.

    The decorator validates the names eagerly (a typo would otherwise
    silently disable the carve-out) and tags the function with a
    ``__declared_effects__`` frozenset.  The static analyzer reads the
    decorator from the AST, so stacking order relative to other
    decorators does not matter for analysis; for runtime introspection
    put it outermost.
    """
    unknown = sorted(set(effects) - _VALID)
    if unknown:
        raise LintError(
            f"declares_effects: unknown effect(s) {', '.join(unknown)}; "
            f"known: {', '.join(EFFECT_NAMES)}"
        )
    declared = frozenset(effects)

    def mark(fn: F) -> F:
        setattr(fn, DECLARED_EFFECTS_ATTR, declared)
        name = f"{getattr(fn, '__module__', '?')}.{getattr(fn, '__qualname__', repr(fn))}"
        REGISTRY[name] = declared
        return fn

    return mark


def declared_effects(fn: Callable[..., Any]) -> FrozenSet[str]:
    """The effect set a callable declared (empty if undecorated)."""
    declared = getattr(fn, DECLARED_EFFECTS_ATTR, None)
    return declared if declared is not None else frozenset()
