"""Rule registry for the invariant linter.

New rules self-describe via class attributes on :class:`Rule` subclasses
and are added here with :func:`register`; everything else (severity
overrides, disable comments, baselining, CLI selection) picks them up
automatically from the registry.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Type

from repro.errors import LintError
from repro.lint.rules.base import (
    Finding,
    ModuleContext,
    Rule,
    Severity,
    collect_import_aliases,
)
from repro.lint.rules.defaults import NoMutableDefaultRule
from repro.lint.rules.dtype import ExplicitDtypeRule
from repro.lint.rules.exceptions import ExceptionDisciplineRule
from repro.lint.rules.loops import NoPythonEdgeLoopRule
from repro.lint.rules.rng import SeededRngRule

__all__ = [
    "Finding",
    "ModuleContext",
    "Rule",
    "Severity",
    "RULES",
    "register",
    "resolve_rules",
    "collect_import_aliases",
]

RULES: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Add a rule class to the registry (usable as a decorator)."""
    if rule_cls.code in RULES:
        raise LintError(f"duplicate rule code {rule_cls.code}")
    RULES[rule_cls.code] = rule_cls
    return rule_cls


for _cls in (
    ExplicitDtypeRule,
    SeededRngRule,
    NoPythonEdgeLoopRule,
    ExceptionDisciplineRule,
    NoMutableDefaultRule,
):
    register(_cls)


def resolve_rules(select: Iterable[str] = ()) -> List[Rule]:
    """Instantiate the selected rules (all registered rules by default)."""
    codes = list(select) or sorted(RULES)
    unknown = [code for code in codes if code not in RULES]
    if unknown:
        raise LintError(
            f"unknown rule code(s) {', '.join(unknown)}; "
            f"known: {', '.join(sorted(RULES))}"
        )
    return [RULES[code]() for code in codes]
