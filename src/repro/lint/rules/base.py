"""Shared vocabulary of the invariant linter: findings, severities, rules.

A rule is a small AST visitor packaged with an identity (``code``), a
default :class:`Severity`, and a fix-it oriented message.  Rules are
registered in :mod:`repro.lint.rules` and run by
:mod:`repro.lint.engine`; they never read files themselves — the engine
hands each one a fully parsed :class:`ModuleContext`.
"""

from __future__ import annotations

import ast
import enum
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterator, List, Set

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.lint.config import LintConfig

__all__ = [
    "Severity",
    "Finding",
    "ModuleContext",
    "Rule",
    "collect_import_aliases",
]


class Severity(enum.Enum):
    """Finding tiers: errors block CI, warnings are baselined/allowlisted."""

    WARN = "warn"
    ERROR = "error"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    code: str
    severity: Severity
    relpath: str
    line: int
    col: int
    message: str
    source_line: str = ""

    def fingerprint(self) -> str:
        """Line-number-free identity used by the baseline file.

        Uses the stripped source text instead of the line number so a
        baseline survives unrelated edits above the finding.
        """
        return f"{self.relpath}::{self.code}::{self.source_line}"

    def render(self) -> str:
        return (
            f"{self.relpath}:{self.line}:{self.col}: "
            f"{self.code} [{self.severity}] {self.message}"
        )


@dataclass
class ModuleContext:
    """Everything a rule may inspect about one parsed module."""

    path: Path
    relpath: str  # POSIX-style, relative to the lint root
    tree: ast.Module
    lines: List[str]  # raw source lines (1-based access via ``source_line``)
    config: "LintConfig"
    numpy_aliases: Set[str] = field(default_factory=set)
    numpy_random_aliases: Set[str] = field(default_factory=set)
    stdlib_random_aliases: Set[str] = field(default_factory=set)
    numpy_from_imports: Dict[str, str] = field(default_factory=dict)

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


class Rule:
    """Base class for pluggable invariant checks.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding ``(node, message)``-shaped findings via :meth:`finding`.
    """

    code: str = "RL000"
    name: str = "unnamed"
    default_severity: Severity = Severity.ERROR

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: ModuleContext, node: ast.AST, message: str
    ) -> Finding:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        severity = module.config.severity_for(self.code, self.default_severity)
        return Finding(
            code=self.code,
            severity=severity,
            relpath=module.relpath,
            line=lineno,
            col=col,
            message=message,
            source_line=module.source_line(lineno),
        )


def collect_import_aliases(module: ModuleContext) -> None:
    """Populate the numpy / ``random`` alias tables of ``module``.

    Tracks ``import numpy as np``, ``import numpy.random as nr``,
    ``from numpy import zeros``, ``from numpy import random`` and plain
    ``import random`` so rules can resolve attribute chains without
    guessing at naming conventions.
    """
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                if alias.name == "numpy":
                    module.numpy_aliases.add(bound)
                elif alias.name == "numpy.random":
                    if alias.asname:
                        module.numpy_random_aliases.add(alias.asname)
                    else:  # ``import numpy.random`` binds ``numpy``
                        module.numpy_aliases.add("numpy")
                elif alias.name == "random":
                    module.stdlib_random_aliases.add(bound)
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module == "numpy":
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if alias.name == "random":
                        module.numpy_random_aliases.add(bound)
                    else:
                        module.numpy_from_imports[bound] = alias.name
