"""RL004 exception-discipline: library errors derive from ReproError.

The package promises callers that every deliberate failure is catchable
as :class:`repro.errors.ReproError` (one ``except`` clause for library
faults, programming errors propagate).  Raising a builtin directly, or
swallowing everything with a bare ``except:``, silently breaks that
contract.  Protocol-mandated builtins (``TypeError`` from ``__hash__``)
use the per-line ``# repro-lint: disable=RL004`` escape hatch.
"""

from __future__ import annotations

import ast
import builtins
from typing import Iterator

from repro.lint.rules.base import Finding, ModuleContext, Rule, Severity

__all__ = ["ExceptionDisciplineRule"]

#: All builtin exception class names (computed once at import).
BUILTIN_EXCEPTIONS = frozenset(
    name
    for name, obj in vars(builtins).items()
    if isinstance(obj, type) and issubclass(obj, BaseException)
)


class ExceptionDisciplineRule(Rule):
    code = "RL004"
    name = "exception-discipline"
    default_severity = Severity.ERROR

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        allowed = frozenset(module.config.allowed_raises)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Raise):
                name = _raised_builtin(node)
                if name and name not in allowed:
                    yield self.finding(
                        module,
                        node,
                        f"raise {name} — deliberate library errors must "
                        f"derive from repro.errors.ReproError (or disable "
                        f"for protocol-mandated builtins)",
                    )
            elif isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare 'except:' also swallows SystemExit and "
                    "KeyboardInterrupt; catch a specific exception type",
                )


def _raised_builtin(node: ast.Raise) -> str:
    exc = node.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name) and exc.id in BUILTIN_EXCEPTIONS:
        return exc.id
    return ""
