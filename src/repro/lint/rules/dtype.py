"""RL001 explicit-dtype: numpy allocations must pin their dtype.

Kernel/reference bit-exactness in :mod:`repro.sim` depends on every
array carrying the dtype the algorithms were validated with; a dtype-less
``np.zeros(n)`` silently produces float64 even for index-like data, and
the resulting casts can change hash layouts, overflow behaviour, and
comparison semantics between the two simulation paths.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.rules.base import Finding, ModuleContext, Rule, Severity

__all__ = ["ExplicitDtypeRule"]

#: Constructors whose dtype defaults to float64 (or platform-dependent
#: integers for ``arange``) when omitted.  ``*_like``/``asarray`` inherit
#: or infer a dtype from their input and are deliberately not listed.
CONSTRUCTORS = frozenset({"zeros", "ones", "empty", "full", "arange"})


class ExplicitDtypeRule(Rule):
    code = "RL001"
    name = "explicit-dtype"
    default_severity = Severity.ERROR

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if not _in_scope(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            ctor = _numpy_constructor(module, node.func)
            if ctor is None:
                continue
            if any(kw.arg == "dtype" for kw in node.keywords):
                continue
            yield self.finding(
                module,
                node,
                f"numpy.{ctor}() without dtype= — index/data arrays must "
                f"not default to float64; pass an explicit dtype= keyword",
            )


def _in_scope(module: ModuleContext) -> bool:
    scopes = module.config.dtype_scopes
    if not scopes:
        return True
    return any(
        module.relpath == scope or module.relpath.startswith(scope.rstrip("/") + "/")
        for scope in scopes
    )


def _numpy_constructor(module: ModuleContext, func: ast.expr) -> Optional[str]:
    if isinstance(func, ast.Attribute):
        if (
            isinstance(func.value, ast.Name)
            and func.value.id in module.numpy_aliases
            and func.attr in CONSTRUCTORS
        ):
            return func.attr
    elif isinstance(func, ast.Name):
        original = module.numpy_from_imports.get(func.id)
        if original in CONSTRUCTORS:
            return original
    return None
