"""RL003 no-python-edge-loop: keep Python loops out of hot paths.

The simulation stack's throughput rests on the hot-path modules staying
vectorized (DESIGN.md §7); an innocuous ``for`` over an edge array turns
a microsecond kernel step into a multi-second crawl at paper-scale
traces.  The rule is a heuristic — it flags ``for`` statements whose
iterable mentions edge/access/trace-shaped identifiers — and is
warn-tier: the bit-exact reference oracle loop is allowlisted via
``edge-loop-allow`` and intentional survivors live in the baseline.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

from repro.lint.rules.base import Finding, ModuleContext, Rule, Severity

__all__ = ["NoPythonEdgeLoopRule"]

#: Lower-cased substrings marking an identifier as edge/access/trace data.
HOT_IDENTIFIER_MARKERS = ("edge", "access", "trace", "line", "neighbo")


class NoPythonEdgeLoopRule(Rule):
    code = "RL003"
    name = "no-python-edge-loop"
    default_severity = Severity.WARN

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if module.relpath not in module.config.hot_path_modules:
            return
        allow = frozenset(module.config.edge_loop_allow)
        for node, qualname in _for_loops_with_qualnames(module.tree):
            if f"{module.relpath}::{qualname}" in allow:
                continue
            marker = _hot_identifier(node.iter)
            if marker is None:
                continue
            yield self.finding(
                module,
                node,
                f"Python-level for loop over {marker!r} in a hot-path "
                f"module; vectorize with NumPy, or allowlist via "
                f"edge-loop-allow if this is a reference oracle",
            )


def _for_loops_with_qualnames(
    tree: ast.Module,
) -> List[Tuple[ast.For, str]]:
    """Every ``for`` statement paired with its enclosing qualname."""
    found: List[Tuple[ast.For, str]] = []

    def visit(node: ast.AST, stack: List[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                visit(child, stack + [child.name])
            elif isinstance(child, ast.ClassDef):
                visit(child, stack + [child.name])
            else:
                if isinstance(child, ast.For):
                    found.append((child, ".".join(stack) or "<module>"))
                visit(child, stack)

    visit(tree, [])
    return found


def _hot_identifier(iter_expr: ast.expr) -> "str | None":
    """First identifier in the iterable matching a hot-data marker."""
    for node in ast.walk(iter_expr):
        name = ""
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        lowered = name.lower()
        if lowered and any(marker in lowered for marker in HOT_IDENTIFIER_MARKERS):
            return name
    return None
