"""RL002 seeded-rng: no module-level RNG state; thread a Generator.

DRRIP's BRRIP insertions consume a pre-drawn random stream whose draw
*ranks* are part of the kernel/reference equivalence contract (see
DESIGN.md §7).  Any call into the legacy ``np.random.*`` module-level
state — or the stdlib ``random`` module — injects nondeterminism that no
seed threading can recover, so the only sanctioned entry points are
seeded ``numpy.random.Generator`` construction helpers.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.rules.base import Finding, ModuleContext, Rule, Severity

__all__ = ["SeededRngRule"]

#: Constructors of explicit, seedable RNG state.  Everything else on
#: ``numpy.random`` is (or routes through) hidden module-level state.
NUMPY_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    }
)

#: Seedable instance classes of the stdlib ``random`` module.
STDLIB_ALLOWED = frozenset({"Random", "SystemRandom"})

_FIX = (
    "seed a numpy.random.Generator (np.random.default_rng(seed)) and "
    "thread it through the call stack — module-level RNG state breaks "
    "DRRIP draw-stream determinism"
)


class SeededRngRule(Rule):
    code = "RL002"
    name = "seeded-rng"
    default_severity = Severity.ERROR

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute):
                offender = self._attribute_offender(module, node)
                if offender:
                    yield self.finding(
                        module, node, f"{offender} used; {_FIX}"
                    )
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                yield from self._import_offenders(module, node)

    def _attribute_offender(
        self, module: ModuleContext, node: ast.Attribute
    ) -> str:
        value = node.value
        # np.random.<fn> — a chained attribute on a numpy module alias.
        if (
            isinstance(value, ast.Attribute)
            and value.attr == "random"
            and isinstance(value.value, ast.Name)
            and value.value.id in module.numpy_aliases
            and node.attr not in NUMPY_ALLOWED
        ):
            return f"numpy.random.{node.attr}"
        if isinstance(value, ast.Name):
            # nr.<fn> with ``import numpy.random as nr`` or
            # ``from numpy import random``.
            if (
                value.id in module.numpy_random_aliases
                and node.attr not in NUMPY_ALLOWED
            ):
                return f"numpy.random.{node.attr}"
            # random.<fn> on the stdlib module.
            if (
                value.id in module.stdlib_random_aliases
                and node.attr not in STDLIB_ALLOWED
                and not node.attr.startswith("_")
            ):
                return f"random.{node.attr}"
        return ""

    def _import_offenders(
        self, module: ModuleContext, node: ast.ImportFrom
    ) -> Iterator[Finding]:
        if node.module == "numpy.random":
            allowed = NUMPY_ALLOWED
            label = "numpy.random"
        elif node.module == "random":
            allowed = STDLIB_ALLOWED
            label = "random"
        else:
            return
        for alias in node.names:
            if alias.name not in allowed:
                yield self.finding(
                    module,
                    node,
                    f"from {label} import {alias.name}; {_FIX}",
                )
