"""RL005 no-mutable-default-args: the classic shared-default trap.

A ``def f(x, cache=[])`` default is evaluated once and shared across
every call — state leaks between simulations, which is exactly the class
of nondeterminism this linter exists to keep out of the measurement
harness.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.rules.base import Finding, ModuleContext, Rule, Severity

__all__ = ["NoMutableDefaultRule"]

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})


class NoMutableDefaultRule(Rule):
    code = "RL005"
    name = "no-mutable-default-args"
    default_severity = Severity.ERROR

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                label = _mutable_label(default)
                if label:
                    yield self.finding(
                        module,
                        default,
                        f"mutable default argument {label} in "
                        f"{node.name}() is shared across calls; default "
                        f"to None and construct inside the function",
                    )


def _mutable_label(node: ast.expr) -> str:
    if isinstance(node, ast.List):
        return "[]"
    if isinstance(node, ast.Dict):
        return "{}"
    if isinstance(node, (ast.Set, ast.SetComp, ast.ListComp, ast.DictComp)):
        return "<comprehension>"
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CALLS
    ):
        return f"{node.func.id}()"
    return ""
