"""Linter configuration: built-in defaults plus a ``pyproject.toml`` block.

Configuration lives under ``[tool.repro-lint]``.  Parsing uses
:mod:`tomllib` on Python 3.11+ and falls back to ``tomli`` when it is
installed; when neither is available the built-in defaults (which match
this repository's committed ``pyproject.toml``) are used, so the linter
degrades gracefully on minimal 3.9/3.10 environments.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import LintError
from repro.lint.rules.base import Severity

try:  # Python >= 3.11
    import tomllib as _toml
except ImportError:  # pragma: no cover - version-dependent fallback
    try:
        import tomli as _toml  # type: ignore[no-redef]
    except ImportError:
        _toml = None  # type: ignore[assignment]

__all__ = ["LintConfig", "load_config", "find_root"]

CONFIG_TABLE = "repro-lint"

#: Default scopes mirror the committed [tool.repro-lint] block so the
#: linter behaves identically with and without a TOML parser.
_DEFAULT_DTYPE_SCOPES = ("src/repro/sim", "src/repro/graph")
_DEFAULT_HOT_PATH_MODULES = (
    "src/repro/sim/_kernels.py",
    "src/repro/sim/cache.py",
    "src/repro/graph/csr.py",
)
_DEFAULT_EDGE_LOOP_ALLOW = (
    "src/repro/sim/cache.py::SetAssociativeCache._simulate_reference",
)
_DEFAULT_ALLOWED_RAISES = (
    "NotImplementedError",
    "SystemExit",
    "KeyboardInterrupt",
    "StopIteration",
)
#: Extra RL006 roots beyond auto-detected ``@cached_stage`` functions:
#: the memo wrapper is the choke point every stage execution flows through.
_DEFAULT_EFFECTS_DETERMINISTIC = (
    "src/repro/store/memo.py::cached_stage.decorate.wrapper",
)
#: RL007 roots: shard worker entry points (serial≡process bit-exactness).
_DEFAULT_EFFECTS_REPLAY_SAFE = (
    "src/repro/sim/shard.py::_worker_main",
    "src/repro/sim/shard.py::_ShardWorker.process",
)


@dataclass(frozen=True)
class LintConfig:
    """Immutable, fully-resolved linter settings."""

    root: Path = field(default_factory=Path.cwd)
    baseline: str = "lint-baseline.json"
    dtype_scopes: Tuple[str, ...] = _DEFAULT_DTYPE_SCOPES
    hot_path_modules: Tuple[str, ...] = _DEFAULT_HOT_PATH_MODULES
    edge_loop_allow: Tuple[str, ...] = _DEFAULT_EDGE_LOOP_ALLOW
    allowed_raises: Tuple[str, ...] = _DEFAULT_ALLOWED_RAISES
    disabled_rules: Tuple[str, ...] = ()
    severity_overrides: Mapping[str, Severity] = field(default_factory=dict)
    effects_deterministic: Tuple[str, ...] = _DEFAULT_EFFECTS_DETERMINISTIC
    effects_replay_safe: Tuple[str, ...] = _DEFAULT_EFFECTS_REPLAY_SAFE
    effects_cache: str = ".repro-lint-cache"

    def severity_for(self, code: str, default: Severity) -> Severity:
        return self.severity_overrides.get(code, default)

    def rule_enabled(self, code: str) -> bool:
        return code not in self.disabled_rules

    @property
    def baseline_path(self) -> Path:
        return self.root / self.baseline


def find_root(start: Path) -> Path:
    """Directory owning the governing ``pyproject.toml`` (or ``start``)."""
    start = start.resolve()
    probe = start if start.is_dir() else start.parent
    for candidate in (probe, *probe.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return probe


def load_config(root: Path) -> LintConfig:
    """Read ``[tool.repro-lint]`` from ``root/pyproject.toml``.

    Missing file, missing table, or missing TOML parser all yield the
    defaults; malformed values raise :class:`LintError` so CI fails loudly
    rather than silently linting with the wrong settings.
    """
    root = root.resolve()
    config = LintConfig(root=root)
    pyproject = root / "pyproject.toml"
    if _toml is None or not pyproject.is_file():
        return config
    try:
        with open(pyproject, "rb") as fh:
            data = _toml.load(fh)
    except Exception as exc:  # tomllib.TOMLDecodeError, OSError
        raise LintError(f"cannot parse {pyproject}: {exc}") from exc
    table = data.get("tool", {}).get(CONFIG_TABLE, {})
    if not table:
        return config
    return _apply_table(config, table, source=str(pyproject))


def _apply_table(
    config: LintConfig, table: Dict[str, Any], *, source: str
) -> LintConfig:
    updates: Dict[str, Any] = {}
    for key, value in table.items():
        if key == "baseline":
            updates["baseline"] = _expect_str(key, value, source)
        elif key == "dtype-scopes":
            updates["dtype_scopes"] = _expect_str_list(key, value, source)
        elif key == "hot-path-modules":
            updates["hot_path_modules"] = _expect_str_list(key, value, source)
        elif key == "edge-loop-allow":
            updates["edge_loop_allow"] = _expect_str_list(key, value, source)
        elif key == "allowed-raises":
            updates["allowed_raises"] = _expect_str_list(key, value, source)
        elif key == "disabled-rules":
            updates["disabled_rules"] = _expect_str_list(key, value, source)
        elif key == "severity":
            updates["severity_overrides"] = _parse_severity(value, source)
        elif key == "effects-deterministic":
            updates["effects_deterministic"] = _expect_str_list(key, value, source)
        elif key == "effects-replay-safe":
            updates["effects_replay_safe"] = _expect_str_list(key, value, source)
        elif key == "effects-cache":
            updates["effects_cache"] = _expect_str(key, value, source)
        else:
            raise LintError(f"{source}: unknown [tool.{CONFIG_TABLE}] key {key!r}")
    return replace(config, **updates)


def _parse_severity(value: Any, source: str) -> Dict[str, Severity]:
    if not isinstance(value, dict):
        raise LintError(f"{source}: severity must be a table of CODE = level")
    overrides: Dict[str, Severity] = {}
    for code, level in value.items():
        try:
            overrides[code] = Severity(level)
        except ValueError:
            valid = ", ".join(s.value for s in Severity)
            raise LintError(
                f"{source}: severity.{code} = {level!r}; expected one of {valid}"
            ) from None
    return overrides


def _expect_str(key: str, value: Any, source: str) -> str:
    if not isinstance(value, str):
        raise LintError(f"{source}: {key} must be a string")
    return value


def _expect_str_list(key: str, value: Any, source: str) -> Tuple[str, ...]:
    if not isinstance(value, list) or not all(isinstance(v, str) for v in value):
        raise LintError(f"{source}: {key} must be a list of strings")
    return tuple(value)


def default_config(root: Optional[Path] = None) -> LintConfig:
    """Defaults without touching the filesystem (used by tests)."""
    return LintConfig(root=(root or Path.cwd()).resolve())
