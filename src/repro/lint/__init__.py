"""AST-based invariant linter for the simulation stack.

The cache-simulation kernels are bit-exact with their reference loops
only while a set of cross-cutting contracts hold — explicit numpy
dtypes, seeded RNG threading, no Python loops over edge/access data in
hot paths, a single exception hierarchy, and no shared mutable defaults.
This package machine-checks those contracts:

``python -m repro.lint [paths]``

Rules (see :mod:`repro.lint.rules`): RL001 explicit-dtype, RL002
seeded-rng, RL003 no-python-edge-loop (warn tier), RL004
exception-discipline, RL005 no-mutable-default-args.  Configuration
lives in ``[tool.repro-lint]`` of ``pyproject.toml``; intentional
violations use per-line ``# repro-lint: disable=RLxxx`` comments or the
committed baseline file.
"""

from repro.lint.baseline import Baseline
from repro.lint.cli import main
from repro.lint.config import LintConfig, find_root, load_config
from repro.lint.engine import LintReport, lint_paths, lint_source
from repro.lint.rules import RULES, Finding, ModuleContext, Rule, Severity, register

__all__ = [
    "Baseline",
    "Finding",
    "LintConfig",
    "LintReport",
    "ModuleContext",
    "RULES",
    "Rule",
    "Severity",
    "find_root",
    "lint_paths",
    "lint_source",
    "load_config",
    "main",
    "register",
]
