"""Efficacy Degree Range (EDR) restriction (Section VIII-B2).

The degree distribution of cache miss rate (Figure 1) identifies, for
each RA, the degree range where it actually improves locality.  The
paper proposes skipping the relabeling of vertices outside that range:
"during relabeling we pass only edges of those vertices to the RA that
their degree is within the EDR.  For other vertices, we let the labels
be determined in the same manner as zero degree vertices" — cutting
preprocessing time without affecting traversal time.

:class:`EDRRestricted` wraps any :class:`ReorderingAlgorithm` this way;
:func:`efficacy_degree_range` derives the range from a pair of measured
miss-rate distributions.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReorderingError
from repro.graph.build import build_graph
from repro.graph.graph import Graph
from repro.graph.permute import invert_permutation, sort_order_to_relabeling

from repro.core.missdist import MissRateDistribution
from repro.obs import span
from repro.reorder.base import ReorderingAlgorithm

__all__ = ["EDRRestricted", "efficacy_degree_range"]


class EDRRestricted(ReorderingAlgorithm):
    """Run ``base`` only on vertices whose degree falls in the EDR.

    Vertices outside the range keep their relative order and are
    appended after the reordered ones, exactly like the zero-degree
    vertices the cleaning pass strips.
    """

    def __init__(
        self,
        base: ReorderingAlgorithm,
        min_degree: int = 0,
        max_degree: int | None = None,
        *,
        direction: str = "total",
    ):
        if max_degree is not None and max_degree < min_degree:
            raise ReorderingError(
                f"empty EDR: [{min_degree}, {max_degree}]"
            )
        if direction not in ("in", "out", "total"):
            raise ReorderingError(f"unknown degree direction: {direction!r}")
        self.base = base
        self.min_degree = min_degree
        self.max_degree = max_degree
        self.direction = direction
        self.name = f"{base.name}+edr"

    def compute(self, graph: Graph, details: dict) -> np.ndarray:
        degrees = graph._degrees(self.direction)
        mask = degrees >= self.min_degree
        if self.max_degree is not None:
            mask &= degrees <= self.max_degree
        members = np.flatnonzero(mask)
        others = np.flatnonzero(~mask)
        details["num_in_range"] = int(members.shape[0])
        details["num_skipped"] = int(others.shape[0])
        if members.size == 0:
            return np.arange(graph.num_vertices, dtype=np.int64)

        # Pass only the edges between in-range vertices to the base RA.
        with span("reorder.edr.extract", in_range=int(members.shape[0])):
            src, dst = graph.edges()
            keep = mask[src] & mask[dst]
            local_id = np.full(graph.num_vertices, -1, dtype=np.int64)
            local_id[members] = np.arange(members.shape[0], dtype=np.int64)
            built = build_graph(
                members.shape[0],
                local_id[src[keep]],
                local_id[dst[keep]],
                drop_zero_degree=True,
                dedup=False,
            )
        if built.graph.num_vertices == 0:
            return np.arange(graph.num_vertices, dtype=np.int64)
        sub_result = self.base(built.graph)
        details["base_details"] = sub_result.details

        connected_local = np.flatnonzero(built.old_to_new >= 0)
        sub_order = invert_permutation(sub_result.relabeling)
        ordered = members[connected_local[sub_order]]
        isolated_in_range = members[built.old_to_new < 0]
        order = np.concatenate([ordered, isolated_in_range, others])
        return sort_order_to_relabeling(order)


def efficacy_degree_range(
    initial: MissRateDistribution,
    reordered: MissRateDistribution,
    *,
    min_improvement_percent: float = 0.0,
) -> tuple[int, int]:
    """Degree range where ``reordered`` beats ``initial`` (Figure 1 based).

    Returns the (inclusive) degree bounds spanning the first through
    last bin whose miss rate improves by more than
    ``min_improvement_percent`` percentage points.

    Raises
    ------
    ReorderingError
        If the two distributions use different bins, or no bin improves.
    """
    if not np.array_equal(initial.bins.lower, reordered.bins.lower):
        raise ReorderingError("distributions must share the same degree bins")
    populated = (initial.accesses > 0) & (reordered.accesses > 0)
    improvement = initial.miss_rate_percent - reordered.miss_rate_percent
    improved = populated & (improvement > min_improvement_percent)
    if not improved.any():
        raise ReorderingError("the reordering improves no degree bin")
    first = int(np.flatnonzero(improved)[0])
    last = int(np.flatnonzero(improved)[-1])
    lower = int(initial.bins.lower[first])
    upper = int(initial.bins.lower[last + 1]) - 1
    return lower, upper
