"""Hybrid Rabbit-Order + GOrder (the future-work RA of Section VIII-C).

The paper observes that GOrder improves the locality of high-degree
vertices while Rabbit-Order improves low-degree vertices, and suggests
"a new RA [that] may start from LDV like RO to build initial clusters
and then switch to a method like GO to relabel HDV".

This implementation realizes that sketch:

1. HDV (degree above the graph average) are ordered among themselves by
   GOrder restricted to the HDV-induced subgraph and receive the lowest
   IDs — temporal reuse of the tightly connected hub core;
2. LDV are ordered by Rabbit-Order's community DFS applied to the
   LDV-induced subgraph and follow — spatial clustering of the
   communities.
"""

from __future__ import annotations

import numpy as np

from repro.graph.build import build_graph
from repro.graph.graph import Graph
from repro.graph.permute import sort_order_to_relabeling, invert_permutation
from repro.obs import span

from repro.reorder.base import ReorderingAlgorithm
from repro.reorder.gorder import GOrder
from repro.reorder.rabbit import RabbitOrder

__all__ = ["HybridOrder"]


class HybridOrder(ReorderingAlgorithm):
    """GOrder over the HDV core, Rabbit-Order over the LDV remainder."""

    name = "hybrid"

    def __init__(self, *, window: int = 5, seed: int = 0):
        self.window = window
        self.seed = seed

    def compute(self, graph: Graph, details: dict) -> np.ndarray:
        degrees = graph.total_degrees()
        threshold = 2.0 * graph.average_degree  # in+out vs |E|/|V|
        hdv_mask = degrees > threshold

        with span("reorder.hybrid.hdv"):
            hdv_order = _suborder(
                graph, hdv_mask, GOrder(window=self.window), details, "hdv"
            )
        with span("reorder.hybrid.ldv"):
            ldv_order = _suborder(
                graph, ~hdv_mask, RabbitOrder(seed=self.seed), details, "ldv"
            )
        order = np.concatenate([hdv_order, ldv_order])
        details["num_hdv"] = int(hdv_mask.sum())
        return sort_order_to_relabeling(order)


def _suborder(
    graph: Graph,
    mask: np.ndarray,
    algorithm: ReorderingAlgorithm,
    details: dict,
    label: str,
) -> np.ndarray:
    """Order the vertices in ``mask`` using ``algorithm`` on their induced
    subgraph; vertices isolated inside the subgraph keep relative order."""
    members = np.flatnonzero(mask)
    if members.size == 0:
        return members.astype(np.int64)
    src, dst = graph.edges()
    keep = mask[src] & mask[dst]
    local_id = np.full(graph.num_vertices, -1, dtype=np.int64)
    local_id[members] = np.arange(members.shape[0], dtype=np.int64)
    sub_src = local_id[src[keep]]
    sub_dst = local_id[dst[keep]]
    if sub_src.size == 0:
        details[f"{label}_isolated"] = int(members.size)
        return members.astype(np.int64)

    built = build_graph(
        members.shape[0], sub_src, sub_dst, drop_zero_degree=True, dedup=False
    )
    result = algorithm(built.graph)
    # Local new-id -> local old-id -> global old-id.
    connected_local = np.flatnonzero(built.old_to_new >= 0)
    sub_order = invert_permutation(result.relabeling)
    ordered_connected = members[connected_local[sub_order]]
    isolated = members[built.old_to_new < 0]
    details[f"{label}_isolated"] = int(isolated.shape[0])
    return np.concatenate([ordered_connected, isolated])
