"""Degree-Based Grouping (Faldu, Diamond, Grot — IISWC'19/2001.08448).

DBG is the lightweight skew-aware foil to the paper's structural RAs:
it partitions vertices into a handful of coarse degree classes with
boundaries at power-of-two multiples of the average degree, emits the
classes hottest-first, and **preserves the original relative order
inside every class** — so whatever locality the initial ordering
already had among same-class vertices survives, unlike a full degree
sort.  Cost is one degree pass plus a stable counting sort: O(|V|).

Locality prediction per the paper's I-V taxonomy: DBG concentrates the
type-II/III temporal reuse of the hub classes into a small ID range
(like HubSort) while leaving type-IV/V LDV spatial structure untouched;
it cannot *create* community locality the input lacks.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReorderingError
from repro.graph.graph import Graph
from repro.graph.permute import sort_order_to_relabeling
from repro.obs import span

from repro.reorder.base import ReorderingAlgorithm

__all__ = ["DegreeBasedGrouping"]


class DegreeBasedGrouping(ReorderingAlgorithm):
    """Coarse degree classes, hottest first, original order inside each.

    Parameters
    ----------
    num_groups:
        Number of degree classes (the paper's DBG uses 8).  Class
        boundaries sit at ``avg_degree * 2^j`` for ``j`` descending from
        ``num_groups - 3`` to ``-1``, i.e. for 8 groups the hottest
        class holds degrees above ``32 * avg`` and the coldest degrees
        at or below ``avg / 2``.
    direction:
        Which degree classifies a vertex: ``"in"``, ``"out"`` or
        ``"total"`` (default — matches the degree-sort baseline).
    """

    name = "dbg"

    def __init__(self, num_groups: int = 8, *, direction: str = "total") -> None:
        if num_groups < 2:
            raise ReorderingError(
                f"num_groups must be >= 2, got {num_groups}"
            )
        if direction not in ("in", "out", "total"):
            raise ReorderingError(f"unknown degree direction: {direction!r}")
        self.num_groups = num_groups
        self.direction = direction

    def group_thresholds(self, graph: Graph) -> np.ndarray:
        """Ascending class boundaries ``avg * 2^j``, ``j = -1..G-3``."""
        exponents = np.arange(-1, self.num_groups - 2, dtype=np.float64)
        return graph.average_degree * np.exp2(exponents)

    def group_of(self, graph: Graph) -> np.ndarray:
        """Hot-first class index (0 = highest degree class) per vertex.

        Pure function of the degree array, so it is invariant under any
        relabeling of the input IDs — the property the metamorphic
        tests pin.
        """
        degrees = graph._degrees(self.direction)
        thresholds = self.group_thresholds(graph)
        # searchsorted counts the boundaries at or below each degree;
        # flipping makes 0 the hottest class.
        cold_rank = np.searchsorted(thresholds, degrees, side="left")
        return (self.num_groups - 1) - cold_rank

    def compute(self, graph: Graph, details: dict) -> np.ndarray:
        with span(f"reorder.{self.name}.group", num_groups=self.num_groups):
            group = self.group_of(graph)
            # Stable sort by class: classes hottest-first, original
            # relative order preserved inside each class.
            order = np.argsort(group, kind="stable").astype(np.int64)
        details["num_groups"] = self.num_groups
        details["thresholds"] = self.group_thresholds(graph).tolist()
        details["group_sizes"] = (
            np.bincount(group, minlength=self.num_groups).astype(np.int64).tolist()
        )
        return sort_order_to_relabeling(order)
