"""GOrder (Wei, Yu, Lu, Lin — SIGMOD'16; Sections IV-C and VI-B).

GOrder greedily appends vertices to the new order, always picking the
unplaced vertex with the highest *score* against a sliding window of
the ``w`` most recently placed vertices (default ``w = 5``):

    S(u, v) = S_s(u, v) + S_n(u, v)

where the sibling score ``S_s`` counts common in-neighbours and the
neighbourhood score ``S_n`` counts edges between ``u`` and ``v``.  The
goal is maximal temporal reuse of whatever the cache currently holds
(locality types II and III).

Like the reference implementation, the sibling-score expansion skips
*huge nodes* (in-neighbours whose out-degree exceeds ``sqrt(|V|)``):
expanding a hub's full out-list per step is prohibitively expensive and
adds a near-uniform constant to every candidate's score.
"""

from __future__ import annotations

import math
from collections import deque

import numpy as np

from repro.errors import ReorderingError
from repro.graph.graph import Graph
from repro.graph.permute import sort_order_to_relabeling
from repro.obs import span

from repro.reorder.base import ReorderingAlgorithm

__all__ = ["GOrder"]


class GOrder(ReorderingAlgorithm):
    """Greedy window-scored ordering.

    Parameters
    ----------
    window:
        Sliding-window size; the paper uses GOrder's default of 5 and
        observes the fixed size is exactly why GOrder cannot separate
        the numerous equally-scored LDV.
    huge_threshold:
        Out-degree above which an in-neighbour is not expanded for the
        sibling score, mirroring GOrder's huge-node rule; defaults to
        ``sqrt(|E|)`` when None (a budget that keeps the expansion cost
        near-linear while covering all but the extreme hubs).
    adaptive:
        The Section VIII-C improvement: "GO can be improved by
        dynamically changing size of sliding window based on the
        contents of the window".  When enabled, the window grows (up to
        ``max_window``) while low-degree vertices are being placed —
        LDV need more context to be distinguished — and shrinks back
        toward ``window`` when hubs enter and dominate the scores.
    """

    name = "gorder"

    def __init__(
        self,
        window: int = 5,
        *,
        huge_threshold: int | None = None,
        adaptive: bool = False,
        max_window: int = 32,
    ):
        if window < 1:
            raise ReorderingError(f"window must be >= 1, got {window}")
        if max_window < window:
            raise ReorderingError(
                f"max_window {max_window} must be >= window {window}"
            )
        self.window = window
        self.huge_threshold = huge_threshold
        self.adaptive = adaptive
        self.max_window = max_window

    def compute(self, graph: Graph, details: dict) -> np.ndarray:
        n = graph.num_vertices
        out_off = graph.out_adj.offsets
        out_tgt = graph.out_adj.targets
        in_off = graph.in_adj.offsets
        in_tgt = graph.in_adj.targets
        out_deg = graph.out_degrees()
        threshold = self.huge_threshold
        if threshold is None:
            threshold = max(int(math.sqrt(graph.num_edges)), int(math.sqrt(n)))

        # score[u] = S(u, window); placed vertices are masked at -inf.
        score = np.zeros(n, dtype=np.float64)
        placed = np.zeros(n, dtype=bool)
        order = np.empty(n, dtype=np.int64)
        window: deque[int] = deque()

        def contributions(v: int) -> np.ndarray:
            """Vertices whose score changes by 1 when v joins the window."""
            parts = [
                out_tgt[out_off[v] : out_off[v + 1]],  # S_n: v -> u
                in_tgt[in_off[v] : in_off[v + 1]],  # S_n: u -> v
            ]
            # S_s: common in-neighbour x of u and v (skip huge x).
            for x in in_tgt[in_off[v] : in_off[v + 1]].tolist():
                if out_deg[x] <= threshold:
                    parts.append(out_tgt[out_off[x] : out_off[x + 1]])
            return np.concatenate(parts) if parts else np.zeros(0, dtype=np.int64)

        # Start from the maximum-degree vertex (paper, Section IV-C).
        total_deg = graph.total_degrees()
        average_degree = graph.average_degree
        window_size = self.window
        max_window_seen = self.window
        start = int(np.argmax(total_deg))
        cursor = 0
        current = start
        # One span for the whole greedy pass: the loop body is per-vertex
        # hot, so per-iteration spans would distort what they measure.
        with span("reorder.gorder.greedy", huge_threshold=threshold):
            while True:
                order[cursor] = current
                cursor += 1
                placed[current] = True
                score[current] = -np.inf
                if cursor == n:
                    break

                window.append(current)
                np.add.at(score, contributions(current), 1.0)
                if self.adaptive:
                    # Grow while placing LDV, shrink when a hub enters.
                    if total_deg[current] <= average_degree:
                        window_size = min(window_size + 1, self.max_window)
                    else:
                        window_size = max(self.window, window_size - 2)
                    max_window_seen = max(max_window_seen, window_size)
                while len(window) > window_size:
                    leaver = window.popleft()
                    np.add.at(score, contributions(leaver), -1.0)
                    score[leaver] = -np.inf  # keep placed vertices masked

                best = int(np.argmax(score))
                if placed[best]:
                    # Every unplaced vertex scored -inf cannot happen (only
                    # placed ones are masked), but argmax may land on a
                    # placed vertex when all remaining scores are 0 and the
                    # mask is -inf; fall back to the first unplaced vertex.
                    best = int(np.flatnonzero(~placed)[0])
                current = best

        details["window"] = self.window
        details["huge_threshold"] = threshold
        if self.adaptive:
            details["max_window_used"] = max_window_seen
        return sort_order_to_relabeling(order)
