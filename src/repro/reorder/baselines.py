"""Baseline orderings: identity, random, degree sort, BFS.

The paper's baseline ("Bl") is the dataset's initial order, i.e. the
identity relabeling.  Random ordering is the worst-case control, degree
sorting represents the lightweight degree-ordering family SlashBurn
generalizes, and BFS ordering is the classic traversal-locality
baseline used by lightweight-reordering studies.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import ReorderingError
from repro.graph.graph import Graph
from repro.graph.permute import (
    identity_permutation,
    random_permutation,
    sort_order_to_relabeling,
)

from repro.obs import span
from repro.reorder.base import ReorderingAlgorithm

__all__ = ["Identity", "RandomOrder", "DegreeSort", "BFSOrder"]


class Identity(ReorderingAlgorithm):
    """Keep the initial vertex order (the paper's baseline)."""

    name = "identity"

    def compute(self, graph: Graph, details: dict) -> np.ndarray:
        return identity_permutation(graph.num_vertices)


class RandomOrder(ReorderingAlgorithm):
    """Uniformly random relabeling — a locality-destroying control."""

    name = "random"

    def __init__(self, seed: int = 0):
        self.seed = seed

    def compute(self, graph: Graph, details: dict) -> np.ndarray:
        return random_permutation(graph.num_vertices, seed=self.seed)


class DegreeSort(ReorderingAlgorithm):
    """Sort vertices by degree (descending by default).

    Representative of the degree-ordering family; SlashBurn's hub
    extraction degenerates to this when every vertex is slashed at once.
    """

    name = "degree"

    def __init__(self, direction: str = "total", descending: bool = True):
        if direction not in ("in", "out", "total"):
            raise ReorderingError(f"unknown degree direction: {direction!r}")
        self.direction = direction
        self.descending = descending

    def compute(self, graph: Graph, details: dict) -> np.ndarray:
        degrees = graph._degrees(self.direction)
        key = -degrees if self.descending else degrees
        # Stable sort keeps the original order among equal degrees.
        order = np.argsort(key, kind="stable").astype(np.int64)
        return sort_order_to_relabeling(order)


class BFSOrder(ReorderingAlgorithm):
    """Breadth-first order over the undirected view.

    Starts from the highest-total-degree vertex; restarts from the next
    unvisited highest-degree vertex when a component is exhausted.
    """

    name = "bfs"

    def compute(self, graph: Graph, details: dict) -> np.ndarray:
        n = graph.num_vertices
        out_adj, in_adj = graph.out_adj, graph.in_adj
        visited = np.zeros(n, dtype=bool)
        order = np.empty(n, dtype=np.int64)
        cursor = 0
        by_degree = np.argsort(-graph.total_degrees(), kind="stable")
        seed_cursor = 0
        num_components = 0
        queue: deque[int] = deque()
        with span("reorder.bfs.traverse") as sp:
            while cursor < n:
                while seed_cursor < n and visited[by_degree[seed_cursor]]:
                    seed_cursor += 1
                root = int(by_degree[seed_cursor])
                num_components += 1
                visited[root] = True
                queue.append(root)
                while queue:
                    v = queue.popleft()
                    order[cursor] = v
                    cursor += 1
                    neighbours = np.concatenate(
                        [out_adj.neighbours(v), in_adj.neighbours(v)]
                    )
                    for u in np.unique(neighbours).tolist():
                        if not visited[u]:
                            visited[u] = True
                            queue.append(u)
            sp.set(components=num_components)
        details["num_components_visited"] = num_components
        return sort_order_to_relabeling(order)
