"""Trace-profiled reordering (HisOrder-style K-means over co-occurrence).

Every other RA in the registry reorders from graph *structure*; this one
reorders from observed *behaviour*.  It profiles one SpMV traversal with
the simulator's own trace generator (:func:`repro.sim.trace.spmv_trace`),
summarizes when each vertex's data is randomly touched as a per-vertex
histogram over coarse time windows, and K-means-clusters those
histograms so vertices that are co-activated — touched in the same
phases of the traversal — land in the same cluster and hence in one
contiguous new-ID block.  Clusters are emitted in temporal order (mean
first-touch first) and vertices inside a cluster keep first-touch order,
so the new layout follows the profiled access timeline.

Complexity: trace generation O(|E|), feature build O(|E|), K-means
O(iters * k * n * W) on dense numpy — all seeded and deterministic.
Locality prediction (paper's I-V taxonomy): co-activation clustering is
a direct attack on type-III windowed temporal locality (reuse within a
phase) and yields type-IV/V spatial wins when co-activated vertices
share cache lines; unlike degree-ordering it does nothing special for
type-II hub reuse unless hubs co-activate.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReorderingError
from repro.graph.graph import Graph
from repro.graph.permute import sort_order_to_relabeling
from repro.obs import span

from repro.reorder.base import ReorderingAlgorithm

__all__ = ["TraceProfiledOrder"]


class TraceProfiledOrder(ReorderingAlgorithm):
    """Cluster co-activated vertices from a profiled SpMV trace.

    Parameters
    ----------
    num_clusters:
        K for the K-means phase.  Default ``None`` derives
        ``min(64, ceil(sqrt(n)))`` from the graph size.
    num_windows:
        Number of equal-width time windows the trace is split into; the
        per-vertex feature is its random-access count per window.
    direction:
        Traversal profiled (``"pull"`` or ``"push"``).
    seed:
        Seeds centroid initialization; the ordering is deterministic
        for a fixed ``(graph, params, seed)``.
    max_iters:
        K-means iteration cap.
    """

    name = "hisorder"

    def __init__(
        self,
        num_clusters: "int | None" = None,
        *,
        num_windows: int = 32,
        direction: str = "pull",
        seed: int = 0,
        max_iters: int = 25,
    ) -> None:
        if num_clusters is not None and num_clusters < 1:
            raise ReorderingError(
                f"num_clusters must be >= 1, got {num_clusters}"
            )
        if num_windows < 1:
            raise ReorderingError(f"num_windows must be >= 1, got {num_windows}")
        if direction not in ("pull", "push"):
            raise ReorderingError(f"unknown traversal direction: {direction!r}")
        if max_iters < 1:
            raise ReorderingError(f"max_iters must be >= 1, got {max_iters}")
        self.num_clusters = num_clusters
        self.num_windows = num_windows
        self.direction = direction
        self.seed = seed
        self.max_iters = max_iters

    def _resolve_k(self, num_accessed: int) -> int:
        if self.num_clusters is not None:
            return min(self.num_clusters, num_accessed)
        derived = int(np.ceil(np.sqrt(num_accessed)))
        return max(1, min(64, derived, num_accessed))

    def compute(self, graph: Graph, details: dict) -> np.ndarray:
        from repro.sim.trace import spmv_trace

        n = graph.num_vertices
        with span(f"reorder.{self.name}.profile", direction=self.direction):
            profiled = spmv_trace(graph, direction=self.direction)
            mask = profiled.random_mask()
            touched = profiled.read_vertex[mask]
            when = np.flatnonzero(mask)
        details["trace_length"] = len(profiled)
        details["num_random_accesses"] = int(touched.shape[0])

        if touched.shape[0] == 0:
            # Nothing was randomly touched (edge-free graph): identity.
            details["num_clusters_used"] = 0
            details["kmeans_iters"] = 0
            details["num_unaccessed"] = n
            return np.arange(n, dtype=np.int64)

        with span(f"reorder.{self.name}.features", num_windows=self.num_windows):
            window = when * np.int64(self.num_windows) // np.int64(len(profiled))
            counts = np.zeros((n, self.num_windows), dtype=np.float64)
            np.add.at(counts, (touched, window), 1.0)
            first_touch = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
            # Reversed so earlier positions overwrite later ones.
            first_touch[touched[::-1]] = when[::-1]
            accessed = np.flatnonzero(counts.sum(axis=1) > 0)
            features = counts[accessed]
            norms = np.sqrt((features**2).sum(axis=1, keepdims=True))
            features = features / norms

        k = self._resolve_k(accessed.shape[0])
        with span(f"reorder.{self.name}.kmeans", k=k) as sp:
            assignment, iters = _kmeans(
                features, k, seed=self.seed, max_iters=self.max_iters
            )
            sp.set(iters=iters)
        details["num_clusters_used"] = k
        details["kmeans_iters"] = iters

        # Clusters in temporal order: by mean first-touch position of
        # their members (ties by cluster ID); members by first touch,
        # ties by original ID (argsort stability over sorted `accessed`).
        member_first = first_touch[accessed].astype(np.float64)
        cluster_mean = np.zeros(k, dtype=np.float64)
        np.add.at(cluster_mean, assignment, member_first)
        cluster_mean /= np.maximum(np.bincount(assignment, minlength=k), 1)
        cluster_rank = np.empty(k, dtype=np.int64)
        cluster_rank[
            np.lexsort((np.arange(k, dtype=np.int64), cluster_mean))
        ] = np.arange(k, dtype=np.int64)
        ordered_accessed = accessed[
            np.lexsort((first_touch[accessed], cluster_rank[assignment]))
        ]
        unaccessed = np.setdiff1d(
            np.arange(n, dtype=np.int64), accessed, assume_unique=True
        )
        details["num_unaccessed"] = int(unaccessed.shape[0])
        order = np.concatenate([ordered_accessed, unaccessed])
        return sort_order_to_relabeling(order)


def _kmeans(
    features: np.ndarray, k: int, *, seed: int, max_iters: int
) -> "tuple[np.ndarray, int]":
    """Seeded dense K-means; returns (assignment, iterations run).

    Initial centroids are k distinct rows drawn by a seeded RNG;
    assignment ties go to the lowest cluster ID and empty clusters are
    reseeded to the point farthest from its centroid, so the result is
    a deterministic function of ``(features, k, seed, max_iters)``.
    """
    num_points = features.shape[0]
    rng = np.random.default_rng(seed)
    centroids = features[rng.choice(num_points, size=k, replace=False)].copy()
    assignment = np.zeros(num_points, dtype=np.int64)
    iters = 0
    for _ in range(max_iters):
        iters += 1
        # ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2; argmin ties -> lowest ID.
        dots = features @ centroids.T
        sq = (features**2).sum(axis=1, keepdims=True) + (centroids**2).sum(
            axis=1
        )
        new_assignment = np.argmin(sq - 2.0 * dots, axis=1).astype(np.int64)
        if iters > 1 and np.array_equal(new_assignment, assignment):
            break
        assignment = new_assignment
        sums = np.zeros_like(centroids)
        np.add.at(sums, assignment, features)
        members = np.bincount(assignment, minlength=k).astype(np.float64)
        empty = members == 0
        if empty.any():
            # Reseed each empty cluster to the currently worst-fit point.
            dist = (sq - 2.0 * dots)[
                np.arange(num_points, dtype=np.int64), assignment
            ]
            for cluster in np.flatnonzero(empty).tolist():
                farthest = int(np.argmax(dist))
                sums[cluster] = features[farthest]
                members[cluster] = 1.0
                dist[farthest] = -np.inf
        centroids = sums / members[:, None]
    return assignment, iters
