"""Reordering algorithms: the three RAs the paper studies, baselines,
and the paper's proposed improvements."""

from repro.errors import ReorderingError
from repro.reorder.base import ReorderingAlgorithm, ReorderResult
from repro.reorder.baselines import BFSOrder, DegreeSort, Identity, RandomOrder
from repro.reorder.community import CommunityOrder
from repro.reorder.dbg import DegreeBasedGrouping
from repro.reorder.edr import EDRRestricted, efficacy_degree_range
from repro.reorder.gorder import GOrder
from repro.reorder.hubsort import HubCluster, HubSort
from repro.reorder.hybrid import HybridOrder
from repro.reorder.rabbit import RabbitOrder
from repro.reorder.rcm import ReverseCuthillMcKee
from repro.reorder.slashburn import (
    SlashBurn,
    SlashBurnIteration,
    SlashBurnPP,
    slashburn_iterations,
)
from repro.reorder.traceprof import TraceProfiledOrder

__all__ = [
    "ReorderingAlgorithm",
    "ReorderResult",
    "BFSOrder",
    "CommunityOrder",
    "DegreeBasedGrouping",
    "DegreeSort",
    "Identity",
    "RandomOrder",
    "TraceProfiledOrder",
    "EDRRestricted",
    "efficacy_degree_range",
    "GOrder",
    "HubCluster",
    "HubSort",
    "HybridOrder",
    "RabbitOrder",
    "ReverseCuthillMcKee",
    "SlashBurn",
    "SlashBurnIteration",
    "SlashBurnPP",
    "slashburn_iterations",
    "get_algorithm",
    "algorithm_names",
]

_FACTORIES = {
    "identity": Identity,
    "random": RandomOrder,
    "degree": DegreeSort,
    "bfs": BFSOrder,
    "rcm": ReverseCuthillMcKee,
    "hubsort": HubSort,
    "hubcluster": HubCluster,
    "slashburn": SlashBurn,
    "slashburn++": SlashBurnPP,
    "gorder": GOrder,
    "rabbit": RabbitOrder,
    "hybrid": HybridOrder,
    "dbg": DegreeBasedGrouping,
    "community": CommunityOrder,
    "hisorder": TraceProfiledOrder,
}


def algorithm_names() -> list[str]:
    """Names accepted by :func:`get_algorithm`."""
    return list(_FACTORIES)


def get_algorithm(name: str, **kwargs) -> ReorderingAlgorithm:
    """Instantiate a reordering algorithm by registry name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ReorderingError(
            f"unknown reordering algorithm {name!r}; available: {algorithm_names()}"
        ) from None
    return factory(**kwargs)
