"""Reverse Cuthill-McKee (RCM) bandwidth-reducing ordering.

Cuthill-McKee [1969] is the classic matrix-bandwidth reordering the
paper cites as the ancestor of the RA family ([3] in its bibliography).
It performs a BFS from a low-degree peripheral vertex, visiting each
level's vertices in increasing-degree order; *reverse* CM reverses the
final order, which further reduces the matrix profile.

RCM targets bandwidth (all neighbours close to the diagonal), which for
the paper's metrics translates into uniformly low average gap — a
useful contrast to AID-optimizing community RAs in ablations.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.graph.graph import Graph
from repro.graph.permute import sort_order_to_relabeling
from repro.obs import span

from repro.reorder.base import ReorderingAlgorithm

__all__ = ["ReverseCuthillMcKee"]


class ReverseCuthillMcKee(ReorderingAlgorithm):
    """RCM over the undirected view of the graph."""

    name = "rcm"

    def compute(self, graph: Graph, details: dict) -> np.ndarray:
        n = graph.num_vertices
        out_adj, in_adj = graph.out_adj, graph.in_adj
        degrees = graph.total_degrees()
        visited = np.zeros(n, dtype=bool)
        order = np.empty(n, dtype=np.int64)
        cursor = 0

        # Seed components from their minimum-degree vertex (the classic
        # peripheral-vertex heuristic, cheap version).
        seeds = np.argsort(degrees, kind="stable")
        seed_cursor = 0
        num_components = 0
        # One span over all component BFSes: power-law graphs have
        # thousands of tiny components, so per-component spans would
        # swamp the trace.
        with span("reorder.rcm.bfs") as bfs_span:
            while cursor < n:
                while visited[seeds[seed_cursor]]:
                    seed_cursor += 1
                root = int(seeds[seed_cursor])
                num_components += 1
                visited[root] = True
                # Heap keyed by (BFS discovery index, degree) so each level
                # is emitted in increasing-degree order.
                heap: list[tuple[int, int, int]] = [(0, int(degrees[root]), root)]
                discovery = 1
                while heap:
                    _, __, v = heapq.heappop(heap)
                    order[cursor] = v
                    cursor += 1
                    neighbours = np.unique(
                        np.concatenate(
                            [out_adj.neighbours(v), in_adj.neighbours(v)]
                        )
                    )
                    for u in neighbours.tolist():
                        if not visited[u]:
                            visited[u] = True
                            heapq.heappush(heap, (discovery, int(degrees[u]), u))
                    discovery += 1
            bfs_span.set(components=num_components)

        details["num_components"] = num_components
        return sort_order_to_relabeling(order[::-1].copy())
