"""Rabbit-Order (Arai et al., IPDPS'16; Sections IV-B and VI-C).

Rabbit-Order builds communities bottom-up: visiting vertices in
increasing-degree order, each vertex merges into the neighbour with the
maximum modularity gain

    dQ(u, v) = 2 * ( w_uv / (2m)  -  deg_u * deg_v / (2m)^2 )

(merging stops when no neighbour has positive gain; such vertices seed
the *top-level set*).  A second phase assigns new IDs by DFS over each
merge tree, so the members of one community receive consecutive IDs —
the mechanism that reduces the AID of low-degree vertices (Figure 3).

The reference implementation is non-deterministic across runs (the
paper observed +-5 % variation); this implementation is deterministic
for a given ``seed``, which perturbs the visiting order among
equal-degree vertices.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.errors import ReorderingError
from repro.graph.graph import Graph
from repro.graph.permute import sort_order_to_relabeling
from repro.obs import span

from repro.reorder.base import ReorderingAlgorithm

__all__ = ["RabbitOrder"]


class RabbitOrder(ReorderingAlgorithm):
    """Community-by-merging ordering with DFS ID assignment.

    Parameters
    ----------
    seed:
        Seeds the tie-breaking among equal-degree vertices, reproducing
        (deterministically) the run-to-run variation of the reference
        implementation.
    max_community_weight:
        Optional cap on the weighted degree of a merged community —
        the cache-aware improvement suggested in Section VIII-C ("RO can
        use cache size as an indicator of the maximum number of vertices
        in a community").  ``None`` (default) reproduces plain RO.
    """

    name = "rabbit"

    def __init__(self, seed: int = 0, *, max_community_weight: float | None = None):
        self.seed = seed
        if max_community_weight is not None and max_community_weight <= 0:
            raise ReorderingError("max_community_weight must be positive")
        self.max_community_weight = max_community_weight

    def compute(self, graph: Graph, details: dict) -> np.ndarray:
        n = graph.num_vertices
        if graph.num_edges == 0:
            return np.arange(n, dtype=np.int64)

        # Undirected weighted adjacency (directions merged, weight = edge
        # multiplicity); self-loops contribute to the self weight.
        with span("reorder.rabbit.adjacency"):
            adjacency, self_weight, strength = _undirected_adjacency(graph)
        total_weight = float(graph.num_edges)  # m in the gain formula
        two_m = 2.0 * total_weight

        parent = np.arange(n, dtype=np.int64)
        children: list[list[int]] = [[] for _ in range(n)]
        top_level: list[int] = []

        def find(v: int) -> int:
            root = v
            while parent[root] != root:
                root = parent[root]
            while parent[v] != root:
                parent[v], v = root, parent[v]
            return root

        # Visit in increasing-degree order, seed-perturbed tie-breaks.
        rng = np.random.default_rng(self.seed)
        tie_break = rng.permutation(n)
        visit_order = np.lexsort((tie_break, graph.total_degrees()))

        cap = self.max_community_weight
        num_merges = 0
        with span("reorder.rabbit.merge") as merge_span:
            for v in visit_order.tolist():
                if find(v) != v:
                    continue  # already absorbed into another community
                # Resolve v's adjacency through the union-find, folding edges
                # that became internal into the self weight.
                resolved: dict[int, float] = {}
                internal = 0.0
                for u, w in adjacency[v].items():
                    root = find(u)
                    if root == v:
                        internal += w
                    else:
                        resolved[root] = resolved.get(root, 0.0) + w
                self_weight[v] += internal
                adjacency[v] = resolved

                best_gain = 0.0
                best: int | None = None
                deg_v = strength[v]
                for u, w in resolved.items():
                    if cap is not None and strength[u] + deg_v > cap:
                        continue
                    gain = 2.0 * (w / two_m - (strength[u] * deg_v) / (two_m * two_m))
                    if gain > best_gain:
                        best_gain = gain
                        best = u
                if best is None:
                    top_level.append(v)
                    continue

                # Merge v into best: the union-find makes edges pointing at v
                # resolve to best lazily; adjacency dicts are combined here.
                parent[v] = best
                children[best].append(v)
                num_merges += 1
                target = adjacency[best]
                for u, w in resolved.items():
                    if u == best:
                        self_weight[best] += self_weight[v] + 2.0 * w
                    else:
                        target[u] = target.get(u, 0.0) + w
                target.pop(v, None)
                strength[best] += strength[v]
                adjacency[v] = {}
            merge_span.set(merges=num_merges)

        with span("reorder.rabbit.dfs"):
            order = _dfs_order(n, children, top_level)
        details["num_top_level"] = len(top_level)
        details["num_merges"] = num_merges
        return sort_order_to_relabeling(order)


def _undirected_adjacency(
    graph: Graph,
) -> tuple[list[dict[int, float]], np.ndarray, np.ndarray]:
    """Per-vertex weighted neighbour dicts over the undirected view."""
    n = graph.num_vertices
    src, dst = graph.edges()
    adjacency: list[dict[int, float]] = [dict() for _ in range(n)]
    self_weight = np.zeros(n, dtype=np.float64)
    for u, v in zip(src.tolist(), dst.tolist()):
        if u == v:
            self_weight[u] += 2.0  # a self-loop counts twice in strength
            continue
        adjacency[u][v] = adjacency[u].get(v, 0.0) + 1.0
        adjacency[v][u] = adjacency[v].get(u, 0.0) + 1.0
    strength = self_weight + np.asarray(
        [sum(d.values()) for d in adjacency], dtype=np.float64
    )
    return adjacency, self_weight, strength


def _dfs_order(n: int, children: list[list[int]], top_level: list[int]) -> np.ndarray:
    """Pre-order DFS over every merge tree, top-level roots first."""
    order = np.empty(n, dtype=np.int64)
    cursor = 0
    visited = np.zeros(n, dtype=bool)
    sys.setrecursionlimit(max(sys.getrecursionlimit(), 10_000))
    for root in top_level:
        if visited[root]:
            continue
        stack = [root]
        while stack:
            v = stack.pop()
            if visited[v]:
                continue
            visited[v] = True
            order[cursor] = v
            cursor += 1
            # Reversed so the earliest-merged child is visited first.
            stack.extend(reversed(children[v]))
    # Isolated or unreached vertices (none in a cleaned graph, but kept
    # for safety) are appended in ID order.
    if cursor < n:
        rest = np.flatnonzero(~visited)
        order[cursor : cursor + rest.shape[0]] = rest
        cursor += rest.shape[0]
    if cursor != n:
        raise ReorderingError("DFS did not reach every vertex exactly once")
    return order
