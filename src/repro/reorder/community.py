"""GraphBrewOrder-style per-community reordering.

Unlike RAs that treat the whole graph uniformly, :class:`CommunityOrder`
(1) detects communities with seeded label propagation
(:func:`repro.graph.communities.label_propagation_communities`),
(2) applies a *configurable inner RA from the registry* to each
community's induced subgraph, and (3) emits the communities size-sorted
(largest first), each occupying one contiguous new-ID range — the
"size-sorted merge" of GraphBrew.  Because the inner RA is any
registered algorithm, this composes with every entry in the registry.

Complexity: LPA rounds O(rounds * |E|), one edge bucketing pass
O(|E| log |E|), plus the inner RA on each community (community sizes
sum to |V|, so a linear inner RA keeps the whole thing near-linear).
Locality prediction (paper's I-V taxonomy): packing communities
contiguously converts inter-community pollution into type-IV/V spatial
locality for LDV (like Rabbit-Order's DFS phase), while the inner RA
decides the type-II/III temporal behaviour inside each block.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReorderingError
from repro.graph.build import build_graph
from repro.graph.communities import CommunityResult, label_propagation_communities
from repro.graph.graph import Graph
from repro.graph.permute import invert_permutation, sort_order_to_relabeling
from repro.obs import span

from repro.reorder.base import ReorderingAlgorithm

__all__ = ["CommunityOrder"]


class CommunityOrder(ReorderingAlgorithm):
    """Label-propagation communities, inner RA per community, size-sorted.

    Parameters
    ----------
    inner:
        Registry name of the RA applied inside each community (default
        ``"rabbit"``, GraphBrew's default).  ``"community"`` itself is
        rejected — per-community recursion must be bounded.
    seed:
        Seeds the label propagation.
    max_rounds:
        Label-propagation round cap.
    inner_params:
        Extra keyword arguments for the inner RA's constructor.
    """

    name = "community"

    def __init__(
        self,
        inner: str = "rabbit",
        *,
        seed: int = 0,
        max_rounds: int = 16,
        inner_params: "dict | None" = None,
    ) -> None:
        if inner == self.name:
            raise ReorderingError(
                "per-community reordering cannot nest itself; pick a "
                "non-composite inner algorithm"
            )
        # Validate the inner name eagerly so a typo fails at construction
        # (and serve-job validation) time, not mid-reordering.
        from repro.reorder import algorithm_names

        if inner not in algorithm_names():
            raise ReorderingError(
                f"unknown inner algorithm {inner!r}; available: "
                f"{[n for n in algorithm_names() if n != self.name]}"
            )
        self.inner = inner
        self.seed = seed
        self.max_rounds = max_rounds
        self.inner_params = dict(inner_params) if inner_params else {}

    def communities(self, graph: Graph) -> CommunityResult:
        """The community partition this ordering would use (test hook)."""
        src, dst = graph.edges()
        return label_propagation_communities(
            graph.num_vertices, src, dst, seed=self.seed, max_rounds=self.max_rounds
        )

    def _inner_algorithm(self) -> ReorderingAlgorithm:
        from repro.reorder import get_algorithm

        return get_algorithm(self.inner, **self.inner_params)

    def compute(self, graph: Graph, details: dict) -> np.ndarray:
        n = graph.num_vertices
        src, dst = graph.edges()
        with span(f"reorder.{self.name}.detect"):
            partition = self.communities(graph)
        details["num_communities"] = partition.num_communities
        details["lpa_rounds"] = partition.rounds
        details["inner"] = self.inner

        labels = partition.labels
        # One stable sort gives every community's member slice at once;
        # local_id maps each vertex to its rank inside its community.
        members_by_label = np.argsort(labels, kind="stable").astype(np.int64)
        starts = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(partition.sizes)]
        )
        local_id = np.empty(n, dtype=np.int64)
        local_id[members_by_label] = np.arange(n, dtype=np.int64) - np.repeat(
            starts[:-1], partition.sizes
        )
        # Bucket the intra-community edges by community, one pass.
        intra = labels[src] == labels[dst]
        intra_src, intra_dst = src[intra], dst[intra]
        bucket = np.argsort(labels[intra_src], kind="stable")
        intra_src, intra_dst = intra_src[bucket], intra_dst[bucket]
        edge_starts = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(partition.internal_edges)]
        )

        # Largest community first; ties by community ID for determinism.
        by_size = np.lexsort(
            (
                np.arange(partition.num_communities, dtype=np.int64),
                -partition.sizes,
            )
        )
        order = np.empty(n, dtype=np.int64)
        cursor = 0
        inner_runs = 0
        with span(f"reorder.{self.name}.inner", inner=self.inner) as sp:
            for community in by_size.tolist():
                members = members_by_label[
                    starts[community] : starts[community + 1]
                ]
                lo, hi = edge_starts[community], edge_starts[community + 1]
                if members.shape[0] > 1 and hi > lo:
                    block = _inner_order(
                        members,
                        local_id[intra_src[lo:hi]],
                        local_id[intra_dst[lo:hi]],
                        self._inner_algorithm(),
                    )
                    inner_runs += 1
                else:
                    block = members
                order[cursor : cursor + block.shape[0]] = block
                cursor += block.shape[0]
            sp.set(communities=partition.num_communities, inner_runs=inner_runs)
        if cursor != n:
            raise ReorderingError(
                f"community blocks covered {cursor} of {n} vertices"
            )
        details["inner_runs"] = inner_runs
        return sort_order_to_relabeling(order)


def _inner_order(
    members: np.ndarray,
    sub_src: np.ndarray,
    sub_dst: np.ndarray,
    algorithm: ReorderingAlgorithm,
) -> np.ndarray:
    """Members reordered by ``algorithm`` on their induced subgraph.

    ``sub_src``/``sub_dst`` are the community's internal edges in local
    IDs (the rank of each endpoint within ``members``).  Vertices the
    cleaning pass isolates (no intra-community edges of their own) keep
    their relative order after the reordered ones, mirroring the
    zero-degree convention of the EDR wrapper.
    """
    built = build_graph(
        members.shape[0], sub_src, sub_dst, drop_zero_degree=True, dedup=False
    )
    if built.graph.num_vertices == 0:
        return members
    result = algorithm(built.graph)
    connected_local = np.flatnonzero(built.old_to_new >= 0)
    sub_order = invert_permutation(result.relabeling)
    ordered = members[connected_local[sub_order]]
    isolated = members[built.old_to_new < 0]
    return np.concatenate([ordered, isolated])
