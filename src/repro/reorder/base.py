"""Reordering algorithm interface.

A reordering (relabeling) algorithm consumes a graph and produces a
relabeling array ``new_id = relabeling[old_id]`` (Section II-E of the
paper).  :class:`ReorderingAlgorithm` standardizes that contract and
measures the preprocessing overheads Table II reports: wall-clock time
and peak memory of the computation.
"""

from __future__ import annotations

import time
import tracemalloc
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReorderingError
from repro.graph.graph import Graph
from repro.graph.permute import check_permutation
from repro.obs import span

__all__ = ["ReorderResult", "ReorderingAlgorithm"]


@dataclass(frozen=True)
class ReorderResult:
    """A validated relabeling plus its preprocessing overheads."""

    algorithm: str
    relabeling: np.ndarray
    preprocessing_seconds: float
    peak_memory_bytes: int = 0
    details: dict = field(default_factory=dict)

    def apply(self, graph: Graph) -> Graph:
        """Rebuild ``graph`` in the new ID space."""
        return graph.permuted(self.relabeling)


class ReorderingAlgorithm(ABC):
    """Base class for all relabeling algorithms.

    Subclasses implement :meth:`compute`, returning the relabeling
    array.  Calling the instance wraps the computation with timing,
    optional peak-memory tracking, and permutation validation.
    """

    #: Short name used by registries, tables and reports.
    name: str = "base"

    def __call__(self, graph: Graph, *, track_memory: bool = False) -> ReorderResult:
        if graph.num_vertices == 0:
            raise ReorderingError("cannot reorder an empty graph")
        details: dict = {}
        if track_memory:
            tracemalloc.start()
        start = time.perf_counter()
        with span(
            f"reorder.{self.name}",
            vertices=graph.num_vertices,
            edges=graph.num_edges,
        ):
            relabeling = self.compute(graph, details)
        elapsed = time.perf_counter() - start
        peak = 0
        if track_memory:
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
        relabeling = check_permutation(relabeling, graph.num_vertices)
        return ReorderResult(
            algorithm=self.name,
            relabeling=relabeling,
            preprocessing_seconds=elapsed,
            peak_memory_bytes=peak,
            details=details,
        )

    @abstractmethod
    def compute(self, graph: Graph, details: dict) -> np.ndarray:
        """Produce the relabeling array; may record extras in ``details``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
