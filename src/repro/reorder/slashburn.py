"""SlashBurn and SlashBurn++ (Sections IV-A, VI-A and VIII-B1).

SlashBurn [Lim, Kang, Faloutsos, TKDE'14] views a power-law graph as
hubs connecting spokes: each iteration *slashes* the ``k`` highest-degree
vertices of the current giant connected component (GCC), assigns them
the next lowest IDs in degree order ("basic hub-ordering"), pushes the
vertices of the non-giant components to the highest remaining IDs, and
*burns* on into the GCC.

The paper shows the GCC stops being power-law after a few iterations
(Figure 2), after which further slashing destroys LDV neighbourhoods —
and proposes **SlashBurn++**: stop iterating once the GCC's maximum
degree falls below ``sqrt(|V|)`` and lay out the remainder in one pass
(Table VII).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ReorderingError
from repro.graph.components import connected_components
from repro.graph.graph import Graph
from repro.graph.permute import sort_order_to_relabeling
from repro.obs import metrics as obs_metrics
from repro.obs import span

from repro.reorder.base import ReorderingAlgorithm

__all__ = ["SlashBurnIteration", "SlashBurn", "SlashBurnPP", "slashburn_iterations"]


@dataclass(frozen=True)
class SlashBurnIteration:
    """Snapshot of the graph state after one slash-and-burn iteration."""

    iteration: int
    num_hubs_slashed: int
    num_spoke_vertices: int
    num_spoke_components: int
    gcc_vertices: int
    gcc_edges: int
    gcc_max_degree: int
    gcc_degrees: np.ndarray


class SlashBurn(ReorderingAlgorithm):
    """SlashBurn with basic hub-ordering and ``k = k_ratio * |V|``.

    Parameters
    ----------
    k_ratio:
        Hubs slashed per iteration as a fraction of the (original)
        vertex count; the paper uses 0.02.
    max_iterations:
        Optional hard iteration cap.
    stop_at_sqrt_degree:
        The SlashBurn++ early-stopping rule: stop once the GCC's max
        degree drops below ``sqrt(|V|)``.
    record_iterations:
        Store per-iteration :class:`SlashBurnIteration` snapshots in the
        result's ``details["iterations"]`` (used by Figure 2).
    remainder_order:
        How the final un-slashed residue is laid out.  ``"degree"``
        continues basic hub-ordering (plain SlashBurn's behaviour);
        ``"original"`` keeps the residue's previous relative order —
        treating it as one community left untouched, the natural choice
        for the early-stopping SlashBurn++ whose whole point is to stop
        perturbing the LDV network.
    """

    name = "slashburn"

    def __init__(
        self,
        k_ratio: float = 0.02,
        *,
        max_iterations: int | None = None,
        stop_at_sqrt_degree: bool = False,
        record_iterations: bool = False,
        remainder_order: str = "degree",
    ):
        if not 0.0 < k_ratio <= 1.0:
            raise ReorderingError(f"k_ratio must be in (0, 1], got {k_ratio}")
        if max_iterations is not None and max_iterations < 1:
            raise ReorderingError("max_iterations must be >= 1")
        if remainder_order not in ("degree", "original"):
            raise ReorderingError(
                f"remainder_order must be 'degree' or 'original', got "
                f"{remainder_order!r}"
            )
        self.k_ratio = k_ratio
        self.max_iterations = max_iterations
        self.stop_at_sqrt_degree = stop_at_sqrt_degree
        self.record_iterations = record_iterations
        self.remainder_order = remainder_order

    def compute(self, graph: Graph, details: dict) -> np.ndarray:
        n = graph.num_vertices
        src, dst = graph.edges()
        k = max(1, int(self.k_ratio * n))
        sqrt_threshold = math.sqrt(n)

        order = np.full(n, -1, dtype=np.int64)
        front = 0  # next low position for hubs
        back = n - 1  # next high position for spokes
        active = np.ones(n, dtype=bool)
        iterations: list[SlashBurnIteration] = []
        iteration = 0

        while True:
            active_count = int(active.sum())
            if active_count == 0:
                break
            degrees = _active_degrees(n, src, dst, active)
            if self.stop_at_sqrt_degree and iteration > 0:
                max_degree = int(degrees[active].max(initial=0))
                if max_degree < sqrt_threshold:
                    break
            if active_count <= k or (
                self.max_iterations is not None and iteration >= self.max_iterations
            ):
                break
            iteration += 1

            with span("reorder.slashburn.iteration", iteration=iteration) as sp:
                # Slash: remove the k highest-degree active vertices, giving
                # them the next lowest IDs in decreasing degree order.
                hubs = _top_k_active(degrees, active, k)
                order[front : front + hubs.shape[0]] = hubs
                front += hubs.shape[0]
                active[hubs] = False

                # Burn: find components of the remainder; non-giant component
                # vertices move to the highest remaining IDs.
                result = connected_components(n, src, dst, active=active)
                if result.num_components == 0:
                    break
                gcc = result.giant_component_id(by="edges")
                spokes_mask = active & (result.labels != gcc)
                spokes = np.flatnonzero(spokes_mask)
                if spokes.size:
                    block = _spoke_order(spokes, result.labels, result.sizes, degrees)
                    order[back - block.shape[0] + 1 : back + 1] = block
                    back -= block.shape[0]
                    active[spokes] = False
                sp.set(hubs=int(hubs.shape[0]), spokes=int(spokes.size))

            if self.record_iterations:
                iterations.append(
                    _snapshot(iteration, hubs, spokes, result, gcc, n, src, dst, active)
                )

        # Remainder (the final GCC or the stopped residue).
        remainder = np.flatnonzero(active)
        if remainder.size:
            if self.remainder_order == "degree":
                degrees = _active_degrees(n, src, dst, active)
                tail = remainder[np.lexsort((remainder, -degrees[remainder]))]
            else:  # "original": leave the residue's layout untouched
                tail = remainder
            order[front : front + tail.shape[0]] = tail
            front += tail.shape[0]

        details["num_iterations"] = iteration
        details["k"] = k
        obs_metrics.registry.counter("reorder.iterations").inc(iteration)
        if self.record_iterations:
            details["iterations"] = iterations
        if front != back + 1:
            raise ReorderingError(
                f"SlashBurn assignment mismatch: front={front}, back={back}"
            )
        return sort_order_to_relabeling(order)


class SlashBurnPP(SlashBurn):
    """SlashBurn++ — SlashBurn with the sqrt-degree early stop.

    The residue left when iteration stops keeps its previous relative
    order (``remainder_order="original"``): the point of stopping early
    is to stop perturbing the LDV network, so the residue is treated as
    one untouched community.
    """

    name = "slashburn++"

    def __init__(
        self,
        k_ratio: float = 0.02,
        *,
        record_iterations: bool = False,
        remainder_order: str = "original",
    ):
        super().__init__(
            k_ratio,
            stop_at_sqrt_degree=True,
            record_iterations=record_iterations,
            remainder_order=remainder_order,
        )


def slashburn_iterations(
    graph: Graph, *, k_ratio: float = 0.02, max_iterations: int = 16
) -> list[SlashBurnIteration]:
    """Per-iteration GCC snapshots (Figure 2) without the final ordering."""
    algorithm = SlashBurn(
        k_ratio, max_iterations=max_iterations, record_iterations=True
    )
    result = algorithm(graph)
    return result.details["iterations"]


def _active_degrees(
    n: int, src: np.ndarray, dst: np.ndarray, active: np.ndarray
) -> np.ndarray:
    """Total (undirected) degree of each vertex within the active subgraph."""
    keep = active[src] & active[dst]
    degrees = np.bincount(src[keep], minlength=n)
    degrees += np.bincount(dst[keep], minlength=n)
    return degrees.astype(np.int64)


def _top_k_active(degrees: np.ndarray, active: np.ndarray, k: int) -> np.ndarray:
    """The k highest-degree active vertices, decreasing degree, stable IDs."""
    candidates = np.flatnonzero(active)
    k = min(k, candidates.shape[0])
    picked = candidates[
        np.argpartition(-degrees[candidates], k - 1)[:k]
    ]
    return picked[np.lexsort((picked, -degrees[picked]))]


def _spoke_order(
    spokes: np.ndarray,
    labels: np.ndarray,
    sizes: np.ndarray,
    degrees: np.ndarray,
) -> np.ndarray:
    """Spoke vertices grouped by component (big first), hubs first inside."""
    component = labels[spokes]
    # Primary: big components first; then group by component; inside a
    # component hubs first, ties by ID (lexsort's last key is primary).
    order = np.lexsort((spokes, -degrees[spokes], component, -sizes[component]))
    return spokes[order]


def _snapshot(
    iteration: int,
    hubs: np.ndarray,
    spokes: np.ndarray,
    result,
    gcc: int,
    n: int,
    src: np.ndarray,
    dst: np.ndarray,
    active: np.ndarray,
) -> SlashBurnIteration:
    gcc_degrees = _active_degrees(n, src, dst, active)
    members = np.flatnonzero(active)
    member_degrees = gcc_degrees[members]
    return SlashBurnIteration(
        iteration=iteration,
        num_hubs_slashed=int(hubs.shape[0]),
        num_spoke_vertices=int(spokes.shape[0]),
        num_spoke_components=int(result.num_components - 1),
        gcc_vertices=int(members.shape[0]),
        gcc_edges=int(result.edge_counts[gcc]),
        gcc_max_degree=int(member_degrees.max(initial=0)),
        gcc_degrees=member_degrees,
    )
