"""Lightweight skew-aware orderings: HubSort and HubCluster.

These are the "lightweight reordering" techniques of Faldu et al.
(IISWC'19) and Balaji & Lucia (IISWC'18), both cited by the paper as
prior evaluations of RAs ([21], [22]).  They exploit only the degree
skew:

* **HubSort** moves hub vertices to the lowest IDs sorted by degree and
  *preserves the relative order* of all non-hub vertices — keeping
  whatever locality the original ordering already had;
* **HubCluster** merely packs hubs together (front), without sorting,
  again preserving relative order everywhere else.

Both are useful baselines between the destructive full degree sort and
the expensive structural RAs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReorderingError
from repro.graph.graph import Graph
from repro.graph.permute import sort_order_to_relabeling
from repro.obs import span

from repro.reorder.base import ReorderingAlgorithm

__all__ = ["HubSort", "HubCluster"]


class _HubAware(ReorderingAlgorithm):
    def __init__(self, *, direction: str = "out", hub_threshold: float | None = None):
        if direction not in ("in", "out", "total"):
            raise ReorderingError(f"unknown degree direction: {direction!r}")
        self.direction = direction
        self.hub_threshold = hub_threshold

    def _split(self, graph: Graph) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        with span(f"reorder.{self.name}.split") as sp:
            degrees = graph._degrees(self.direction)
            threshold = self.hub_threshold
            if threshold is None:
                threshold = graph.average_degree
            hubs = np.flatnonzero(degrees > threshold)
            others = np.flatnonzero(degrees <= threshold)
            sp.set(hubs=int(hubs.shape[0]))
        return degrees, hubs, others


class HubSort(_HubAware):
    """Hubs first in decreasing degree; non-hubs keep relative order."""

    name = "hubsort"

    def compute(self, graph: Graph, details: dict) -> np.ndarray:
        degrees, hubs, others = self._split(graph)
        hubs = hubs[np.lexsort((hubs, -degrees[hubs]))]
        details["num_hubs"] = int(hubs.shape[0])
        return sort_order_to_relabeling(np.concatenate([hubs, others]))


class HubCluster(_HubAware):
    """Hubs packed first (original relative order); non-hubs follow."""

    name = "hubcluster"

    def compute(self, graph: Graph, details: dict) -> np.ndarray:
        _, hubs, others = self._split(graph)
        details["num_hubs"] = int(hubs.shape[0])
        return sort_order_to_relabeling(np.concatenate([hubs, others]))
