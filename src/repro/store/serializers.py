"""Typed (de)serializers for the repo's artifact kinds.

Each stage of the experiment pipeline produces one of a small set of
artifact types, each with a natural on-disk form:

=================  ============================  =========
kind               payload                       format
=================  ============================  =========
``graph``          :class:`~repro.graph.graph.Graph` (CSR+CSC)   ``.npz``
``reordered-graph``  same, after an RA's relabeling              ``.npz``
``reordering``     :class:`~repro.reorder.base.ReorderResult`    ``.npz``
``simulation``     :class:`StoredSimulation` (trace + hit bits)  ``.npz``
``json``           JSON documents (report data, manifests)       ``.json``
=================  ============================  =========

Serializers never write the destination path directly — the store hands
them a temporary file that is atomically renamed into place — and they
only read files whose checksum the store has already verified, so a
load failure here signals corruption and is quarantined by the caller.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import StoreError
from repro.graph.graph import Graph
from repro.graph.io import load_graph_npz, save_graph_npz
from repro.reorder.base import ReorderResult
from repro.sim.address_space import AddressSpace
from repro.sim.cache import CacheSnapshot
from repro.sim.simulator import SimulationConfig, SimulationResult
from repro.sim.trace import MemoryTrace

__all__ = [
    "Serializer",
    "GraphSerializer",
    "ReorderingSerializer",
    "SimulationSerializer",
    "JSONSerializer",
    "StoredSimulation",
    "SERIALIZERS",
    "get_serializer",
    "jsonify",
]


def jsonify(value: Any) -> Any:
    """Convert provenance/metadata values to a JSON-stable form.

    Tuples become lists (JSON has no tuple), numpy scalars become their
    Python equivalents.  Anything else non-JSON raises
    :class:`~repro.errors.StoreError` so uncacheable payloads fail
    loudly at *write* time instead of producing artifacts that cannot
    round-trip.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, (list, tuple)):
        return [jsonify(item) for item in value]
    if isinstance(value, dict):
        return {str(key): jsonify(item) for key, item in value.items()}
    raise StoreError(
        f"value of type {type(value).__name__} is not JSON-serializable: {value!r}"
    )


class Serializer:
    """Save/load one artifact kind; subclasses set ``kind``/``extension``."""

    kind: str = ""
    extension: str = ""
    #: Whether ``load`` accepts ``mmap_mode="r"`` (scale-tier rehydration).
    supports_mmap: bool = False

    def save(self, obj: Any, path: Path) -> None:
        raise NotImplementedError

    def load(self, path: Path) -> Any:
        raise NotImplementedError


class GraphSerializer(Serializer):
    """CSR+CSC graphs as ``.npz`` (exact integer round-trip).

    Small graphs compress; scale-tier graphs are stored raw so
    ``load(path, mmap_mode="r")`` can memory-map the CSR/CSC arrays
    (one shared page-cached copy across shard workers) — see
    :func:`repro.graph.io.save_graph_npz`.
    """

    kind = "graph"
    extension = ".npz"
    supports_mmap = True

    def save(self, obj: Any, path: Path) -> None:
        if not isinstance(obj, Graph):
            raise StoreError(f"graph serializer got {type(obj).__name__}")
        save_graph_npz(obj, path)

    def load(self, path: Path, *, mmap_mode: "str | None" = None) -> Graph:
        return load_graph_npz(path, mmap_mode=mmap_mode)


class ReorderedGraphSerializer(GraphSerializer):
    kind = "reordered-graph"


class ReorderingSerializer(Serializer):
    """Relabeling array plus the run's measured overheads and details."""

    kind = "reordering"
    extension = ".npz"

    def save(self, obj: Any, path: Path) -> None:
        if not isinstance(obj, ReorderResult):
            raise StoreError(f"reordering serializer got {type(obj).__name__}")
        meta = {
            "algorithm": obj.algorithm,
            "preprocessing_seconds": obj.preprocessing_seconds,
            "peak_memory_bytes": obj.peak_memory_bytes,
            "details": jsonify(obj.details),
        }
        with open(path, "wb") as handle:
            np.savez_compressed(
                handle,
                relabeling=obj.relabeling,
                meta=np.asarray(json.dumps(meta)),
            )

    def load(self, path: Path) -> ReorderResult:
        with np.load(path, allow_pickle=False) as data:
            if "relabeling" not in data.files or "meta" not in data.files:
                raise StoreError(f"reordering artifact missing arrays: {data.files}")
            relabeling = data["relabeling"]
            meta = json.loads(str(data["meta"]))
        return ReorderResult(
            algorithm=meta["algorithm"],
            relabeling=relabeling,
            preprocessing_seconds=meta["preprocessing_seconds"],
            peak_memory_bytes=meta["peak_memory_bytes"],
            details=meta["details"],
        )


@dataclass
class StoredSimulation:
    """A :class:`SimulationResult` minus its graph and config.

    The graph is itself a stored artifact and the config is re-derived
    deterministically by the pipeline, so the simulation artifact keeps
    only what the simulator produced: the interleaved trace, per-access
    hit bits and thread attribution, ECS snapshots (flattened with
    lengths), TLB misses and partition boundaries.
    """

    lines: np.ndarray
    kinds: np.ndarray
    read_vertex: np.ndarray
    proc_vertex: np.ndarray
    hits: np.ndarray
    thread_ids: np.ndarray
    partition_boundaries: np.ndarray
    snapshot_indices: np.ndarray
    snapshot_lines: np.ndarray
    snapshot_lengths: np.ndarray
    tlb_misses: int
    space_params: dict

    @classmethod
    def from_result(cls, result: SimulationResult) -> "StoredSimulation":
        space = result.trace.space
        snapshots = result.snapshots
        lengths = np.asarray(
            [snap.resident_lines.shape[0] for snap in snapshots], dtype=np.int64
        )
        concat = (
            np.concatenate([snap.resident_lines for snap in snapshots])
            if snapshots
            else np.zeros(0, dtype=np.int64)
        )
        return cls(
            lines=result.trace.lines,
            kinds=result.trace.kinds,
            read_vertex=result.trace.read_vertex,
            proc_vertex=result.trace.proc_vertex,
            hits=result.hits,
            thread_ids=result.thread_ids,
            partition_boundaries=result.partition_boundaries,
            snapshot_indices=np.asarray(
                [snap.access_index for snap in snapshots], dtype=np.int64
            ),
            snapshot_lines=concat,
            snapshot_lengths=lengths,
            tlb_misses=result.tlb_misses,
            space_params={
                "num_vertices": space.num_vertices,
                "num_edges": space.num_edges,
                "line_size": space.line_size,
                "offsets_elem": space.offsets_elem,
                "edges_elem": space.edges_elem,
                "data_elem": space.data_elem,
            },
        )

    def to_result(self, graph: Graph, config: SimulationConfig) -> SimulationResult:
        """Rebuild the full result in the context of its graph/config."""
        space = AddressSpace(**self.space_params)
        trace = MemoryTrace(
            lines=self.lines,
            kinds=self.kinds,
            read_vertex=self.read_vertex,
            proc_vertex=self.proc_vertex,
            space=space,
        )
        snapshots = []
        offset = 0
        for index, length in zip(
            self.snapshot_indices.tolist(), self.snapshot_lengths.tolist()
        ):
            snapshots.append(
                CacheSnapshot(
                    access_index=int(index),
                    resident_lines=self.snapshot_lines[offset : offset + length],
                )
            )
            offset += length
        return SimulationResult(
            graph=graph,
            config=config,
            trace=trace,
            hits=self.hits,
            thread_ids=self.thread_ids,
            snapshots=snapshots,
            tlb_misses=int(self.tlb_misses),
            partition_boundaries=self.partition_boundaries,
        )


class SimulationSerializer(Serializer):
    kind = "simulation"
    extension = ".npz"

    _ARRAYS = (
        "lines",
        "kinds",
        "read_vertex",
        "proc_vertex",
        "hits",
        "thread_ids",
        "partition_boundaries",
        "snapshot_indices",
        "snapshot_lines",
        "snapshot_lengths",
    )

    def save(self, obj: Any, path: Path) -> None:
        if not isinstance(obj, StoredSimulation):
            raise StoreError(f"simulation serializer got {type(obj).__name__}")
        meta = {
            "tlb_misses": int(obj.tlb_misses),
            "space_params": jsonify(obj.space_params),
        }
        arrays = {name: getattr(obj, name) for name in self._ARRAYS}
        with open(path, "wb") as handle:
            np.savez_compressed(handle, meta=np.asarray(json.dumps(meta)), **arrays)

    def load(self, path: Path) -> StoredSimulation:
        with np.load(path, allow_pickle=False) as data:
            missing = set(self._ARRAYS) - set(data.files)
            if missing or "meta" not in data.files:
                raise StoreError(
                    f"simulation artifact missing arrays: {sorted(missing)}"
                )
            arrays = {name: data[name] for name in self._ARRAYS}
            meta = json.loads(str(data["meta"]))
        return StoredSimulation(
            tlb_misses=int(meta["tlb_misses"]),
            space_params=meta["space_params"],
            **arrays,
        )


class JSONSerializer(Serializer):
    """Structured documents: report data, provenance manifests."""

    kind = "json"
    extension = ".json"

    def save(self, obj: Any, path: Path) -> None:
        path.write_text(
            json.dumps(jsonify(obj), indent=2, sort_keys=False), encoding="utf-8"
        )

    def load(self, path: Path) -> Any:
        return json.loads(path.read_text(encoding="utf-8"))


#: Artifact kind -> serializer instance.
SERIALIZERS: dict = {
    serializer.kind: serializer
    for serializer in (
        GraphSerializer(),
        ReorderedGraphSerializer(),
        ReorderingSerializer(),
        SimulationSerializer(),
        JSONSerializer(),
    )
}


def get_serializer(kind: str) -> Serializer:
    """The serializer registered for ``kind``."""
    try:
        return SERIALIZERS[kind]
    except KeyError:
        raise StoreError(
            f"unknown artifact kind {kind!r}; available: {sorted(SERIALIZERS)}"
        ) from None
