"""Content-addressed, on-disk artifact store with integrity checking.

Layout (under the root directory, ``REPRO_STORE_DIR`` or
``.repro-store`` by default)::

    objects/<kind>/<key[:2]>/<key><ext>        payload (serializer format)
    objects/<kind>/<key[:2]>/<key>.meta.json   checksum + provenance sidecar
    objects/<kind>/<key[:2]>/<key>.pin         in-flight marker (GC skips)
    quarantine/                                corrupted artifacts, moved aside
    manifests/run-<id>.json                    per-run provenance manifests

Durability rules:

* **Atomic writes** — payload and sidecar are written to ``tmp-*``
  files in the destination directory and ``os.replace``d into place
  (payload first, sidecar last: a sidecar's presence marks the commit).
  Concurrent writers of the same key are safe — content addressing
  means they write identical bytes and the last rename wins.
* **Verified reads** — every read re-hashes the payload against the
  sidecar checksum.  A mismatch (or any deserialization failure) moves
  both files into ``quarantine/`` and reports a miss, so the pipeline
  recomputes instead of crashing on a corrupt cache.
* **Last access** — reads bump the payload mtime (``os.utime``), which
  is the LRU axis :mod:`repro.store.gc` evicts along.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Optional, Union

from repro.errors import GraphFormatError, StoreError
from repro.lint.contracts import declares_effects
from repro.obs import metrics as obs_metrics
from repro.store.serializers import get_serializer

__all__ = ["STORE_DIR_ENV", "default_store_dir", "ArtifactInfo", "ArtifactStore"]

#: Environment variable overriding the default store location.
STORE_DIR_ENV = "REPRO_STORE_DIR"

_META_SUFFIX = ".meta.json"
_PIN_SUFFIX = ".pin"
_TMP_PREFIX = "tmp-"


def default_store_dir() -> Path:
    """Store root: ``$REPRO_STORE_DIR`` if set, else ``./.repro-store``."""
    override = os.environ.get(STORE_DIR_ENV, "").strip()
    return Path(override) if override else Path(".repro-store")


@declares_effects("time")
def _wallclock() -> float:
    """``created_at`` metadata clock — LRU/GC bookkeeping, never content.

    Artifact bytes are fully determined by the content key; this reading
    lands only in the sidecar metadata, so it is an audited carve-out
    rather than a determinism hazard.
    """
    return time.time()


@declares_effects("rng-unseeded")
def _tmp_token() -> str:
    """Collision-proof temp-file token for atomic writes.

    The uuid draw names the *scratch* file only — committed payload and
    sidecar paths are pure functions of (kind, key), so the entropy
    never reaches stored content.
    """
    return f"{_TMP_PREFIX}{os.getpid()}-{uuid.uuid4().hex}"


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


@dataclass(frozen=True)
class ArtifactInfo:
    """One committed artifact: identity, location, and bookkeeping."""

    key: str
    kind: str
    path: Path
    meta_path: Path
    size_bytes: int
    created_at: float
    last_access_at: float
    checksum: str
    provenance: dict

    @property
    def pinned(self) -> bool:
        return self.path.with_suffix(self.path.suffix + _PIN_SUFFIX).exists()


class ArtifactStore:
    """Content-addressed artifact store rooted at a directory."""

    def __init__(self, root: Union[str, os.PathLike, None] = None) -> None:
        self.root = Path(root) if root is not None else default_store_dir()

    # -- layout ------------------------------------------------------------

    @property
    def objects_dir(self) -> Path:
        return self.root / "objects"

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    @property
    def manifests_dir(self) -> Path:
        return self.root / "manifests"

    def _bucket(self, kind: str, key: str) -> Path:
        return self.objects_dir / kind / key[:2]

    def _payload_path(self, kind: str, key: str) -> Path:
        extension = get_serializer(kind).extension
        return self._bucket(kind, key) / f"{key}{extension}"

    def _meta_path(self, kind: str, key: str) -> Path:
        return self._bucket(kind, key) / f"{key}{_META_SUFFIX}"

    def _pin_path(self, kind: str, key: str) -> Path:
        payload = self._payload_path(kind, key)
        return payload.with_suffix(payload.suffix + _PIN_SUFFIX)

    # -- write path --------------------------------------------------------

    def put(
        self, key: str, kind: str, obj: Any, provenance: Optional[dict] = None
    ) -> ArtifactInfo:
        """Serialize and commit one artifact atomically; returns its info."""
        serializer = get_serializer(kind)
        bucket = self._bucket(kind, key)
        bucket.mkdir(parents=True, exist_ok=True)
        token = _tmp_token()
        payload_tmp = bucket / f"{token}{serializer.extension}"
        meta_tmp = bucket / f"{token}{_META_SUFFIX}"
        try:
            serializer.save(obj, payload_tmp)
            checksum = _sha256_file(payload_tmp)
            created_at = _wallclock()
            meta = {
                "version": 1,
                "key": key,
                "kind": kind,
                "checksum": checksum,
                "size_bytes": payload_tmp.stat().st_size,
                "created_at": created_at,
                "provenance": provenance or {},
            }
            meta_tmp.write_text(json.dumps(meta, indent=2), encoding="utf-8")
            os.replace(payload_tmp, self._payload_path(kind, key))
            os.replace(meta_tmp, self._meta_path(kind, key))
        finally:
            for leftover in (payload_tmp, meta_tmp):
                with contextlib.suppress(OSError):
                    leftover.unlink()
        obs_metrics.registry.counter("store.put_bytes").inc(int(meta["size_bytes"]))
        return ArtifactInfo(
            key=key,
            kind=kind,
            path=self._payload_path(kind, key),
            meta_path=self._meta_path(kind, key),
            size_bytes=int(meta["size_bytes"]),
            created_at=created_at,
            last_access_at=created_at,
            checksum=checksum,
            provenance=meta["provenance"],
        )

    # -- read path ---------------------------------------------------------

    def contains(self, key: str, kind: str) -> bool:
        """Whether a committed (payload + sidecar) artifact exists."""
        return (
            self._payload_path(kind, key).exists()
            and self._meta_path(kind, key).exists()
        )

    def get(self, key: str, kind: str, *, mmap_mode: "str | None" = None) -> Any:
        """Load and verify one artifact; ``None`` on miss or quarantine.

        Corruption — checksum mismatch, unreadable sidecar, or a
        deserialization failure — quarantines the artifact and reports a
        miss so callers recompute rather than crash.

        ``mmap_mode="r"`` asks the serializer for a memory-mapped
        rehydration (supported for graph kinds): integrity is still
        checked — the full payload is hashed before mapping — but the
        arrays stay on disk, shared page-cache across processes.
        """
        serializer = get_serializer(kind)
        if mmap_mode is not None and not serializer.supports_mmap:
            raise StoreError(f"artifact kind {kind!r} does not support mmap_mode")
        payload = self._payload_path(kind, key)
        meta_path = self._meta_path(kind, key)
        if not payload.exists() or not meta_path.exists():
            return None
        try:
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
            expected = meta["checksum"]
        except (OSError, ValueError, KeyError):
            self.quarantine(key, kind, reason="unreadable sidecar")
            return None
        if _sha256_file(payload) != expected:
            self.quarantine(key, kind, reason="checksum mismatch")
            return None
        try:
            if mmap_mode is not None:
                try:
                    obj = serializer.load(payload, mmap_mode=mmap_mode)  # type: ignore[call-arg]
                except GraphFormatError:
                    # A compressed (sub-threshold) artifact cannot be
                    # mapped; it is still perfectly valid — heap-load it
                    # instead of quarantining.
                    obj = serializer.load(payload)
            else:
                obj = serializer.load(payload)
        except Exception:  # corrupted payload that still hashed clean
            self.quarantine(key, kind, reason="deserialization failure")
            return None
        with contextlib.suppress(OSError):
            os.utime(payload)
        obs_metrics.registry.counter("store.get_bytes").inc(
            payload.stat().st_size if payload.exists() else 0
        )
        return obj

    def info(self, key: str, kind: str) -> Optional[ArtifactInfo]:
        """Bookkeeping for one artifact (``None`` when absent/broken)."""
        payload = self._payload_path(kind, key)
        meta_path = self._meta_path(kind, key)
        if not payload.exists() or not meta_path.exists():
            return None
        try:
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
            stat = payload.stat()
        except (OSError, ValueError):
            return None
        return ArtifactInfo(
            key=key,
            kind=kind,
            path=payload,
            meta_path=meta_path,
            size_bytes=stat.st_size,
            created_at=float(meta.get("created_at", stat.st_mtime)),
            last_access_at=stat.st_mtime,
            checksum=str(meta.get("checksum", "")),
            provenance=meta.get("provenance", {}),
        )

    def infos(self, kind: Optional[str] = None) -> list:
        """All committed artifacts, optionally filtered to one kind."""
        results = []
        if not self.objects_dir.exists():
            return results
        kinds = [kind] if kind is not None else sorted(
            p.name for p in self.objects_dir.iterdir() if p.is_dir()
        )
        for each_kind in kinds:
            kind_dir = self.objects_dir / each_kind
            if not kind_dir.exists():
                continue
            for meta_path in sorted(kind_dir.rglob(f"*{_META_SUFFIX}")):
                name = meta_path.name
                if name.startswith(_TMP_PREFIX):
                    continue
                key = name[: -len(_META_SUFFIX)]
                info = self.info(key, each_kind)
                if info is not None:
                    results.append(info)
        return results

    def find(self, key_prefix: str) -> list:
        """Artifacts whose key starts with ``key_prefix`` (any kind)."""
        return [info for info in self.infos() if info.key.startswith(key_prefix)]

    # -- quarantine and pinning --------------------------------------------

    def quarantine(self, key: str, kind: str, *, reason: str = "") -> Path:
        """Move a (possibly corrupt) artifact out of the object tree."""
        destination = self.quarantine_dir / kind
        destination.mkdir(parents=True, exist_ok=True)
        moved = False
        for source in (self._payload_path(kind, key), self._meta_path(kind, key)):
            if source.exists():
                with contextlib.suppress(OSError):
                    os.replace(source, destination / source.name)
                    moved = True
        if moved:
            obs_metrics.registry.counter("store.quarantined").inc()
            if reason:
                note = destination / f"{key}.reason.txt"
                with contextlib.suppress(OSError):
                    note.write_text(reason + "\n", encoding="utf-8")
        return destination

    @contextlib.contextmanager
    def pin(self, key: str, kind: str) -> Iterator[None]:
        """Mark an artifact in-flight; GC never evicts a pinned key."""
        pin_path = self._pin_path(kind, key)
        pin_path.parent.mkdir(parents=True, exist_ok=True)
        pin_path.write_text(str(os.getpid()), encoding="utf-8")
        try:
            yield
        finally:
            with contextlib.suppress(OSError):
                pin_path.unlink()

    def is_pinned(self, key: str, kind: str) -> bool:
        return self._pin_path(kind, key).exists()

    # -- bookkeeping ---------------------------------------------------------

    def total_size_bytes(self) -> int:
        """Total committed payload bytes (sidecars excluded)."""
        return sum(info.size_bytes for info in self.infos())

    def remove(self, key: str, kind: str) -> bool:
        """Delete one artifact (payload + sidecar); True if removed."""
        if self.is_pinned(key, kind):
            raise StoreError(f"artifact {kind}/{key[:12]} is pinned (in flight)")
        removed = False
        for path in (self._payload_path(kind, key), self._meta_path(kind, key)):
            with contextlib.suppress(FileNotFoundError):
                path.unlink()
                removed = True
        return removed

    def __repr__(self) -> str:
        return f"ArtifactStore(root={str(self.root)!r})"
