"""Content-addressed artifact store + memoized experiment pipeline.

The subsystem has four layers (DESIGN.md §9):

1. :mod:`repro.store.fingerprint` — deterministic content keys from an
   artifact's full provenance (parameters, seeds, scale, and a source
   hash of the producing modules, so code changes self-invalidate).
2. :mod:`repro.store.serializers` — typed, exact-round-trip formats for
   the repo's artifact kinds (graphs, reorderings, simulations, JSON).
3. :mod:`repro.store.store` / :mod:`repro.store.gc` — the on-disk
   store: atomic writes, verified reads with corruption quarantine,
   pinning, LRU garbage collection under a size bound.
4. :mod:`repro.store.memo` / :mod:`repro.store.manifest` — the
   ``@cached_stage`` decorator the bench pipeline runs on, plus per-run
   provenance manifests.

``python -m repro.store`` (:mod:`repro.store.cli`) exposes
``ls``/``info``/``verify``/``gc`` over a store rooted at
``$REPRO_STORE_DIR`` (default ``./.repro-store``).
"""

from repro.store.fingerprint import (
    canonical_json,
    clear_code_version_cache,
    code_version,
    fingerprint,
)
from repro.store.gc import GCReport, VerifyReport, collect_garbage, verify_store
from repro.store.manifest import RunManifest, StageRecord, environment_snapshot
from repro.store.memo import cached_stage
from repro.store.serializers import (
    SERIALIZERS,
    StoredSimulation,
    get_serializer,
    jsonify,
)
from repro.store.store import (
    STORE_DIR_ENV,
    ArtifactInfo,
    ArtifactStore,
    default_store_dir,
)

__all__ = [
    "ArtifactInfo",
    "ArtifactStore",
    "GCReport",
    "RunManifest",
    "SERIALIZERS",
    "STORE_DIR_ENV",
    "StageRecord",
    "StoredSimulation",
    "VerifyReport",
    "cached_stage",
    "canonical_json",
    "clear_code_version_cache",
    "code_version",
    "collect_garbage",
    "default_store_dir",
    "environment_snapshot",
    "fingerprint",
    "get_serializer",
    "jsonify",
    "verify_store",
]
