"""``python -m repro.store`` — inspect and maintain the artifact store.

Subcommands::

    ls      [--kind KIND]          list artifacts (kind, key, size, age)
    info    KEY_PREFIX             full metadata + provenance of one artifact
    verify  [--quarantine]         checksum-verify every artifact
    gc      --max-mb N | --max-bytes N   LRU-evict down to a size bound

The store root is ``--store DIR`` if given, else ``$REPRO_STORE_DIR``,
else ``./.repro-store``.  Exit codes: 0 ok, 1 problems found (verify
failures, unknown key), 2 usage errors.
"""

from __future__ import annotations

import argparse
import json
import time
from typing import Optional

from repro.errors import ReproError
from repro.store.gc import collect_garbage, verify_store
from repro.store.store import ArtifactStore, default_store_dir

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store",
        description="Inspect and maintain the content-addressed artifact store.",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="store root (default: $REPRO_STORE_DIR or ./.repro-store)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    ls = sub.add_parser("ls", help="list artifacts")
    ls.add_argument("--kind", default=None, help="filter to one artifact kind")

    info = sub.add_parser("info", help="show one artifact's metadata")
    info.add_argument("key_prefix", help="content key (or unique prefix)")

    verify = sub.add_parser("verify", help="checksum-verify every artifact")
    verify.add_argument(
        "--quarantine",
        action="store_true",
        help="move failing artifacts into quarantine/",
    )

    gc = sub.add_parser("gc", help="evict LRU artifacts down to a size bound")
    group = gc.add_mutually_exclusive_group(required=True)
    group.add_argument("--max-mb", type=float, default=None, help="size bound in MiB")
    group.add_argument("--max-bytes", type=int, default=None, help="size bound in bytes")

    return parser


def _age(seconds: float) -> str:
    if seconds < 120:
        return f"{seconds:.0f}s"
    if seconds < 7200:
        return f"{seconds / 60:.0f}m"
    if seconds < 172800:
        return f"{seconds / 3600:.1f}h"
    return f"{seconds / 86400:.1f}d"


def _cmd_ls(store: ArtifactStore, kind: Optional[str]) -> int:
    infos = store.infos(kind)
    if not infos:
        print(f"(empty store at {store.root})")
        return 0
    now = time.time()
    print(f"{'kind':<16} {'key':<16} {'size':>12} {'age':>6} {'accessed':>8}")
    total = 0
    for info in infos:
        total += info.size_bytes
        print(
            f"{info.kind:<16} {info.key[:12] + '…':<16} "
            f"{info.size_bytes:>12,} {_age(now - info.created_at):>6} "
            f"{_age(now - info.last_access_at):>8}"
        )
    print(f"{len(infos)} artifact(s), {total:,} bytes at {store.root}")
    return 0


def _cmd_info(store: ArtifactStore, key_prefix: str) -> int:
    matches = store.find(key_prefix)
    if not matches:
        print(f"no artifact with key prefix {key_prefix!r}")
        return 1
    if len(matches) > 1:
        print(f"{len(matches)} artifacts match {key_prefix!r}:")
        for info in matches:
            print(f"  {info.kind}/{info.key}")
        return 1
    info = matches[0]
    document = {
        "key": info.key,
        "kind": info.kind,
        "path": str(info.path),
        "size_bytes": info.size_bytes,
        "checksum": info.checksum,
        "created_at": info.created_at,
        "last_access_at": info.last_access_at,
        "pinned": info.pinned,
        "provenance": info.provenance,
    }
    print(json.dumps(document, indent=2))
    return 0


def _cmd_verify(store: ArtifactStore, quarantine: bool) -> int:
    report = verify_store(store, quarantine=quarantine)
    print(report.summary())
    for issue in report.issues:
        print(f"  [{issue.problem}] {issue.kind}/{issue.key}")
    if report.quarantined:
        print(f"{report.quarantined} artifact(s) moved to {store.quarantine_dir}")
    return 0 if report.ok else 1


def _cmd_gc(store: ArtifactStore, max_bytes: int) -> int:
    report = collect_garbage(store, max_bytes)
    print(report.summary())
    for kind, key in report.evicted:
        print(f"  evicted {kind}/{key[:12]}")
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    store = ArtifactStore(args.store if args.store else default_store_dir())
    try:
        if args.command == "ls":
            return _cmd_ls(store, args.kind)
        if args.command == "info":
            return _cmd_info(store, args.key_prefix)
        if args.command == "verify":
            return _cmd_verify(store, args.quarantine)
        if args.command == "gc":
            max_bytes = (
                args.max_bytes
                if args.max_bytes is not None
                else int(args.max_mb * 1024 * 1024)
            )
            return _cmd_gc(store, max_bytes)
    except ReproError as exc:
        print(f"error: {exc}")
        return 2
    return 2
