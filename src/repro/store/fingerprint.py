"""Deterministic provenance fingerprinting for stored artifacts.

An artifact's identity is the SHA-256 of its *full provenance*: the
stage kind, every parameter that feeds the computation (generator and
reorderer parameters, seeds, the ``REPRO_SCALE`` factor), and a code
version derived from the source text of the modules that produce it.
Bumping any producing module therefore changes every downstream key, so
stale cache entries self-invalidate instead of being served.

Parameters are serialized through :func:`canonical_json` — a restricted,
order-independent JSON encoding — so two processes (or two platforms)
computing the same stage always derive the same key.
"""

from __future__ import annotations

import functools
import hashlib
import importlib.util
import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import StoreError

__all__ = ["canonical_json", "code_version", "fingerprint", "clear_code_version_cache"]


def canonical_json(value: Any) -> str:
    """Deterministic JSON encoding of key material (sorted, compact)."""
    return json.dumps(_canonical(value), sort_keys=True, separators=(",", ":"))


def _canonical(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return {
            "__ndarray__": hashlib.sha256(np.ascontiguousarray(value).tobytes()).hexdigest(),
            "dtype": str(value.dtype),
            "shape": list(value.shape),
        }
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise StoreError(
                    f"fingerprint dict keys must be strings, got {key!r}"
                )
            out[key] = _canonical(item)
        return out
    raise StoreError(
        f"cannot fingerprint value of type {type(value).__name__}: {value!r}"
    )


@functools.lru_cache(maxsize=None)
def _module_digest(module_name: str) -> str:
    """SHA-256 over the source files of one module or package."""
    spec = importlib.util.find_spec(module_name)
    if spec is None:
        raise StoreError(f"cannot resolve module {module_name!r} for code versioning")
    sources: list[tuple[str, Path]] = []
    if spec.submodule_search_locations:
        for root in spec.submodule_search_locations:
            root_path = Path(root)
            for path in root_path.rglob("*.py"):
                sources.append((path.relative_to(root_path).as_posix(), path))
    elif spec.origin and Path(spec.origin).suffix == ".py":
        sources.append((Path(spec.origin).name, Path(spec.origin)))
    else:
        raise StoreError(f"module {module_name!r} has no hashable python source")
    digest = hashlib.sha256()
    for relative, path in sorted(sources):
        digest.update(relative.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    return digest.hexdigest()


def code_version(*module_names: str) -> str:
    """Combined source hash of the named modules/packages.

    Cached per process (source files do not change under a running
    pipeline); tests exercising invalidation call
    :func:`clear_code_version_cache` after editing fixtures.
    """
    if not module_names:
        raise StoreError("code_version needs at least one module name")
    digest = hashlib.sha256()
    for name in sorted(set(module_names)):
        digest.update(name.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(_module_digest(name).encode("ascii"))
    return digest.hexdigest()[:16]


def clear_code_version_cache() -> None:
    """Drop memoized module digests (test hook)."""
    _module_digest.cache_clear()


def fingerprint(kind: str, params: dict, code: str) -> str:
    """Content key of one artifact from its full provenance."""
    material = canonical_json({"kind": kind, "params": params, "code": code})
    return hashlib.sha256(material.encode("utf-8")).hexdigest()
