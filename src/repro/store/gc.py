"""Store maintenance: integrity verification and size-bounded LRU GC.

``verify_store`` re-hashes every committed payload against its sidecar
checksum (optionally quarantining failures); ``collect_garbage`` evicts
least-recently-used artifacts until the store fits a byte budget,
skipping pinned (in-flight) keys and stray temporary files — a partial
write in progress is never mistaken for garbage.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.errors import StoreError
from repro.obs import metrics as obs_metrics
from repro.obs import span
from repro.store.store import ArtifactInfo, ArtifactStore

__all__ = ["VerifyIssue", "VerifyReport", "GCReport", "verify_store", "collect_garbage"]


@dataclass(frozen=True)
class VerifyIssue:
    """One artifact that failed verification."""

    key: str
    kind: str
    problem: str


@dataclass
class VerifyReport:
    """Outcome of a full-store integrity pass."""

    checked: int = 0
    issues: list = field(default_factory=list)
    quarantined: int = 0

    @property
    def ok(self) -> bool:
        return not self.issues

    def summary(self) -> str:
        status = "ok" if self.ok else f"{len(self.issues)} issue(s)"
        return f"verified {self.checked} artifact(s): {status}"


@dataclass
class GCReport:
    """Outcome of one garbage collection pass."""

    scanned: int = 0
    evicted: list = field(default_factory=list)
    skipped_pinned: int = 0
    bytes_before: int = 0
    bytes_after: int = 0

    def summary(self) -> str:
        return (
            f"evicted {len(self.evicted)}/{self.scanned} artifact(s), "
            f"{self.bytes_before:,} -> {self.bytes_after:,} bytes"
            + (f" ({self.skipped_pinned} pinned kept)" if self.skipped_pinned else "")
        )


def _checksum_matches(info: ArtifactInfo) -> bool:
    digest = hashlib.sha256()
    with open(info.path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest() == info.checksum


def verify_store(store: ArtifactStore, *, quarantine: bool = False) -> VerifyReport:
    """Checksum-verify every committed artifact in the store."""
    report = VerifyReport()
    for info in store.infos():
        report.checked += 1
        problem = ""
        try:
            meta = json.loads(info.meta_path.read_text(encoding="utf-8"))
            if meta.get("key") != info.key or meta.get("kind") != info.kind:
                problem = "sidecar identity mismatch"
            elif not _checksum_matches(info):
                problem = "checksum mismatch"
        except (OSError, ValueError):
            problem = "unreadable artifact"
        if problem:
            report.issues.append(VerifyIssue(info.key, info.kind, problem))
            if quarantine:
                store.quarantine(info.key, info.kind, reason=problem)
                report.quarantined += 1
    return report


def collect_garbage(store: ArtifactStore, max_bytes: int) -> GCReport:
    """Evict LRU artifacts until total payload size fits ``max_bytes``.

    Most-recently-accessed artifacts are retained first; pinned keys are
    never evicted, even when keeping them leaves the store over budget.
    """
    if max_bytes < 0:
        raise StoreError(f"max_bytes must be non-negative, got {max_bytes}")
    with span("store.gc", max_bytes=max_bytes):
        infos = store.infos()
        report = GCReport(scanned=len(infos))
        report.bytes_before = sum(info.size_bytes for info in infos)
        # Most recently used first: fill the budget, evict the LRU tail.
        by_recency = sorted(infos, key=lambda info: info.last_access_at, reverse=True)
        kept_bytes = 0
        for info in by_recency:
            if kept_bytes + info.size_bytes <= max_bytes or info.pinned:
                if info.pinned and kept_bytes + info.size_bytes > max_bytes:
                    report.skipped_pinned += 1
                kept_bytes += info.size_bytes
                continue
            try:
                removed = store.remove(info.key, info.kind)
            except StoreError:  # pinned between the check and the unlink
                report.skipped_pinned += 1
                kept_bytes += info.size_bytes
                continue
            if removed:
                report.evicted.append((info.kind, info.key))
            else:
                kept_bytes += info.size_bytes
        report.bytes_after = kept_bytes
    obs_metrics.registry.counter("store.gc_evicted").inc(len(report.evicted))
    obs_metrics.registry.counter("store.gc_freed_bytes").inc(
        max(0, report.bytes_before - report.bytes_after)
    )
    return report
