"""Per-run provenance manifests and the shared environment schema.

A :class:`RunManifest` records, for one pipeline run, every stage the
memoization layer touched: the stage kind, the content key, whether it
was served from the store or computed, how long it took, and the
parameters that formed the key.  Saved manifests land under
``<store>/manifests/`` so a populated store is auditable — which run
produced which artifact, under which environment.

:func:`environment_snapshot` is the one provenance schema shared by
manifests and :class:`~repro.bench.harness.ExperimentReport` —
python/numpy versions, platform, kernel mode, workload scale, and the
repo code version.
"""

from __future__ import annotations

import itertools
import json
import os
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

import numpy as np

from repro.store.fingerprint import code_version
from repro.store.store import ArtifactStore

__all__ = ["environment_snapshot", "StageRecord", "RunManifest"]

_RUN_COUNTER = itertools.count()


def environment_snapshot() -> dict:
    """Environment metadata shared by reports and store manifests."""
    import platform

    from repro import __version__
    from repro.generate.datasets import scale_factor
    from repro.obs import enabled as trace_enabled
    from repro.obs import peak_rss_bytes
    from repro.sim._kernels import kernel_mode

    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "repro_version": __version__,
        "kernel_mode": kernel_mode(),
        "repro_scale": scale_factor(),
        "code_version": code_version("repro"),
        "trace_enabled": trace_enabled(),
        "peak_rss_bytes": peak_rss_bytes(),
    }


@dataclass
class StageRecord:
    """One memoized-stage event within a run."""

    stage: str
    key: str
    status: str  # "hit" | "computed" | "refreshed"
    duration_s: float
    params: dict = field(default_factory=dict)
    size_bytes: Optional[int] = None

    def to_dict(self) -> dict:
        return {
            "stage": self.stage,
            "key": self.key,
            "status": self.status,
            "duration_s": self.duration_s,
            "params": self.params,
            "size_bytes": self.size_bytes,
        }


@dataclass
class RunManifest:
    """Provenance of one pipeline run (inputs, hashes, durations, env)."""

    run_id: str
    created_at: float
    environment: dict = field(default_factory=dict)
    records: list = field(default_factory=list)

    @classmethod
    def start(cls) -> "RunManifest":
        """New manifest with a unique id and the current environment."""
        stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
        run_id = (
            f"run-{stamp}-{os.getpid()}-{next(_RUN_COUNTER)}-{uuid.uuid4().hex[:6]}"
        )
        return cls(
            run_id=run_id,
            created_at=time.time(),
            environment=environment_snapshot(),
        )

    def record(
        self,
        stage: str,
        key: str,
        status: str,
        duration_s: float,
        params: Optional[dict] = None,
        size_bytes: Optional[int] = None,
    ) -> StageRecord:
        entry = StageRecord(
            stage=stage,
            key=key,
            status=status,
            duration_s=duration_s,
            params=params or {},
            size_bytes=size_bytes,
        )
        self.records.append(entry)
        return entry

    # -- aggregation -------------------------------------------------------

    def counts(self) -> dict:
        """Per-stage ``{"hits": n, "computed": n}`` (refreshes count as
        computed — the stage function actually ran)."""
        out: dict = {}
        for entry in self.records:
            bucket = out.setdefault(entry.stage, {"hits": 0, "computed": 0})
            if entry.status == "hit":
                bucket["hits"] += 1
            else:
                bucket["computed"] += 1
        return out

    def computed_count(self, stage: Optional[str] = None) -> int:
        """Stage executions (non-hits), optionally for one stage kind."""
        return sum(
            1
            for entry in self.records
            if entry.status != "hit" and (stage is None or entry.stage == stage)
        )

    def hit_count(self, stage: Optional[str] = None) -> int:
        """Store hits, optionally for one stage kind."""
        return sum(
            1
            for entry in self.records
            if entry.status == "hit" and (stage is None or entry.stage == stage)
        )

    # -- persistence -------------------------------------------------------

    def to_dict(self) -> dict:
        from repro.obs import enabled as _trace_enabled
        from repro.obs import metrics as _obs_metrics

        totals = self.counts()
        return {
            "version": 1,
            "run_id": self.run_id,
            "created_at": self.created_at,
            "environment": self.environment,
            "totals": totals,
            "records": [entry.to_dict() for entry in self.records],
            # Point-in-time metrics snapshot; empty unless tracing is on.
            "metrics": _obs_metrics.registry.snapshot() if _trace_enabled() else {},
        }

    def save(self, store: ArtifactStore) -> Path:
        """Atomically write this manifest under ``<store>/manifests/``."""
        directory = store.manifests_dir
        directory.mkdir(parents=True, exist_ok=True)
        destination = directory / f"{self.run_id}.json"
        tmp = directory / f"tmp-{os.getpid()}-{uuid.uuid4().hex}.json"
        tmp.write_text(json.dumps(self.to_dict(), indent=2), encoding="utf-8")
        os.replace(tmp, destination)
        return destination
