"""``@cached_stage`` — memoize a pipeline stage through the store.

The decorator turns a pure stage function (same parameters + same code
version => same artifact) into a store-backed one.  The wrapped function
grows three reserved keyword arguments:

``store``
    An :class:`~repro.store.store.ArtifactStore`, or ``None`` to
    compute without caching (the default, so decorated stages behave
    exactly like the plain function unless a store is threaded in).
``refresh``
    Force recomputation and overwrite the stored artifact.
``manifest``
    A :class:`~repro.store.manifest.RunManifest` receiving one record
    per call (hit / computed / refreshed, with duration and key).

The key is *not* derived from the raw call arguments — stages receive
heavyweight objects (graphs) whose identity is already captured by
upstream parameters — but from an explicit ``key`` callable mapping the
call to a provenance dict.  ``encode``/``decode`` adapt results whose
natural form needs call context to reconstruct (a stored simulation
needs its graph and config back).
"""

from __future__ import annotations

import functools
import time
from typing import Any, Callable, Optional

from repro.errors import StoreError
from repro.lint.contracts import declares_effects
from repro.obs import metrics as obs_metrics
from repro.obs import span
from repro.store.fingerprint import code_version, fingerprint
from repro.store.manifest import RunManifest
from repro.store.store import ArtifactStore

__all__ = ["cached_stage"]


@declares_effects("time")
def _stage_clock() -> float:
    """Wall-clock source for the ``duration_s`` provenance field.

    This is the one audited clock read inside the memoization wrapper:
    the value feeds manifest records and stored provenance only — it
    never participates in a content key, so two runs that differ only
    in this reading still produce bit-identical artifacts.
    """
    return time.perf_counter()


def cached_stage(
    kind: str,
    *,
    code: "tuple[str, ...]",
    key: Callable[..., dict],
    encode: Optional[Callable[[Any], Any]] = None,
    decode: Optional[Callable[..., Any]] = None,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Decorator factory memoizing one stage kind through the store.

    Parameters
    ----------
    kind:
        Artifact kind (must have a registered serializer); also the
        stage label in manifests.
    code:
        Module/package names whose source text versions this stage's
        outputs; editing any of them invalidates existing keys.
    key:
        Maps the stage call's arguments to the provenance-parameter
        dict that (with the code version) forms the content key.
    encode / decode:
        Optional adapters between the stage's return type and the
        stored payload; ``decode`` receives the stored payload followed
        by the original call arguments.
    """

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        @functools.wraps(fn)
        def wrapper(
            *args: Any,
            store: Optional[ArtifactStore] = None,
            refresh: bool = False,
            manifest: Optional[RunManifest] = None,
            **kwargs: Any,
        ) -> Any:
            if store is None:
                start = _stage_clock()
                with span(f"store.{kind}", outcome="uncached"):
                    result = fn(*args, **kwargs)
                if manifest is not None:
                    manifest.record(
                        kind, "", "computed", _stage_clock() - start
                    )
                return result
            params = key(*args, **kwargs)
            version = code_version(*code)
            content_key = fingerprint(kind, params, version)
            with span(f"store.{kind}") as stage_span, store.pin(content_key, kind):
                if not refresh:
                    start = _stage_clock()
                    stored = store.get(content_key, kind)
                    if stored is not None:
                        result = (
                            decode(stored, *args, **kwargs)
                            if decode is not None
                            else stored
                        )
                        stage_span.set(outcome="hit")
                        obs_metrics.registry.counter("store.hit").inc()
                        if manifest is not None:
                            manifest.record(
                                kind,
                                content_key,
                                "hit",
                                _stage_clock() - start,
                                params=params,
                            )
                        return result
                start = _stage_clock()
                result = fn(*args, **kwargs)
                duration = _stage_clock() - start
                payload = encode(result) if encode is not None else result
                if payload is None:
                    raise StoreError(
                        f"stage {fn.__qualname__} produced None; cached stages "
                        "must return a storable artifact"
                    )
                info = store.put(
                    content_key,
                    kind,
                    payload,
                    provenance={
                        "stage": fn.__qualname__,
                        "params": params,
                        "code_version": version,
                        "code_modules": list(code),
                        "duration_s": duration,
                    },
                )
                stage_span.set(outcome="refreshed" if refresh else "computed")
                obs_metrics.registry.counter("store.miss").inc()
                if manifest is not None:
                    manifest.record(
                        kind,
                        content_key,
                        "refreshed" if refresh else "computed",
                        duration,
                        params=params,
                        size_bytes=info.size_bytes,
                    )
            return result

        wrapper.__wrapped_stage__ = fn  # type: ignore[attr-defined]
        wrapper.stage_kind = kind  # type: ignore[attr-defined]
        return wrapper

    return decorate
