"""``python -m repro.obs`` — inspect and convert saved run documents.

Subcommands:

* ``summarize <run.json>`` — per-phase span table + metrics, to stdout;
* ``chrome <run.json> -o trace.json`` — convert to Chrome trace-event
  format for ``chrome://tracing`` / Perfetto.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import ObservabilityError
from repro.obs import export as _export

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect repro.obs run documents (spans + metrics).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    summarize = sub.add_parser(
        "summarize", help="print a per-phase span table and metrics"
    )
    summarize.add_argument("run", help="path to a saved run.json")
    summarize.add_argument(
        "--top",
        type=int,
        default=0,
        metavar="N",
        help="show only the first N phases (default: all)",
    )

    chrome = sub.add_parser(
        "chrome", help="convert a run document to Chrome trace-event JSON"
    )
    chrome.add_argument("run", help="path to a saved run.json")
    chrome.add_argument(
        "-o",
        "--output",
        default="trace.json",
        help="output trace file (default: trace.json)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        document = _export.load_run(args.run)
        if args.command == "summarize":
            print(_export.summarize_run(document, top=args.top))
        else:
            written = _export.save_chrome_trace(args.output, document)
            events = len(document.get("spans", []))
            print(f"wrote {events} trace event(s) to {written}")
    except ObservabilityError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
