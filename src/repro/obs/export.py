"""Exporters: JSON run documents, Chrome trace events, text summaries.

Three consumers, three formats:

* :func:`export_run` / :func:`save_run` — the canonical JSON document
  (``version`` / ``spans`` / ``metrics`` / ``environment``) the
  ``python -m repro.obs summarize`` CLI and the tests read;
* :func:`chrome_trace_events` / :func:`save_chrome_trace` — the Chrome
  trace-event format (open in ``chrome://tracing`` or Perfetto);
* :func:`summarize_run` — the human-readable per-phase table, built by
  aggregating spans over their *name path* (root span name ``/`` child
  span name ``/`` ...), with self-time accounting.
"""

from __future__ import annotations

import json
import os
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.errors import ObservabilityError
from repro.obs import core as _core
from repro.obs import metrics as _metrics

__all__ = [
    "export_run",
    "save_run",
    "load_run",
    "chrome_trace_events",
    "save_chrome_trace",
    "PhaseSummary",
    "aggregate_phases",
    "summarize_run",
]

RUN_FORMAT_VERSION = 1


def export_run(*, environment: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """The currently collected spans + metrics as one JSON-able document."""
    if environment is None:
        # Imported lazily: repro.store.manifest pulls in numpy and the
        # store stack, which the obs core deliberately avoids.
        from repro.store.manifest import environment_snapshot

        environment = environment_snapshot()
    return {
        "version": RUN_FORMAT_VERSION,
        "epoch_anchor_s": _core.EPOCH_ANCHOR,
        "spans": [record.to_dict() for record in _core.completed_spans()],
        "metrics": _metrics.registry.snapshot(),
        "environment": environment,
    }


def _atomic_write_json(path: Union[str, os.PathLike], document: Dict[str, Any]) -> Path:
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    tmp = destination.parent / f"tmp-{os.getpid()}-{uuid.uuid4().hex}.json"
    tmp.write_text(json.dumps(document, indent=2, default=str), encoding="utf-8")
    os.replace(tmp, destination)
    return destination


def save_run(path: Union[str, os.PathLike]) -> Path:
    """Atomically write :func:`export_run` to ``path``; returns the path."""
    return _atomic_write_json(path, export_run())


def load_run(path: Union[str, os.PathLike]) -> Dict[str, Any]:
    """Read a saved run document back, validating the format version."""
    source = Path(path)
    try:
        document = json.loads(source.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ObservabilityError(f"cannot read run file {source}: {exc}") from exc
    if not isinstance(document, dict) or "spans" not in document:
        raise ObservabilityError(
            f"{source} is not a repro.obs run document (no 'spans' key)"
        )
    version = document.get("version")
    if version != RUN_FORMAT_VERSION:
        raise ObservabilityError(
            f"{source} has run-format version {version!r}; "
            f"this build reads version {RUN_FORMAT_VERSION}"
        )
    return document


# -- Chrome trace-event format ----------------------------------------------


def chrome_trace_events(document: Optional[Dict[str, Any]] = None) -> List[Dict[str, Any]]:
    """Spans as Chrome trace-event ``X`` (complete) events.

    Timestamps are microseconds from the earliest span, one track per
    thread.  Load the written file in ``chrome://tracing`` or
    https://ui.perfetto.dev.
    """
    if document is None:
        document = export_run()
    spans = document.get("spans", [])
    if not spans:
        return []
    t0 = min(float(record["start_s"]) for record in spans)
    events: List[Dict[str, Any]] = []
    for record in spans:
        events.append(
            {
                "name": record["name"],
                "ph": "X",
                "ts": (float(record["start_s"]) - t0) * 1e6,
                "dur": (float(record["end_s"]) - float(record["start_s"])) * 1e6,
                "pid": 1,
                "tid": record["thread_id"],
                "args": record.get("attrs", {}),
            }
        )
    return events


def save_chrome_trace(
    path: Union[str, os.PathLike], document: Optional[Dict[str, Any]] = None
) -> Path:
    """Write the Chrome trace JSON for ``document`` (default: live state)."""
    return _atomic_write_json(
        path,
        {
            "traceEvents": chrome_trace_events(document),
            "displayTimeUnit": "ms",
        },
    )


# -- textual summary ---------------------------------------------------------


@dataclass
class PhaseSummary:
    """Aggregate of all spans sharing one name path."""

    path: str
    depth: int
    count: int = 0
    total_s: float = 0.0
    child_s: float = 0.0

    @property
    def self_s(self) -> float:
        return max(0.0, self.total_s - self.child_s)


def aggregate_phases(spans: Sequence[Dict[str, Any]]) -> List[PhaseSummary]:
    """Group spans by name path and roll child time up to parents.

    The *name path* joins span names along the parent chain
    (``bench.fig3/reorder.rabbit/reorder.rabbit.merge``), so the same
    phase reached from different parents stays distinguishable.
    Returns summaries in depth-first path order.
    """
    by_id: Dict[int, Dict[str, Any]] = {
        int(record["span_id"]): record for record in spans
    }
    paths: Dict[int, str] = {}

    def path_of(span_id: int) -> str:
        cached = paths.get(span_id)
        if cached is not None:
            return cached
        record = by_id[span_id]
        parent_id = int(record["parent_id"])
        name = str(record["name"])
        if parent_id >= 0 and parent_id in by_id:
            result = f"{path_of(parent_id)}/{name}"
        else:
            result = name
        paths[span_id] = result
        return result

    summaries: Dict[str, PhaseSummary] = {}
    for record in spans:
        path = path_of(int(record["span_id"]))
        summary = summaries.get(path)
        if summary is None:
            summary = PhaseSummary(path=path, depth=path.count("/"))
            summaries[path] = summary
        summary.count += 1
        summary.total_s += float(record["end_s"]) - float(record["start_s"])
    for record in spans:
        parent_id = int(record["parent_id"])
        if parent_id >= 0 and parent_id in by_id:
            duration = float(record["end_s"]) - float(record["start_s"])
            summaries[path_of(parent_id)].child_s += duration
    return sorted(summaries.values(), key=lambda summary: summary.path)


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s"
    return f"{seconds * 1e3:7.2f}ms"


def summarize_run(document: Dict[str, Any], *, top: int = 0) -> str:
    """Render one saved run as a per-phase table plus a metrics block."""
    lines: List[str] = []
    spans = document.get("spans", [])
    phases = aggregate_phases(spans)
    lines.append(f"spans: {len(spans)} recorded, {len(phases)} distinct phases")
    if phases:
        lines.append("")
        lines.append(
            f"{'phase':<56} {'count':>6} {'total':>9} {'self':>9}"
        )
        shown = phases[:top] if top > 0 else phases
        for phase in shown:
            indent = "  " * phase.depth
            label = indent + phase.path.rsplit("/", 1)[-1]
            if len(label) > 56:
                label = label[:53] + "..."
            lines.append(
                f"{label:<56} {phase.count:>6} "
                f"{_format_seconds(phase.total_s):>9} "
                f"{_format_seconds(phase.self_s):>9}"
            )
        if top > 0 and len(phases) > top:
            lines.append(f"... {len(phases) - top} more phase(s)")
    metrics = document.get("metrics", {})
    if metrics:
        lines.append("")
        lines.append(f"metrics: {len(metrics)}")
        for name, entry in sorted(metrics.items()):
            kind = entry.get("type", "?")
            if kind == "histogram":
                value = (
                    f"count={entry.get('count')} mean={entry.get('mean'):.6g} "
                    f"min={entry.get('min')} max={entry.get('max')}"
                )
                if entry.get("p50") is not None:
                    value += (
                        f" p50={entry.get('p50'):.6g}"
                        f" p95={entry.get('p95'):.6g}"
                        f" p99={entry.get('p99'):.6g}"
                    )
            else:
                value = f"{entry.get('value')}"
            lines.append(f"  {name:<44} {kind:<9} {value}")
    environment = document.get("environment", {})
    if environment:
        lines.append("")
        lines.append(
            "environment: "
            + ", ".join(f"{key}={environment[key]}" for key in sorted(environment))
        )
    return "\n".join(lines)
