"""Zero-dependency observability: tracing spans, metrics, exporters.

Quickstart::

    from repro import obs

    with obs.recording():                       # or REPRO_TRACE=1
        with obs.span("reorder.slashburn", vertices=n):
            ...
        obs.metrics.registry.counter("sim.accesses").inc(batch)
        obs.save_run("run.json")

    # then: python -m repro.obs summarize run.json

Tracing defaults to *off*; the disabled path allocates nothing (see
:func:`debug_counters`).  DESIGN.md §10 documents the span/metric
naming scheme and the exporter formats.
"""

from __future__ import annotations

from repro.obs import metrics
from repro.obs.core import (
    EPOCH_ANCHOR,
    TRACE_ENV,
    SpanRecord,
    completed_spans,
    debug_counters,
    disable,
    enable,
    enabled,
    peak_rss_bytes,
    recording,
    refresh_from_env,
    reset,
    span,
    traced,
)
from repro.obs.export import (
    chrome_trace_events,
    export_run,
    load_run,
    save_chrome_trace,
    save_run,
    summarize_run,
)

__all__ = [
    "TRACE_ENV",
    "EPOCH_ANCHOR",
    "SpanRecord",
    "span",
    "traced",
    "enabled",
    "enable",
    "disable",
    "recording",
    "refresh_from_env",
    "reset",
    "reset_all",
    "completed_spans",
    "debug_counters",
    "metrics",
    "peak_rss_bytes",
    "export_run",
    "save_run",
    "load_run",
    "chrome_trace_events",
    "save_chrome_trace",
    "summarize_run",
]


def reset_all() -> None:
    """Clear spans, debug counters, and every registered metric."""
    reset()
    metrics.registry.reset()
