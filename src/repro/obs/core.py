"""Span tracing and metrics state — the heart of :mod:`repro.obs`.

Design constraints (DESIGN.md §10):

* **Near-zero cost when disabled.**  ``span(...)`` returns a shared
  no-op context manager and every metric mutation is a single boolean
  check, so the disabled path performs *zero* allocations — a property
  the tier-1 suite asserts with the debug counters below, not with
  timing.
* **Thread-safe.**  Span stacks are thread-local (each thread owns its
  own nesting chain); the completed-span list and the metrics registry
  mutate under one module lock.
* **Monotonic timestamps.**  Spans record ``time.perf_counter`` values
  plus one process-level anchor (:data:`EPOCH_ANCHOR`) so exporters can
  reconstruct wall-clock times without per-span ``time.time`` calls.

The global enable switch resolves from the ``REPRO_TRACE`` environment
variable at import (``0``/``false``/``off``/unset disable, anything
else enables) and can be flipped programmatically with
:func:`enable` / :func:`disable` / :func:`recording`.
"""

from __future__ import annotations

import contextlib
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, TypeVar

from repro.lint.contracts import declares_effects

__all__ = [
    "TRACE_ENV",
    "EPOCH_ANCHOR",
    "SpanRecord",
    "enabled",
    "enable",
    "disable",
    "refresh_from_env",
    "recording",
    "span",
    "traced",
    "completed_spans",
    "debug_counters",
    "peak_rss_bytes",
    "reset",
]

#: Environment variable controlling the global trace switch.
TRACE_ENV = "REPRO_TRACE"

_FALSY = ("", "0", "false", "off", "no")

#: ``time.time() - time.perf_counter()`` at import: add to a span's
#: monotonic timestamps to recover approximate wall-clock seconds.
EPOCH_ANCHOR = time.time() - time.perf_counter()

F = TypeVar("F", bound=Callable[..., Any])


def _env_enabled() -> bool:
    return os.environ.get(TRACE_ENV, "").strip().lower() not in _FALSY


@dataclass(frozen=True)
class SpanRecord:
    """One completed span: identity, nesting, timing, attributes."""

    span_id: int
    parent_id: int  # -1 for a root span
    name: str
    thread_id: int
    start_s: float  # perf_counter timestamp
    end_s: float
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "thread_id": self.thread_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "attrs": self.attrs,
        }


class _State:
    """Process-wide observability state (one instance, module-level)."""

    __slots__ = (
        "enabled",
        "lock",
        "spans",
        "spans_started",
        "metric_updates",
        "next_span_id",
        "local",
    )

    def __init__(self) -> None:
        self.enabled: bool = _env_enabled()
        self.lock = threading.Lock()
        self.spans: List[SpanRecord] = []
        self.spans_started: int = 0
        self.metric_updates: int = 0
        self.next_span_id: int = 0
        self.local = threading.local()

    def stack(self) -> List[int]:
        stack = getattr(self.local, "stack", None)
        if stack is None:
            stack = []
            self.local.stack = stack
        return stack


_STATE = _State()


def enabled() -> bool:
    """Whether span tracing and metrics collection are active."""
    return _STATE.enabled


def enable() -> None:
    """Turn collection on (overrides the environment)."""
    _STATE.enabled = True


def disable() -> None:
    """Turn collection off; :func:`span` reverts to the no-op path."""
    _STATE.enabled = False


def refresh_from_env() -> bool:
    """Re-resolve the switch from ``REPRO_TRACE``; returns the new state."""
    _STATE.enabled = _env_enabled()
    return _STATE.enabled


def reset() -> None:
    """Drop every completed span and zero the debug counters.

    Metrics live in :mod:`repro.obs.metrics` and are reset separately
    (or together via :func:`repro.obs.reset_all`).
    """
    with _STATE.lock:
        _STATE.spans.clear()
        _STATE.spans_started = 0
        _STATE.metric_updates = 0


@contextlib.contextmanager
def recording(*, fresh: bool = True) -> Iterator[None]:
    """Enable collection inside the block, restoring the prior switch.

    ``fresh=True`` (default) also clears previously collected spans and
    metrics on entry, so the block observes only its own activity.
    """
    from repro.obs import metrics as _metrics

    previous = _STATE.enabled
    if fresh:
        reset()
        _metrics.registry.reset()
    _STATE.enabled = True
    try:
        yield
    finally:
        _STATE.enabled = previous


def completed_spans() -> List[SpanRecord]:
    """Snapshot of every span finished so far (oldest first)."""
    with _STATE.lock:
        return list(_STATE.spans)


def debug_counters() -> Dict[str, int]:
    """Allocation counters backing the overhead-guard tests.

    ``spans_started`` counts real span objects created (0 while
    disabled); ``metric_updates`` counts accepted metric mutations.
    """
    with _STATE.lock:
        return {
            "spans_started": _STATE.spans_started,
            "spans_completed": len(_STATE.spans),
            "metric_updates": _STATE.metric_updates,
        }


@declares_effects("global-mutate")
def _count_metric_update() -> None:
    # Called by the metrics registry under its own value lock; the
    # counter here is advisory (debug), so a plain int add suffices.
    # Declared carve-out: process-local telemetry, invisible to any
    # artifact content or replayed simulation state.
    _STATE.metric_updates += 1


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def set(self, **attrs: Any) -> None:
        """No-op attribute update (mirrors :class:`_LiveSpan.set`)."""


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """An open span; created only when tracing is enabled."""

    __slots__ = ("name", "attrs", "span_id", "parent_id", "start_s")

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        state = _STATE
        with state.lock:
            self.span_id = state.next_span_id
            state.next_span_id += 1
            state.spans_started += 1
        stack = state.stack()
        self.parent_id = stack[-1] if stack else -1
        stack.append(self.span_id)
        self.start_s = time.perf_counter()

    def set(self, **attrs: Any) -> None:
        """Attach or update attributes while the span is open."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_LiveSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        end = time.perf_counter()
        state = _STATE
        stack = state.stack()
        # Pop our own id even if an inner span leaked (defensive: a
        # mismatched stack must never corrupt later nesting).
        while stack and stack[-1] != self.span_id:
            stack.pop()
        if stack:
            stack.pop()
        record = SpanRecord(
            span_id=self.span_id,
            parent_id=self.parent_id,
            name=self.name,
            thread_id=threading.get_ident(),
            start_s=self.start_s,
            end_s=end,
            attrs=self.attrs,
        )
        with state.lock:
            state.spans.append(record)


@declares_effects("time", "global-mutate")
def span(name: str, **attrs: Any) -> "_LiveSpan | _NullSpan":
    """Open a (nestable, thread-safe) tracing span.

    Usage::

        with span("reorder.slashburn", vertices=n):
            ...

    While tracing is disabled this returns a shared no-op context
    manager — no allocation, no timestamp, no lock.

    Declared effects: the live path timestamps the span and appends to
    the process-local trace buffer.  Neither observation can reach
    artifact content — tracing output is telemetry, keyed separately
    from every content-addressed key — so instrumented code stays
    eligible for ``@cached_stage``/shard contracts.
    """
    if not _STATE.enabled:
        return _NULL_SPAN
    return _LiveSpan(name, attrs)


def traced(name: "str | F | None" = None) -> "Callable[[F], F] | F":
    """Decorator tracing every call of the function as one span.

    Use bare (``@traced``, span named ``module.qualname``) or with an
    explicit span name (``@traced("sim.spmv")``).  The disabled path
    adds one boolean check per call.
    """

    def decorate_with(span_name: "str | None") -> Callable[[F], F]:
        def decorate(fn: F) -> F:
            import functools

            label = span_name or f"{fn.__module__}.{fn.__qualname__}"

            @functools.wraps(fn)
            def wrapper(*args: Any, **kwargs: Any) -> Any:
                if not _STATE.enabled:
                    return fn(*args, **kwargs)
                with _LiveSpan(label, {}):
                    return fn(*args, **kwargs)

            return wrapper  # type: ignore[return-value]

        return decorate

    if callable(name):  # bare @traced
        return decorate_with(None)(name)
    return decorate_with(name)


def peak_rss_bytes() -> Optional[int]:
    """Lifetime peak resident-set size of this process, in bytes.

    Reads ``resource.getrusage(RUSAGE_SELF).ru_maxrss`` — kilobytes on
    Linux, bytes on macOS — and normalizes to bytes.  Returns ``None``
    on platforms without the ``resource`` module (e.g. Windows), so the
    environment snapshot degrades gracefully.  Note the value is a
    high-water mark: it never decreases within a process, which is
    exactly what the scale-tier RSS gates want to bound.
    """
    try:
        import resource
        import sys
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    raw = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        return int(raw)
    return int(raw) * 1024
