"""Metrics registry: counters, gauges, and histograms.

Naming scheme (DESIGN.md §10): dot-separated ``<layer>.<subject>[.<verb>]``
— e.g. ``sim.accesses``, ``store.hit``, ``reorder.iterations``.  All
instruments no-op while :func:`repro.obs.enabled` is false, so hot
paths may call them unconditionally; instrument *per batch*, never per
element (the cache kernels count one ``inc(n)`` per simulate call, not
one per access).
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Tuple, Union

from repro.obs import core as _core

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "percentiles",
]

Number = Union[int, float]

#: Ring-buffer capacity backing :meth:`Histogram.percentiles`.  Recent
#: observations overwrite the oldest once full, so a long-running
#: histogram reports percentiles of its trailing window rather than
#: growing without bound.
HISTOGRAM_RESERVOIR = 4096


def percentiles(
    values: "list[float]", qs: "tuple[Number, ...]" = (50, 95, 99)
) -> Dict[str, float]:
    """Nearest-rank percentiles of ``values`` as ``{"p50": ...}``.

    Shared by :class:`Histogram` and the serving load harness so both
    report latencies with the same (deterministic, interpolation-free)
    definition.  Raises on an empty sample set — callers decide how to
    render "no data".
    """
    if not values:
        from repro.errors import ObservabilityError

        raise ObservabilityError("cannot take percentiles of an empty sample set")
    ordered = sorted(values)
    out: Dict[str, float] = {}
    for q in qs:
        if not 0 < q <= 100:
            from repro.errors import ObservabilityError

            raise ObservabilityError(f"percentile must be in (0, 100], got {q!r}")
        rank = max(1, math.ceil(len(ordered) * (float(q) / 100.0)))
        label = f"{float(q):g}".replace(".", "_")
        out[f"p{label}"] = ordered[rank - 1]
    return out


class Counter:
    """Monotonically increasing count (events, bytes, accesses)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0
        self._lock = threading.Lock()

    def inc(self, amount: Number = 1) -> None:
        if not _core.enabled():
            return
        with self._lock:
            self.value += amount
            _core._count_metric_update()

    def to_dict(self) -> Dict[str, Number]:
        return {"value": self.value}


class Gauge:
    """Last-write-wins sampled value (sizes, ratios, levels)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[Number] = None
        self._lock = threading.Lock()

    def set(self, value: Number) -> None:
        if not _core.enabled():
            return
        with self._lock:
            self.value = value
            _core._count_metric_update()

    def to_dict(self) -> Dict[str, Optional[Number]]:
        return {"value": self.value}


class Histogram:
    """Streaming summary (count/total/min/max/percentiles) of observations.

    A full bucketed histogram is overkill for the pipeline's needs —
    per-phase durations and batch sizes — so this records the moments a
    summary line can be built from, plus a bounded reservoir of the most
    recent :data:`HISTOGRAM_RESERVOIR` samples so honest tail latencies
    (:meth:`percentiles`) are available without unbounded memory.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_samples", "_next", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count: int = 0
        self.total: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: List[float] = []
        self._next: int = 0
        self._lock = threading.Lock()

    def observe(self, value: Number) -> None:
        if not _core.enabled():
            return
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)
            if len(self._samples) < HISTOGRAM_RESERVOIR:
                self._samples.append(value)
            else:
                self._samples[self._next] = value
                self._next = (self._next + 1) % HISTOGRAM_RESERVOIR
            _core._count_metric_update()

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentiles(
        self, qs: Tuple[Number, ...] = (50, 95, 99)
    ) -> Dict[str, float]:
        """Nearest-rank percentiles over the sample reservoir.

        The reservoir keeps the most recent observations (up to
        :data:`HISTOGRAM_RESERVOIR`), so for long streams these are
        trailing-window percentiles.  Raises when nothing was observed.
        """
        with self._lock:
            samples = list(self._samples)
        return percentiles(samples, qs)

    def to_dict(self) -> Dict[str, Optional[Number]]:
        out: Dict[str, Optional[Number]] = {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }
        if self._samples:
            out.update(self.percentiles())
        return out


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Process-wide named-instrument registry.

    Instruments are created on first use and live for the process; a
    name is bound to one instrument type (requesting ``counter(x)``
    after ``gauge(x)`` raises, catching naming-scheme typos early).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, Instrument] = {}

    def _get(self, name: str, cls: type) -> Instrument:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = cls(name)
                self._instruments[name] = instrument
            elif not isinstance(instrument, cls):
                from repro.errors import ObservabilityError

                raise ObservabilityError(
                    f"metric {name!r} is a {type(instrument).__name__}, "
                    f"requested as {cls.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        instrument = self._get(name, Counter)
        assert isinstance(instrument, Counter)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._get(name, Gauge)
        assert isinstance(instrument, Gauge)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._get(name, Histogram)
        assert isinstance(instrument, Histogram)
        return instrument

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """All instruments as ``{name: {"type": ..., **values}}``."""
        with self._lock:
            instruments = list(self._instruments.values())
        out: Dict[str, Dict[str, object]] = {}
        for instrument in sorted(instruments, key=lambda i: i.name):
            entry: Dict[str, object] = {
                "type": type(instrument).__name__.lower()
            }
            entry.update(instrument.to_dict())
            out[instrument.name] = entry
        return out

    def counter_delta(
        self, before: Dict[str, Dict[str, object]]
    ) -> Dict[str, Number]:
        """Counter increments since a previous :meth:`snapshot`.

        Gauges and histograms are point-in-time/stream summaries and do
        not difference meaningfully, so only counters participate.
        """
        deltas: Dict[str, Number] = {}
        for name, entry in self.snapshot().items():
            if entry.get("type") != "counter":
                continue
            now = entry.get("value", 0)
            prior = before.get(name, {}).get("value", 0)
            assert isinstance(now, (int, float)) and isinstance(
                prior, (int, float)
            )
            if now != prior:
                deltas[name] = now - prior
        return deltas

    def reset(self) -> None:
        """Drop every instrument (tests and fresh recordings)."""
        with self._lock:
            self._instruments.clear()


#: The shared registry every instrumented layer writes to.
registry = MetricsRegistry()
