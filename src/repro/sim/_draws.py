"""Per-access bimodal draw stream for the BRRIP/DRRIP insertion policy.

The BRRIP throttle inserts a missing line with a *long* re-reference
prediction (RRPV ``max-1``) with probability 1/32 and a distant one
(RRPV ``max``) otherwise [Jaleel et al., ISCA'10].  Earlier revisions
drew these decisions from a finite pre-generated pool consumed by
*global miss rank*, which had two structural problems:

1.  the pool wrapped modulo 2**16, recycling draws (and thereby
    correlating insertion decisions) on any trace with more than 65,536
    BRRIP-mode misses — the validation workloads alone have ~250 K; and
2.  draw consumption by miss *rank* coupled every cache set through the
    global miss sequence: flipping one hit bit anywhere reassigned every
    later draw, which forced the vectorized kernels to route BRRIP/DRRIP
    through the scalar reference loop (DESIGN.md §7).

This module replaces the pool with a **counter-hash**: the draw for the
access at global position ``p`` (the cache's lifetime access counter) is
a pure function of ``(seed, p)``, so it never recycles and never depends
on the hit/miss history.  The hash is the splitmix64 output function —
its finalizer is bijective on 64-bit words, so distinct positions give
distinct draw words with the full 2**64 period of the underlying
Weyl sequence.

Draw specification (the test oracle re-implements this independently):

- ``GAMMA = 0x9E3779B97F4A7C15`` (the splitmix64 Weyl increment),
- ``key(seed)   = finalize((seed + 1) * GAMMA mod 2**64)``,
- ``word(key,p) = finalize((key + p * GAMMA) mod 2**64)``,
- the insertion is *long* (RRPV ``max-1``) iff ``word < 2**59``
  (exactly 1/32 of the 64-bit space),

where ``finalize`` is splitmix64's three-step mix::

    z ^= z >> 30;  z *= 0xBF58476D1CE4E5B9
    z ^= z >> 27;  z *= 0x94D049BB133111EB
    z ^= z >> 31

Both entry points below compute the identical bit pattern: the scalar
path (``long_insert``) serves :meth:`SetAssociativeCache.access`, the
vectorized path (``long_inserts``) serves the reference batch loop and
the kernels, so reference and kernel replay stay bit-exact by
construction.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "GAMMA",
    "LONG_THRESHOLD",
    "draw_key",
    "draw_words",
    "long_insert",
    "long_inserts",
    "long_inserts_at",
]

_MASK64 = (1 << 64) - 1

#: splitmix64 Weyl-sequence increment (odd, hence bijective mod 2**64).
GAMMA = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB

#: ``word < LONG_THRESHOLD`` selects the 1/32 long-insertion draws.
LONG_THRESHOLD = 1 << 59  # == 2**64 * (1/32)


def _finalize(z: int) -> int:
    """Scalar splitmix64 finalizer over Python ints masked to 64 bits."""
    z = ((z ^ (z >> 30)) * _MIX1) & _MASK64
    z = ((z ^ (z >> 27)) * _MIX2) & _MASK64
    return z ^ (z >> 31)


def draw_key(seed: int) -> int:
    """Per-cache stream key derived from the config seed.

    ``seed + 1`` keeps seed 0 off the finalizer's 0 -> 0 fixed point;
    multiplication by the odd ``GAMMA`` is bijective mod 2**64, so
    distinct seeds always get distinct keys.
    """
    return _finalize(((int(seed) + 1) * GAMMA) & _MASK64)


def long_insert(key: int, pos: int) -> bool:
    """Scalar draw: does the access at position ``pos`` insert long?"""
    word = _finalize((key + (pos & _MASK64) * GAMMA) & _MASK64)
    return word < LONG_THRESHOLD


def draw_words(key: int, start: int, n: int) -> np.ndarray:
    """Raw 64-bit draw words for positions ``start .. start+n-1``.

    Exposed (rather than only the thresholded booleans) so tests can pin
    the no-recycling property of the stream itself.
    """
    pos = np.arange(n, dtype=np.uint64)
    z = np.uint64((key + (start & _MASK64) * GAMMA) & _MASK64) + pos * np.uint64(
        GAMMA & _MASK64
    )
    z = (z ^ (z >> np.uint64(30))) * np.uint64(_MIX1)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(_MIX2)
    return z ^ (z >> np.uint64(31))


def long_inserts(key: int, start: int, n: int) -> np.ndarray:
    """Vectorized draws for positions ``start .. start+n-1`` (bool array).

    Bit-exact with ``n`` calls to :func:`long_insert`.
    """
    return draw_words(key, start, n) < np.uint64(LONG_THRESHOLD)


def long_inserts_at(key: int, positions: np.ndarray) -> np.ndarray:
    """Vectorized draws for an *arbitrary* array of lifetime positions.

    This is the sharded-simulation entry point: a shard replays a masked
    subsequence of the global access stream, so its positions are sparse
    — but the draw for position ``p`` is the same pure function of
    ``(seed, p)`` either way.  Bit-exact with per-element
    :func:`long_insert` calls (and hence with :func:`long_inserts` on a
    contiguous range).
    """
    pos = np.asarray(positions, dtype=np.int64).astype(np.uint64)
    z = np.uint64(key) + pos * np.uint64(GAMMA & _MASK64)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(_MIX1)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(_MIX2)
    return (z ^ (z >> np.uint64(31))) < np.uint64(LONG_THRESHOLD)
