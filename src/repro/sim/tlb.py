"""Simulated data TLB.

DTLB misses in the paper capture locality "at larger granularity, i.e.
at longer reuse distances than L3 misses" (Section VI-E).  The TLB is a
small set-associative cache of page translations; we reuse the cache
machinery on page IDs derived from the trace's cache-line IDs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.sim.cache import CacheConfig, SetAssociativeCache, SimulatedAccesses

__all__ = ["TLBConfig", "simulate_tlb", "lines_to_pages"]


@dataclass(frozen=True)
class TLBConfig:
    """TLB geometry: ``entries`` translations, ``ways``-associative.

    ``page_size`` is in bytes and must be a power-of-two multiple of the
    cache line size of the trace being fed in.  Replacement is LRU,
    which is the common choice for small TLBs.
    """

    entries: int = 64
    ways: int = 4
    page_size: int = 4096

    def __post_init__(self) -> None:
        if self.entries <= 0 or self.ways <= 0:
            raise SimulationError("entries and ways must be positive")
        if self.entries % self.ways:
            raise SimulationError("entries must be divisible by ways")
        if self.page_size <= 0 or self.page_size & (self.page_size - 1):
            raise SimulationError("page_size must be a power of two")

    @property
    def num_sets(self) -> int:
        return self.entries // self.ways

    @classmethod
    def scaled_for(
        cls, num_vertices: int, *, coverage: float = 2.0, entries: int = 64, ways: int = 4, data_elem: int = 8
    ) -> "TLBConfig":
        """TLB whose reach covers ``coverage`` times the vertex data array.

        Mirrors :meth:`repro.sim.cache.CacheConfig.scaled_for`.  The paper
        notes that "the total size of huge memory pages that are cached by
        TLB is much greater than the aggregate CPU cache capacity"
        (Section VI-E), hence the default reach of twice the data array —
        DTLB misses stay orders of magnitude rarer than L3 misses, as in
        Table IV.
        """
        if coverage <= 0:
            raise SimulationError("coverage must be positive")
        data_bytes = max(1, num_vertices * data_elem)
        target_page = max(64, int(data_bytes * coverage / entries))
        page_size = 1 << int(np.ceil(np.log2(target_page)))
        return cls(entries=entries, ways=ways, page_size=page_size)


def lines_to_pages(lines: np.ndarray, line_size: int, page_size: int) -> np.ndarray:
    """Convert cache-line IDs to page IDs."""
    if page_size < line_size or page_size % line_size:
        raise SimulationError(
            f"page_size {page_size} must be a multiple of line_size {line_size}"
        )
    ratio = page_size // line_size
    return np.asarray(lines, dtype=np.int64) // ratio


def simulate_tlb(
    lines: np.ndarray, line_size: int, config: TLBConfig
) -> SimulatedAccesses:
    """Run the trace's page stream through a fresh LRU TLB."""
    pages = lines_to_pages(lines, line_size, config.page_size)
    cache = SetAssociativeCache(
        CacheConfig(
            num_sets=config.num_sets,
            ways=config.ways,
            line_size=64,  # irrelevant at page granularity
            policy="lru",
        )
    )
    return cache.simulate(pages)
