"""Set-associative cache simulator.

Modelled after the SimpleScalar cache simulator the paper bases its tool
on (Section V-B), with an implementation of the SRRIP and BRRIP
replacement policies and their set-dueling combination DRRIP
[Jaleel et al., ISCA'10] — the policy of the simulated L3 — plus plain
LRU for comparison and testing.

The simulator is functional (timing-less): it classifies every access of
a pre-generated trace as hit or miss, and can periodically snapshot the
resident cache lines, which is how the Effective Cache Size metric
(Section VI-F) is computed.

BRRIP's bimodal insertion decisions come from the per-access counter-hash
stream in :mod:`repro.sim._draws`: the draw for the access at lifetime
position ``p`` is a pure function of ``(seed, p)``, independent of the
hit/miss history, so cache sets are fully decoupled and the vectorized
kernels in :mod:`repro.sim._kernels` can replay every policy bit-exactly.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError
from repro.lint.contracts import declares_effects
from repro.obs import enabled as _obs_enabled
from repro.obs import metrics as _obs_metrics
from repro.sim import _draws, _kernels

__all__ = ["CacheConfig", "CacheSnapshot", "SetAssociativeCache", "count_cold_misses"]

_POLICIES = ("lru", "srrip", "brrip", "drrip")
_RRPV_MAX = 3  # 2-bit re-reference prediction values
_BRRIP_LONG_PROB = 1.0 / 32.0  # probability BRRIP inserts with rrpv=2
_DUEL_PERIOD = 32  # one SRRIP leader and one BRRIP leader per 32 sets
_PSEL_MAX = 1023
_PSEL_INIT = 512

#: One-shot latch for the kernel-fallback warning (process-wide: the
#: point is to surface the *first* silent fallback, not to spam).
_FALLBACK_WARNED = False


@declares_effects("global-mutate")
def _warn_kernel_fallback(policy: str, mode: str) -> None:
    # Declared carve-out: the latch dedupes a process-local warning;
    # simulation results are already fixed when it flips.
    global _FALLBACK_WARNED
    if _FALLBACK_WARNED:
        return
    _FALLBACK_WARNED = True
    warnings.warn(
        f"cache kernel (mode={mode!r}, policy={policy!r}) exhausted its "
        "fixed-point budget and fell back to the reference loop; the "
        "batch pays kernel overhead *plus* the ~1 us/access reference "
        "cost. Counted in the 'sim.kernel_fallback' repro.obs metric; "
        "set REPRO_SIM_KERNEL=reference to skip the attempt.",
        RuntimeWarning,
        stacklevel=3,
    )


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policy of one cache level.

    ``capacity_bytes = num_sets * ways * line_size``.  The paper's L3 is
    22 MB, 11-way, 64-byte lines with DRRIP; experiment workloads scale
    the geometry down with the graphs (see DESIGN.md).
    """

    num_sets: int
    ways: int
    line_size: int = 64
    policy: str = "drrip"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_sets <= 0 or self.ways <= 0:
            raise SimulationError("num_sets and ways must be positive")
        if self.line_size <= 0 or self.line_size & (self.line_size - 1):
            raise SimulationError("line_size must be a power of two")
        if self.policy not in _POLICIES:
            raise SimulationError(
                f"unknown policy {self.policy!r}; expected one of {_POLICIES}"
            )

    @property
    def capacity_bytes(self) -> int:
        return self.num_sets * self.ways * self.line_size

    @property
    def num_lines(self) -> int:
        return self.num_sets * self.ways

    @classmethod
    def scaled_for(
        cls,
        num_vertices: int,
        *,
        pressure: float = 0.08,
        ways: int = 8,
        line_size: int = 64,
        data_elem: int = 8,
        policy: str = "drrip",
    ) -> "CacheConfig":
        """Cache sized to hold ``pressure`` of the vertex-data lines.

        The paper's 22 MB L3 holds a few percent of the vertex-data
        working set of its billion-edge graphs; this constructor keeps
        that pressure ratio for scaled-down graphs (DESIGN.md §2).
        """
        if not 0 < pressure:
            raise SimulationError(f"pressure must be positive, got {pressure}")
        data_lines = max(1, num_vertices * data_elem // line_size)
        target_lines = max(ways, int(data_lines * pressure))
        num_sets = max(1, 1 << max(0, int(np.ceil(np.log2(target_lines / ways)))))
        return cls(num_sets=num_sets, ways=ways, line_size=line_size, policy=policy)


@dataclass
class CacheSnapshot:
    """Resident lines captured at one scan point (for ECS)."""

    access_index: int
    resident_lines: np.ndarray = field(repr=False)


class SetAssociativeCache:
    """Stateful simulated cache; feed it line IDs, read back hit bits."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        num_sets, ways = config.num_sets, config.ways
        self._tags: list[list[int]] = [[-1] * ways for _ in range(num_sets)]
        self._rrpv: list[list[int]] = [[_RRPV_MAX] * ways for _ in range(num_sets)]
        self._psel = _PSEL_INIT
        # Lifetime access position: every access (any policy, hit or
        # miss) advances it by one, and the BRRIP bimodal draw for the
        # access at position p is the pure function _draws.long_insert
        # (_draw_key, p) — no finite pool, no consumption cursor.
        self._access_pos = 0
        self._draw_key = _draws.draw_key(config.seed)
        # Leader-set roles for DRRIP set dueling: 0 follower, 1 SRRIP
        # leader, 2 BRRIP leader.
        self._role = [0] * num_sets
        for s in range(0, num_sets, _DUEL_PERIOD):
            self._role[s] = 1
            if s + 1 < num_sets:
                self._role[s + 1] = 2
        if num_sets < 2 and config.policy == "drrip":
            # Degenerate geometry: fall back to SRRIP behaviour.
            self._role = [1] * num_sets

    # -- single-access reference API (tests, incremental use) ----------------

    def access(self, line: int) -> bool:
        """Access one cache line; returns True on hit.

        Scalar fast path: operates on the list state directly instead of
        routing a length-1 ndarray through :meth:`simulate`.
        """
        line = int(line)
        pos = self._access_pos
        self._access_pos = pos + 1
        s = line % self.config.num_sets
        ts = self._tags[s]
        if self.config.policy == "lru":
            if line in ts:
                ts.remove(line)
                ts.append(line)
                return True
            del ts[0]
            ts.append(line)
            return False
        rr = self._rrpv[s]
        if line in ts:
            rr[ts.index(line)] = 0
            return True
        while True:
            if _RRPV_MAX in rr:
                victim = rr.index(_RRPV_MAX)
                break
            for w in range(len(rr)):
                rr[w] += 1
        policy = self.config.policy
        if policy == "srrip":
            use_brrip = False
        elif policy == "brrip":
            use_brrip = True
        else:
            r = self._role[s]
            if r == 1:
                use_brrip = False
                if self._psel < _PSEL_MAX:
                    self._psel += 1
            elif r == 2:
                use_brrip = True
                if self._psel > 0:
                    self._psel -= 1
            else:
                use_brrip = self._psel >= _PSEL_INIT
        if use_brrip:
            long = _draws.long_insert(self._draw_key, pos)
            insert = _RRPV_MAX - 1 if long else _RRPV_MAX
        else:
            insert = _RRPV_MAX - 1
        ts[victim] = line
        rr[victim] = insert
        return False

    def resident_lines(self, set_range: "tuple[int, int] | None" = None) -> np.ndarray:
        """IDs of currently resident lines (set-major order, no invalids).

        ``set_range`` restricts the report to sets ``[lo, hi)`` — the
        sharded simulation asks each worker for its *owned* range only,
        so replicated leader sets never leak into merged snapshots.
        """
        sets = self._tags if set_range is None else self._tags[set_range[0] : set_range[1]]
        flat = [t for ways in sets for t in ways if t >= 0]
        return np.asarray(flat, dtype=np.int64)

    # -- bulk simulation -------------------------------------------------------

    def simulate(
        self,
        lines: np.ndarray,
        *,
        scan_interval: int = 0,
        kernel: str = "auto",
        positions: "np.ndarray | None" = None,
    ) -> "SimulatedAccesses":
        """Run the trace through the cache, mutating its state.

        Parameters
        ----------
        lines:
            int64 array of line IDs in program order.
        scan_interval:
            When positive, snapshot resident lines every that many
            accesses (used by the ECS metric).
        kernel:
            Dispatch mode: ``"auto"`` (default) picks the vectorized
            kernel path when it is applicable and likely faster,
            ``"kernel"`` forces it whenever structurally possible, and
            ``"reference"`` forces the per-access loop.  The
            ``REPRO_SIM_KERNEL`` environment variable overrides this
            argument (escape hatch); both paths are bit-exact.
        positions:
            Explicit lifetime access positions (int64, one per line,
            strictly increasing).  By default the cache numbers accesses
            with its own lifetime counter; a sharded replay passes the
            *global* stream positions of its masked subsequence so the
            BRRIP/DRRIP draws match the single-process replay bit-exactly
            (see :mod:`repro.sim.shard`).  After the call ``_access_pos``
            advances to ``positions[-1] + 1``.
        """
        lines = np.asarray(lines, dtype=np.int64)
        if positions is not None:
            positions = np.asarray(positions, dtype=np.int64)
            if positions.shape[0] != lines.shape[0]:
                raise SimulationError(
                    "positions must have one entry per access, got "
                    f"{positions.shape[0]} for {lines.shape[0]} accesses"
                )
        # One guarded per-batch increment; the per-access loops below
        # stay uninstrumented so the disabled path is untouched.
        if _obs_enabled():
            _obs_metrics.registry.counter("cache.accesses").inc(lines.shape[0])
        mode = _kernels.kernel_mode(kernel)
        if mode != "reference" and _kernels.kernel_possible(self.config, lines):
            if mode == "kernel" or _kernels.kernel_profitable(
                self.config, lines, scan_interval
            ):
                res = _kernels.kernel_simulate(
                    self, lines, scan_interval, positions=positions
                )
                if res is not None:
                    hits, raw_snaps = res
                    if _obs_enabled():
                        _obs_metrics.registry.counter("cache.kernel_batches").inc()
                    return SimulatedAccesses(
                        hits=hits,
                        snapshots=[
                            CacheSnapshot(idx, resident)
                            for idx, resident in raw_snaps
                        ],
                    )
                # The kernel attempted the batch and gave up (fixed-point
                # budget); the silent cost is kernel overhead plus the
                # full reference replay below, so make it observable.
                if _obs_enabled():
                    _obs_metrics.registry.counter("sim.kernel_fallback").inc()
                _warn_kernel_fallback(self.config.policy, mode)
        if _obs_enabled():
            _obs_metrics.registry.counter("cache.reference_batches").inc()
        return self._simulate_reference(lines, scan_interval, positions)

    def _simulate_reference(
        self,
        lines: np.ndarray,
        scan_interval: int = 0,
        positions: "np.ndarray | None" = None,
    ) -> "SimulatedAccesses":
        """The original per-access loop — kept as the bit-exact oracle."""
        num_accesses = lines.shape[0]
        hits = np.zeros(num_accesses, dtype=np.uint8)
        snapshots: list[CacheSnapshot] = []
        policy = self.config.policy
        num_sets = self.config.num_sets
        tags = self._tags
        rrpv = self._rrpv
        role = self._role
        psel = self._psel
        lines_list = lines.tolist()

        if policy == "lru":
            for i, line in enumerate(lines_list):
                s = line % num_sets
                ts = tags[s]
                if line in ts:
                    ts.remove(line)
                    ts.append(line)
                    hits[i] = 1
                else:
                    del ts[0]
                    ts.append(line)
                if scan_interval and (i + 1) % scan_interval == 0:
                    snapshots.append(CacheSnapshot(i + 1, self.resident_lines()))
        else:
            srrip_only = policy == "srrip"
            brrip_only = policy == "brrip"
            # Per-access draws for this batch, precomputed with the same
            # vectorized hash the kernels use (bit-exact with the scalar
            # access() path by construction).  SRRIP never reads them.
            if srrip_only:
                long_ins: list[bool] = []
            elif positions is not None:
                long_ins = _draws.long_inserts_at(
                    self._draw_key, positions
                ).tolist()
            else:
                long_ins = _draws.long_inserts(
                    self._draw_key, self._access_pos, num_accesses
                ).tolist()
            for i, line in enumerate(lines_list):
                s = line % num_sets
                ts = tags[s]
                if line in ts:
                    rrpv[s][ts.index(line)] = 0
                    hits[i] = 1
                else:
                    rr = rrpv[s]
                    # Victim search: first way with RRPV == max, aging
                    # every way until one qualifies.
                    while True:
                        if _RRPV_MAX in rr:
                            victim = rr.index(_RRPV_MAX)
                            break
                        for w in range(len(rr)):
                            rr[w] += 1
                    # Insertion policy selection (set dueling for DRRIP).
                    if srrip_only:
                        use_brrip = False
                    elif brrip_only:
                        use_brrip = True
                    else:
                        r = role[s]
                        if r == 1:  # SRRIP leader: its misses vote against it
                            use_brrip = False
                            if psel < _PSEL_MAX:
                                psel += 1
                        elif r == 2:  # BRRIP leader
                            use_brrip = True
                            if psel > 0:
                                psel -= 1
                        else:
                            use_brrip = psel >= _PSEL_INIT
                    if use_brrip:
                        insert = (
                            _RRPV_MAX - 1 if long_ins[i] else _RRPV_MAX
                        )
                    else:
                        insert = _RRPV_MAX - 1
                    ts[victim] = line
                    rr[victim] = insert
                if scan_interval and (i + 1) % scan_interval == 0:
                    snapshots.append(CacheSnapshot(i + 1, self.resident_lines()))

        self._psel = psel
        if positions is not None:
            if num_accesses:
                self._access_pos = int(positions[-1]) + 1
        else:
            self._access_pos += num_accesses
        return SimulatedAccesses(hits=hits, snapshots=snapshots)


@dataclass
class SimulatedAccesses:
    """Result of one :meth:`SetAssociativeCache.simulate` call."""

    hits: np.ndarray
    snapshots: list[CacheSnapshot]

    @property
    def num_accesses(self) -> int:
        return self.hits.shape[0]

    @property
    def num_hits(self) -> int:
        return int(self.hits.sum())

    @property
    def num_misses(self) -> int:
        return self.num_accesses - self.num_hits

    @property
    def miss_rate(self) -> float:
        if self.num_accesses == 0:
            return 0.0
        return self.num_misses / self.num_accesses


def count_cold_misses(lines: np.ndarray) -> int:
    """Number of distinct lines — the miss count of an infinite cache."""
    lines = np.asarray(lines, dtype=np.int64)
    return int(np.unique(lines).shape[0])
