"""SpMV memory-access trace generation.

Reproduces the paper's instrumentation of Algorithm 1 "at source code
level to call the simulator for every load/store" (Section V-B), but
generates the whole access stream up front as numpy arrays so the cache
simulator can consume it in one tight loop.

Per processed vertex ``v`` the pull traversal emits, in program order:

1. a read of ``offsets[v]`` / ``offsets[v+1]`` (sequential),
2. per incoming edge: a read of the ``edges`` element (sequential
   stream) followed by the **random read** of the neighbour's data
   ``Di[u]``,
3. the write of ``Di+1[v]`` (sequential).

Sequential streams are emitted at cache-line granularity: intra-line
re-reads are guaranteed hits and are not replayed individually; instead
each newly-entered sequential line is emitted twice (access + one
promotion) so recency-based policies observe the stream's short burst of
reuse.  Random reads are emitted one per edge — they are the accesses
every metric in the paper attributes and bins.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.graph.graph import Graph

from repro.sim.address_space import AddressSpace, Region

__all__ = ["MemoryTrace", "spmv_trace", "concatenate_traces"]


@dataclass
class MemoryTrace:
    """A flat access stream plus per-access attribution.

    Attributes
    ----------
    lines:
        Cache-line ID of each access, in program order.
    kinds:
        Region code of each access (:class:`~repro.sim.address_space.Region`).
    read_vertex:
        For random vertex-data accesses, the vertex whose data is
        touched (``u`` in Algorithm 1); ``-1`` elsewhere.
    proc_vertex:
        The vertex being processed (``v``) when the access was issued.
    space:
        The address space the line IDs refer to.
    """

    lines: np.ndarray
    kinds: np.ndarray
    read_vertex: np.ndarray
    proc_vertex: np.ndarray
    space: AddressSpace

    def __post_init__(self) -> None:
        n = self.lines.shape[0]
        for arr in (self.kinds, self.read_vertex, self.proc_vertex):
            if arr.shape[0] != n:
                raise SimulationError("trace arrays must have equal length")

    def __len__(self) -> int:
        return self.lines.shape[0]

    @property
    def num_random_accesses(self) -> int:
        return int((self.kinds == Region.VERTEX_DATA).sum())

    def random_mask(self) -> np.ndarray:
        """Boolean mask of the random vertex-data accesses."""
        return self.kinds == Region.VERTEX_DATA


def spmv_trace(
    graph: Graph,
    space: AddressSpace | None = None,
    *,
    direction: str = "pull",
    vertex_range: tuple[int, int] | None = None,
    promote_sequential: bool = True,
) -> MemoryTrace:
    """Generate the SpMV access trace of one traversal (or a slice of it).

    Parameters
    ----------
    direction:
        ``"pull"`` — CSC traversal, random *reads* of in-neighbour data
        (Algorithm 1); ``"push"`` — CSR traversal, random *writes* of
        out-neighbour data.
    vertex_range:
        Half-open ``[start, end)`` slice of the processing order; used by
        the parallel simulation to emit one trace per thread partition.
    promote_sequential:
        Emit each newly-entered sequential line twice (see module doc).
    """
    if direction == "pull":
        adj = graph.in_adj
        random_region = Region.VERTEX_DATA
    elif direction == "push":
        adj = graph.out_adj
        random_region = Region.VERTEX_OUT
    else:
        raise SimulationError(f"direction must be 'pull' or 'push', got {direction!r}")
    if space is None:
        space = AddressSpace(graph.num_vertices, graph.num_edges)

    n = graph.num_vertices
    if vertex_range is None:
        start, end = 0, n
    else:
        start, end = vertex_range
        if not (0 <= start <= end <= n):
            raise SimulationError(f"vertex_range {vertex_range} outside [0, {n}]")

    offsets = adj.offsets
    vertices = np.arange(start, end, dtype=np.int64)
    edge_lo, edge_hi = int(offsets[start]), int(offsets[end])
    edge_indices = np.arange(edge_lo, edge_hi, dtype=np.int64)
    neighbour = adj.targets[edge_lo:edge_hi]
    degrees = np.diff(offsets[start : end + 1])
    processed = np.repeat(vertices, degrees)

    parts_lines: list[np.ndarray] = []
    parts_kinds: list[np.ndarray] = []
    parts_read: list[np.ndarray] = []
    parts_proc: list[np.ndarray] = []
    parts_pos: list[np.ndarray] = []

    def _add(
        lines: np.ndarray,
        kind: int,
        read_v: np.ndarray,
        proc_v: np.ndarray,
        pos: np.ndarray,
    ) -> None:
        parts_lines.append(lines)
        parts_kinds.append(np.full(lines.shape[0], kind, dtype=np.uint8))
        parts_read.append(read_v)
        parts_proc.append(proc_v)
        parts_pos.append(pos)

    minus_one = lambda k: np.full(k, -1, dtype=np.int64)  # noqa: E731

    # Offsets reads: one access per newly-entered offsets line, ordered
    # just before the vertex's first edge.
    if vertices.size:
        off_lines = space.offsets_lines(vertices)
        keep = np.ones(vertices.size, dtype=bool)
        keep[1:] = off_lines[1:] != off_lines[:-1]
        pos = offsets[vertices] * 10
        _add(off_lines[keep], Region.OFFSETS, minus_one(int(keep.sum())),
             vertices[keep], pos[keep])

    # Edge-array stream: emit on line transitions (+ optional promotion).
    if edge_indices.size:
        e_lines = space.edges_lines(edge_indices)
        keep = np.ones(edge_indices.size, dtype=bool)
        keep[1:] = e_lines[1:] != e_lines[:-1]
        kept_lines = e_lines[keep]
        kept_proc = processed[keep]
        kept_pos = edge_indices[keep] * 10 + 1
        _add(kept_lines, Region.EDGES, minus_one(kept_lines.size), kept_proc, kept_pos)
        if promote_sequential:
            _add(kept_lines.copy(), Region.EDGES, minus_one(kept_lines.size),
                 kept_proc.copy(), kept_pos + 1)

    # Random accesses to neighbour data: one per edge, always emitted.
    if edge_indices.size:
        if direction == "pull":
            d_lines = space.data_lines(neighbour)
        else:
            d_lines = space.out_lines(neighbour)
        _add(d_lines, random_region, neighbour.astype(np.int64), processed,
             edge_indices * 10 + 5)

    # Own-vertex data access: the Di+1[v] write in pull, the Di[v] read
    # in push; sequential either way, emitted on line transitions after
    # the vertex's last edge.
    if vertices.size:
        if direction == "pull":
            own_lines = space.out_lines(vertices)
            own_region = Region.VERTEX_OUT
        else:
            own_lines = space.data_lines(vertices)
            own_region = Region.VERTEX_DATA
        keep = np.ones(vertices.size, dtype=bool)
        keep[1:] = own_lines[1:] != own_lines[:-1]
        pos = offsets[vertices + 1] * 10 + 9
        _add(own_lines[keep], own_region, minus_one(int(keep.sum())),
             vertices[keep], pos[keep])

    if not parts_lines:
        empty64 = np.zeros(0, dtype=np.int64)
        return MemoryTrace(empty64, np.zeros(0, dtype=np.uint8), empty64.copy(),
                           empty64.copy(), space)

    lines = np.concatenate(parts_lines)
    kinds = np.concatenate(parts_kinds)
    read_vertex = np.concatenate(parts_read)
    proc_vertex = np.concatenate(parts_proc)
    positions = np.concatenate(parts_pos)
    order = np.argsort(positions, kind="stable")
    return MemoryTrace(
        lines=lines[order],
        kinds=kinds[order],
        read_vertex=read_vertex[order],
        proc_vertex=proc_vertex[order],
        space=space,
    )


def concatenate_traces(traces: list[MemoryTrace]) -> MemoryTrace:
    """Join traces back-to-back (they must share an address space)."""
    if not traces:
        raise SimulationError("cannot concatenate zero traces")
    space = traces[0].space
    if any(t.space is not space and t.space != space for t in traces):
        raise SimulationError("traces use different address spaces")
    return MemoryTrace(
        lines=np.concatenate([t.lines for t in traces]),
        kinds=np.concatenate([t.kinds for t in traces]),
        read_vertex=np.concatenate([t.read_vertex for t in traces]),
        proc_vertex=np.concatenate([t.proc_vertex for t in traces]),
        space=space,
    )
