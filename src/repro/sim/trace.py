"""SpMV memory-access trace generation.

Reproduces the paper's instrumentation of Algorithm 1 "at source code
level to call the simulator for every load/store" (Section V-B), but
generates the whole access stream up front as numpy arrays so the cache
simulator can consume it in one tight loop.

Per processed vertex ``v`` the pull traversal emits, in program order:

1. a read of ``offsets[v]`` / ``offsets[v+1]`` (sequential),
2. per incoming edge: a read of the ``edges`` element (sequential
   stream) followed by the **random read** of the neighbour's data
   ``Di[u]``,
3. the write of ``Di+1[v]`` (sequential).

Sequential streams are emitted at cache-line granularity: intra-line
re-reads are guaranteed hits and are not replayed individually; instead
each newly-entered sequential line is emitted twice (access + one
promotion) so recency-based policies observe the stream's short burst of
reuse.  Random reads are emitted one per edge — they are the accesses
every metric in the paper attributes and bins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.errors import SimulationError
from repro.graph.graph import Graph

from repro.sim.address_space import AddressSpace, Region

__all__ = ["MemoryTrace", "spmv_trace", "spmv_trace_chunks", "concatenate_traces"]


@dataclass
class MemoryTrace:
    """A flat access stream plus per-access attribution.

    Attributes
    ----------
    lines:
        Cache-line ID of each access, in program order.
    kinds:
        Region code of each access (:class:`~repro.sim.address_space.Region`).
    read_vertex:
        For random vertex-data accesses, the vertex whose data is
        touched (``u`` in Algorithm 1); ``-1`` elsewhere.
    proc_vertex:
        The vertex being processed (``v``) when the access was issued.
    space:
        The address space the line IDs refer to.
    """

    lines: np.ndarray
    kinds: np.ndarray
    read_vertex: np.ndarray
    proc_vertex: np.ndarray
    space: AddressSpace

    def __post_init__(self) -> None:
        n = self.lines.shape[0]
        for arr in (self.kinds, self.read_vertex, self.proc_vertex):
            if arr.shape[0] != n:
                raise SimulationError("trace arrays must have equal length")

    def __len__(self) -> int:
        return self.lines.shape[0]

    @property
    def num_random_accesses(self) -> int:
        return int((self.kinds == Region.VERTEX_DATA).sum())

    def random_mask(self) -> np.ndarray:
        """Boolean mask of the random vertex-data accesses."""
        return self.kinds == Region.VERTEX_DATA


def _resolve_direction(graph: Graph, direction: str) -> tuple:
    """``(adjacency, random_region)`` for a traversal direction."""
    if direction == "pull":
        return graph.in_adj, Region.VERTEX_DATA
    if direction == "push":
        return graph.out_adj, Region.VERTEX_OUT
    raise SimulationError(f"direction must be 'pull' or 'push', got {direction!r}")


@dataclass
class _DedupCarry:
    """Last raw line of each sequential part stream, carried across chunks.

    The sequential dedup rule keeps element ``i`` iff its line differs
    from element ``i-1``'s — over the *whole* vertex range, so a chunked
    generation must remember the previous chunk's last raw (pre-dedup)
    line per stream.  ``-1`` (no previous element) keeps the first one.
    """

    off_line: int = -1
    edge_line: int = -1
    own_line: int = -1


def _range_parts(
    graph: Graph,
    space: AddressSpace,
    direction: str,
    start: int,
    end: int,
    promote_sequential: bool,
    carry: _DedupCarry,
) -> tuple[list[np.ndarray], list[np.ndarray], list[np.ndarray], list[np.ndarray], list[np.ndarray]]:
    """Unsorted trace parts (+ sort positions) for vertices ``[start, end)``.

    Mutates ``carry`` to the last raw line of each sequential stream so a
    following call continues the dedup exactly where this one stopped.
    Part order is significant: the stable position sort breaks ties by
    part order, and ties only ever occur *within* one access kind (the
    mod-10 position residues are distinct per kind), where part-internal
    index order is already correct.
    """
    adj, random_region = _resolve_direction(graph, direction)
    offsets = adj.offsets
    vertices = np.arange(start, end, dtype=np.int64)
    edge_lo, edge_hi = int(offsets[start]), int(offsets[end])
    edge_indices = np.arange(edge_lo, edge_hi, dtype=np.int64)
    neighbour = adj.targets[edge_lo:edge_hi]
    degrees = np.diff(offsets[start : end + 1])
    processed = np.repeat(vertices, degrees)

    parts_lines: list[np.ndarray] = []
    parts_kinds: list[np.ndarray] = []
    parts_read: list[np.ndarray] = []
    parts_proc: list[np.ndarray] = []
    parts_pos: list[np.ndarray] = []

    def _add(
        lines: np.ndarray,
        kind: int,
        read_v: np.ndarray,
        proc_v: np.ndarray,
        pos: np.ndarray,
    ) -> None:
        parts_lines.append(lines)
        parts_kinds.append(np.full(lines.shape[0], kind, dtype=np.uint8))
        parts_read.append(read_v)
        parts_proc.append(proc_v)
        parts_pos.append(pos)

    minus_one = lambda k: np.full(k, -1, dtype=np.int64)  # noqa: E731

    # Offsets reads: one access per newly-entered offsets line, ordered
    # just before the vertex's first edge.
    if vertices.size:
        off_lines = space.offsets_lines(vertices)
        keep = np.ones(vertices.size, dtype=bool)
        keep[0] = int(off_lines[0]) != carry.off_line
        keep[1:] = off_lines[1:] != off_lines[:-1]
        carry.off_line = int(off_lines[-1])
        pos = offsets[vertices] * 10
        _add(off_lines[keep], Region.OFFSETS, minus_one(int(keep.sum())),
             vertices[keep], pos[keep])

    # Edge-array stream: emit on line transitions (+ optional promotion).
    if edge_indices.size:
        e_lines = space.edges_lines(edge_indices)
        keep = np.ones(edge_indices.size, dtype=bool)
        keep[0] = int(e_lines[0]) != carry.edge_line
        keep[1:] = e_lines[1:] != e_lines[:-1]
        carry.edge_line = int(e_lines[-1])
        kept_lines = e_lines[keep]
        kept_proc = processed[keep]
        kept_pos = edge_indices[keep] * 10 + 1
        _add(kept_lines, Region.EDGES, minus_one(kept_lines.size), kept_proc, kept_pos)
        if promote_sequential:
            _add(kept_lines.copy(), Region.EDGES, minus_one(kept_lines.size),
                 kept_proc.copy(), kept_pos + 1)

    # Random accesses to neighbour data: one per edge, always emitted.
    if edge_indices.size:
        if direction == "pull":
            d_lines = space.data_lines(neighbour)
        else:
            d_lines = space.out_lines(neighbour)
        _add(d_lines, random_region, neighbour.astype(np.int64), processed,
             edge_indices * 10 + 5)

    # Own-vertex data access: the Di+1[v] write in pull, the Di[v] read
    # in push; sequential either way, emitted on line transitions after
    # the vertex's last edge.
    if vertices.size:
        if direction == "pull":
            own_lines = space.out_lines(vertices)
            own_region = int(Region.VERTEX_OUT)
        else:
            own_lines = space.data_lines(vertices)
            own_region = int(Region.VERTEX_DATA)
        keep = np.ones(vertices.size, dtype=bool)
        keep[0] = int(own_lines[0]) != carry.own_line
        keep[1:] = own_lines[1:] != own_lines[:-1]
        carry.own_line = int(own_lines[-1])
        pos = offsets[vertices + 1] * 10 + 9
        _add(own_lines[keep], own_region, minus_one(int(keep.sum())),
             vertices[keep], pos[keep])

    return parts_lines, parts_kinds, parts_read, parts_proc, parts_pos


def _resolve_range(
    graph: Graph, vertex_range: tuple[int, int] | None
) -> tuple[int, int]:
    n = graph.num_vertices
    if vertex_range is None:
        return 0, n
    start, end = vertex_range
    if not (0 <= start <= end <= n):
        raise SimulationError(f"vertex_range {vertex_range} outside [0, {n}]")
    return start, end


def _empty_trace(space: AddressSpace) -> MemoryTrace:
    empty64 = np.zeros(0, dtype=np.int64)
    return MemoryTrace(empty64, np.zeros(0, dtype=np.uint8), empty64.copy(),
                       empty64.copy(), space)


def spmv_trace(
    graph: Graph,
    space: AddressSpace | None = None,
    *,
    direction: str = "pull",
    vertex_range: tuple[int, int] | None = None,
    promote_sequential: bool = True,
) -> MemoryTrace:
    """Generate the SpMV access trace of one traversal (or a slice of it).

    Parameters
    ----------
    direction:
        ``"pull"`` — CSC traversal, random *reads* of in-neighbour data
        (Algorithm 1); ``"push"`` — CSR traversal, random *writes* of
        out-neighbour data.
    vertex_range:
        Half-open ``[start, end)`` slice of the processing order; used by
        the parallel simulation to emit one trace per thread partition.
    promote_sequential:
        Emit each newly-entered sequential line twice (see module doc).
    """
    _resolve_direction(graph, direction)  # validate early
    if space is None:
        space = AddressSpace(graph.num_vertices, graph.num_edges)
    start, end = _resolve_range(graph, vertex_range)

    parts = _range_parts(
        graph, space, direction, start, end, promote_sequential, _DedupCarry()
    )
    parts_lines, parts_kinds, parts_read, parts_proc, parts_pos = parts
    if not parts_lines:
        return _empty_trace(space)

    lines = np.concatenate(parts_lines)
    kinds = np.concatenate(parts_kinds)
    read_vertex = np.concatenate(parts_read)
    proc_vertex = np.concatenate(parts_proc)
    positions = np.concatenate(parts_pos)
    order = np.argsort(positions, kind="stable")
    return MemoryTrace(
        lines=lines[order],
        kinds=kinds[order],
        read_vertex=read_vertex[order],
        proc_vertex=proc_vertex[order],
        space=space,
    )


def spmv_trace_chunks(
    graph: Graph,
    space: AddressSpace | None = None,
    *,
    direction: str = "pull",
    vertex_range: tuple[int, int] | None = None,
    promote_sequential: bool = True,
    max_accesses: int = 1 << 20,
) -> Iterator[MemoryTrace]:
    """Stream the SpMV trace as bounded :class:`MemoryTrace` blocks.

    Concatenating the yielded blocks reproduces :func:`spmv_trace` for
    the same arguments **bit-exactly**, but peak memory is O(chunk)
    instead of O(edges): each block covers a contiguous vertex
    sub-range sized to roughly ``max_accesses`` accesses.

    Two mechanisms keep the chunk seams invisible:

    1. **Dedup carry** — the sequential-stream dedup masks compare each
       chunk's first line against the previous chunk's last raw line
       (:class:`_DedupCarry`), not against nothing.
    2. **Pending buffer** — a boundary vertex's trailing accesses (its
       own-vertex write at position ``offsets[b]*10+9``, and zero-degree
       offsets reads at ``offsets[b]*10``) sort *after* the next chunk's
       first accesses.  Such accesses (position >= the next chunk's
       ``offsets[b]*10`` cut) are held back and prepended as the first
       part of the next chunk before its stable sort; ties only occur
       within one access kind, where the held-back accesses have lower
       vertex indices and part order reproduces the global tie-break.
    """
    _resolve_direction(graph, direction)  # validate early
    if space is None:
        space = AddressSpace(graph.num_vertices, graph.num_edges)
    start, end = _resolve_range(graph, vertex_range)
    if max_accesses <= 0:
        raise SimulationError(f"max_accesses must be positive, got {max_accesses}")
    if start == end:
        return

    adj, _ = _resolve_direction(graph, direction)
    offsets = adj.offsets
    # ~3 accesses per edge (edge read + promotion + random) dominates; a
    # vertex budget bounds chunks over long zero-degree runs.
    edge_budget = max(1, max_accesses // 3)
    vertex_budget = max(1, max_accesses // 2)

    carry = _DedupCarry()
    pend_lines = np.zeros(0, dtype=np.int64)
    pend_kinds = np.zeros(0, dtype=np.uint8)
    pend_read = np.zeros(0, dtype=np.int64)
    pend_proc = np.zeros(0, dtype=np.int64)
    pend_pos = np.zeros(0, dtype=np.int64)

    a = start
    while a < end:
        b = int(
            np.searchsorted(offsets, int(offsets[a]) + edge_budget, side="right")
        ) - 1
        b = min(max(b, a + 1), end, a + vertex_budget)

        parts = _range_parts(
            graph, space, direction, a, b, promote_sequential, carry
        )
        parts_lines, parts_kinds, parts_read, parts_proc, parts_pos = parts
        # The pending part goes *first* so the stable sort puts held-back
        # accesses ahead of this chunk's on position ties (lower indices).
        parts_lines.insert(0, pend_lines)
        parts_kinds.insert(0, pend_kinds)
        parts_read.insert(0, pend_read)
        parts_proc.insert(0, pend_proc)
        parts_pos.insert(0, pend_pos)

        lines = np.concatenate(parts_lines)
        kinds = np.concatenate(parts_kinds)
        read_vertex = np.concatenate(parts_read)
        proc_vertex = np.concatenate(parts_proc)
        positions = np.concatenate(parts_pos)
        order = np.argsort(positions, kind="stable")
        lines = lines[order]
        kinds = kinds[order]
        read_vertex = read_vertex[order]
        proc_vertex = proc_vertex[order]
        positions = positions[order]

        if b < end:
            # Hold back the sorted suffix at positions >= the next
            # chunk's first possible position.
            cut = int(offsets[b]) * 10
            emit = int(np.searchsorted(positions, cut, side="left"))
        else:
            emit = lines.shape[0]
        pend_lines = lines[emit:]
        pend_kinds = kinds[emit:]
        pend_read = read_vertex[emit:]
        pend_proc = proc_vertex[emit:]
        pend_pos = positions[emit:]

        if emit:
            yield MemoryTrace(
                lines=lines[:emit],
                kinds=kinds[:emit],
                read_vertex=read_vertex[:emit],
                proc_vertex=proc_vertex[:emit],
                space=space,
            )
        a = b


def concatenate_traces(
    traces: "Iterable[MemoryTrace]", *, total_length: int | None = None
) -> MemoryTrace:
    """Join traces back-to-back (they must share an address space).

    Accepts any iterable — in particular the :func:`spmv_trace_chunks`
    generator — and, when ``total_length`` is given (e.g. derived from
    :func:`repro.sim.parallel.partition_edge_counts`), fills pre-sized
    output arrays chunk by chunk.  That caps peak memory at the output
    plus one chunk, where the old list-of-arrays concatenation held
    every input *and* the output alive at the copy moment.
    """
    if total_length is None:
        materialized = traces if isinstance(traces, list) else list(traces)
        if not materialized:
            raise SimulationError("cannot concatenate zero traces")
        space = materialized[0].space
        if any(t.space is not space and t.space != space for t in materialized):
            raise SimulationError("traces use different address spaces")
        return MemoryTrace(
            lines=np.concatenate([t.lines for t in materialized]),
            kinds=np.concatenate([t.kinds for t in materialized]),
            read_vertex=np.concatenate([t.read_vertex for t in materialized]),
            proc_vertex=np.concatenate([t.proc_vertex for t in materialized]),
            space=space,
        )

    if total_length < 0:
        raise SimulationError(f"total_length must be >= 0, got {total_length}")
    lines = np.empty(total_length, dtype=np.int64)
    kinds = np.empty(total_length, dtype=np.uint8)
    read_vertex = np.empty(total_length, dtype=np.int64)
    proc_vertex = np.empty(total_length, dtype=np.int64)
    filled = 0
    space = None
    # One iteration per *chunk*, not per access — the per-element work
    # stays inside the vectorized slice assignments below.
    for t in iter(traces):  # repro-lint: disable=RL003
        if space is None:
            space = t.space
        elif t.space is not space and t.space != space:
            raise SimulationError("traces use different address spaces")
        k = len(t)
        if filled + k > total_length:
            raise SimulationError(
                f"traces overflow total_length={total_length} at {filled + k}"
            )
        lines[filled : filled + k] = t.lines
        kinds[filled : filled + k] = t.kinds
        read_vertex[filled : filled + k] = t.read_vertex
        proc_vertex[filled : filled + k] = t.proc_vertex
        filled += k
    if space is None:
        raise SimulationError("cannot concatenate zero traces")
    if filled != total_length:
        raise SimulationError(
            f"traces provided {filled} accesses, expected total_length={total_length}"
        )
    return MemoryTrace(
        lines=lines,
        kinds=kinds,
        read_vertex=read_vertex,
        proc_vertex=proc_vertex,
        space=space,
    )
