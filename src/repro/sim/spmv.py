"""Functional SpMV engine (Algorithm 1 of the paper).

This is the *semantic* side of the traversal: it computes the actual
vector values, independent of the memory simulation.  Its key role in
the reproduction is as a correctness oracle — the SpMV result must be
invariant under any valid relabeling, which property-tests validate for
every reordering algorithm.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.graph.graph import Graph

__all__ = ["spmv_pull", "spmv_push", "spmv_iterations", "pagerank"]


def spmv_pull(graph: Graph, data: np.ndarray) -> np.ndarray:
    """One pull iteration: ``out[v] = sum of data[u] over in-neighbours u``."""
    data = _check_data(graph, data)
    sources = graph.in_adj.targets  # CSC enumerates in-neighbours
    owners = graph.in_adj.edge_sources()
    return np.bincount(owners, weights=data[sources], minlength=graph.num_vertices)


def spmv_push(graph: Graph, data: np.ndarray) -> np.ndarray:
    """One push iteration: every vertex adds its data to its out-neighbours.

    Numerically identical to :func:`spmv_pull`; the difference is purely
    in the memory access pattern, which :mod:`repro.sim.trace` models.
    """
    data = _check_data(graph, data)
    owners = graph.out_adj.edge_sources()
    targets = graph.out_adj.targets
    return np.bincount(targets, weights=data[owners], minlength=graph.num_vertices)


def spmv_iterations(
    graph: Graph, data: np.ndarray, iterations: int, *, direction: str = "pull"
) -> np.ndarray:
    """Run several SpMV iterations, returning the final vector."""
    if iterations < 0:
        raise SimulationError(f"negative iteration count: {iterations}")
    step = spmv_pull if direction == "pull" else spmv_push
    if direction not in ("pull", "push"):
        raise SimulationError(f"direction must be 'pull' or 'push', got {direction!r}")
    current = np.asarray(data, dtype=np.float64)
    for _ in range(iterations):
        current = step(graph, current)
    return current


def pagerank(
    graph: Graph,
    *,
    damping: float = 0.85,
    iterations: int = 20,
    tolerance: float = 1e-10,
) -> np.ndarray:
    """Power-iteration PageRank built on the pull SpMV kernel.

    One of the SpMV-underpinned analytics the paper lists (Section II-B);
    used by the examples as a realistic workload.
    """
    n = graph.num_vertices
    if n == 0:
        return np.zeros(0, dtype=np.float64)
    out_deg = graph.out_degrees().astype(np.float64)
    dangling = out_deg == 0
    safe_deg = np.where(dangling, 1.0, out_deg)
    rank = np.full(n, 1.0 / n, dtype=np.float64)
    for _ in range(iterations):
        contrib = rank / safe_deg
        contrib[dangling] = 0.0
        incoming = spmv_pull(graph, contrib)
        dangling_mass = rank[dangling].sum() / n
        new_rank = (1.0 - damping) / n + damping * (incoming + dangling_mass)
        if np.abs(new_rank - rank).sum() < tolerance:
            return new_rank
        rank = new_rank
    return rank


def _check_data(graph: Graph, data: np.ndarray) -> np.ndarray:
    data = np.asarray(data, dtype=np.float64)
    if data.shape != (graph.num_vertices,):
        raise SimulationError(
            f"vertex data must have shape ({graph.num_vertices},), got {data.shape}"
        )
    return data
