"""Parallel traversal modelling: partitioning and trace interleaving.

The paper's environment processes edge-balanced graph partitions with
work stealing (Section III-B), and its parallel cache simulation logs
accesses per thread and then "divides execution duration between
threads where for each interval a thread simulates all logged accesses
by parallel threads in a round robin way" (Section V-B).  This module
implements both halves: contiguous edge-balanced vertex partitions, and
round-robin interval interleaving of per-thread traces into the single
stream the shared-cache simulator consumes.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.errors import SimulationError
from repro.graph.graph import Graph
from repro.sim.trace import MemoryTrace

__all__ = [
    "edge_balanced_partitions",
    "interleave_stream",
    "interleave_traces",
    "partition_edge_counts",
]


def edge_balanced_partitions(graph: Graph, num_parts: int, *, direction: str = "pull") -> np.ndarray:
    """Contiguous vertex ranges with roughly equal edge counts.

    Returns ``num_parts + 1`` boundaries; partition ``p`` is the vertex
    range ``[boundaries[p], boundaries[p + 1])``.  Balancing follows the
    edge-balanced partitioning of GraphGrind cited by the paper.
    """
    if num_parts <= 0:
        raise SimulationError(f"num_parts must be positive, got {num_parts}")
    adj = graph.in_adj if direction == "pull" else graph.out_adj
    if direction not in ("pull", "push"):
        raise SimulationError(f"direction must be 'pull' or 'push', got {direction!r}")
    total_edges = adj.num_edges
    targets = np.arange(1, num_parts, dtype=np.float64) * total_edges / num_parts
    cuts = np.searchsorted(adj.offsets, targets, side="left")
    boundaries = np.empty(num_parts + 1, dtype=np.int64)
    boundaries[0] = 0
    boundaries[1:-1] = np.minimum(cuts, graph.num_vertices)
    boundaries[-1] = graph.num_vertices
    return np.maximum.accumulate(boundaries)


def partition_edge_counts(graph: Graph, boundaries: np.ndarray, *, direction: str = "pull") -> np.ndarray:
    """Edges per partition for the given boundaries."""
    adj = graph.in_adj if direction == "pull" else graph.out_adj
    return np.diff(adj.offsets[boundaries])


def interleave_traces(
    traces: list[MemoryTrace], interval: int
) -> tuple[MemoryTrace, np.ndarray]:
    """Merge per-thread traces round-robin in blocks of ``interval``.

    Thread 0 contributes its first ``interval`` accesses, then thread 1,
    ... wrapping around until every trace is drained (threads that run
    out simply stop contributing, like a thread that finished early).

    Returns the merged trace plus a per-access thread-ID array.
    """
    if not traces:
        raise SimulationError("need at least one trace to interleave")
    if interval <= 0:
        raise SimulationError(f"interval must be positive, got {interval}")
    num_threads = len(traces)
    lengths = [len(t) for t in traces]

    # Sort key: (round, thread). Stable argsort keeps within-round,
    # within-thread program order.
    rounds = np.concatenate(
        [np.arange(length, dtype=np.int64) // interval for length in lengths]
    )
    threads = np.concatenate(
        [np.full(length, t, dtype=np.int64) for t, length in enumerate(lengths)]
    )
    order = np.argsort(rounds * num_threads + threads, kind="stable")

    merged = MemoryTrace(
        lines=np.concatenate([t.lines for t in traces])[order],
        kinds=np.concatenate([t.kinds for t in traces])[order],
        read_vertex=np.concatenate([t.read_vertex for t in traces])[order],
        proc_vertex=np.concatenate([t.proc_vertex for t in traces])[order],
        space=traces[0].space,
    )
    return merged, threads[order]


def interleave_stream(
    sources: "list[Iterable[MemoryTrace]]",
    interval: int,
    *,
    batch_accesses: int = 1 << 20,
) -> Iterator[tuple[MemoryTrace, np.ndarray]]:
    """Streaming :func:`interleave_traces`: merge per-thread *chunk streams*.

    Each source is an iterable of :class:`MemoryTrace` blocks (typically
    :func:`repro.sim.trace.spmv_trace_chunks` over one thread partition).
    Yields ``(merged_chunk, thread_ids)`` pairs whose concatenation is
    **bit-identical** to ``interleave_traces(materialized, interval)``,
    while only ever buffering ~``batch_accesses`` accesses.

    Correctness hinges on emitting only *complete rounds*: a batch
    contains every access with round index below ``r_safe`` — the
    minimum of ``(consumed + buffered) // interval`` over threads whose
    stream may still produce more accesses.  Threads that finished early
    also emit at most up to ``r_safe`` rounds, because their remaining
    accesses belong to later rounds that slower threads must fill first.
    Within a batch the merge key (``round * num_threads + thread``,
    stable sort, thread-order concatenation) matches the reference
    exactly, so each batch is a contiguous slice of the reference output.
    """
    if not sources:
        raise SimulationError("need at least one trace stream to interleave")
    if interval <= 0:
        raise SimulationError(f"interval must be positive, got {interval}")
    if batch_accesses <= 0:
        raise SimulationError(f"batch_accesses must be positive, got {batch_accesses}")
    num_threads = len(sources)
    streams = [iter(s) for s in sources]
    alive = [True] * num_threads
    # Per-thread buffer of (lines, kinds, read_vertex, proc_vertex) blocks.
    bufs: list[list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]] = [
        [] for _ in range(num_threads)
    ]
    buffered = [0] * num_threads
    consumed = [0] * num_threads
    space = None

    def _pull(t: int) -> None:
        nonlocal space
        try:
            chunk = next(streams[t])
        except StopIteration:
            alive[t] = False
            return
        if space is None:
            space = chunk.space
        if len(chunk):
            bufs[t].append((chunk.lines, chunk.kinds, chunk.read_vertex, chunk.proc_vertex))
            buffered[t] += len(chunk)

    def _take(t: int, want: int) -> list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
        taken: list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
        left = want
        while left > 0:
            block = bufs[t][0]
            size = block[0].shape[0]
            if size <= left:
                taken.append(bufs[t].pop(0))
                left -= size
            else:
                taken.append(tuple(arr[:left] for arr in block))  # type: ignore[arg-type]
                bufs[t][0] = tuple(arr[left:] for arr in block)  # type: ignore[assignment]
                left = 0
        buffered[t] -= want
        return taken

    # Each alive thread is topped up to >= one interval past the current
    # round frontier, so r_safe strictly advances every iteration and the
    # loop terminates once all streams drain.
    target = max(interval, batch_accesses // num_threads)
    while True:
        for t in range(num_threads):
            while alive[t] and buffered[t] < target:
                _pull(t)
        if any(alive):
            r_safe = min(
                (consumed[t] + buffered[t]) // interval
                for t in range(num_threads)
                if alive[t]
            )
            counts = [
                min(buffered[t], max(0, r_safe * interval - consumed[t]))
                for t in range(num_threads)
            ]
        else:
            counts = list(buffered)
        total = sum(counts)
        if total == 0:
            if not any(alive):
                return
            continue

        part_arrays: list[list[np.ndarray]] = [[], [], [], []]
        rounds_parts: list[np.ndarray] = []
        threads_parts: list[np.ndarray] = []
        for t in range(num_threads):
            k = counts[t]
            if not k:
                continue
            local = consumed[t] + np.arange(k, dtype=np.int64)
            rounds_parts.append(local // interval)
            threads_parts.append(np.full(k, t, dtype=np.int64))
            for blk in _take(t, k):
                for slot, arr in zip(part_arrays, blk):
                    slot.append(arr)
            consumed[t] += k
        rounds = np.concatenate(rounds_parts)
        threads = np.concatenate(threads_parts)
        order = np.argsort(rounds * num_threads + threads, kind="stable")
        assert space is not None
        yield (
            MemoryTrace(
                lines=np.concatenate(part_arrays[0])[order],
                kinds=np.concatenate(part_arrays[1])[order],
                read_vertex=np.concatenate(part_arrays[2])[order],
                proc_vertex=np.concatenate(part_arrays[3])[order],
                space=space,
            ),
            threads[order],
        )
        if not any(alive) and not any(buffered):
            return
