"""Parallel traversal modelling: partitioning and trace interleaving.

The paper's environment processes edge-balanced graph partitions with
work stealing (Section III-B), and its parallel cache simulation logs
accesses per thread and then "divides execution duration between
threads where for each interval a thread simulates all logged accesses
by parallel threads in a round robin way" (Section V-B).  This module
implements both halves: contiguous edge-balanced vertex partitions, and
round-robin interval interleaving of per-thread traces into the single
stream the shared-cache simulator consumes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.graph.graph import Graph
from repro.sim.trace import MemoryTrace

__all__ = ["edge_balanced_partitions", "interleave_traces", "partition_edge_counts"]


def edge_balanced_partitions(graph: Graph, num_parts: int, *, direction: str = "pull") -> np.ndarray:
    """Contiguous vertex ranges with roughly equal edge counts.

    Returns ``num_parts + 1`` boundaries; partition ``p`` is the vertex
    range ``[boundaries[p], boundaries[p + 1])``.  Balancing follows the
    edge-balanced partitioning of GraphGrind cited by the paper.
    """
    if num_parts <= 0:
        raise SimulationError(f"num_parts must be positive, got {num_parts}")
    adj = graph.in_adj if direction == "pull" else graph.out_adj
    if direction not in ("pull", "push"):
        raise SimulationError(f"direction must be 'pull' or 'push', got {direction!r}")
    total_edges = adj.num_edges
    targets = np.arange(1, num_parts, dtype=np.float64) * total_edges / num_parts
    cuts = np.searchsorted(adj.offsets, targets, side="left")
    boundaries = np.empty(num_parts + 1, dtype=np.int64)
    boundaries[0] = 0
    boundaries[1:-1] = np.minimum(cuts, graph.num_vertices)
    boundaries[-1] = graph.num_vertices
    return np.maximum.accumulate(boundaries)


def partition_edge_counts(graph: Graph, boundaries: np.ndarray, *, direction: str = "pull") -> np.ndarray:
    """Edges per partition for the given boundaries."""
    adj = graph.in_adj if direction == "pull" else graph.out_adj
    return np.diff(adj.offsets[boundaries])


def interleave_traces(
    traces: list[MemoryTrace], interval: int
) -> tuple[MemoryTrace, np.ndarray]:
    """Merge per-thread traces round-robin in blocks of ``interval``.

    Thread 0 contributes its first ``interval`` accesses, then thread 1,
    ... wrapping around until every trace is drained (threads that run
    out simply stop contributing, like a thread that finished early).

    Returns the merged trace plus a per-access thread-ID array.
    """
    if not traces:
        raise SimulationError("need at least one trace to interleave")
    if interval <= 0:
        raise SimulationError(f"interval must be positive, got {interval}")
    num_threads = len(traces)
    lengths = [len(t) for t in traces]

    # Sort key: (round, thread). Stable argsort keeps within-round,
    # within-thread program order.
    rounds = np.concatenate(
        [np.arange(length, dtype=np.int64) // interval for length in lengths]
    )
    threads = np.concatenate(
        [np.full(length, t, dtype=np.int64) for t, length in enumerate(lengths)]
    )
    order = np.argsort(rounds * num_threads + threads, kind="stable")

    merged = MemoryTrace(
        lines=np.concatenate([t.lines for t in traces])[order],
        kinds=np.concatenate([t.kinds for t in traces])[order],
        read_vertex=np.concatenate([t.read_vertex for t in traces])[order],
        proc_vertex=np.concatenate([t.proc_vertex for t in traces])[order],
        space=traces[0].space,
    )
    return merged, threads[order]
