"""Simulated address-space layout of an SpMV traversal.

The traversal of Algorithm 1 touches four arrays (Section II of the
paper), laid out here in one flat byte address space:

=============  =====================  ==========  =================
region         contents               elem bytes  access pattern
=============  =====================  ==========  =================
OFFSETS        CSC/CSR offsets        8           sequential
EDGES          CSC/CSR edges          4           sequential stream
VERTEX_DATA    old vertex data (Di)   8           **random reads**
VERTEX_OUT     new vertex data        8           sequential writes
=============  =====================  ==========  =================

The random reads into ``VERTEX_DATA`` are the accesses reordering
algorithms try to make local; everything else streams.  The address
space exposes *cache-line IDs* (byte address divided by the line size)
because the simulator works at line granularity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError

__all__ = ["Region", "AddressSpace"]


class Region:
    """Region codes; values index the counters produced by region_counts."""

    OFFSETS = 0
    EDGES = 1
    VERTEX_DATA = 2
    VERTEX_OUT = 3

    NAMES = ("offsets", "edges", "vertex_data", "vertex_out")
    COUNT = 4


def _align_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment


@dataclass(frozen=True)
class AddressSpace:
    """Byte layout for a graph of ``num_vertices`` / ``num_edges``.

    The paper's element sizes are kept: 8-byte offsets, 4-byte edge IDs,
    8-byte vertex data (Section III-B).
    """

    num_vertices: int
    num_edges: int
    line_size: int = 64
    offsets_elem: int = 8
    edges_elem: int = 4
    data_elem: int = 8

    def __post_init__(self) -> None:
        if self.line_size <= 0 or self.line_size & (self.line_size - 1):
            raise SimulationError(f"line_size must be a power of two, got {self.line_size}")
        if self.num_vertices < 0 or self.num_edges < 0:
            raise SimulationError("negative graph dimensions")

    # -- region base addresses (line aligned so regions never share a line)

    @property
    def offsets_base(self) -> int:
        return 0

    @property
    def edges_base(self) -> int:
        size = (self.num_vertices + 1) * self.offsets_elem
        return _align_up(self.offsets_base + size, self.line_size)

    @property
    def data_base(self) -> int:
        size = self.num_edges * self.edges_elem
        return _align_up(self.edges_base + size, self.line_size)

    @property
    def out_base(self) -> int:
        size = self.num_vertices * self.data_elem
        return _align_up(self.data_base + size, self.line_size)

    @property
    def end(self) -> int:
        return _align_up(self.out_base + self.num_vertices * self.data_elem, self.line_size)

    # -- line helpers ------------------------------------------------------

    def data_lines(self, vertices: np.ndarray) -> np.ndarray:
        """Cache-line ID of ``Di[v]`` for each vertex (vectorized)."""
        vertices = np.asarray(vertices, dtype=np.int64)
        return (self.data_base + vertices * self.data_elem) // self.line_size

    def out_lines(self, vertices: np.ndarray) -> np.ndarray:
        """Cache-line ID of ``Di+1[v]`` for each vertex."""
        vertices = np.asarray(vertices, dtype=np.int64)
        return (self.out_base + vertices * self.data_elem) // self.line_size

    def offsets_lines(self, vertices: np.ndarray) -> np.ndarray:
        """Cache-line ID of ``offsets[v]``."""
        vertices = np.asarray(vertices, dtype=np.int64)
        return (self.offsets_base + vertices * self.offsets_elem) // self.line_size

    def edges_lines(self, edge_indices: np.ndarray) -> np.ndarray:
        """Cache-line ID of ``edges[i]``."""
        edge_indices = np.asarray(edge_indices, dtype=np.int64)
        return (self.edges_base + edge_indices * self.edges_elem) // self.line_size

    def vertices_per_data_line(self) -> int:
        """How many vertex-data elements share one cache line."""
        return max(1, self.line_size // self.data_elem)

    def region_of_lines(self, lines: np.ndarray) -> np.ndarray:
        """Region code of each cache-line ID (vectorized)."""
        addresses = np.asarray(lines, dtype=np.int64) * self.line_size
        regions = np.empty(addresses.shape, dtype=np.uint8)
        regions[:] = Region.OFFSETS
        regions[addresses >= self.edges_base] = Region.EDGES
        regions[addresses >= self.data_base] = Region.VERTEX_DATA
        regions[addresses >= self.out_base] = Region.VERTEX_OUT
        if addresses.size and (addresses.min() < 0 or addresses.max() >= self.end):
            raise SimulationError("cache line outside the simulated address space")
        return regions

    def region_counts(self, lines: np.ndarray) -> np.ndarray:
        """Histogram of lines per region (length ``Region.COUNT``)."""
        regions = self.region_of_lines(lines)
        return np.bincount(regions, minlength=Region.COUNT).astype(np.int64)

    def region_counts_batch(self, line_groups: "list[np.ndarray]") -> np.ndarray:
        """Region histograms for many line groups in one pass.

        Equivalent to ``np.stack([self.region_counts(g) for g in
        line_groups])`` but classifies the concatenated lines once and
        splits the histogram with a single ``bincount`` over
        ``group_id * Region.COUNT + region`` keys.  Used by the ECS
        metric, whose snapshots arrive as many small resident-line sets.
        Returns an int64 array of shape ``(len(line_groups),
        Region.COUNT)``.
        """
        num_groups = len(line_groups)
        if num_groups == 0:
            return np.zeros((0, Region.COUNT), dtype=np.int64)
        lengths = np.array([np.asarray(g).shape[0] for g in line_groups])
        total = int(lengths.sum())
        if total == 0:
            return np.zeros((num_groups, Region.COUNT), dtype=np.int64)
        all_lines = np.concatenate([np.asarray(g) for g in line_groups])
        regions = self.region_of_lines(all_lines)
        gid = np.repeat(np.arange(num_groups, dtype=np.int64), lengths)
        keys = gid * Region.COUNT + regions
        counts = np.bincount(keys, minlength=num_groups * Region.COUNT)
        return counts.reshape(num_groups, Region.COUNT).astype(np.int64)
