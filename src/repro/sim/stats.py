"""Per-access attribution of simulation outcomes to vertices.

The paper's per-degree analyses need two different attributions of each
random access (DESIGN.md §6):

* by the vertex *whose data is accessed* (``u`` in Algorithm 1) — used
  by Table III ("misses for accessing data of vertices with degree >
  M"), where the relevant degree is how often ``u``'s data is read,
  i.e. its out-degree in a pull traversal;
* by the vertex *being processed* (``v``) — used by the Figure 1 miss
  rate distributions, where processing a high-in-degree vertex requires
  many random reads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.sim.address_space import Region
from repro.sim.trace import MemoryTrace

__all__ = ["VertexAccessStats", "attribute_random_accesses"]


@dataclass(frozen=True)
class VertexAccessStats:
    """Random-access and miss counts per vertex under one attribution."""

    accesses: np.ndarray
    misses: np.ndarray

    def miss_rate(self) -> np.ndarray:
        """Per-vertex miss rate; NaN where a vertex got no accesses."""
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(
                self.accesses > 0, self.misses / self.accesses, np.nan
            )

    @property
    def total_accesses(self) -> int:
        return int(self.accesses.sum())

    @property
    def total_misses(self) -> int:
        return int(self.misses.sum())


def attribute_random_accesses(
    trace: MemoryTrace,
    hits: np.ndarray,
    num_vertices: int,
    *,
    by: str = "read",
    random_region: int = Region.VERTEX_DATA,
) -> VertexAccessStats:
    """Aggregate the trace's random accesses per vertex.

    Parameters
    ----------
    by:
        ``"read"`` attributes each random access to the vertex whose
        data is touched; ``"proc"`` to the vertex being processed.
    random_region:
        Region whose accesses count as random (``VERTEX_DATA`` for pull
        traces, ``VERTEX_OUT`` for push traces).
    """
    hits = np.asarray(hits)
    if hits.shape[0] != len(trace):
        raise SimulationError("hits array length must match the trace")
    mask = trace.kinds == random_region
    if by == "read":
        vertices = trace.read_vertex[mask]
    elif by == "proc":
        vertices = trace.proc_vertex[mask]
    else:
        raise SimulationError(f"attribution must be 'read' or 'proc', got {by!r}")
    if vertices.size and vertices.min() < 0:
        raise SimulationError("random access without vertex attribution")
    miss = 1 - hits[mask].astype(np.int64)
    accesses = np.bincount(vertices, minlength=num_vertices).astype(np.int64)
    misses = np.bincount(vertices, weights=miss, minlength=num_vertices).astype(np.int64)
    return VertexAccessStats(accesses=accesses, misses=misses)
