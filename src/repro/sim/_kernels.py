"""Vectorized set-partitioned cache-simulation kernels.

The reference simulator in :mod:`repro.sim.cache` replays one access at a
time against lists-of-lists state — exact, readable, and slow (~1 µs per
access).  This module replays the same trace with NumPy array state and is
bit-exact with the reference for every policy: same hit bits, same
snapshots, same PSEL / access-position state after chained ``simulate``
calls.

Architecture (see DESIGN.md for the long version):

1.  **Set partitioning.**  Accesses to different cache sets never share
    tag/RRPV state, so the trace is grouped by set index with one stable
    argsort (int16 keys hit NumPy's radix sort).  Tags are stored
    compressed as ``line // num_sets`` — the set index is implicit — which
    usually fits int16 and halves compare bandwidth.

2.  **Run dedup.**  Consecutive accesses to the same line *within a set
    stream* are guaranteed hits that consume no BRRIP draw and no PSEL
    update; for RRIP policies a run of length ≥ 2 leaves the line at
    RRPV 0, equivalent to inserting the head of the run with RRPV 0.
    The kernel therefore simulates only run heads and force-fills hits
    for the tail — exact, and 25–60 % fewer simulated accesses on real
    SpMV traces.

3.  **Chunked lockstep replay.**  Each set stream is split into chunks of
    ``chunk_len`` accesses; every (set, chunk) pair becomes one *stream*,
    one column of a padded ``(chunk_len, num_streams)`` matrix.  One
    Python-level loop over rows then steps thousands of streams at once
    with O(10) NumPy ops per step.

4.  **Exact LRU chunk entries via a prefix scan.**  LRU state after a
    sequence is exactly the last ``ways`` distinct lines touched, in
    recency order.  That summary is a monoid (concatenate, keep last
    occurrence of each line, truncate), so per-chunk summaries — read off
    the tail of each chunk — combine into exact chunk-entry states with a
    segmented Hillis–Steele scan in ``log2(chunks)`` vectorized rounds.
    LRU therefore needs a *single* lockstep pass.  No iteration.

5.  **Fixed-point iteration for SRRIP/BRRIP/DRRIP.**  RRIP state does not
    form a compact monoid, so the kernel guesses chunk-entry states,
    replays all streams in lockstep, then propagates corrected exits and
    re-simulates only the *dirty* streams until nothing changes.  Any
    fixed point of that process equals the sequential reference replay
    (induction on the first differing program position: its set's entry
    state and insertion inputs match the reference, so the kernel would
    have produced the reference outcome there).  Convergence is typically
    2 full passes plus a sparse tail; a work budget bounds pathological
    cases, falling back to the reference loop (observable through the
    ``sim.kernel_fallback`` counter and a one-shot warning).

6.  **Per-access insertion draws.**  BRRIP's bimodal draw for the access
    at lifetime position ``p`` is the counter-hash ``_draws.long_insert
    (key, p)`` — a pure function of the seed and ``p``, never of the
    hit/miss history (:mod:`repro.sim._draws`).  A flipped hit bit
    therefore reassigns **no** later draw, so BRRIP's insertion RRPVs
    are known *before* replay and BRRIP drops into exactly the SRRIP
    fixed point.  DRRIP layers set dueling on top: leader-set insertions
    are fixed by role (+ the per-access draw for BRRIP leaders), and
    follower insertions read the PSEL trajectory — a pure function of
    the *leader* heads' miss bits, reconstructed with an exact parallel
    prefix scan over clamp-add compositions (``_saturating_walk``) and
    reduced to a *crossing signature*: the initial sign of ``PSEL >=
    INIT`` plus the program positions where that sign flips.  A pass
    recomputes the trajectory only when leader miss bits changed, and
    rematerializes insertion values only when the signature moved;
    leader bits typically jiggle for a few passes without moving any
    crossing, so the recompute is usually skipped entirely.  This
    locality is what makes the DRRIP fixed point converge where the old
    global miss-rank draw consumption kept it in a limit cycle (see
    DESIGN.md §7 for the history).  Auto dispatch still declines
    BRRIP/DRRIP on set-skewed traces (``_RRIP_MIN_DENSITY``): ripple
    corrections travel one chunk per pass, so fixed-point cost tracks
    the busiest set's access count while the reference loop tracks n.

Everything here treats the cache's canonical list state as the interface:
arrays in, arrays out, with conversion at the boundary, so kernel and
reference calls can interleave on the same cache object bit-exactly.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.lint.contracts import declares_effects
from repro.obs import metrics as _obs_metrics
from repro.obs import span as _obs_span
from repro.sim import _draws

if TYPE_CHECKING:  # pragma: no cover - cache.py imports this module
    from repro.sim.cache import CacheConfig, SetAssociativeCache

__all__ = [
    "kernel_mode",
    "kernel_supported",
    "kernel_simulate",
]

_RRPV_MAX = 3
_PSEL_MAX = 1023
_PSEL_INIT = 512

MODE_ENV = "REPRO_SIM_KERNEL"
_MODES = ("auto", "kernel", "reference")

# Dispatch heuristics: below these the reference loop's ~1 µs/access beats
# the kernel's fixed grouping/padding overhead.
_MIN_ACCESSES = 8192
_MIN_SETS = 4
_MIN_SCAN_INTERVAL = 4096

# Chunking: aim for this many concurrent streams per lockstep pass
# (empirically the sweet spot between NumPy per-call overhead at small
# widths and cache pressure at large widths), never below _MIN_CHUNK rows.
_TARGET_STREAMS = 8192
_MIN_CHUNK = 32

# Fixed-point work budget, in units of full-pass work (RRIP family only).
_PASS_BUDGET = 12

# RRIP-family chunk chains are bounded so corrections (which travel one
# chunk per pass) settle within a few passes; LRU needs no bound (its
# entry states come from an exact prefix scan, not iteration).
_RRIP_MAX_CHAIN = 24

# BRRIP/DRRIP fixed-point cost scales with the busiest set's access count
# (corrections ripple one chunk per pass, each pass sweeping ~chunk_len
# rows of NumPy-call overhead), while the reference loop scales with n.
# The kernel only wins when the trace spreads wide across sets:
# empirically ~1.5x at n/max_count ~ 120, break-even near ~70, and a
# clear loss below ~60 (see BENCH_cache_kernel.json).  SRRIP is exempt:
# frequent aging forgets state quickly, so its fixed point converges in
# a handful of passes regardless of skew.
_RRIP_MIN_DENSITY = 80


@declares_effects("env-read")
def _debug_enabled() -> bool:
    """Whether fixed-point pass tracing is requested.

    Declared carve-out: the flag gates *diagnostic printing* inside the
    RRIP fixed point only — every numeric path is identical with it on
    or off, so the read cannot perturb replayed state.
    """
    return bool(os.environ.get("REPRO_SIM_KERNEL_DEBUG"))


@declares_effects("env-read")
def kernel_mode(explicit: str = "auto") -> str:
    """Resolve the dispatch mode: the env var is the escape hatch.

    Declared carve-out: the env var only selects *which* bit-exact
    implementation runs — kernels and the reference loop are lockstep
    twins, so the read can never change simulated state or artifacts.
    """
    env = os.environ.get(MODE_ENV, "").strip().lower()
    if env in _MODES:
        return env
    if explicit in _MODES:
        return explicit
    raise SimulationError(
        f"unknown kernel mode {explicit!r}; expected one of {_MODES}"
    )


def kernel_possible(config: CacheConfig, lines: np.ndarray) -> bool:
    """Hard requirements: can the kernel replay this call at all?"""
    if config.policy not in ("lru", "srrip", "brrip", "drrip"):
        return False
    if config.ways > _MIN_CHUNK:
        return False
    n = lines.shape[0]
    if n == 0:
        return False
    if int(lines.min()) < 0:
        return False
    return True


def kernel_profitable(
    config: CacheConfig, lines: np.ndarray, scan_interval: int
) -> bool:
    """Size heuristics: is the kernel path likely to beat the reference?"""
    if lines.shape[0] < _MIN_ACCESSES:
        return False
    if config.num_sets < _MIN_SETS:
        return False
    if scan_interval and scan_interval < _MIN_SCAN_INTERVAL:
        return False
    if config.policy in ("brrip", "drrip"):
        # Skew guard: the bimodal fixed point pays ~max_count rows of
        # ripple regardless of chunking, so a trace concentrated on few
        # sets converges slower than the reference loop replays it.
        max_count = int(np.bincount(lines % config.num_sets).max())
        if lines.shape[0] < _RRIP_MIN_DENSITY * max_count:
            return False
    return True


def kernel_supported(
    config: CacheConfig, lines: np.ndarray, scan_interval: int
) -> bool:
    """Is the kernel path worthwhile (and valid) for this simulate call?"""
    return kernel_possible(config, lines) and kernel_profitable(
        config, lines, scan_interval
    )


# ---------------------------------------------------------------------------
# State conversion: canonical list state <-> arrays
# ---------------------------------------------------------------------------


def _state_arrays(cache: SetAssociativeCache) -> Tuple[np.ndarray, np.ndarray]:
    """Cache list state -> (tags, rrpv) int64/int8 arrays, (num_sets, ways).

    Tags hold *compressed* values ``line // num_sets`` (-1 for invalid).
    For LRU the way axis is recency order (way 0 = LRU), matching the
    reference list layout; for RRIP it is positional.
    """
    num_sets = cache.config.num_sets
    tags = np.asarray(cache._tags, dtype=np.int64)
    rrpv = np.asarray(cache._rrpv, dtype=np.int8)
    comp = np.where(tags >= 0, tags // num_sets, -1)
    return comp, rrpv


def _write_state(
    cache: SetAssociativeCache, tags: np.ndarray, rrpv: Optional[np.ndarray]
) -> None:
    num_sets = cache.config.num_sets
    sets = np.arange(num_sets, dtype=np.int64)[:, None]
    lines = np.where(tags >= 0, tags.astype(np.int64) * num_sets + sets, -1)
    cache._tags = lines.tolist()
    if rrpv is not None:
        cache._rrpv = rrpv.astype(np.int64).tolist()


def _resident_from_state(tags: np.ndarray, num_sets: int) -> np.ndarray:
    """Match ``SetAssociativeCache.resident_lines`` byte-for-byte."""
    sets = np.arange(num_sets, dtype=np.int64)[:, None]
    lines = tags.astype(np.int64) * num_sets + sets
    return lines[tags >= 0]


# ---------------------------------------------------------------------------
# Trace preparation: grouping, dedup, stream tables
# ---------------------------------------------------------------------------


class _Streams:
    """Per-segment stream table shared by all policies."""

    __slots__ = (
        "n", "nd", "order", "keep", "didx", "run2", "head_prog",
        "ded_sets", "counts_d", "chunk_len", "nchunks", "stream_base",
        "num_streams", "sm_set", "sm_chunk", "sm_len", "col_of", "colperm",
        "lens_desc", "steps", "pos_flat", "tag_dtype", "ded_tags",
        "set_start",
    )

    n: int
    nd: int
    order: np.ndarray
    keep: np.ndarray
    didx: np.ndarray
    run2: np.ndarray
    head_prog: np.ndarray
    ded_sets: np.ndarray
    counts_d: np.ndarray
    chunk_len: int
    nchunks: np.ndarray
    stream_base: np.ndarray
    num_streams: int
    sm_set: np.ndarray
    sm_chunk: np.ndarray
    sm_len: np.ndarray
    col_of: np.ndarray
    colperm: np.ndarray
    lens_desc: np.ndarray
    steps: List[int]
    pos_flat: np.ndarray
    tag_dtype: type
    ded_tags: np.ndarray
    set_start: np.ndarray


def _build_streams(
    lines: np.ndarray, num_sets: int, max_chain: Optional[int] = None
) -> _Streams:
    st = _Streams()
    n = lines.shape[0]
    st.n = n

    # Power-of-two geometries (the common case) take the shift/mask path;
    # int64 mod/div over the whole trace is one of the larger fixed costs.
    pow2 = num_sets & (num_sets - 1) == 0
    if num_sets <= 1:
        sets_full = np.zeros(n, dtype=np.int64)
        tags_full = lines
    elif pow2:
        shift = num_sets.bit_length() - 1
        sets_full = lines & (num_sets - 1)
        tags_full = lines >> shift
    else:
        sets_full = lines % num_sets
        tags_full = lines // num_sets
    if num_sets <= (1 << 15):
        sets = sets_full.astype(np.int16)
    else:
        sets = sets_full.astype(np.int32)

    max_tag = int(lines.max()) // num_sets if n else 0
    tag_dtype = np.int16 if max_tag < (1 << 15) - 1 else np.int32
    st.tag_dtype = tag_dtype
    tags_of = tags_full.astype(tag_dtype)

    # Stable sort on narrow keys selects NumPy's radix sort.
    order = np.argsort(sets, kind="stable")
    st.order = order
    sorted_tags = tags_of[order]
    sorted_sets = sets[order]

    # Run dedup: equal lines are always in the same set, so adjacent equal
    # (set, tag) pairs in the sorted stream are consecutive same-line
    # accesses of one set stream.
    keep = np.empty(n, dtype=bool)
    if n:
        keep[0] = True
        np.logical_or(
            sorted_tags[1:] != sorted_tags[:-1],
            sorted_sets[1:] != sorted_sets[:-1],
            out=keep[1:],
        )
    st.keep = keep
    didx = np.cumsum(keep, dtype=np.int64) - 1
    st.didx = didx
    heads = np.flatnonzero(keep)
    nd = heads.shape[0]
    st.nd = nd
    run_len = np.diff(np.append(heads, n))
    st.run2 = run_len >= 2
    st.head_prog = order[heads]
    st.ded_tags = sorted_tags[heads]
    ded_sets = sorted_sets[heads].astype(np.int64)
    st.ded_sets = ded_sets

    counts_d = np.bincount(ded_sets, minlength=num_sets)
    st.counts_d = counts_d
    max_count = int(counts_d.max()) if num_sets else 0

    chunk_len = max(_MIN_CHUNK, -(-nd // _TARGET_STREAMS))
    if max_chain is not None and max_count:
        # RRIP-family fixed-point convergence walks corrections down each
        # set's chunk chain; bound the chain length so chunks are long
        # enough to "forget" their speculative entry state.
        chunk_len = max(chunk_len, -(-max_count // max_chain))
    st.chunk_len = chunk_len
    nchunks = -(-counts_d // chunk_len)
    st.nchunks = nchunks
    stream_base = np.concatenate(([0], np.cumsum(nchunks)))
    st.stream_base = stream_base
    T = int(stream_base[-1])
    st.num_streams = T

    sm_set = np.repeat(np.arange(num_sets, dtype=np.int64), nchunks)
    st.sm_set = sm_set
    sm_chunk = np.arange(T, dtype=np.int64) - stream_base[sm_set]
    st.sm_chunk = sm_chunk
    sm_len = np.minimum(chunk_len, counts_d[sm_set] - sm_chunk * chunk_len)
    st.sm_len = sm_len

    # Column order: longest streams first, so the active streams at row k
    # are exactly the first A_per_step[k] columns.
    colperm = np.argsort(-sm_len, kind="stable")
    st.colperm = colperm
    col_of = np.empty(T, dtype=np.int64)
    col_of[colperm] = np.arange(T, dtype=np.int64)
    st.col_of = col_of
    lens_desc = sm_len[colperm]
    st.lens_desc = lens_desc
    st.steps = np.searchsorted(
        -lens_desc, -(np.arange(chunk_len, dtype=np.int64) + 1), side="right"
    ).tolist()

    # Flat (row-major) index of every deduped access in the padded
    # (chunk_len, T) matrices: reused for the P/I scatters and H gather.
    set_start_d = np.concatenate(([0], np.cumsum(counts_d)))
    st.set_start = set_start_d
    rank = np.arange(nd, dtype=np.int64) - set_start_d[ded_sets]
    stream_sm = stream_base[ded_sets] + rank // chunk_len
    row = rank % chunk_len
    st.pos_flat = row * T + col_of[stream_sm]
    return st


def _pad_matrix(st: _Streams, values: np.ndarray, fill: int, dtype: type) -> np.ndarray:
    M = np.full((st.chunk_len, st.num_streams), fill, dtype=dtype)
    M.ravel()[st.pos_flat] = values
    return M


# ---------------------------------------------------------------------------
# LRU recency summaries and the segmented merge scan
# ---------------------------------------------------------------------------


def _merge_recency(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Row-wise LRU-summary monoid combine.

    Rows of ``A`` and ``B`` are recency lists (-1-padded at the LRU front,
    most-recent last).  Result row = last ``ways`` distinct entries of
    ``concat(A_row, B_row)``, keeping the *last* occurrence of each value.
    """
    ways = A.shape[1]
    C = np.concatenate((A, B), axis=1)
    w2 = C.shape[1]
    # keep[j]: valid and not repeated later in the row.
    dup_later = np.zeros(C.shape, dtype=bool)
    eqm = C[:, :, None] == C[:, None, :]
    tri = np.triu(np.ones((w2, w2), dtype=bool), k=1)
    np.any(eqm & tri[None, :, :], axis=2, out=dup_later)
    keep = (C != -1) & ~dup_later
    idx = np.argsort(keep, axis=1, kind="stable")  # kept entries sort last
    tail = idx[:, -ways:]
    out = np.take_along_axis(C, tail, axis=1)
    kept = np.take_along_axis(keep, tail, axis=1)
    out[~kept] = -1
    return out


def _chunk_summaries(
    st: _Streams, P: np.ndarray, ways: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact per-stream summary R(chunk): last ``ways`` distinct tags.

    Computed from a suffix window of each chunk, doubling the window for
    the rare streams whose tail has fewer than ``ways`` distinct lines.
    ``P``'s -1 padding doubles as "before start of stream" filler.
    Returns ``(summ, summ_row)``, both (num_streams, ways) in set-major
    stream order: the tags, and the chunk-row of each tag's *last*
    occurrence (-1 for empty slots) — the RRIP entry-guess uses the row
    to look up that occurrence's insertion value.
    """
    T = st.num_streams
    CL = st.chunk_len
    lens = st.sm_len
    cols = st.col_of
    summ = np.full((T, ways), -1, dtype=P.dtype)
    summ_row = np.full((T, ways), -1, dtype=np.int64)
    pending = np.arange(T, dtype=np.int64)
    W = min(max(2 * ways, 4), CL)
    while pending.shape[0]:
        L = lens[pending]
        off = np.maximum(0, L - W)
        rows = off[:, None] + np.arange(W, dtype=np.int64)[None, :]
        rows = np.minimum(rows, CL - 1)  # only padded (-1) rows are clamped
        C = P.ravel()[rows * T + cols[pending, None]]
        w2 = C.shape[1]
        eqm = C[:, :, None] == C[:, None, :]
        tri = np.triu(np.ones((w2, w2), dtype=bool), k=1)
        dup_later = np.any(eqm & tri[None, :, :], axis=2)
        keep = (C != -1) & ~dup_later
        count = keep.sum(axis=1)
        idx = np.argsort(keep, axis=1, kind="stable")
        tail = idx[:, -ways:]
        got = np.take_along_axis(C, tail, axis=1)
        got_row = np.take_along_axis(rows, tail, axis=1)
        kept = np.take_along_axis(keep, tail, axis=1)
        got[~kept] = -1
        got_row[~kept] = -1
        done = (count >= ways) | (off == 0)
        summ[pending[done]] = got[done]
        summ_row[pending[done]] = got_row[done]
        pending = pending[~done]
        W = min(2 * W, CL)
    return summ, summ_row


def _lru_entries(st: _Streams, P: np.ndarray, state_tags: np.ndarray,
                 ways: int) -> np.ndarray:
    """Exact LRU entry state for every stream via a segmented prefix scan.

    Returns (num_streams, ways) recency rows: entry state each chunk sees.
    """
    T = st.num_streams
    summ, _ = _chunk_summaries(st, P, ways)
    # Segmented inclusive Hillis-Steele scan of the summary monoid along
    # each set's chunk chain (chains are contiguous in set-major order).
    pref = summ.copy()
    max_chunk = int(st.sm_chunk.max(initial=0))
    d = 1
    while d <= max_chunk:
        # Rows already full cannot change (merge(X, full) == full).
        todo = np.flatnonzero((st.sm_chunk >= d) & (pref[:, 0] == -1))
        if todo.shape[0]:
            pref[todo] = _merge_recency(pref[todo - d], pref[todo])
        d <<= 1

    entries = np.empty((T, ways), dtype=P.dtype)
    first = st.sm_chunk == 0
    init = state_tags[st.sm_set].astype(P.dtype)
    entries[first] = init[first]
    later = ~first
    if np.any(later):
        entries[later] = _merge_recency(init[later], pref[np.flatnonzero(later) - 1])
    return entries


# ---------------------------------------------------------------------------
# Lockstep replay loops
# ---------------------------------------------------------------------------


def _lockstep_lru(
    P: np.ndarray,
    steps: List[int],
    tagsT: np.ndarray,
    negT: np.ndarray,
    H: np.ndarray,
) -> None:
    """One exact LRU pass over all columns. State arrays are (ways, S).

    ``negT`` holds *negated* last-use times, so one argmax yields the
    way to write: scattering a sentinel at the matched position makes
    hit columns pick their match while miss columns pick the LRU victim
    (max negated time == min time).  The sentinel needs no cleanup — the
    chosen way's time is overwritten right after, every step.
    """
    ways, S = tagsT.shape
    ar = np.arange(S, dtype=np.int64)
    tflat = tagsT.ravel()
    nflat = negT.ravel()
    big = np.iinfo(negT.dtype).max
    eqb = np.empty((ways, S), dtype=bool)
    hitb = np.empty(S, dtype=bool)
    wayb = np.empty(S, dtype=np.int64)
    for k in range(P.shape[0]):
        A = steps[k]
        if A == 0:
            break
        cur = P[k, :A]
        eq = eqb[:, :A]
        np.equal(tagsT[:, :A], cur[None, :], out=eq)
        hit = hitb[:A]
        eq.any(axis=0, out=hit)
        H[k, :A] = hit
        negT[:, :A][eq] = big
        way = wayb[:A]
        negT[:, :A].argmax(axis=0, out=way)
        way *= S
        way += ar[:A]
        tflat[way] = cur
        nflat[way] = -k


def _lockstep_rrip(
    P: np.ndarray,
    I: np.ndarray,
    steps: List[int],
    tagsT: np.ndarray,
    rrpvT: np.ndarray,
    H: np.ndarray,
) -> None:
    """One RRIP-family pass. ``I`` carries each access's insertion RRPV.

    Sentinel trick: scattering ``_RRPV_MAX + 1`` at the matching way
    makes a single RRPV argmax serve both cases — hit columns pick their
    match (the sentinel beats every legal RRPV), miss columns pick the
    victim (first way at the maximum, matching the reference's scan
    order; the uniform aging increment keeps that argmax position, so
    picking before aging is exact).  The sentinel needs no cleanup: the
    chosen way's RRPV is overwritten right after, every step, and hit
    columns age by ``max(_RRPV_MAX - sentinel, 0) == 0``.
    """
    ways, S = tagsT.shape
    ar = np.arange(S, dtype=np.int64)
    tflat = tagsT.ravel()
    rflat = rrpvT.ravel()
    zero8 = np.int8(0)
    max8 = np.int8(_RRPV_MAX)
    sent = np.int8(_RRPV_MAX + 1)
    eqb = np.empty((ways, S), dtype=bool)
    vb = np.empty(S, dtype=np.int64)
    defb = np.empty(S, dtype=np.int8)
    insb = np.empty(S, dtype=np.int8)
    for k in range(P.shape[0]):
        A = steps[k]
        if A == 0:
            break
        cur = P[k, :A]
        eq = eqb[:, :A]
        np.equal(tagsT[:, :A], cur[None, :], out=eq)
        rrpvT[:, :A][eq] = sent
        victim = vb[:A]
        rrpvT[:, :A].argmax(axis=0, out=victim)
        victim *= S
        victim += ar[:A]
        vr = rflat[victim]
        hit = vr == sent  # sentinel present iff the tag matched
        H[k, :A] = hit
        deficit = defb[:A]
        np.subtract(max8, vr, out=deficit)
        np.maximum(deficit, zero8, out=deficit)
        if deficit.any():
            rrpvT[:, :A] += deficit[None, :]
        ins = insb[:A]
        np.copyto(ins, I[k, :A])
        ins[hit] = zero8
        tflat[victim] = cur
        rflat[victim] = ins


# ---------------------------------------------------------------------------
# Program-order insertion values (BRRIP draws + DRRIP PSEL)
# ---------------------------------------------------------------------------


def _saturating_walk(p0: int, deltas: np.ndarray) -> np.ndarray:
    """PSEL trajectory: p[i] = clip(p[i-1] + deltas[i], 0, _PSEL_MAX).

    Fast path: if the raw cumulative walk never leaves the valid range the
    clamps never fire and a plain cumsum is exact.  Otherwise run an
    exact parallel prefix scan over the clamp-add functions.  Each step
    is ``f(x) = min(c, max(b, x + s))`` with ``(s, b, c) = (delta, 0,
    PSEL_MAX)``, and that family is closed under composition::

        (f_r . f_l)(x) = min(c', max(b', x + s'))
        s' = s_l + s_r
        b' = max(b_r, b_l + s_r)
        c' = min(c_r, max(b_r, c_l + s_r))

    so a Hillis-Steele doubling scan yields every prefix composition in
    ``O(n log n)`` vector work — no scalar replay however often the
    counter saturates (thrashing workloads pin PSEL at a rail for most
    of the trace, which made restart-based replays degenerate).
    """
    raw = np.cumsum(deltas, dtype=np.int64) + p0
    if raw.shape[0] == 0:
        return raw
    if 0 <= raw.min() and raw.max() <= _PSEL_MAX:
        return raw
    n = deltas.shape[0]
    s = deltas.astype(np.int64, copy=True)
    b = np.zeros(n, dtype=np.int64)
    c = np.full(n, _PSEL_MAX, dtype=np.int64)
    k = 1
    while k < n:
        s_r, b_r, c_r = s[k:], b[k:], c[k:]
        s_l, b_l, c_l = s[:-k], b[:-k], c[:-k]
        s2 = s_l + s_r
        b2 = np.maximum(b_r, b_l + s_r)
        c2 = np.minimum(c_r, np.maximum(b_r, c_l + s_r))
        s[k:], b[k:], c[k:] = s2, b2, c2
        k *= 2
    return np.minimum(c, np.maximum(b, p0 + s))


# ---------------------------------------------------------------------------
# Per-segment drivers
# ---------------------------------------------------------------------------


def _hits_program_order(st: _Streams, H: np.ndarray) -> np.ndarray:
    """Scatter padded-matrix hit bits back to program order (uint8)."""
    hit_sorted = H.ravel()[st.pos_flat][st.didx]
    np.logical_or(hit_sorted, ~st.keep, out=hit_sorted)
    hits = np.empty(st.n, dtype=np.uint8)
    hits[st.order] = hit_sorted
    return hits


def _segment_lru(
    st: _Streams, state_tags: np.ndarray, ways: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Single-pass exact LRU replay of one segment."""
    T = st.num_streams
    CL = st.chunk_len
    P = _pad_matrix(st, st.ded_tags, -1, st.tag_dtype)
    entries = _lru_entries(st, P, state_tags, ways)

    tagsT = np.ascontiguousarray(entries[st.colperm].T)
    # Negated last-use times; init way 0 (LRU front) with the largest
    # value so it is evicted first.  Values stay distinct per column.
    neg_dtype = np.int16 if CL < (1 << 15) - 1 else np.int32
    negT = np.broadcast_to(
        np.arange(ways, 0, -1, dtype=neg_dtype)[:, None], (ways, T)
    ).copy()
    H = np.zeros((CL, T), dtype=bool)
    _lockstep_lru(P, st.steps, tagsT, negT, H)

    # Final state: canonicalize only each set's last chunk back to recency
    # order (descending negated time = ascending last-use = LRU..MRU).
    has = np.flatnonzero(st.nchunks > 0)
    last_stream = st.stream_base[has] + st.nchunks[has] - 1
    cols = st.col_of[last_stream]
    order = np.argsort(negT[:, cols], axis=0, kind="stable")[::-1, :]
    out_tags = state_tags.copy()
    out_tags[has] = np.take_along_axis(tagsT[:, cols], order, axis=0).T
    return _hits_program_order(st, H), out_tags


def _segment_rrip(
    st: _Streams,
    policy: str,
    state_tags: np.ndarray,
    state_rrpv: np.ndarray,
    ways: int,
    psel0: int,
    long_ins: Optional[np.ndarray],
    role_acc: Optional[np.ndarray],
) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, int]]:
    """Fixed-point replay of one segment for srrip/brrip/drrip.

    ``long_ins`` carries the segment's per-access bimodal draws (None
    for SRRIP, which never reads them).  Returns ``(hits, out_tags,
    out_rrpv, psel)`` or ``None`` when the work budget is exhausted
    (caller falls back to the reference).
    """
    T = st.num_streams
    CL = st.chunk_len
    P = _pad_matrix(st, st.ded_tags, -1, st.tag_dtype)

    # Per-access insertion RRPVs at the deduped positions.  SRRIP inserts
    # a constant; BRRIP reads the position-keyed draw, so its I matrix is
    # exact before any replay.  DRRIP insertion values depend only on the
    # *leader* sets' miss stream (leaders vote PSEL by role, followers
    # read the reconstructed trajectory — follower misses never feed
    # back), so its insert fixed point iterates on leader hit bits alone,
    # starting from an assume-every-leader-head-misses guess.  A run of
    # length >= 2 pins its line at RRPV 0 whatever the insertion policy
    # says (the duplicate hits promote it).
    need_inserts = policy == "drrip"
    psel_final = psel0
    if policy != "srrip":
        assert long_ins is not None
        long_h = long_ins[st.head_prog]
    if policy == "srrip":
        ins_ded0 = np.full(st.nd, _RRPV_MAX - 1, dtype=np.int8)
    elif policy == "brrip":
        ins_ded0 = np.where(long_h, _RRPV_MAX - 1, _RRPV_MAX).astype(np.int8)
    else:
        assert role_acc is not None
        role_h = role_acc[st.head_prog]
        lead_sorted = np.flatnonzero(role_h != 0)
        lead_sorted = lead_sorted[
            np.argsort(st.head_prog[lead_sorted], kind="stable")
        ]
        lp_sorted = st.head_prog[lead_sorted]
        ldelta_sorted = np.where(role_h[lead_sorted] == 1, 1, -1).astype(
            np.int64
        )
        follower = role_h == 0

        def _psel_signature(
            lmiss_sorted: np.ndarray,
        ) -> Tuple[bool, np.ndarray, int]:
            """Crossing signature of the PSEL trajectory + final value.

            Follower insertions read only ``sign(PSEL >= INIT)`` at their
            position, and that sign is piecewise constant between midpoint
            crossings — so ``(initial sign, crossing positions)`` fully
            determines every insertion value.  Computing it costs O(leader
            misses), which lets the fixed-point loop skip the O(nd) insert
            materialization whenever the signature is unchanged (leader
            miss bits often jiggle without moving any crossing).
            """
            traj = _saturating_walk(psel0, ldelta_sorted[lmiss_sorted])
            sign = np.empty(traj.shape[0] + 1, dtype=bool)
            sign[0] = psel0 >= _PSEL_INIT
            np.greater_equal(traj, _PSEL_INIT, out=sign[1:])
            flips = np.flatnonzero(sign[1:] != sign[:-1])
            cross = lp_sorted[lmiss_sorted][flips]
            pf = int(traj[-1]) if traj.shape[0] else psel0
            return bool(sign[0]), cross, pf

        def _drrip_inserts(s0: bool, cross: np.ndarray) -> np.ndarray:
            """Exact per-head inserts from the PSEL crossing signature.

            A head at program position p reads PSEL after every leader
            miss strictly before p (its own vote, if any, is by role), so
            its sign is ``s0`` flipped once per crossing before p.
            """
            odd = (np.searchsorted(cross, st.head_prog, side="left") & 1) == 1
            sign_at = odd != s0  # XOR: s0 flipped (crossings % 2) times
            use_b = (role_h == 2) | (follower & sign_at)
            ins = np.full(st.nd, _RRPV_MAX - 1, dtype=np.int8)
            t = np.flatnonzero(use_b)
            ins[t] = np.where(
                long_h[t], _RRPV_MAX - 1, _RRPV_MAX
            ).astype(np.int8)
            return ins

        lmiss_prev = np.ones(lead_sorted.shape[0], dtype=bool)
        s0_prev, cross_prev, psel_final = _psel_signature(lmiss_prev)
        ins_ded0 = _drrip_inserts(s0_prev, cross_prev)
    ins_ded0[st.run2] = 0
    I = np.full((CL, T), _RRPV_MAX - 1, dtype=np.int8)
    I.ravel()[st.pos_flat] = ins_ded0
    ins_ded_prev = ins_ded0  # read only when need_inserts

    # Entry guesses: chunk 0 gets the real state; later chunks borrow the
    # previous chunk's recency summary.  For SRRIP the RRPV guess is a
    # flat RRPV-2 (frequent aging under SRRIP makes the constant insert a
    # better prior than any stale per-access value); for BRRIP/DRRIP —
    # where aging is rare, so insertion values stick — each summary tag
    # is guessed at its *last occurrence's* insertion value (0 after a
    # run of >= 2), looked up through the occurrence row the summary
    # records.
    summ, summ_row = _chunk_summaries(st, P, ways)
    ent_tags_sm = np.empty((T, ways), dtype=st.tag_dtype)
    ent_rrpv_sm = np.empty((T, ways), dtype=np.int8)
    first = st.sm_chunk == 0
    ent_tags_sm[first] = state_tags[st.sm_set[first]].astype(st.tag_dtype)
    ent_rrpv_sm[first] = state_rrpv[st.sm_set[first]]
    later = np.flatnonzero(~first)
    prev = later - 1
    ent_tags_sm[later] = summ[prev]
    if policy == "srrip":
        ent_rrpv_sm[later] = np.where(
            summ[prev] == -1, _RRPV_MAX, _RRPV_MAX - 1
        )
    else:
        valid = summ[prev] != -1
        ded = (
            st.set_start[st.sm_set[prev]][:, None]
            + st.sm_chunk[prev][:, None] * CL
            + summ_row[prev]
        )
        ded_safe = np.where(valid, ded, 0)
        ent_rrpv_sm[later] = np.where(valid, ins_ded0[ded_safe], _RRPV_MAX)

    E_tags = np.ascontiguousarray(ent_tags_sm[st.colperm].T)
    E_rrpv = np.ascontiguousarray(ent_rrpv_sm[st.colperm].T)
    X_tags = np.full((ways, T), -2, dtype=st.tag_dtype)
    X_rrpv = np.zeros((ways, T), dtype=np.int8)
    H = np.zeros((CL, T), dtype=bool)

    # Successor column of each column's stream (or -1): the next chunk of
    # the same set, mapped from set-major stream ids to column ids.
    has_next = np.flatnonzero(st.sm_chunk + 1 < st.nchunks[st.sm_set])
    succ_col = np.full(T, -1, dtype=np.int64)
    succ_col[st.col_of[has_next]] = st.col_of[has_next + 1]

    dirty = np.ones(T, dtype=bool)
    budget = _PASS_BUDGET * T
    debug = _debug_enabled()
    pass_no = 0

    while True:
        pass_no += 1
        cols = np.flatnonzero(dirty)
        budget -= cols.shape[0]
        if budget < 0:
            return None
        if cols.shape[0] == T:
            subP, subI = P, I
            sub_tags, sub_rrpv = E_tags.copy(), E_rrpv.copy()
            subH = H
            sub_steps = st.steps
        else:
            subP = P[:, cols]
            subI = I[:, cols]
            sub_tags = E_tags[:, cols].copy()
            sub_rrpv = E_rrpv[:, cols].copy()
            subH = np.zeros((CL, cols.shape[0]), dtype=bool)
            sub_lens = st.lens_desc[cols]  # cols ascending => still desc
            sub_steps = np.searchsorted(
                -sub_lens, -(np.arange(CL, dtype=np.int64) + 1), side="right"
            ).tolist()
        _lockstep_rrip(subP, subI, sub_steps, sub_tags, sub_rrpv, subH)
        if cols.shape[0] != T:
            H[:, cols] = subH

        exit_changed = np.any(sub_tags != X_tags[:, cols], axis=0)
        exit_changed |= np.any(sub_rrpv != X_rrpv[:, cols], axis=0)
        X_tags[:, cols] = sub_tags
        X_rrpv[:, cols] = sub_rrpv

        dirty = np.zeros(T, dtype=bool)
        src = cols[exit_changed]
        dst = succ_col[src]
        src, dst = src[dst >= 0], dst[dst >= 0]
        if src.shape[0]:
            entry_changed = np.any(E_tags[:, dst] != X_tags[:, src], axis=0)
            entry_changed |= np.any(E_rrpv[:, dst] != X_rrpv[:, src], axis=0)
            E_tags[:, dst] = X_tags[:, src]
            E_rrpv[:, dst] = X_rrpv[:, src]
            dirty[dst[entry_changed]] = True

        if need_inserts:
            # Inserts are a function of the leader heads' miss bits only;
            # skip the recompute entirely while those are unchanged.
            lmiss = ~H.ravel()[st.pos_flat[lead_sorted]]
            ins_chg = 0
            if not np.array_equal(lmiss, lmiss_prev):
                lmiss_prev = lmiss
                s0_new, cross_new, psel_final = _psel_signature(lmiss)
                if s0_new != s0_prev or not np.array_equal(
                    cross_new, cross_prev
                ):
                    s0_prev, cross_prev = s0_new, cross_new
                    ins_ded = _drrip_inserts(s0_new, cross_new)
                    ins_ded[st.run2] = 0
                    chg = np.flatnonzero(ins_ded != ins_ded_prev)
                    ins_chg = int(chg.shape[0])
                    if chg.shape[0]:
                        flat = st.pos_flat[chg]
                        I.ravel()[flat] = ins_ded[chg]
                        dirty[flat % T] = True
                    ins_ded_prev = ins_ded
            if debug:
                print(
                    f"    pass {pass_no}: simmed={cols.shape[0]} "
                    f"entry_dirty={int(dirty.sum())} ins_chg={ins_chg} "
                    f"leader_miss={int(lmiss.sum())}"
                )
        elif debug:
            print(f"    pass {pass_no}: simmed={cols.shape[0]} "
                  f"entry_dirty={int(dirty.sum())}")

        if not dirty.any():
            break

    hits = _hits_program_order(st, H)
    has = np.flatnonzero(st.nchunks > 0)
    last_stream = st.stream_base[has] + st.nchunks[has] - 1
    cols = st.col_of[last_stream]
    out_tags = state_tags.copy()
    out_rrpv = state_rrpv.copy()
    out_tags[has] = X_tags[:, cols].T
    out_rrpv[has] = X_rrpv[:, cols].T
    return hits, out_tags, out_rrpv, psel_final


# ---------------------------------------------------------------------------
# Top-level entry point
# ---------------------------------------------------------------------------


def kernel_simulate(
    cache: SetAssociativeCache,
    lines: np.ndarray,
    scan_interval: int,
    positions: Optional[np.ndarray] = None,
) -> Optional[Tuple[np.ndarray, List[Tuple[int, np.ndarray]]]]:
    """Kernel-path replacement for ``SetAssociativeCache.simulate``.

    Returns ``(hits, snapshots)`` and mutates the cache state exactly as
    the reference loop would, or ``None`` if the kernel declined (caller
    must then run the reference loop on the *unmodified* cache).
    ``positions`` optionally overrides the lifetime access positions the
    BRRIP/DRRIP draws are keyed on (sharded replay of a masked global
    stream; see :meth:`SetAssociativeCache.simulate`).
    """
    config = cache.config
    policy = config.policy
    num_sets, ways = config.num_sets, config.ways
    n = lines.shape[0]

    with _obs_span("sim.kernel", policy=policy, accesses=n) as sp:
        result = _kernel_simulate_inner(
            cache, lines, scan_interval, policy, num_sets, ways, n, positions
        )
        if result is None:
            sp.set(declined=True)
            _obs_metrics.registry.counter("cache.kernel_declined").inc()
    return result


def _kernel_simulate_inner(
    cache: SetAssociativeCache,
    lines: np.ndarray,
    scan_interval: int,
    policy: str,
    num_sets: int,
    ways: int,
    n: int,
    positions: Optional[np.ndarray] = None,
) -> Optional[Tuple[np.ndarray, List[Tuple[int, np.ndarray]]]]:
    state_tags, state_rrpv = _state_arrays(cache)
    psel = cache._psel
    pos0 = cache._access_pos
    if policy in ("brrip", "drrip"):
        # Per-access bimodal draws for the whole batch, keyed by the
        # cache's lifetime access position (bit-exact with the scalar
        # and reference paths by construction — same hash, same keys).
        if positions is not None:
            long_all: Optional[np.ndarray] = _draws.long_inserts_at(
                cache._draw_key, positions
            )
        else:
            long_all = _draws.long_inserts(cache._draw_key, pos0, n)
    else:
        long_all = None
    if policy == "drrip":
        role_acc = np.asarray(cache._role, dtype=np.int8)[lines % num_sets]
    else:
        role_acc = None

    hits = np.empty(n, dtype=np.uint8)
    snapshots: List[Tuple[int, np.ndarray]] = []

    if scan_interval:
        seg_edges = list(range(0, n, scan_interval)) + [n]
    else:
        seg_edges = [0, n]

    for gi in range(len(seg_edges) - 1):
        lo, hi = seg_edges[gi], seg_edges[gi + 1]
        st = _build_streams(
            lines[lo:hi],
            num_sets,
            max_chain=None if policy == "lru" else _RRIP_MAX_CHAIN,
        )
        if policy == "lru":
            seg_hits, state_tags = _segment_lru(st, state_tags, ways)
        else:
            res = _segment_rrip(
                st, policy, state_tags, state_rrpv, ways, psel,
                long_all[lo:hi] if long_all is not None else None,
                role_acc[lo:hi] if role_acc is not None else None,
            )
            if res is None:
                return None
            seg_hits, state_tags, state_rrpv, psel = res
        hits[lo:hi] = seg_hits
        if scan_interval and hi % scan_interval == 0:
            snapshots.append((hi, _resident_from_state(state_tags, num_sets)))

    # Reference LRU never touches RRPV state; keep it bit-identical.
    _write_state(cache, state_tags, state_rrpv if policy != "lru" else None)
    cache._psel = psel
    if positions is not None:
        if n:
            cache._access_pos = int(positions[-1]) + 1
    else:
        cache._access_pos = pos0 + n
    return hits, snapshots
