"""iHTL-style hybrid traversal (Section VIII-A of the paper).

The paper's answer to the hub locality problem RAs cannot solve: iHTL
("in-Hub Temporal Locality", the authors' ICPP'21 system) splits the
graph by *destination*.  Edges into the top in-hubs form dense *flipped
blocks* processed in push direction — their random writes land on the
small, cache-resident hub set — while the remaining *sparse block* is
processed in the usual pull direction.  Unlike RAs, iHTL sizes the hub
set from the cache capacity, "optimizing cache capacity utilization".

This module builds the corresponding access trace so the hybrid can be
simulated and compared against pure pull/push on any graph.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.graph.graph import Graph

from repro.sim.address_space import AddressSpace, Region
from repro.sim.cache import CacheConfig, SetAssociativeCache
from repro.sim.trace import MemoryTrace, concatenate_traces, spmv_trace

__all__ = [
    "IHTLSplit",
    "IHTLResult",
    "hubs_for_cache",
    "split_by_in_hubs",
    "ihtl_trace",
    "simulate_ihtl",
]


@dataclass(frozen=True)
class IHTLSplit:
    """Graph split into flipped (into-hub) and sparse sub-graphs."""

    hubs: np.ndarray
    flipped: Graph
    sparse: Graph

    @property
    def num_hubs(self) -> int:
        return self.hubs.shape[0]

    @property
    def flipped_edges(self) -> int:
        return self.flipped.num_edges

    @property
    def sparse_edges(self) -> int:
        return self.sparse.num_edges


def hubs_for_cache(graph: Graph, cache: CacheConfig, *, data_elem: int = 8,
                   fraction: float = 0.5) -> int:
    """Number of in-hubs whose data fits in ``fraction`` of the cache.

    iHTL's cache-aware selection: keep the flipped blocks' accumulators
    resident while leaving room for the streamed topology.
    """
    if not 0 < fraction <= 1:
        raise SimulationError(f"fraction must be in (0, 1], got {fraction}")
    budget = int(cache.capacity_bytes * fraction / data_elem)
    return max(1, min(budget, graph.num_vertices))


def split_by_in_hubs(graph: Graph, num_hubs: int) -> IHTLSplit:
    """Split edges by whether their destination is a top in-hub.

    Vertex IDs are preserved in both sub-graphs so the two traversal
    phases share one address space.
    """
    if not 0 < num_hubs <= graph.num_vertices:
        raise SimulationError(
            f"num_hubs must be in [1, {graph.num_vertices}], got {num_hubs}"
        )
    in_deg = graph.in_degrees()
    hubs = np.argpartition(-in_deg, num_hubs - 1)[:num_hubs]
    hubs = hubs[np.lexsort((hubs, -in_deg[hubs]))].astype(np.int64)
    is_hub = np.zeros(graph.num_vertices, dtype=bool)
    is_hub[hubs] = True

    src, dst = graph.edges()
    to_hub = is_hub[dst]
    n = graph.num_vertices
    flipped = Graph.from_edges(n, src[to_hub], dst[to_hub], name=f"{graph.name}:flipped")
    sparse = Graph.from_edges(n, src[~to_hub], dst[~to_hub], name=f"{graph.name}:sparse")
    return IHTLSplit(hubs=hubs, flipped=flipped, sparse=sparse)


def ihtl_trace(
    graph: Graph,
    num_hubs: int,
    space: AddressSpace | None = None,
    *,
    promote_sequential: bool = True,
) -> tuple[MemoryTrace, IHTLSplit]:
    """Access trace of the iHTL hybrid traversal.

    Phase 1 pushes the flipped blocks (random writes hit only the hub
    accumulators); phase 2 pulls the sparse block as usual.
    """
    if space is None:
        space = AddressSpace(graph.num_vertices, graph.num_edges)
    split = split_by_in_hubs(graph, num_hubs)
    flipped_trace = spmv_trace(
        split.flipped, space, direction="push",
        promote_sequential=promote_sequential,
    )
    sparse_trace = spmv_trace(
        split.sparse, space, direction="pull",
        promote_sequential=promote_sequential,
    )
    return concatenate_traces([flipped_trace, sparse_trace]), split


@dataclass(frozen=True)
class IHTLResult:
    """Simulated miss counts of one iHTL traversal."""

    split: IHTLSplit
    l3_misses: int
    num_accesses: int
    random_accesses: int
    random_misses: int

    @property
    def random_miss_rate(self) -> float:
        if self.random_accesses == 0:
            return 0.0
        return self.random_misses / self.random_accesses


def simulate_ihtl(
    graph: Graph,
    cache: CacheConfig,
    *,
    num_hubs: int | None = None,
) -> IHTLResult:
    """Simulate the hybrid traversal through a fresh cache.

    ``num_hubs`` defaults to the cache-aware selection of
    :func:`hubs_for_cache`.
    """
    if num_hubs is None:
        num_hubs = hubs_for_cache(graph, cache)
    space = AddressSpace(graph.num_vertices, graph.num_edges,
                         line_size=cache.line_size)
    trace, split = ihtl_trace(graph, num_hubs, space)
    outcome = SetAssociativeCache(cache).simulate(trace.lines)
    random_mask = (trace.kinds == Region.VERTEX_DATA) | (
        trace.kinds == Region.VERTEX_OUT
    )
    # Sequential own-vertex accesses also live in these regions; the
    # per-edge random accesses are the ones with a read_vertex set.
    random_mask &= trace.read_vertex >= 0
    random_accesses = int(random_mask.sum())
    random_misses = random_accesses - int(outcome.hits[random_mask].sum())
    return IHTLResult(
        split=split,
        l3_misses=outcome.num_misses,
        num_accesses=outcome.num_accesses,
        random_accesses=random_accesses,
        random_misses=random_misses,
    )
