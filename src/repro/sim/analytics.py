"""Frontier-based graph analytics built on the traversal substrate.

Section II-B of the paper argues SpMV is representative of frontier
analytics (BFS, CC, SSSP) because their *dense phases* — iterations
touching most edges — dominate execution time.  This module provides
those analytics plus :func:`frontier_profile`, which measures exactly
that: the fraction of all edges each iteration touches, letting the
dense-phase claim be checked on any graph.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.graph.graph import Graph

__all__ = [
    "bfs_levels",
    "sssp_distances",
    "FrontierProfile",
    "frontier_profile",
]


def bfs_levels(graph: Graph, source: int) -> np.ndarray:
    """BFS levels over out-edges; ``-1`` marks unreachable vertices."""
    n = _check_source(graph, source)
    levels = np.full(n, -1, dtype=np.int64)
    levels[source] = 0
    frontier = np.asarray([source], dtype=np.int64)
    offsets = graph.out_adj.offsets
    targets = graph.out_adj.targets
    level = 0
    while frontier.size:
        level += 1
        neighbours = np.concatenate(
            [targets[offsets[v] : offsets[v + 1]] for v in frontier.tolist()]
        ) if frontier.size else np.zeros(0, dtype=np.int64)
        fresh = np.unique(neighbours[levels[neighbours] < 0])
        levels[fresh] = level
        frontier = fresh
    return levels


def sssp_distances(
    graph: Graph,
    source: int,
    weights: np.ndarray | None = None,
    *,
    max_rounds: int | None = None,
) -> np.ndarray:
    """Single-source shortest paths by vectorized Bellman-Ford.

    Each round performs the pull-direction relaxation
    ``dist[v] = min(dist[v], min over in-edges (u, v) of dist[u] + w)``
    — structurally the min-plus analogue of the SpMV kernel.  ``inf``
    marks unreachable vertices.
    """
    n = _check_source(graph, source)
    src, dst = graph.edges()
    if weights is None:
        weights = np.ones(src.shape[0], dtype=np.float64)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != src.shape:
            raise SimulationError(
                f"weights must have one entry per edge ({src.shape[0]})"
            )
        if weights.size and weights.min() < 0:
            raise SimulationError("negative edge weights are not supported")
    if max_rounds is None:
        max_rounds = n

    distances = np.full(n, np.inf, dtype=np.float64)
    distances[source] = 0.0
    for _ in range(max_rounds):
        candidate = distances[src] + weights
        updated = distances.copy()
        np.minimum.at(updated, dst, candidate)
        if np.array_equal(
            updated, distances, equal_nan=False
        ) or np.allclose(updated, distances, equal_nan=True):
            break
        distances = updated
    return distances


@dataclass(frozen=True)
class FrontierProfile:
    """Per-BFS-level edge activity of a traversal from one source."""

    levels: np.ndarray
    frontier_sizes: np.ndarray
    edges_touched: np.ndarray
    total_edges: int

    @property
    def num_levels(self) -> int:
        return self.frontier_sizes.shape[0]

    def dense_phase_share(self, threshold: float = 0.10) -> float:
        """Fraction of all touched edges inside 'dense' iterations.

        An iteration is dense when it touches more than ``threshold`` of
        the graph's edges — the paper's argument is that these phases
        dominate, making SpMV a faithful proxy.
        """
        touched = self.edges_touched.sum()
        if touched == 0:
            return 0.0
        dense = self.edges_touched[
            self.edges_touched > threshold * self.total_edges
        ].sum()
        return float(dense / touched)


def frontier_profile(graph: Graph, source: int) -> FrontierProfile:
    """Measure per-level frontier sizes and edge activity of a BFS."""
    levels = bfs_levels(graph, source)
    out_deg = graph.out_degrees()
    reachable = levels >= 0
    if not reachable.any():
        return FrontierProfile(
            levels=levels,
            frontier_sizes=np.zeros(0, dtype=np.int64),
            edges_touched=np.zeros(0, dtype=np.int64),
            total_edges=graph.num_edges,
        )
    num_levels = int(levels[reachable].max()) + 1
    frontier_sizes = np.bincount(levels[reachable], minlength=num_levels)
    edges_touched = np.bincount(
        levels[reachable], weights=out_deg[reachable], minlength=num_levels
    ).astype(np.int64)
    return FrontierProfile(
        levels=levels,
        frontier_sizes=frontier_sizes.astype(np.int64),
        edges_touched=edges_touched,
        total_edges=graph.num_edges,
    )


def _check_source(graph: Graph, source: int) -> int:
    n = graph.num_vertices
    if not 0 <= source < n:
        raise SimulationError(f"source {source} outside [0, {n})")
    return n
