"""Cycle-level timing model.

The paper reports wall-clock SpMV times from real hardware; this repo's
substitute derives a simulated time from the quantities the simulator
produces.  The model is deliberately simple — a traversal is memory
bound, so time is dominated by edges streamed plus penalties for L3 and
DTLB misses, inflated by scheduler idle time — and is used only for the
*relative* comparisons the paper's tables make.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError

__all__ = ["TimingModel"]


@dataclass(frozen=True)
class TimingModel:
    """Latency parameters, loosely calibrated to the paper's Xeon 6130.

    ``cycles_per_edge`` covers the streamed topology work and the L1/L2
    hits of random accesses; ``cycles_per_l3_miss`` is the extra memory
    latency of an access that leaves the cache hierarchy (amortized over
    the memory-level parallelism of the traversal).
    """

    cycles_per_edge: float = 1.5
    cycles_per_l3_miss: float = 40.0
    cycles_per_tlb_miss: float = 30.0
    clock_ghz: float = 2.1
    num_threads: int = 8

    def __post_init__(self) -> None:
        if self.clock_ghz <= 0 or self.num_threads <= 0:
            raise SimulationError("clock and thread count must be positive")

    def traversal_time_ms(
        self,
        num_edges: int,
        l3_misses: int,
        tlb_misses: int = 0,
        idle_percent: float = 0.0,
    ) -> float:
        """Simulated SpMV traversal time in milliseconds."""
        if min(num_edges, l3_misses, tlb_misses) < 0:
            raise SimulationError("negative event counts")
        if not 0.0 <= idle_percent < 100.0:
            raise SimulationError(f"idle_percent must be in [0, 100), got {idle_percent}")
        cycles = (
            num_edges * self.cycles_per_edge
            + l3_misses * self.cycles_per_l3_miss
            + tlb_misses * self.cycles_per_tlb_miss
        )
        parallel_cycles = cycles / self.num_threads
        effective = parallel_cycles / (1.0 - idle_percent / 100.0)
        return effective / (self.clock_ghz * 1e9) * 1e3
