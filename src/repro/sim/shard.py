"""Set-sharded cache simulation: N workers, one disjoint set range each.

A set-associative cache is embarrassingly partitionable by set index:
the access at position ``p`` touches exactly one set (``line mod
num_sets``), and with the counter-hash draw stream of PR 6 the BRRIP
bimodal draw for that access is a pure function of ``(seed, p)`` — not
of the hit/miss history of any other set.  So a worker that owns sets
``[lo, hi)`` can replay just the subsequence of accesses landing in its
range (passing their *global* positions to
:meth:`SetAssociativeCache.simulate`) and produce hit bits, occupancy
and draw consumption bit-identical to the single-process replay.

The one cross-set coupling is DRRIP set dueling: follower sets read the
PSEL counter, which leader-set **misses** update.  The resolution
(DESIGN.md §11) is replication, not communication: every worker also
replays all *leader-set* accesses (roles 1/2).  Leader behaviour never
reads PSEL, so each worker reconstructs the exact global PSEL
trajectory independently — the coordinator asserts all workers finish
with identical PSEL.  Hits for a set are taken from its owner only;
the leader replicas exist purely to drive PSEL.

Merge invariants (property-tested in ``tests/test_shard.py``):

- **set-disjointness** — owned ranges are contiguous, ascending and
  partition ``[0, num_sets)``; concatenating the workers' owned-range
  resident lines in shard order equals the reference's set-major
  :meth:`resident_lines` order.
- **draw keying** — draws are consumed by global access position, so a
  worker's sparse subsequence draws the same words the reference draws
  at those positions.
- **merge order** — hit bits are scattered back to global positions;
  snapshots are cut at global multiples of ``scan_interval`` (the
  coordinator slices incoming chunks so every snapshot boundary falls
  between worker batches).

``mode="process"`` runs each worker in its own OS process (persistent
workers, one barrier per routed segment).  Segments travel through
POSIX shared memory, not pipes: the coordinator publishes each segment
*once* and every worker computes its own ownership mask, subsequence
and global positions from the shared block — so per-segment transport
is one memcpy plus a few-byte control message, instead of pickling
``O(accesses)`` arrays per worker.  Only the small owned-hit bitmaps
come back over the pipe.  ``mode="serial"`` runs the same worker code
in-process, which is both the fallback for 1-core boxes and the
differential-testing oracle for the process path.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Iterable, Iterator

import numpy as np

from repro.errors import SimulationError
from repro.obs import enabled as _obs_enabled
from repro.obs import metrics as _obs_metrics
from repro.sim.cache import CacheConfig, CacheSnapshot, SetAssociativeCache

if TYPE_CHECKING:
    from multiprocessing.connection import Connection

__all__ = ["ShardedSimulation", "shard_set_ranges", "simulate_sharded"]

_MODES = ("serial", "process")


def shard_set_ranges(num_sets: int, num_shards: int) -> list[tuple[int, int]]:
    """Contiguous, ascending set ranges ``[lo, hi)`` partitioning the cache.

    ``num_shards > num_sets`` is legal: trailing shards own empty ranges
    and simply idle (they still replicate DRRIP leaders).
    """
    if num_shards <= 0:
        raise SimulationError(f"num_shards must be positive, got {num_shards}")
    bounds = [i * num_sets // num_shards for i in range(num_shards + 1)]
    return [(bounds[i], bounds[i + 1]) for i in range(num_shards)]


def _leader_sets(config: CacheConfig) -> np.ndarray:
    """Boolean mask over sets: True where the DRRIP role is a leader."""
    cache = SetAssociativeCache(config)
    return np.asarray(cache._role, dtype=np.int64) != 0


@dataclass
class ShardedSimulation:
    """Merged result of one sharded replay (mirrors ``SimulatedAccesses``)."""

    hits: np.ndarray
    snapshots: list[CacheSnapshot]
    num_shards: int
    set_ranges: list[tuple[int, int]]
    shard_accesses: list[int]
    shard_access_pos: list[int]
    psel: int
    resident_lines: np.ndarray = field(repr=False)

    @property
    def num_accesses(self) -> int:
        return self.hits.shape[0]

    @property
    def num_hits(self) -> int:
        return int(self.hits.sum())

    @property
    def num_misses(self) -> int:
        return self.num_accesses - self.num_hits

    @property
    def miss_rate(self) -> float:
        if self.num_accesses == 0:
            return 0.0
        return self.num_misses / self.num_accesses


class _ShardWorker:
    """One shard's state: a full-geometry cache fed a masked subsequence.

    The cache has the *full* configured geometry so set indexing, leader
    roles and draw keying are identical to the reference; only the owned
    sets (plus replicated leader sets under DRRIP) ever hold lines.
    """

    def __init__(self, config: CacheConfig, lo: int, hi: int, kernel: str) -> None:
        self.cache = SetAssociativeCache(config)
        self.lo = lo
        self.hi = hi
        self.kernel = kernel

    def process(
        self,
        chunk: np.ndarray,
        positions: np.ndarray,
        owned_in_sent: np.ndarray,
        want_snapshot: bool,
    ) -> tuple[np.ndarray, "np.ndarray | None"]:
        if chunk.shape[0]:
            res = self.cache.simulate(chunk, kernel=self.kernel, positions=positions)
            owned_hits = res.hits[owned_in_sent]
        else:
            owned_hits = np.zeros(0, dtype=np.uint8)
        snap = self.cache.resident_lines((self.lo, self.hi)) if want_snapshot else None
        return owned_hits, snap

    def finish(self) -> tuple[np.ndarray, int, int]:
        return (
            self.cache.resident_lines((self.lo, self.hi)),
            self.cache._psel,
            self.cache._access_pos,
        )


def _untrack_shm(shm: shared_memory.SharedMemory) -> None:
    """Detach an *attached* block from this process's resource tracker.

    Until Python 3.13 (``track=False``) every attach registers the block
    with the local resource tracker, which then "cleans up" (unlinks!)
    blocks the coordinator still owns and warns at exit.  Only the
    coordinator, which created the block, may unlink it.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(getattr(shm, "_name", shm.name), "shared_memory")
    except Exception:
        pass


def _worker_main(
    conn: "Connection", config: CacheConfig, lo: int, hi: int, kernel: str
) -> None:
    """Worker loop: mask shared segments locally, replay, return owned hits.

    The mask computation here must stay bit-identical to the
    coordinator's serial-mode routing (``_route``): ownership of set
    ``s`` is the contiguous-range test ``lo <= s < hi``, which matches
    the coordinator's searchsorted-over-lower-bounds exactly (ranges
    partition the set space, so each set passes the test for precisely
    one shard).  The serial/process property tests pin this.
    """
    worker = _ShardWorker(config, lo, hi, kernel)
    num_sets = config.num_sets
    replicate = config.policy == "drrip" and num_sets >= 2
    leader_by_set = (
        np.asarray(worker.cache._role, dtype=np.int64) != 0
        if replicate
        else np.zeros(num_sets, dtype=bool)
    )
    while True:
        msg = conn.recv()
        if msg[0] == "seg":
            _, name, length, seg_start, want_snapshot = msg
            shm = shared_memory.SharedMemory(name=name)
            _untrack_shm(shm)
            try:
                seg = np.ndarray((length,), dtype=np.int64, buffer=shm.buf)
                set_idx = seg % num_sets
                owned = (set_idx >= lo) & (set_idx < hi)
                sent = np.logical_or(owned, leader_by_set[set_idx]) if replicate else owned
                chunk = seg[sent]  # a copy — safe to use after shm.close()
                positions = np.flatnonzero(sent) + np.int64(seg_start)
                owned_in_sent = owned[sent]
                del seg, set_idx, owned, sent
            finally:
                shm.close()
            conn.send(worker.process(chunk, positions, owned_in_sent, want_snapshot))
        else:
            conn.send(worker.finish())
            conn.close()
            return


class _ProcessShard:
    """Coordinator-side handle for one worker process."""

    def __init__(self, config: CacheConfig, lo: int, hi: int, kernel: str) -> None:
        ctx = mp.get_context()
        self.conn, child = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=_worker_main, args=(child, config, lo, hi, kernel), daemon=True
        )
        self.proc.start()
        child.close()

    def terminate(self) -> None:
        if self.proc.is_alive():
            self.proc.terminate()
        self.proc.join(timeout=5)


def _segment_bounds(length: int, global_start: int, scan_interval: int) -> list[int]:
    """Split points so every global ``scan_interval`` multiple ends a segment."""
    if not scan_interval:
        return [0, length]
    first = scan_interval - (global_start % scan_interval)
    cuts = [0]
    cuts.extend(range(first, length, scan_interval))
    if cuts[-1] != length:
        cuts.append(length)
    return cuts


def simulate_sharded(
    chunks: "Iterable[np.ndarray]",
    config: CacheConfig,
    *,
    num_shards: int,
    scan_interval: int = 0,
    mode: str = "serial",
    kernel: str = "auto",
) -> ShardedSimulation:
    """Replay a (possibly streamed) access trace across set-sharded workers.

    Parameters
    ----------
    chunks:
        Iterable of int64 line-ID arrays in program order — a single
        full trace in a one-element list, or a bounded-memory stream
        (e.g. mapped from :func:`repro.sim.parallel.interleave_stream`).
    num_shards:
        Worker count; any positive value (1 degenerates to a routed
        single-process replay, values above ``num_sets`` leave trailing
        workers idle).
    mode:
        ``"serial"`` replays shards in-process (oracle / 1-core
        fallback); ``"process"`` uses persistent worker processes.
    """
    if mode not in _MODES:
        raise SimulationError(f"mode must be one of {_MODES}, got {mode!r}")
    num_sets = config.num_sets
    ranges = shard_set_ranges(num_sets, num_shards)
    replicate_leaders = config.policy == "drrip" and num_sets >= 2
    leader_mask_by_set = (
        _leader_sets(config) if replicate_leaders else np.zeros(num_sets, dtype=bool)
    )
    # Shard of set s == searchsorted over the ascending lower bounds.
    set_lo = np.asarray([r[0] for r in ranges], dtype=np.int64)

    counter = _obs_metrics.registry.counter
    obs_on = _obs_enabled()

    workers: "list[_ShardWorker] | list[_ProcessShard]"
    if mode == "process":
        workers = [_ProcessShard(config, lo, hi, kernel) for lo, hi in ranges]
    else:
        workers = [_ShardWorker(config, lo, hi, kernel) for lo, hi in ranges]

    hit_parts: list[np.ndarray] = []
    snapshots: list[CacheSnapshot] = []
    shard_accesses = [0] * num_shards
    global_pos = 0

    def _route(seg: np.ndarray, seg_start: int, want_snapshot: bool) -> None:
        length = seg.shape[0]
        set_idx = seg % num_sets
        shard_of = np.searchsorted(set_lo, set_idx, side="right") - 1
        is_leader = leader_mask_by_set[set_idx]
        seg_hits = np.zeros(length, dtype=np.uint8)
        if obs_on:
            counter("sim.shard.chunks_routed").inc(num_shards)

        # Coordinator-side bookkeeping per shard: where each worker's
        # owned hits scatter back to, and how many accesses it replays.
        # One stable sort groups positions by shard (ascending within
        # each group) — O(n log n) once, not O(n) per shard.
        order = np.argsort(shard_of, kind="stable")
        counts = np.bincount(shard_of, minlength=num_shards)
        offsets = np.zeros(num_shards + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        owned_index = [order[offsets[i] : offsets[i + 1]] for i in range(num_shards)]
        if replicate_leaders:
            # Replayed = owned + leader accesses owned elsewhere.
            leader_total = int(np.count_nonzero(is_leader))
            leaders_of = np.bincount(shard_of[is_leader], minlength=num_shards)
            sent_counts = [
                int(counts[i]) + leader_total - int(leaders_of[i])
                for i in range(num_shards)
            ]
        else:
            sent_counts = [int(c) for c in counts]

        if mode == "process":
            # Publish the segment once; workers mask it themselves.
            shm = shared_memory.SharedMemory(create=True, size=seg.nbytes)
            try:
                np.ndarray((length,), dtype=np.int64, buffer=shm.buf)[:] = seg
                for w in workers:
                    w.conn.send(  # type: ignore[union-attr]
                        ("seg", shm.name, length, seg_start, want_snapshot)
                    )
                if obs_on:
                    counter("sim.shard.barrier_waits").inc()
                replies = [w.conn.recv() for w in workers]  # type: ignore[union-attr]
            finally:
                shm.close()
                shm.unlink()
        else:
            seg_positions = np.arange(seg_start, seg_start + length, dtype=np.int64)
            replies = []
            for i in range(num_shards):
                owned = shard_of == i
                sent_mask = np.logical_or(owned, is_leader) if replicate_leaders else owned
                replies.append(
                    workers[i].process(  # type: ignore[union-attr]
                        seg[sent_mask],
                        seg_positions[sent_mask],
                        owned[sent_mask],
                        want_snapshot,
                    )
                )

        snap_parts: list[np.ndarray] = []
        for i in range(num_shards):
            owned_hits, snap = replies[i]
            seg_hits[owned_index[i]] = owned_hits
            shard_accesses[i] += sent_counts[i]
            if want_snapshot:
                snap_parts.append(snap)
        hit_parts.append(seg_hits)
        if want_snapshot:
            snapshots.append(
                CacheSnapshot(seg_start + length, np.concatenate(snap_parts))
            )

    try:
        for chunk in iter(chunks):
            arr = np.asarray(chunk, dtype=np.int64)
            if not arr.shape[0]:
                continue
            cuts = _segment_bounds(arr.shape[0], global_pos, scan_interval)
            j = 0
            while j + 1 < len(cuts):
                lo_cut, hi_cut = cuts[j], cuts[j + 1]
                at_boundary = bool(
                    scan_interval and (global_pos + hi_cut) % scan_interval == 0
                )
                _route(arr[lo_cut:hi_cut], global_pos + lo_cut, at_boundary)
                j += 1
            global_pos += arr.shape[0]

        if mode == "process":
            for w in workers:
                w.conn.send(("finish",))  # type: ignore[union-attr]
            finals = [w.conn.recv() for w in workers]  # type: ignore[union-attr]
            for w in workers:
                w.proc.join(timeout=30)  # type: ignore[union-attr]
        else:
            finals = [w.finish() for w in workers]  # type: ignore[union-attr]
    finally:
        if mode == "process":
            for w in workers:
                w.terminate()  # type: ignore[union-attr]

    psels = [int(f[1]) for f in finals]
    if replicate_leaders:
        if len(set(psels)) != 1:
            raise SimulationError(
                f"DRRIP PSEL diverged across shards: {psels} — leader replication broken"
            )
        merged_psel = psels[0]
    elif config.policy == "drrip":
        # num_sets == 1 all-SRRIP-leader fallback: the (single) shard
        # owning set 0 holds the whole PSEL trajectory.
        owner = next(i for i, (lo, hi) in enumerate(ranges) if hi > lo)
        merged_psel = psels[owner]
    else:
        merged_psel = psels[0]
    resident = (
        np.concatenate([f[0] for f in finals])
        if finals
        else np.zeros(0, dtype=np.int64)
    )
    hits = (
        np.concatenate(hit_parts) if hit_parts else np.zeros(0, dtype=np.uint8)
    )
    return ShardedSimulation(
        hits=hits,
        snapshots=snapshots,
        num_shards=num_shards,
        set_ranges=ranges,
        shard_accesses=shard_accesses,
        shard_access_pos=[int(f[2]) for f in finals],
        psel=merged_psel,
        resident_lines=resident,
    )
