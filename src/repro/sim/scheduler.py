"""Work-stealing execution model for idle-time estimation.

Table IV of the paper reports per-thread idle percentages and observes
that "improving locality of a graph dataset by a RA may increase the
idle time" because RAs change locality unevenly across the vertex
ranges that become thread partitions.  This module reproduces that
effect with a deterministic discrete-event model: each thread owns the
chunks of its partition, chunk costs come from the cache simulation
(edges processed plus miss penalties), and idle threads steal from the
most-loaded victim.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError

__all__ = [
    "ScheduleResult",
    "simulate_work_stealing",
    "chunk_costs",
    "cost_balanced_chunks",
]


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of one work-stealing schedule."""

    makespan: float
    busy_time: np.ndarray  # per thread
    finish_time: np.ndarray  # per thread
    num_steals: int

    @property
    def num_threads(self) -> int:
        return self.busy_time.shape[0]

    @property
    def idle_percent(self) -> float:
        """Average percentage of the makespan each thread sits idle."""
        if self.makespan <= 0:
            return 0.0
        idle = (self.makespan - self.busy_time) / self.makespan
        return float(idle.mean() * 100.0)


def chunk_costs(
    per_vertex_cost: np.ndarray, boundaries: np.ndarray, chunk_size: int
) -> list[np.ndarray]:
    """Aggregate per-vertex costs into per-thread chunk cost arrays.

    ``boundaries`` are the partition limits from
    :func:`repro.sim.parallel.edge_balanced_partitions`; each partition
    is cut into chunks of ``chunk_size`` consecutive vertices (the work
    units threads execute and steal).
    """
    if chunk_size <= 0:
        raise SimulationError(f"chunk_size must be positive, got {chunk_size}")
    per_vertex_cost = np.asarray(per_vertex_cost, dtype=np.float64)
    costs: list[np.ndarray] = []
    for p in range(boundaries.shape[0] - 1):
        lo, hi = int(boundaries[p]), int(boundaries[p + 1])
        part = per_vertex_cost[lo:hi]
        if part.size == 0:
            costs.append(np.zeros(0, dtype=np.float64))
            continue
        num_chunks = (part.size + chunk_size - 1) // chunk_size
        padded = np.zeros(num_chunks * chunk_size, dtype=np.float64)
        padded[: part.size] = part
        costs.append(padded.reshape(num_chunks, chunk_size).sum(axis=1))
    return costs


def cost_balanced_chunks(
    per_vertex_cost: np.ndarray,
    boundaries: np.ndarray,
    *,
    chunks_per_thread: int = 64,
) -> list[np.ndarray]:
    """Cut partitions into chunks of roughly equal *cost*.

    Fixed vertex-count chunks make a hub-dense partition collapse into a
    couple of enormous work units; real runtimes split work by edges.
    Each chunk greedily accumulates consecutive vertices until it reaches
    ``total_cost / (num_threads * chunks_per_thread)`` — a single vertex
    may still exceed the cap (vertices are atomic work).
    """
    if chunks_per_thread <= 0:
        raise SimulationError("chunks_per_thread must be positive")
    per_vertex_cost = np.asarray(per_vertex_cost, dtype=np.float64)
    num_threads = boundaries.shape[0] - 1
    total = per_vertex_cost.sum()
    cap = max(total / max(1, num_threads * chunks_per_thread), 1e-12)
    costs: list[np.ndarray] = []
    for p in range(num_threads):
        lo, hi = int(boundaries[p]), int(boundaries[p + 1])
        part = per_vertex_cost[lo:hi]
        chunks: list[float] = []
        current = 0.0
        for cost in part.tolist():
            current += cost
            if current >= cap:
                chunks.append(current)
                current = 0.0
        if current > 0.0 or not chunks:
            chunks.append(current)
        costs.append(np.asarray(chunks, dtype=np.float64))
    return costs


def simulate_work_stealing(
    thread_chunks: list[np.ndarray], *, steal_cost: float = 0.0
) -> ScheduleResult:
    """Deterministic work-stealing schedule over per-thread chunk queues.

    Threads execute their own chunks front-to-back.  A thread with an
    empty queue steals the back half of the queue of the victim with the
    most remaining cost; when nothing is left to steal it finishes.
    ``steal_cost`` adds a fixed overhead per successful steal.
    """
    num_threads = len(thread_chunks)
    if num_threads == 0:
        raise SimulationError("need at least one thread")
    queues: list[list[float]] = [list(map(float, chunks)) for chunks in thread_chunks]
    remaining = [sum(q) for q in queues]
    current = np.zeros(num_threads, dtype=np.float64)
    busy = np.zeros(num_threads, dtype=np.float64)
    finish = np.full(num_threads, -1.0, dtype=np.float64)
    active = set(range(num_threads))
    steals = 0

    while active:
        # Advance the active thread that is earliest in simulated time.
        t = min(active, key=lambda idx: (current[idx], idx))
        if queues[t]:
            cost = queues[t].pop(0)
            remaining[t] -= cost
            current[t] += cost
            busy[t] += cost
            continue
        # Steal from the victim with the most remaining work.
        victim = max(range(num_threads), key=lambda idx: (remaining[idx], -idx))
        if remaining[victim] <= 0 or len(queues[victim]) == 0:
            finish[t] = current[t]
            active.discard(t)
            continue
        half = max(1, len(queues[victim]) // 2)
        stolen = queues[victim][-half:]
        del queues[victim][-half:]
        stolen_cost = sum(stolen)
        remaining[victim] -= stolen_cost
        remaining[t] += stolen_cost
        queues[t].extend(stolen)
        current[t] += steal_cost
        steals += 1
        # The thief immediately executes one stolen chunk.  Without this
        # two otherwise-idle threads can livelock, re-stealing the last
        # chunk from each other forever; a real work-stealing deque pops
        # the stolen item before anyone can steal it back.
        cost = queues[t].pop(0)
        remaining[t] -= cost
        current[t] += cost
        busy[t] += cost

    makespan = float(finish.max()) if num_threads else 0.0
    return ScheduleResult(
        makespan=makespan, busy_time=busy, finish_time=finish, num_steals=steals
    )
