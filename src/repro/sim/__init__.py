"""Simulation substrate: address space, cache/TLB, traces, SpMV, scheduling."""

from repro.sim._kernels import kernel_mode, kernel_supported
from repro.sim.address_space import AddressSpace, Region
from repro.sim.analytics import (
    FrontierProfile,
    bfs_levels,
    frontier_profile,
    sssp_distances,
)
from repro.sim.cache import (
    CacheConfig,
    CacheSnapshot,
    SetAssociativeCache,
    count_cold_misses,
)
from repro.sim.ihtl import (
    IHTLSplit,
    hubs_for_cache,
    ihtl_trace,
    simulate_ihtl,
    split_by_in_hubs,
)
from repro.sim.parallel import (
    edge_balanced_partitions,
    interleave_stream,
    interleave_traces,
    partition_edge_counts,
)
from repro.sim.scheduler import ScheduleResult, chunk_costs, simulate_work_stealing
from repro.sim.shard import ShardedSimulation, shard_set_ranges, simulate_sharded
from repro.sim.simulator import (
    SimulationConfig,
    SimulationResult,
    StreamedSimulationResult,
    simulate_spmv,
    simulate_spmv_streamed,
)
from repro.sim.spmv import pagerank, spmv_iterations, spmv_pull, spmv_push
from repro.sim.stats import VertexAccessStats, attribute_random_accesses
from repro.sim.timing import TimingModel
from repro.sim.tlb import TLBConfig, lines_to_pages, simulate_tlb
from repro.sim.trace import (
    MemoryTrace,
    concatenate_traces,
    spmv_trace,
    spmv_trace_chunks,
)

__all__ = [
    "kernel_mode",
    "kernel_supported",
    "AddressSpace",
    "Region",
    "FrontierProfile",
    "bfs_levels",
    "frontier_profile",
    "sssp_distances",
    "CacheConfig",
    "CacheSnapshot",
    "SetAssociativeCache",
    "count_cold_misses",
    "IHTLSplit",
    "hubs_for_cache",
    "ihtl_trace",
    "simulate_ihtl",
    "split_by_in_hubs",
    "edge_balanced_partitions",
    "interleave_stream",
    "interleave_traces",
    "partition_edge_counts",
    "ScheduleResult",
    "chunk_costs",
    "simulate_work_stealing",
    "ShardedSimulation",
    "shard_set_ranges",
    "simulate_sharded",
    "SimulationConfig",
    "SimulationResult",
    "StreamedSimulationResult",
    "simulate_spmv",
    "simulate_spmv_streamed",
    "pagerank",
    "spmv_iterations",
    "spmv_pull",
    "spmv_push",
    "VertexAccessStats",
    "attribute_random_accesses",
    "TimingModel",
    "TLBConfig",
    "lines_to_pages",
    "simulate_tlb",
    "MemoryTrace",
    "concatenate_traces",
    "spmv_trace",
    "spmv_trace_chunks",
]
