"""End-to-end graph-specific cache simulation (Section V-B of the paper).

:func:`simulate_spmv` performs the paper's two-phase parallel
simulation: (1) log memory accesses per thread partition, (2) interleave
the per-thread logs round-robin per interval and replay them through a
simulated shared L3 (and optionally a DTLB).  The returned
:class:`SimulationResult` carries everything the paper's metrics need:
hit bits with per-access attribution, resident-line snapshots for the
Effective Cache Size, TLB miss counts, and a work-stealing schedule for
idle-time estimation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import SimulationError
from repro.graph.graph import Graph
from repro.obs import enabled as obs_enabled
from repro.obs import metrics as obs_metrics
from repro.obs import span

from repro.sim.address_space import AddressSpace, Region
from repro.sim.cache import CacheConfig, CacheSnapshot, SetAssociativeCache
from repro.sim.parallel import (
    edge_balanced_partitions,
    interleave_stream,
    interleave_traces,
)
from repro.sim.scheduler import (
    ScheduleResult,
    cost_balanced_chunks,
    simulate_work_stealing,
)
from repro.sim.shard import ShardedSimulation, simulate_sharded
from repro.sim.stats import VertexAccessStats, attribute_random_accesses
from repro.sim.timing import TimingModel
from repro.sim.tlb import TLBConfig, lines_to_pages, simulate_tlb
from repro.sim.trace import MemoryTrace, spmv_trace, spmv_trace_chunks

__all__ = [
    "SimulationConfig",
    "SimulationResult",
    "StreamedSimulationResult",
    "simulate_spmv",
    "simulate_spmv_streamed",
]


@dataclass(frozen=True)
class SimulationConfig:
    """Everything that parameterizes one SpMV simulation."""

    cache: CacheConfig
    tlb: TLBConfig | None = None
    num_threads: int = 8
    interleave_interval: int = 64
    scan_interval: int = 0
    direction: str = "pull"
    promote_sequential: bool = True
    timing: TimingModel = field(default_factory=TimingModel)

    def __post_init__(self) -> None:
        if self.num_threads <= 0:
            raise SimulationError("num_threads must be positive")
        if self.direction not in ("pull", "push"):
            raise SimulationError(
                f"direction must be 'pull' or 'push', got {self.direction!r}"
            )

    @classmethod
    def scaled_for(
        cls,
        graph: Graph,
        *,
        pressure: float = 0.08,
        num_threads: int = 8,
        scan_interval: int = 0,
        direction: str = "pull",
        with_tlb: bool = True,
        policy: str = "drrip",
    ) -> "SimulationConfig":
        """Config whose cache/TLB are scaled to the graph (DESIGN.md §2)."""
        cache = CacheConfig.scaled_for(
            graph.num_vertices, pressure=pressure, policy=policy
        )
        tlb = TLBConfig.scaled_for(graph.num_vertices) if with_tlb else None
        return cls(
            cache=cache,
            tlb=tlb,
            num_threads=num_threads,
            scan_interval=scan_interval,
            direction=direction,
            timing=TimingModel(num_threads=num_threads),
        )


@dataclass
class SimulationResult:
    """Hit/miss outcome of one simulated parallel SpMV traversal."""

    graph: Graph
    config: SimulationConfig
    trace: MemoryTrace
    hits: np.ndarray
    thread_ids: np.ndarray
    snapshots: list[CacheSnapshot]
    tlb_misses: int
    partition_boundaries: np.ndarray

    # -- headline counters --------------------------------------------------

    @property
    def num_accesses(self) -> int:
        return len(self.trace)

    @property
    def l3_misses(self) -> int:
        return self.num_accesses - int(self.hits.sum())

    @property
    def random_region(self) -> int:
        return (
            Region.VERTEX_DATA if self.config.direction == "pull" else Region.VERTEX_OUT
        )

    @property
    def random_accesses(self) -> int:
        return int((self.trace.kinds == self.random_region).sum())

    @property
    def random_misses(self) -> int:
        mask = self.trace.kinds == self.random_region
        return int(mask.sum()) - int(self.hits[mask].sum())

    @property
    def random_miss_rate(self) -> float:
        accesses = self.random_accesses
        if accesses == 0:
            return 0.0
        return self.random_misses / accesses

    # -- attribution ---------------------------------------------------------

    def random_stats(self, by: str = "read") -> VertexAccessStats:
        """Per-vertex random-access stats (see :mod:`repro.sim.stats`)."""
        return attribute_random_accesses(
            self.trace,
            self.hits,
            self.graph.num_vertices,
            by=by,
            random_region=self.random_region,
        )

    # -- effective cache size --------------------------------------------------

    def effective_cache_size_samples(self) -> np.ndarray:
        """Per-snapshot percentage of capacity holding random-access data.

        Snapshots are classified in one batched pass (see
        :meth:`AddressSpace.region_counts_batch`) instead of one
        ``region_counts`` call per snapshot.
        """
        if not self.snapshots:
            return np.zeros(0, dtype=np.float64)
        capacity = self.config.cache.num_lines
        space = self.trace.space
        counts = space.region_counts_batch(
            [snap.resident_lines for snap in self.snapshots]
        )
        return counts[:, self.random_region] / capacity * 100.0

    def effective_cache_size(self) -> float:
        """Average ECS percentage over all snapshots (Table V)."""
        samples = self.effective_cache_size_samples()
        if samples.size == 0:
            raise SimulationError(
                "no snapshots recorded; run with scan_interval > 0 to measure ECS"
            )
        return float(samples.mean())

    # -- scheduling / timing --------------------------------------------------

    def per_vertex_cost(self) -> np.ndarray:
        """Simulated cycles each vertex's processing consumes."""
        timing = self.config.timing
        degrees = (
            self.graph.in_degrees()
            if self.config.direction == "pull"
            else self.graph.out_degrees()
        )
        stats = self.random_stats(by="proc")
        return (
            degrees.astype(np.float64) * timing.cycles_per_edge
            + stats.misses.astype(np.float64) * timing.cycles_per_l3_miss
        )

    def schedule(self, *, chunks_per_thread: int = 64) -> ScheduleResult:
        """Work-stealing schedule of this traversal (idle % of Table IV).

        Work units are cost-balanced chunks (~64 per thread), matching
        the fine-grained edge-balanced partitioning of the paper's
        runtime.
        """
        costs = cost_balanced_chunks(
            self.per_vertex_cost(),
            self.partition_boundaries,
            chunks_per_thread=chunks_per_thread,
        )
        return simulate_work_stealing(costs)

    def traversal_time_ms(self, *, chunks_per_thread: int = 64) -> float:
        """Simulated traversal time (Table IV "Time" substitute)."""
        idle = self.schedule(chunks_per_thread=chunks_per_thread).idle_percent
        return self.config.timing.traversal_time_ms(
            self.graph.num_edges, self.l3_misses, self.tlb_misses, idle
        )


def simulate_spmv(
    graph: Graph, config: SimulationConfig | None = None, **scaled_kwargs: Any
) -> SimulationResult:
    """Simulate one parallel SpMV traversal of ``graph``.

    When ``config`` is omitted a scaled configuration is derived from the
    graph via :meth:`SimulationConfig.scaled_for`, forwarding any keyword
    arguments.
    """
    if config is None:
        config = SimulationConfig.scaled_for(graph, **scaled_kwargs)
    elif scaled_kwargs:
        raise SimulationError("pass either a config or scaling kwargs, not both")

    with span(
        "sim.spmv",
        vertices=graph.num_vertices,
        edges=graph.num_edges,
        policy=config.cache.policy,
        threads=config.num_threads,
    ):
        with span("sim.partition"):
            space = AddressSpace(
                graph.num_vertices, graph.num_edges, line_size=config.cache.line_size
            )
            boundaries = edge_balanced_partitions(
                graph, config.num_threads, direction=config.direction
            )
        with span("sim.trace"):
            traces = [
                spmv_trace(
                    graph,
                    space,
                    direction=config.direction,
                    vertex_range=(int(boundaries[t]), int(boundaries[t + 1])),
                    promote_sequential=config.promote_sequential,
                )
                for t in range(config.num_threads)
            ]
        with span("sim.interleave"):
            merged, thread_ids = interleave_traces(traces, config.interleave_interval)

        cache = SetAssociativeCache(config.cache)
        with span("sim.cache", accesses=len(merged)):
            outcome = cache.simulate(merged.lines, scan_interval=config.scan_interval)
        tlb_misses = 0
        if config.tlb is not None:
            with span("sim.tlb"):
                tlb_misses = simulate_tlb(
                    merged.lines, config.cache.line_size, config.tlb
                ).num_misses
        if obs_enabled():
            obs_metrics.registry.counter("sim.accesses").inc(len(merged))
            obs_metrics.registry.counter("sim.l3_misses").inc(
                len(merged) - int(outcome.hits.sum())
            )
            obs_metrics.registry.counter("sim.tlb_misses").inc(tlb_misses)

    return SimulationResult(
        graph=graph,
        config=config,
        trace=merged,
        hits=outcome.hits,
        thread_ids=thread_ids,
        snapshots=outcome.snapshots,
        tlb_misses=tlb_misses,
        partition_boundaries=boundaries,
    )


@dataclass
class StreamedSimulationResult:
    """Headline outcome of one *streamed* (scale-tier) SpMV simulation.

    Unlike :class:`SimulationResult` this never retains the trace, so
    per-vertex attribution (``random_stats`` / ``schedule``) is not
    available — only the aggregate counters the scaling-curve experiment
    needs: per-region access/hit counts, ECS snapshots, TLB misses and
    the shard-merge bookkeeping.
    """

    graph: Graph
    config: SimulationConfig
    space: AddressSpace
    region_accesses: np.ndarray
    region_hits: np.ndarray
    snapshots: list[CacheSnapshot]
    tlb_misses: int
    partition_boundaries: np.ndarray
    shard: ShardedSimulation

    @property
    def num_accesses(self) -> int:
        return int(self.region_accesses.sum())

    @property
    def num_hits(self) -> int:
        return int(self.region_hits.sum())

    @property
    def l3_misses(self) -> int:
        return self.num_accesses - self.num_hits

    @property
    def random_region(self) -> int:
        return (
            Region.VERTEX_DATA if self.config.direction == "pull" else Region.VERTEX_OUT
        )

    @property
    def random_accesses(self) -> int:
        return int(self.region_accesses[self.random_region])

    @property
    def random_misses(self) -> int:
        return int(
            self.region_accesses[self.random_region]
            - self.region_hits[self.random_region]
        )

    @property
    def random_miss_rate(self) -> float:
        accesses = self.random_accesses
        if accesses == 0:
            return 0.0
        return self.random_misses / accesses

    def effective_cache_size_samples(self) -> np.ndarray:
        """Per-snapshot ECS percentage (same maths as the retained path)."""
        if not self.snapshots:
            return np.zeros(0, dtype=np.float64)
        capacity = self.config.cache.num_lines
        counts = self.space.region_counts_batch(
            [snap.resident_lines for snap in self.snapshots]
        )
        return counts[:, self.random_region] / capacity * 100.0

    def effective_cache_size(self) -> float:
        samples = self.effective_cache_size_samples()
        if samples.size == 0:
            raise SimulationError(
                "no snapshots recorded; run with scan_interval > 0 to measure ECS"
            )
        return float(samples.mean())


def simulate_spmv_streamed(
    graph: Graph,
    config: SimulationConfig | None = None,
    *,
    num_shards: int = 1,
    shard_mode: str = "serial",
    chunk_accesses: int = 1 << 20,
    kernel: str = "auto",
    **scaled_kwargs: Any,
) -> StreamedSimulationResult:
    """Scale-tier :func:`simulate_spmv`: bounded memory, optional sharding.

    The pipeline is trace chunks (:func:`spmv_trace_chunks`, one stream
    per thread partition) -> streaming round-robin interleave
    (:func:`interleave_stream`) -> set-sharded replay
    (:func:`simulate_sharded`).  Every stage holds O(``chunk_accesses``)
    state; only the final hit bits (1 byte/access) and per-chunk kind
    codes survive to the end for region accounting.

    Headline counters are **bit-identical** to :func:`simulate_spmv`
    with the same config, for any ``num_shards``/``chunk_accesses``
    (property-tested in ``tests/test_shard.py``).
    """
    if config is None:
        config = SimulationConfig.scaled_for(graph, **scaled_kwargs)
    elif scaled_kwargs:
        raise SimulationError("pass either a config or scaling kwargs, not both")

    with span(
        "sim.spmv_streamed",
        vertices=graph.num_vertices,
        edges=graph.num_edges,
        policy=config.cache.policy,
        threads=config.num_threads,
        shards=num_shards,
    ):
        space = AddressSpace(
            graph.num_vertices, graph.num_edges, line_size=config.cache.line_size
        )
        boundaries = edge_balanced_partitions(
            graph, config.num_threads, direction=config.direction
        )
        sources = [
            spmv_trace_chunks(
                graph,
                space,
                direction=config.direction,
                vertex_range=(int(boundaries[t]), int(boundaries[t + 1])),
                promote_sequential=config.promote_sequential,
                max_accesses=max(1, chunk_accesses // config.num_threads),
            )
            for t in range(config.num_threads)
        ]
        stream = interleave_stream(
            sources, config.interleave_interval, batch_accesses=chunk_accesses
        )

        kind_parts: list[np.ndarray] = []
        tlb_cache: SetAssociativeCache | None = None
        if config.tlb is not None:
            tlb_cache = SetAssociativeCache(
                CacheConfig(
                    num_sets=config.tlb.num_sets,
                    ways=config.tlb.ways,
                    line_size=64,
                    policy="lru",
                )
            )
        tlb_misses = 0

        def _line_chunks() -> "Any":
            nonlocal tlb_misses
            for merged, _tids in stream:
                kind_parts.append(merged.kinds)
                if tlb_cache is not None and config.tlb is not None:
                    pages = lines_to_pages(
                        merged.lines, config.cache.line_size, config.tlb.page_size
                    )
                    tlb_res = tlb_cache.simulate(pages)
                    tlb_misses += tlb_res.num_misses
                yield merged.lines

        sharded = simulate_sharded(
            _line_chunks(),
            config.cache,
            num_shards=num_shards,
            scan_interval=config.scan_interval,
            mode=shard_mode,
            kernel=kernel,
        )

        kinds = (
            np.concatenate(kind_parts) if kind_parts else np.zeros(0, dtype=np.uint8)
        )
        region_accesses = np.bincount(kinds, minlength=Region.COUNT).astype(np.int64)
        region_hits = np.bincount(
            kinds, weights=sharded.hits.astype(np.float64), minlength=Region.COUNT
        ).astype(np.int64)

        if obs_enabled():
            obs_metrics.registry.counter("sim.accesses").inc(sharded.num_accesses)
            obs_metrics.registry.counter("sim.l3_misses").inc(sharded.num_misses)
            obs_metrics.registry.counter("sim.tlb_misses").inc(tlb_misses)

    return StreamedSimulationResult(
        graph=graph,
        config=config,
        space=space,
        region_accesses=region_accesses,
        region_hits=region_hits,
        snapshots=sharded.snapshots,
        tlb_misses=tlb_misses,
        partition_boundaries=boundaries,
        shard=sharded,
    )
