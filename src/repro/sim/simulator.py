"""End-to-end graph-specific cache simulation (Section V-B of the paper).

:func:`simulate_spmv` performs the paper's two-phase parallel
simulation: (1) log memory accesses per thread partition, (2) interleave
the per-thread logs round-robin per interval and replay them through a
simulated shared L3 (and optionally a DTLB).  The returned
:class:`SimulationResult` carries everything the paper's metrics need:
hit bits with per-access attribution, resident-line snapshots for the
Effective Cache Size, TLB miss counts, and a work-stealing schedule for
idle-time estimation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import SimulationError
from repro.graph.graph import Graph
from repro.obs import enabled as obs_enabled
from repro.obs import metrics as obs_metrics
from repro.obs import span

from repro.sim.address_space import AddressSpace, Region
from repro.sim.cache import CacheConfig, CacheSnapshot, SetAssociativeCache
from repro.sim.parallel import edge_balanced_partitions, interleave_traces
from repro.sim.scheduler import (
    ScheduleResult,
    cost_balanced_chunks,
    simulate_work_stealing,
)
from repro.sim.stats import VertexAccessStats, attribute_random_accesses
from repro.sim.timing import TimingModel
from repro.sim.tlb import TLBConfig, simulate_tlb
from repro.sim.trace import MemoryTrace, spmv_trace

__all__ = ["SimulationConfig", "SimulationResult", "simulate_spmv"]


@dataclass(frozen=True)
class SimulationConfig:
    """Everything that parameterizes one SpMV simulation."""

    cache: CacheConfig
    tlb: TLBConfig | None = None
    num_threads: int = 8
    interleave_interval: int = 64
    scan_interval: int = 0
    direction: str = "pull"
    promote_sequential: bool = True
    timing: TimingModel = field(default_factory=TimingModel)

    def __post_init__(self) -> None:
        if self.num_threads <= 0:
            raise SimulationError("num_threads must be positive")
        if self.direction not in ("pull", "push"):
            raise SimulationError(
                f"direction must be 'pull' or 'push', got {self.direction!r}"
            )

    @classmethod
    def scaled_for(
        cls,
        graph: Graph,
        *,
        pressure: float = 0.08,
        num_threads: int = 8,
        scan_interval: int = 0,
        direction: str = "pull",
        with_tlb: bool = True,
        policy: str = "drrip",
    ) -> "SimulationConfig":
        """Config whose cache/TLB are scaled to the graph (DESIGN.md §2)."""
        cache = CacheConfig.scaled_for(
            graph.num_vertices, pressure=pressure, policy=policy
        )
        tlb = TLBConfig.scaled_for(graph.num_vertices) if with_tlb else None
        return cls(
            cache=cache,
            tlb=tlb,
            num_threads=num_threads,
            scan_interval=scan_interval,
            direction=direction,
            timing=TimingModel(num_threads=num_threads),
        )


@dataclass
class SimulationResult:
    """Hit/miss outcome of one simulated parallel SpMV traversal."""

    graph: Graph
    config: SimulationConfig
    trace: MemoryTrace
    hits: np.ndarray
    thread_ids: np.ndarray
    snapshots: list[CacheSnapshot]
    tlb_misses: int
    partition_boundaries: np.ndarray

    # -- headline counters --------------------------------------------------

    @property
    def num_accesses(self) -> int:
        return len(self.trace)

    @property
    def l3_misses(self) -> int:
        return self.num_accesses - int(self.hits.sum())

    @property
    def random_region(self) -> int:
        return (
            Region.VERTEX_DATA if self.config.direction == "pull" else Region.VERTEX_OUT
        )

    @property
    def random_accesses(self) -> int:
        return int((self.trace.kinds == self.random_region).sum())

    @property
    def random_misses(self) -> int:
        mask = self.trace.kinds == self.random_region
        return int(mask.sum()) - int(self.hits[mask].sum())

    @property
    def random_miss_rate(self) -> float:
        accesses = self.random_accesses
        if accesses == 0:
            return 0.0
        return self.random_misses / accesses

    # -- attribution ---------------------------------------------------------

    def random_stats(self, by: str = "read") -> VertexAccessStats:
        """Per-vertex random-access stats (see :mod:`repro.sim.stats`)."""
        return attribute_random_accesses(
            self.trace,
            self.hits,
            self.graph.num_vertices,
            by=by,
            random_region=self.random_region,
        )

    # -- effective cache size --------------------------------------------------

    def effective_cache_size_samples(self) -> np.ndarray:
        """Per-snapshot percentage of capacity holding random-access data.

        Snapshots are classified in one batched pass (see
        :meth:`AddressSpace.region_counts_batch`) instead of one
        ``region_counts`` call per snapshot.
        """
        if not self.snapshots:
            return np.zeros(0, dtype=np.float64)
        capacity = self.config.cache.num_lines
        space = self.trace.space
        counts = space.region_counts_batch(
            [snap.resident_lines for snap in self.snapshots]
        )
        return counts[:, self.random_region] / capacity * 100.0

    def effective_cache_size(self) -> float:
        """Average ECS percentage over all snapshots (Table V)."""
        samples = self.effective_cache_size_samples()
        if samples.size == 0:
            raise SimulationError(
                "no snapshots recorded; run with scan_interval > 0 to measure ECS"
            )
        return float(samples.mean())

    # -- scheduling / timing --------------------------------------------------

    def per_vertex_cost(self) -> np.ndarray:
        """Simulated cycles each vertex's processing consumes."""
        timing = self.config.timing
        degrees = (
            self.graph.in_degrees()
            if self.config.direction == "pull"
            else self.graph.out_degrees()
        )
        stats = self.random_stats(by="proc")
        return (
            degrees.astype(np.float64) * timing.cycles_per_edge
            + stats.misses.astype(np.float64) * timing.cycles_per_l3_miss
        )

    def schedule(self, *, chunks_per_thread: int = 64) -> ScheduleResult:
        """Work-stealing schedule of this traversal (idle % of Table IV).

        Work units are cost-balanced chunks (~64 per thread), matching
        the fine-grained edge-balanced partitioning of the paper's
        runtime.
        """
        costs = cost_balanced_chunks(
            self.per_vertex_cost(),
            self.partition_boundaries,
            chunks_per_thread=chunks_per_thread,
        )
        return simulate_work_stealing(costs)

    def traversal_time_ms(self, *, chunks_per_thread: int = 64) -> float:
        """Simulated traversal time (Table IV "Time" substitute)."""
        idle = self.schedule(chunks_per_thread=chunks_per_thread).idle_percent
        return self.config.timing.traversal_time_ms(
            self.graph.num_edges, self.l3_misses, self.tlb_misses, idle
        )


def simulate_spmv(
    graph: Graph, config: SimulationConfig | None = None, **scaled_kwargs: Any
) -> SimulationResult:
    """Simulate one parallel SpMV traversal of ``graph``.

    When ``config`` is omitted a scaled configuration is derived from the
    graph via :meth:`SimulationConfig.scaled_for`, forwarding any keyword
    arguments.
    """
    if config is None:
        config = SimulationConfig.scaled_for(graph, **scaled_kwargs)
    elif scaled_kwargs:
        raise SimulationError("pass either a config or scaling kwargs, not both")

    with span(
        "sim.spmv",
        vertices=graph.num_vertices,
        edges=graph.num_edges,
        policy=config.cache.policy,
        threads=config.num_threads,
    ):
        with span("sim.partition"):
            space = AddressSpace(
                graph.num_vertices, graph.num_edges, line_size=config.cache.line_size
            )
            boundaries = edge_balanced_partitions(
                graph, config.num_threads, direction=config.direction
            )
        with span("sim.trace"):
            traces = [
                spmv_trace(
                    graph,
                    space,
                    direction=config.direction,
                    vertex_range=(int(boundaries[t]), int(boundaries[t + 1])),
                    promote_sequential=config.promote_sequential,
                )
                for t in range(config.num_threads)
            ]
        with span("sim.interleave"):
            merged, thread_ids = interleave_traces(traces, config.interleave_interval)

        cache = SetAssociativeCache(config.cache)
        with span("sim.cache", accesses=len(merged)):
            outcome = cache.simulate(merged.lines, scan_interval=config.scan_interval)
        tlb_misses = 0
        if config.tlb is not None:
            with span("sim.tlb"):
                tlb_misses = simulate_tlb(
                    merged.lines, config.cache.line_size, config.tlb
                ).num_misses
        if obs_enabled():
            obs_metrics.registry.counter("sim.accesses").inc(len(merged))
            obs_metrics.registry.counter("sim.l3_misses").inc(
                len(merged) - int(outcome.hits.sum())
            )
            obs_metrics.registry.counter("sim.tlb_misses").inc(tlb_misses)

    return SimulationResult(
        graph=graph,
        config=config,
        trace=merged,
        hits=outcome.hits,
        thread_ids=thread_ids,
        snapshots=outcome.snapshots,
        tlb_misses=tlb_misses,
        partition_boundaries=boundaries,
    )
