#!/usr/bin/env python3
"""Structural analysis: why social networks and web graphs disagree.

Reproduces the Section VII story on one social and one web analogue:

* asymmetricity — social in-hubs are symmetric, web in-hubs are not;
* degree range decomposition — who supplies the in-edges of hubs;
* hub coverage — which traversal direction each family favours;
* and the resulting RA recommendation per family.

Run:  python examples/social_vs_web.py
"""

import numpy as np

from repro import LocalityAnalyzer, load_dataset
from repro.core import format_matrix, format_series


def analyze(name: str) -> None:
    graph = load_dataset(name)
    analyzer = LocalityAnalyzer(graph)
    summary = analyzer.summary()
    print(f"=== {name}: |V|={summary.num_vertices:,} |E|={summary.num_edges:,} "
          f"avg deg={summary.average_degree:.1f}")
    print(f"reciprocity: {summary.reciprocity * 100:.1f}%  "
          f"favoured direction: {summary.favoured_direction}")

    asym = analyzer.asymmetricity_distribution()
    x, y = asym.series()
    print(
        format_series(
            np.round(x, 1),
            {"asymmetricity %": np.round(y, 1)},
            x_label="in-degree",
            title="Asymmetricity by in-degree (Figure 4)",
            precision=1,
        )
    )

    decomposition = analyzer.degree_range()
    print(
        format_matrix(
            decomposition.percent,
            decomposition.row_labels,
            decomposition.col_labels,
            title="Degree range decomposition (Figure 5): "
            "rows = source out-degree class",
            precision=0,
        )
    )

    coverage = analyzer.hub_coverage()
    budget = max(1, graph.num_vertices // 100)
    direction = coverage.crossover_favours(budget)
    recommendation = "GOrder" if direction == "pull" else "Rabbit-Order"
    print(
        f"With {budget} hubs cached this graph favours a {direction} "
        f"traversal; per the paper's analysis, try {recommendation} first.\n"
    )


def main() -> None:
    for name in ("twtr-mini", "sk-mini"):
        analyze(name)


if __name__ == "__main__":
    main()
