#!/usr/bin/env python3
"""PageRank under reordering: same answer, different memory behaviour.

PageRank is one of the SpMV-underpinned analytics the paper motivates
with (Section II-B).  This example:

1. computes PageRank on a web-graph analogue;
2. reorders the graph with Rabbit-Order;
3. shows the ranking is *identical* (relabeling changes only memory
   layout, never semantics);
4. compares the simulated locality of the traversal before and after.

Run:  python examples/pagerank_locality.py
"""

import numpy as np

from repro import get_algorithm, load_dataset, pagerank, simulate_spmv
from repro import SimulationConfig
from repro.graph import invert_permutation


def main() -> None:
    graph = load_dataset("sk-mini")
    print(f"Graph: {graph.name}, |V|={graph.num_vertices:,}, "
          f"|E|={graph.num_edges:,}")

    ranks = pagerank(graph, iterations=30)
    top = np.argsort(-ranks)[:5]
    print("\nTop-5 pages by PageRank (original IDs):")
    for v in top:
        print(f"  vertex {v}: rank {ranks[v]:.6f}, in-degree "
              f"{graph.in_degrees()[v]}")

    result = get_algorithm("rabbit")(graph)
    reordered = result.apply(graph)
    ranks_after = pagerank(reordered, iterations=30)

    # Semantics are invariant: rank of old vertex v == rank of its new ID.
    relabeled_ranks = ranks_after[result.relabeling]
    assert np.allclose(ranks, relabeled_ranks, atol=1e-12), (
        "PageRank must be invariant under relabeling"
    )
    old_of_new = invert_permutation(result.relabeling)
    print("\nTop-5 after Rabbit-Order (mapped back to original IDs):")
    for v in np.argsort(-ranks_after)[:5]:
        print(f"  original vertex {old_of_new[v]}: rank {ranks_after[v]:.6f}")

    config = SimulationConfig.scaled_for(graph)
    before = simulate_spmv(graph, config)
    after = simulate_spmv(reordered, config)
    print(f"\nSimulated locality of one SpMV iteration:")
    print(f"  initial ordering : {before.l3_misses:,} L3 misses, "
          f"{before.random_miss_rate * 100:.1f}% random miss rate")
    print(f"  rabbit ordering  : {after.l3_misses:,} L3 misses, "
          f"{after.random_miss_rate * 100:.1f}% random miss rate")
    delta = (1 - after.l3_misses / before.l3_misses) * 100
    print(f"  -> {delta:+.1f}% miss reduction at identical results")


if __name__ == "__main__":
    main()
