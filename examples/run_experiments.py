#!/usr/bin/env python3
"""Regenerate any of the paper's tables and figures from the command line.

Usage:
    python examples/run_experiments.py                # list experiments
    python examples/run_experiments.py fig4 table5    # run a selection
    python examples/run_experiments.py all            # run everything
    python examples/run_experiments.py all --jobs 4   # process fan-out
    python examples/run_experiments.py all --refresh  # recompute stages

Runs are memoized through the artifact store (see DESIGN.md §9): shared
stages — graphs, reorderings, traces — are pulled from disk on warm
runs, and each run writes a provenance manifest.  ``--no-cache``
restores the original store-less behaviour.
"""

import argparse
import sys
import time

from repro import obs
from repro.bench import experiment_ids, run_experiment, run_experiments
from repro.bench.workloads import Workloads
from repro.store import ArtifactStore, RunManifest, default_store_dir


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="run_experiments.py",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="ID",
        help="experiment ids to run, or 'all'; no ids lists what is available",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the artifact store and recompute everything in memory",
    )
    parser.add_argument(
        "--refresh",
        action="store_true",
        help="recompute every stage and overwrite its stored artifact",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="fan experiments out across N worker processes "
        "(stages are shared through the store)",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help=f"artifact store directory (default: {default_store_dir()})",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="RUN_JSON",
        help="enable span/metric tracing and save the run document here "
        "(inspect with: python -m repro.obs summarize RUN_JSON)",
    )
    parser.add_argument(
        "--chrome-trace",
        default=None,
        metavar="TRACE_JSON",
        help="also write a chrome://tracing event file (implies --trace "
        "collection for this run)",
    )
    return parser


def main(argv: list[str]) -> int:
    args = build_parser().parse_args(argv)
    available = experiment_ids()
    if not args.experiments:
        print("Available experiments (pass ids, or 'all'):")
        for experiment_id in available:
            print(f"  {experiment_id}")
        return 0

    selected = available if args.experiments == ["all"] else args.experiments
    unknown = [e for e in selected if e not in available]
    if unknown:
        print(f"Unknown experiment(s): {unknown}; available: {available}")
        return 2
    if args.no_cache and (args.refresh or args.store):
        print("--no-cache cannot be combined with --refresh or --store")
        return 2
    if args.jobs is not None and args.jobs < 1:
        print("--jobs must be a positive integer")
        return 2

    store = None
    if not args.no_cache:
        store = ArtifactStore(args.store or default_store_dir())

    tracing = args.trace is not None or args.chrome_trace is not None
    if tracing:
        if args.jobs is not None:
            print("--trace/--chrome-trace require the in-process runner (no --jobs)")
            return 2
        obs.reset_all()
        obs.enable()

    failures = 0
    start = time.perf_counter()
    if args.jobs is not None:
        reports = run_experiments(
            selected,
            executor="process",
            max_workers=args.jobs,
            store=store,
            refresh=args.refresh,
        )
        for experiment_id in selected:
            report = reports[experiment_id]
            print(report.render())
            print(f"[{experiment_id} finished in {report.duration_s:.1f}s]\n")
            if not report.all_shapes_hold:
                failures += 1
    else:
        manifest = RunManifest.start() if store is not None else None
        workloads = (
            Workloads(store=store, refresh=args.refresh, manifest=manifest)
            if store is not None
            else None
        )
        for experiment_id in selected:
            report = run_experiment(experiment_id, workloads)
            print(report.render())
            print(f"[{experiment_id} finished in {report.duration_s:.1f}s]\n")
            if not report.all_shapes_hold:
                failures += 1
        if store is not None and manifest is not None:
            path = manifest.save(store)
            hits = manifest.hit_count()
            computed = manifest.computed_count()
            print(
                f"[store: {hits} stage hit(s), {computed} computed; "
                f"manifest {path}]"
            )
    elapsed = time.perf_counter() - start

    if tracing:
        obs.disable()
        if args.trace is not None:
            path = obs.save_run(args.trace)
            print(f"[trace: run document {path} "
                  f"(python -m repro.obs summarize {path})]")
        if args.chrome_trace is not None:
            path = obs.save_chrome_trace(args.chrome_trace)
            print(f"[trace: chrome://tracing file {path}]")

    if failures:
        print(f"{failures} experiment(s) had shape mismatches ({elapsed:.1f}s total)")
        return 1
    print(f"All shape checks hold ({elapsed:.1f}s total).")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
