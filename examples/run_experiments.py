#!/usr/bin/env python3
"""Regenerate any of the paper's tables and figures from the command line.

Usage:
    python examples/run_experiments.py                # list experiments
    python examples/run_experiments.py fig4 table5    # run a selection
    python examples/run_experiments.py all            # run everything
"""

import sys
import time

from repro.bench import experiment_ids, run_experiment, workloads


def main(argv: list[str]) -> int:
    available = experiment_ids()
    if not argv:
        print("Available experiments (pass ids, or 'all'):")
        for experiment_id in available:
            print(f"  {experiment_id}")
        return 0

    selected = available if argv == ["all"] else argv
    unknown = [e for e in selected if e not in available]
    if unknown:
        print(f"Unknown experiment(s): {unknown}; available: {available}")
        return 2

    failures = 0
    for experiment_id in selected:
        start = time.perf_counter()
        report = run_experiment(experiment_id, workloads)
        elapsed = time.perf_counter() - start
        print(report.render())
        print(f"[{experiment_id} finished in {elapsed:.1f}s]\n")
        if not report.all_shapes_hold:
            failures += 1
    if failures:
        print(f"{failures} experiment(s) had shape mismatches")
        return 1
    print("All shape checks hold.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
