#!/usr/bin/env python3
"""Quickstart: reorder a graph and measure what happened to locality.

Loads a scaled Twitter analogue, applies every registered reordering
algorithm, and compares simulated L3 misses, DTLB misses, effective
cache size and traversal time — a miniature of the paper's Table IV.

Run:  python examples/quickstart.py
"""

from repro import (
    SimulationConfig,
    algorithm_names,
    get_algorithm,
    load_dataset,
    simulate_spmv,
)
from repro.core import format_table


def main() -> None:
    graph = load_dataset("twtr-mini")
    print(f"Loaded {graph.name}: {graph.num_vertices:,} vertices, "
          f"{graph.num_edges:,} edges\n")

    # One cache/TLB configuration scaled to the graph, reused for every
    # ordering so the comparison is apples-to-apples.
    config = SimulationConfig.scaled_for(graph, scan_interval=5000)

    rows = []
    for name in algorithm_names():
        algorithm = get_algorithm(name)
        result = algorithm(graph)
        reordered = result.apply(graph)
        sim = simulate_spmv(reordered, config)
        rows.append(
            [
                name,
                result.preprocessing_seconds,
                sim.l3_misses / 1e3,
                sim.random_miss_rate * 100.0,
                sim.tlb_misses,
                sim.effective_cache_size(),
                sim.traversal_time_ms(),
            ]
        )

    print(
        format_table(
            ["ordering", "prep (s)", "L3 miss (K)", "rand miss %",
             "DTLB miss", "ECS %", "time (ms)"],
            rows,
            title="SpMV locality under each ordering (simulated)",
            precision=2,
        )
    )
    best = min(rows, key=lambda r: r[6])
    print(f"\nFastest traversal: {best[0]} ({best[6]:.3f} ms)")


if __name__ == "__main__":
    main()
