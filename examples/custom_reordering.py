#!/usr/bin/env python3
"""Build and evaluate your own reordering algorithm.

Shows the extension path a downstream user takes: subclass
:class:`repro.ReorderingAlgorithm`, emit a relabeling array, and let
the toolkit benchmark it against the paper's RAs with the same metrics.

The custom RA here is *host clustering by connectivity*: group each
vertex with the neighbour it shares the most edges with (a one-level
Rabbit-Order).  It will not beat the real RAs — the point is the
workflow.

Run:  python examples/custom_reordering.py
"""

import numpy as np

from repro import (
    ReorderingAlgorithm,
    SimulationConfig,
    get_algorithm,
    load_dataset,
    simulate_spmv,
)
from repro.core import aid_per_vertex, format_table
from repro.graph import Graph, sort_order_to_relabeling


class HeaviestNeighbourClustering(ReorderingAlgorithm):
    """Place every vertex right after its most-connected neighbour."""

    name = "heaviest-neighbour"

    def compute(self, graph: Graph, details: dict) -> np.ndarray:
        n = graph.num_vertices
        # Each vertex's anchor: the undirected neighbour seen most often.
        anchor = np.arange(n, dtype=np.int64)
        src, dst = graph.edges()
        undirected = np.concatenate([src, dst]), np.concatenate([dst, src])
        order_by = np.lexsort((undirected[1], undirected[0]))
        u_sorted = undirected[0][order_by]
        v_sorted = undirected[1][order_by]
        # First neighbour in sorted order is a deterministic stand-in
        # for "heaviest" on simple graphs; multi-edges sort adjacently
        # so the most frequent neighbour of u is a run — pick the
        # longest run per vertex.
        for v in range(n):
            lo = np.searchsorted(u_sorted, v)
            hi = np.searchsorted(u_sorted, v + 1)
            if lo == hi:
                continue
            neighbours, counts = np.unique(
                v_sorted[lo:hi], return_counts=True
            )
            anchor[v] = neighbours[np.argmax(counts)]
        # Emit vertices grouped by their anchor.
        order = np.lexsort((np.arange(n), anchor))
        details["num_self_anchored"] = int((anchor == np.arange(n)).sum())
        return sort_order_to_relabeling(order.astype(np.int64))


def main() -> None:
    graph = load_dataset("wbcc-mini")
    config = SimulationConfig.scaled_for(graph)

    contenders = [
        get_algorithm("identity"),
        HeaviestNeighbourClustering(),
        get_algorithm("rabbit"),
        get_algorithm("dbg"),
        get_algorithm("community", inner="degree"),
        get_algorithm("hisorder"),
    ]
    rows = []
    for algorithm in contenders:
        result = algorithm(graph)
        reordered = result.apply(graph)
        sim = simulate_spmv(reordered, config)
        rows.append(
            [
                algorithm.name,
                result.preprocessing_seconds,
                float(np.nanmean(aid_per_vertex(reordered))),
                sim.l3_misses / 1e3,
                sim.random_miss_rate * 100.0,
            ]
        )
    print(
        format_table(
            ["ordering", "prep (s)", "mean AID", "L3 miss (K)", "rand miss %"],
            rows,
            title=f"Custom RA vs the paper's RAs on {graph.name}",
            precision=2,
        )
    )


if __name__ == "__main__":
    main()
