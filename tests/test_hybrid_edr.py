"""Unit tests for the hybrid RA and the EDR restriction wrapper."""

import numpy as np
import pytest

from repro.errors import ReorderingError
from repro.core import log_bins
from repro.core.missdist import MissRateDistribution
from repro.graph import invert_permutation, is_permutation, validate_graph
from repro.reorder import (
    EDRRestricted,
    HybridOrder,
    Identity,
    RabbitOrder,
    efficacy_degree_range,
)


class TestHybrid:
    def test_valid_permutation(self, small_social):
        result = HybridOrder()(small_social)
        assert is_permutation(result.relabeling, small_social.num_vertices)
        validate_graph(result.apply(small_social))

    def test_hdv_occupy_low_ids(self, small_social):
        result = HybridOrder()(small_social)
        num_hdv = result.details["num_hdv"]
        order = invert_permutation(result.relabeling)
        degrees = small_social.total_degrees()
        threshold = 2.0 * small_social.average_degree
        assert (degrees[order[:num_hdv]] > threshold).all()

    def test_works_on_web(self, small_web):
        result = HybridOrder()(small_web)
        assert is_permutation(result.relabeling, small_web.num_vertices)


class TestEDRRestricted:
    def test_valid_permutation(self, small_web):
        wrapped = EDRRestricted(RabbitOrder(), 1, 50)
        result = wrapped(small_web)
        assert is_permutation(result.relabeling, small_web.num_vertices)

    def test_out_of_range_vertices_keep_relative_order(self, small_web):
        wrapped = EDRRestricted(RabbitOrder(), 1, 20)
        result = wrapped(small_web)
        degrees = small_web.total_degrees()
        skipped = np.flatnonzero(~((degrees >= 1) & (degrees <= 20)))
        new_ids = result.relabeling[skipped]
        assert (np.diff(new_ids) > 0).all()

    def test_skipped_count(self, small_web):
        wrapped = EDRRestricted(Identity(), 5, 10)
        result = wrapped(small_web)
        degrees = small_web.total_degrees()
        in_range = ((degrees >= 5) & (degrees <= 10)).sum()
        assert result.details["num_in_range"] == in_range
        assert result.details["num_skipped"] == small_web.num_vertices - in_range

    def test_name_derived(self):
        assert EDRRestricted(RabbitOrder(), 1, 10).name == "rabbit+edr"

    def test_empty_range_rejected(self):
        with pytest.raises(ReorderingError):
            EDRRestricted(RabbitOrder(), 10, 5)

    def test_unknown_direction(self):
        with pytest.raises(ReorderingError):
            EDRRestricted(RabbitOrder(), 1, 5, direction="up")

    def test_range_matching_nothing(self, small_web):
        wrapped = EDRRestricted(RabbitOrder(), 10**8, 10**9)
        result = wrapped(small_web)
        assert result.relabeling.tolist() == list(range(small_web.num_vertices))


def make_dist(bins, rates, accesses=None):
    rates = np.asarray(rates, dtype=np.float64)
    if accesses is None:
        accesses = np.full(bins.num_bins, 100, dtype=np.int64)
    misses = (rates / 100.0 * accesses).astype(np.int64)
    return MissRateDistribution(
        bins=bins, miss_rate_percent=rates, accesses=accesses, misses=misses
    )


class TestEfficacyRange:
    def test_detects_improved_band(self):
        bins = log_bins(100)  # edges 1,2,5,10,20,50,100,200 -> 7 bins
        initial = make_dist(bins, [50, 50, 50, 50, 50, 50, 50])
        better = make_dist(bins, [50, 30, 30, 30, 50, 50, 50])
        lo, hi = efficacy_degree_range(initial, better)
        assert lo == 2
        assert hi == 19  # last improved bin is 10-20

    def test_min_improvement_threshold(self):
        bins = log_bins(10)  # edges 1,2,5,10,20 -> 4 bins
        initial = make_dist(bins, [50, 50, 50, 50])
        barely = make_dist(bins, [49.5, 49.5, 49.5, 49.5])
        with pytest.raises(ReorderingError):
            efficacy_degree_range(initial, barely, min_improvement_percent=1.0)

    def test_no_improvement_raises(self):
        bins = log_bins(10)
        initial = make_dist(bins, [50, 50, 50, 50])
        worse = make_dist(bins, [60, 60, 60, 60])
        with pytest.raises(ReorderingError):
            efficacy_degree_range(initial, worse)

    def test_bin_mismatch_rejected(self):
        a = make_dist(log_bins(10), [50, 50, 50, 50])
        b = make_dist(log_bins(100), [10] * 7)
        with pytest.raises(ReorderingError):
            efficacy_degree_range(a, b)

    def test_empty_bins_ignored(self):
        bins = log_bins(10)
        accesses = np.array([100, 0, 100, 0])
        initial = make_dist(bins, [50, 0, 50, 0], accesses)
        better = make_dist(bins, [40, 0, 50, 0], accesses)
        lo, hi = efficacy_degree_range(initial, better)
        assert (lo, hi) == (1, 1)
