"""Unit tests for :mod:`repro.obs` plus the disabled-overhead guard.

The overhead guard is the load-bearing test: the instrumented hot paths
(`simulate_spmv`, the reorder algorithms, the store) promise *zero* span
allocations while ``REPRO_TRACE`` is off, and the debug counters make
that property assertable without timing noise.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import obs
from repro.errors import ObservabilityError
from repro.obs import metrics as obs_metrics
from repro.obs.cli import main as obs_main
from repro.obs.export import PhaseSummary, aggregate_phases
from repro.sim.simulator import SimulationConfig, simulate_spmv


@pytest.fixture(autouse=True)
def clean_obs_state():
    """Every test starts disabled with empty spans/metrics, and leaves so."""
    obs.disable()
    obs.reset_all()
    yield
    obs.disable()
    obs.reset_all()


class TestSwitch:
    def test_disabled_by_default_without_env(self, monkeypatch):
        monkeypatch.delenv(obs.TRACE_ENV, raising=False)
        assert obs.refresh_from_env() is False

    @pytest.mark.parametrize("value", ["", "0", "false", "OFF", "no", " 0 "])
    def test_falsy_env_values_disable(self, monkeypatch, value):
        monkeypatch.setenv(obs.TRACE_ENV, value)
        assert obs.refresh_from_env() is False

    @pytest.mark.parametrize("value", ["1", "true", "on", "yes", "anything"])
    def test_truthy_env_values_enable(self, monkeypatch, value):
        monkeypatch.setenv(obs.TRACE_ENV, value)
        assert obs.refresh_from_env() is True
        obs.disable()

    def test_recording_restores_prior_state(self):
        assert not obs.enabled()
        with obs.recording():
            assert obs.enabled()
        assert not obs.enabled()

    def test_recording_fresh_clears_previous_activity(self):
        with obs.recording():
            with obs.span("stale"):
                pass
        with obs.recording(fresh=True):
            assert obs.completed_spans() == []


class TestSpans:
    def test_disabled_span_is_the_shared_null_singleton(self):
        first = obs.span("a", big_attr=list(range(100)))
        second = obs.span("b")
        assert first is second  # no allocation on the disabled path

    def test_nesting_records_parent_ids(self):
        with obs.recording():
            with obs.span("outer") as outer:
                with obs.span("inner"):
                    pass
            with obs.span("sibling"):
                pass
        spans = {record.name: record for record in obs.completed_spans()}
        assert spans["outer"].parent_id == -1
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["sibling"].parent_id == -1
        assert outer.span_id != spans["inner"].span_id

    def test_attrs_and_set(self):
        with obs.recording():
            with obs.span("work", vertices=7) as live:
                live.set(edges=13)
        (record,) = obs.completed_spans()
        assert record.attrs == {"vertices": 7, "edges": 13}
        assert record.end_s >= record.start_s
        assert record.duration_s == record.end_s - record.start_s

    def test_span_survives_exception(self):
        with obs.recording():
            with pytest.raises(ValueError):
                with obs.span("boom"):
                    raise ValueError("inner failure")
            with obs.span("after"):
                pass
        names = [record.name for record in obs.completed_spans()]
        assert names == ["boom", "after"]
        # Nesting is intact after the exception: "after" is a root span.
        assert obs.completed_spans()[1].parent_id == -1

    def test_threads_get_independent_stacks(self):
        def worker() -> None:
            with obs.span("child-root"):
                pass

        with obs.recording():
            with obs.span("main-root"):
                thread = threading.Thread(target=worker)
                thread.start()
                thread.join()
        spans = {record.name: record for record in obs.completed_spans()}
        # The other thread's span must NOT nest under the main thread's.
        assert spans["child-root"].parent_id == -1
        assert spans["child-root"].thread_id != spans["main-root"].thread_id

    def test_traced_decorator_bare_and_named(self):
        @obs.traced
        def plain(x):
            return x + 1

        @obs.traced("custom.name")
        def named(x):
            return x * 2

        with obs.recording():
            assert plain(1) == 2
            assert named(2) == 4
        names = [record.name for record in obs.completed_spans()]
        assert names[1] == "custom.name"
        assert names[0].endswith("plain")

    def test_span_ids_are_unique_and_monotonic(self):
        with obs.recording():
            for index in range(5):
                with obs.span(f"s{index}"):
                    pass
        ids = [record.span_id for record in obs.completed_spans()]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)


class TestOverheadGuard:
    def test_disabled_simulation_allocates_zero_spans(self, ring_graph):
        """The tier-1 acceptance property: REPRO_TRACE=0 -> no span objects.

        Runs the fully instrumented pipeline (partition, trace, cache,
        TLB, metrics counters) and asserts via the debug counters that
        the disabled path created nothing at all.
        """
        assert not obs.enabled()
        obs.reset()
        config = SimulationConfig.scaled_for(ring_graph)
        result = simulate_spmv(ring_graph, config)
        assert result.num_accesses > 0  # the pipeline really ran
        counters = obs.debug_counters()
        assert counters["spans_started"] == 0
        assert counters["spans_completed"] == 0
        assert counters["metric_updates"] == 0
        assert obs_metrics.registry.snapshot() == {}

    def test_enabled_simulation_does_allocate(self, ring_graph):
        """Sanity check that the guard above is not vacuous."""
        config = SimulationConfig.scaled_for(ring_graph)
        with obs.recording():
            simulate_spmv(ring_graph, config)
            counters = obs.debug_counters()
        assert counters["spans_started"] > 0
        assert counters["metric_updates"] > 0


class TestMetrics:
    def test_counter_gauge_histogram(self):
        with obs.recording():
            registry = obs_metrics.registry
            registry.counter("sim.accesses").inc(10)
            registry.counter("sim.accesses").inc()
            registry.gauge("store.size").set(42)
            histogram = registry.histogram("batch.len")
            for value in (1.0, 3.0, 2.0):
                histogram.observe(value)
            snapshot = registry.snapshot()
        assert snapshot["sim.accesses"] == {"type": "counter", "value": 11}
        assert snapshot["store.size"] == {"type": "gauge", "value": 42}
        assert snapshot["batch.len"]["count"] == 3
        assert snapshot["batch.len"]["min"] == 1.0
        assert snapshot["batch.len"]["max"] == 3.0
        assert snapshot["batch.len"]["mean"] == 2.0

    def test_disabled_metrics_are_noops(self):
        registry = obs_metrics.registry
        registry.counter("quiet").inc(5)
        registry.gauge("quiet.gauge").set(1)
        registry.histogram("quiet.hist").observe(1)
        with obs.recording(fresh=False):
            snapshot = registry.snapshot()
        assert snapshot["quiet"]["value"] == 0
        assert snapshot["quiet.gauge"]["value"] is None
        assert snapshot["quiet.hist"]["count"] == 0

    def test_name_bound_to_one_instrument_type(self):
        registry = obs_metrics.registry
        registry.counter("sim.accesses")
        with pytest.raises(ObservabilityError):
            registry.gauge("sim.accesses")

    def test_counter_delta(self):
        with obs.recording():
            registry = obs_metrics.registry
            registry.counter("a").inc(3)
            registry.gauge("g").set(9)
            before = registry.snapshot()
            registry.counter("a").inc(4)
            registry.counter("b").inc(1)
            delta = registry.counter_delta(before)
        assert delta == {"a": 4, "b": 1}  # gauges and unchanged names absent


class TestPercentiles:
    def test_nearest_rank_definition(self):
        values = [float(v) for v in range(1, 101)]  # 1..100
        result = obs_metrics.percentiles(values)
        assert result == {"p50": 50.0, "p95": 95.0, "p99": 99.0}
        assert obs_metrics.percentiles([7.0], (50, 99))["p99"] == 7.0
        assert obs_metrics.percentiles(values, (99.9,)) == {"p99_9": 100.0}
        assert obs_metrics.percentiles(values, (100,))["p100"] == 100.0

    def test_order_does_not_matter(self):
        shuffled = [3.0, 1.0, 2.0, 5.0, 4.0]
        assert obs_metrics.percentiles(shuffled, (50,))["p50"] == 3.0

    def test_empty_and_out_of_range_raise(self):
        with pytest.raises(ObservabilityError):
            obs_metrics.percentiles([])
        with pytest.raises(ObservabilityError):
            obs_metrics.percentiles([1.0], (0,))
        with pytest.raises(ObservabilityError):
            obs_metrics.percentiles([1.0], (101,))

    def test_histogram_percentiles_and_snapshot(self):
        with obs.recording():
            histogram = obs_metrics.registry.histogram("req.latency_ms")
            for value in range(1, 101):
                histogram.observe(float(value))
            quantiles = histogram.percentiles()
            snapshot = obs_metrics.registry.snapshot()
        assert quantiles == {"p50": 50.0, "p95": 95.0, "p99": 99.0}
        entry = snapshot["req.latency_ms"]
        assert entry["p50"] == 50.0
        assert entry["p95"] == 95.0
        assert entry["p99"] == 99.0

    def test_empty_histogram_snapshot_has_no_percentiles(self):
        with obs.recording():
            obs_metrics.registry.histogram("quiet.hist")
            snapshot = obs_metrics.registry.snapshot()
        assert "p50" not in snapshot["quiet.hist"]

    def test_reservoir_keeps_trailing_window(self):
        with obs.recording():
            histogram = obs_metrics.registry.histogram("long.stream")
            for value in range(obs_metrics.HISTOGRAM_RESERVOIR + 100):
                histogram.observe(float(value))
            quantiles = histogram.percentiles((100,))
        # Totals cover the full stream; percentiles cover the window.
        assert histogram.count == obs_metrics.HISTOGRAM_RESERVOIR + 100
        assert quantiles["p100"] == float(obs_metrics.HISTOGRAM_RESERVOIR + 99)
        assert len(histogram._samples) == obs_metrics.HISTOGRAM_RESERVOIR

    def test_summarize_run_shows_percentiles(self):
        with obs.recording():
            histogram = obs_metrics.registry.histogram("req.latency_ms")
            for value in (10.0, 20.0, 30.0):
                histogram.observe(value)
            document = obs.export_run()
        text = obs.summarize_run(document)
        assert "p50=20" in text
        assert "p95=30" in text
        assert "p99=30" in text


class TestExport:
    def _record_small_run(self) -> None:
        with obs.span("bench.fig3"):
            with obs.span("reorder.rabbit", vertices=64):
                pass
        obs_metrics.registry.counter("store.hit").inc(2)

    def test_run_roundtrip(self, tmp_path):
        with obs.recording():
            self._record_small_run()
            path = obs.save_run(tmp_path / "run.json")
        document = obs.load_run(path)
        assert document["version"] == 1
        assert [span["name"] for span in document["spans"]] == [
            "reorder.rabbit",
            "bench.fig3",
        ]
        assert document["metrics"]["store.hit"]["value"] == 2
        assert "trace_enabled" in document["environment"]

    def test_load_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99, "spans": []}))
        with pytest.raises(ObservabilityError):
            obs.load_run(path)

    def test_chrome_trace_events(self, tmp_path):
        with obs.recording():
            self._record_small_run()
            path = obs.save_chrome_trace(tmp_path / "trace.json")
        document = json.loads(path.read_text())
        events = document["traceEvents"]
        assert len(events) == 2
        assert all(event["ph"] == "X" for event in events)
        assert all(event["ts"] >= 0 and event["dur"] >= 0 for event in events)
        names = {event["name"] for event in events}
        assert names == {"bench.fig3", "reorder.rabbit"}

    def test_aggregate_phases_paths_and_self_time(self):
        with obs.recording():
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
            document = obs.export_run()
        phases = {entry.path: entry for entry in aggregate_phases(document["spans"])}
        assert set(phases) == {"outer", "outer/inner"}
        outer = phases["outer"]
        assert isinstance(outer, PhaseSummary)
        assert outer.count == 1 and outer.depth == 0
        assert phases["outer/inner"].depth == 1
        assert outer.self_s == pytest.approx(
            outer.total_s - phases["outer/inner"].total_s
        )

    def test_summarize_run_mentions_phases_and_metrics(self):
        with obs.recording():
            self._record_small_run()
            document = obs.export_run()
        text = obs.summarize_run(document)
        assert "bench.fig3" in text
        assert "reorder.rabbit" in text
        assert "store.hit" in text


class TestCLI:
    def test_summarize_subcommand(self, tmp_path, capsys):
        with obs.recording():
            with obs.span("bench.table5"):
                pass
            run_path = obs.save_run(tmp_path / "run.json")
        assert obs_main(["summarize", str(run_path)]) == 0
        captured = capsys.readouterr()
        assert "bench.table5" in captured.out

    def test_chrome_subcommand(self, tmp_path):
        with obs.recording():
            with obs.span("bench.table5"):
                pass
            run_path = obs.save_run(tmp_path / "run.json")
        out_path = tmp_path / "trace.json"
        assert obs_main(["chrome", str(run_path), "-o", str(out_path)]) == 0
        assert json.loads(out_path.read_text())["traceEvents"]

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert obs_main(["summarize", str(tmp_path / "absent.json")]) == 1
        assert "absent.json" in capsys.readouterr().err
