"""Unit tests for the experiment harness (registry and report plumbing).

The experiments themselves run as benchmarks; here only the cheap
structural ones are executed end-to-end, on the shared workload cache.
"""

import pytest

from repro.bench import (
    EXPERIMENTS,
    ExperimentReport,
    Workloads,
    experiment_ids,
    run_experiment,
)
from repro.errors import ExperimentError


class TestRegistry:
    def test_all_experiments_registered(self):
        assert len(EXPERIMENTS) == 15
        assert set(experiment_ids()) >= {
            "table1", "table2", "table3", "table4", "table5", "table6",
            "table7", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
            "sec8_edr", "scale_curve",
        }

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            run_experiment("table99")

    def test_report_render(self):
        report = ExperimentReport(
            experiment_id="x",
            title="T",
            text="body",
            shape_checks={"claim": True, "other": False},
        )
        rendered = report.render()
        assert "MISMATCH" in rendered
        assert "[ok] claim" in rendered
        assert not report.all_shapes_hold


class TestWorkloadCache:
    @pytest.mark.slow
    def test_graph_cached(self):
        w = Workloads()
        assert w.graph("sk-mini") is w.graph("sk-mini")

    def test_family_lookup(self):
        w = Workloads()
        assert w.family("twtr-mini") == "SN"
        assert w.family("sk-mini") == "WG"
        with pytest.raises(ExperimentError):
            w.family("unknown")

    @pytest.mark.slow
    def test_identity_reordered_graph_is_original(self):
        w = Workloads()
        assert w.reordered_graph("sk-mini", "identity") is w.graph("sk-mini")

    @pytest.mark.slow
    def test_clear(self):
        w = Workloads()
        w.graph("sk-mini")
        w.clear()
        assert not w._graphs


@pytest.mark.slow
class TestCheapExperimentsEndToEnd:
    @pytest.fixture(scope="class")
    def workloads(self):
        return Workloads()

    @pytest.mark.parametrize("experiment_id", ["fig4", "fig5", "fig6"])
    def test_structural_experiments_hold(self, workloads, experiment_id):
        report = run_experiment(experiment_id, workloads)
        assert isinstance(report, ExperimentReport)
        assert report.all_shapes_hold, report.shape_checks
        assert report.text
