"""Unit and property tests for the functional SpMV engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.graph import Graph, random_permutation, apply_to_vertex_data
from repro.sim import pagerank, spmv_iterations, spmv_pull, spmv_push


class TestPull:
    def test_ring_shifts_data(self, ring_graph):
        data = np.arange(12, dtype=np.float64)
        out = spmv_pull(ring_graph, data)
        # vertex v's only in-neighbour is v-1 (mod 12)
        assert np.array_equal(out, np.roll(data, 1))

    def test_star_sums_leaves(self, star_graph):
        data = np.ones(20)
        out = spmv_pull(star_graph, data)
        assert out[0] == 19
        assert (out[1:] == 0).all()

    def test_shape_validation(self, ring_graph):
        with pytest.raises(SimulationError):
            spmv_pull(ring_graph, np.ones(5))


class TestPushPullEquivalence:
    def test_equal_on_tiny(self, tiny_graph):
        data = np.array([1.0, 2.0, 4.0, 8.0, 16.0, 32.0])
        assert np.array_equal(spmv_pull(tiny_graph, data),
                              spmv_push(tiny_graph, data))

    def test_equal_on_social(self, small_social):
        rng = np.random.default_rng(0)
        data = rng.random(small_social.num_vertices)
        assert np.allclose(spmv_pull(small_social, data),
                           spmv_push(small_social, data))

    def test_iterations(self, ring_graph):
        data = np.arange(12, dtype=np.float64)
        out = spmv_iterations(ring_graph, data, 3)
        assert np.array_equal(out, np.roll(data, 3))

    def test_zero_iterations(self, ring_graph):
        data = np.arange(12, dtype=np.float64)
        assert np.array_equal(spmv_iterations(ring_graph, data, 0), data)

    def test_negative_iterations(self, ring_graph):
        with pytest.raises(SimulationError):
            spmv_iterations(ring_graph, np.zeros(12), -1)

    def test_unknown_direction(self, ring_graph):
        with pytest.raises(SimulationError):
            spmv_iterations(ring_graph, np.zeros(12), 1, direction="up")


class TestRelabelingInvariance:
    """The core oracle: relabeling never changes SpMV semantics."""

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_pull_invariant_under_relabeling(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 40))
        m = int(rng.integers(1, 150))
        src = rng.integers(0, n, size=m)
        dst = rng.integers(0, n, size=m)
        graph = Graph.from_edges(n, src, dst)
        data = rng.random(n)

        perm = random_permutation(n, seed=seed + 1)
        relabeled = graph.permuted(perm)
        moved = apply_to_vertex_data(perm, data)

        original = spmv_pull(graph, data)
        relabeled_out = spmv_pull(relabeled, moved)
        assert np.allclose(apply_to_vertex_data(perm, original), relabeled_out)


class TestPageRank:
    def test_sums_to_one(self, small_web):
        ranks = pagerank(small_web, iterations=25)
        assert ranks.sum() == pytest.approx(1.0, abs=1e-9)
        assert (ranks > 0).all()

    def test_star_center_dominates(self, star_graph):
        ranks = pagerank(star_graph, iterations=30)
        assert ranks[0] == ranks.max()

    def test_empty_graph(self):
        g = Graph.from_edges(0, np.array([], dtype=np.int64),
                             np.array([], dtype=np.int64))
        assert pagerank(g).shape == (0,)

    def test_converges_early(self, ring_graph):
        a = pagerank(ring_graph, iterations=500, tolerance=1e-14)
        b = pagerank(ring_graph, iterations=1000, tolerance=1e-14)
        assert np.allclose(a, b)

    def test_invariant_under_relabeling(self, small_social):
        perm = random_permutation(small_social.num_vertices, seed=4)
        relabeled = small_social.permuted(perm)
        r1 = pagerank(small_social, iterations=20)
        r2 = pagerank(relabeled, iterations=20)
        assert np.allclose(apply_to_vertex_data(perm, r1), r2, atol=1e-12)
