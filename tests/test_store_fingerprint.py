"""Fingerprinting: canonical JSON, content keys, code-version hashing."""

from __future__ import annotations

import importlib

import numpy as np
import pytest

from repro.errors import StoreError
from repro.store import (
    canonical_json,
    clear_code_version_cache,
    code_version,
    fingerprint,
)


class TestCanonicalJSON:
    def test_dict_order_independent(self):
        assert canonical_json({"a": 1, "b": 2}) == canonical_json({"b": 2, "a": 1})

    def test_tuples_and_lists_agree(self):
        assert canonical_json((1, 2, "x")) == canonical_json([1, 2, "x"])

    def test_numpy_scalars_match_python(self):
        assert canonical_json(np.int64(7)) == canonical_json(7)
        assert canonical_json(np.float64(0.5)) == canonical_json(0.5)

    def test_ndarray_keyed_by_content(self):
        a = np.arange(10, dtype=np.int64)
        same = np.arange(10, dtype=np.int64)
        different = np.arange(10, dtype=np.int64) + 1
        assert canonical_json(a) == canonical_json(same)
        assert canonical_json(a) != canonical_json(different)

    def test_ndarray_dtype_and_shape_matter(self):
        a = np.zeros(4, dtype=np.int64)
        assert canonical_json(a) != canonical_json(a.astype(np.int32))
        assert canonical_json(a) != canonical_json(a.reshape(2, 2))

    def test_non_string_keys_rejected(self):
        with pytest.raises(StoreError):
            canonical_json({1: "x"})

    def test_unserializable_rejected(self):
        with pytest.raises(StoreError):
            canonical_json(object())


class TestFingerprint:
    def test_deterministic(self):
        assert fingerprint("graph", {"d": "x"}, "c0") == fingerprint(
            "graph", {"d": "x"}, "c0"
        )

    def test_sensitive_to_every_component(self):
        base = fingerprint("graph", {"d": "x"}, "c0")
        assert fingerprint("simulation", {"d": "x"}, "c0") != base
        assert fingerprint("graph", {"d": "y"}, "c0") != base
        assert fingerprint("graph", {"d": "x"}, "c1") != base


@pytest.fixture
def fake_package(tmp_path, monkeypatch):
    """An importable throwaway package whose source the test can edit."""
    pkg = tmp_path / "fp_fixture_pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("X = 1\n", encoding="utf-8")
    (pkg / "mod.py").write_text("def f():\n    return 1\n", encoding="utf-8")
    monkeypatch.syspath_prepend(str(tmp_path))
    importlib.invalidate_caches()
    clear_code_version_cache()
    yield pkg
    clear_code_version_cache()


class TestCodeVersion:
    def test_stable_and_order_independent(self):
        assert code_version("repro.store") == code_version("repro.store")
        assert code_version("repro.store", "repro.graph") == code_version(
            "repro.graph", "repro.store"
        )

    def test_unknown_module_rejected(self):
        with pytest.raises(StoreError):
            code_version("repro.definitely_not_a_module")

    def test_needs_at_least_one_module(self):
        with pytest.raises(StoreError):
            code_version()

    def test_source_edit_changes_version(self, fake_package):
        before = code_version("fp_fixture_pkg")
        (fake_package / "mod.py").write_text(
            "def f():\n    return 2\n", encoding="utf-8"
        )
        # Cached per process: unchanged until the cache is dropped.
        assert code_version("fp_fixture_pkg") == before
        clear_code_version_cache()
        assert code_version("fp_fixture_pkg") != before

    def test_new_file_changes_version(self, fake_package):
        before = code_version("fp_fixture_pkg")
        (fake_package / "extra.py").write_text("Y = 2\n", encoding="utf-8")
        clear_code_version_cache()
        assert code_version("fp_fixture_pkg") != before
