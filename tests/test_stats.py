"""Unit tests for per-vertex access attribution."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim import AddressSpace, MemoryTrace, Region, attribute_random_accesses


def trace_of(records, n=16):
    space = AddressSpace(n, 64)
    base = space.data_base // space.line_size
    return MemoryTrace(
        lines=np.array([base for _ in records], dtype=np.int64),
        kinds=np.array([r[0] for r in records], dtype=np.uint8),
        read_vertex=np.array([r[1] for r in records], dtype=np.int64),
        proc_vertex=np.array([r[2] for r in records], dtype=np.int64),
        space=space,
    )


class TestAttribution:
    def test_by_read(self):
        trace = trace_of(
            [
                (Region.VERTEX_DATA, 3, 7),
                (Region.VERTEX_DATA, 3, 8),
                (Region.EDGES, -1, 8),
            ]
        )
        hits = np.array([0, 1, 0], dtype=np.uint8)
        stats = attribute_random_accesses(trace, hits, 16, by="read")
        assert stats.accesses[3] == 2
        assert stats.misses[3] == 1
        assert stats.total_accesses == 2

    def test_by_proc(self):
        trace = trace_of(
            [(Region.VERTEX_DATA, 3, 7), (Region.VERTEX_DATA, 4, 7)]
        )
        hits = np.array([1, 1], dtype=np.uint8)
        stats = attribute_random_accesses(trace, hits, 16, by="proc")
        assert stats.accesses[7] == 2
        assert stats.misses[7] == 0

    def test_miss_rate_nan_for_untouched(self):
        trace = trace_of([(Region.VERTEX_DATA, 0, 0)])
        stats = attribute_random_accesses(
            trace, np.array([0], dtype=np.uint8), 16
        )
        rates = stats.miss_rate()
        assert rates[0] == 1.0
        assert np.isnan(rates[1])

    def test_wrong_hits_length(self):
        trace = trace_of([(Region.VERTEX_DATA, 0, 0)])
        with pytest.raises(SimulationError):
            attribute_random_accesses(trace, np.zeros(2, dtype=np.uint8), 16)

    def test_unknown_attribution(self):
        trace = trace_of([(Region.VERTEX_DATA, 0, 0)])
        with pytest.raises(SimulationError):
            attribute_random_accesses(
                trace, np.zeros(1, dtype=np.uint8), 16, by="bogus"
            )

    def test_custom_random_region(self):
        trace = trace_of([(Region.VERTEX_OUT, 2, 5)])
        stats = attribute_random_accesses(
            trace,
            np.zeros(1, dtype=np.uint8),
            16,
            random_region=Region.VERTEX_OUT,
        )
        assert stats.accesses[2] == 1

    def test_missing_attribution_rejected(self):
        trace = trace_of([(Region.VERTEX_DATA, -1, 5)])
        with pytest.raises(SimulationError):
            attribute_random_accesses(trace, np.zeros(1, dtype=np.uint8), 16)
