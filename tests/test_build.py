"""Unit tests for edge-list cleaning and graph construction."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import build_graph, compact_vertices, dedup_edges, validate_graph


class TestDedup:
    def test_removes_duplicates(self):
        src, dst = dedup_edges(np.array([0, 0, 1]), np.array([1, 1, 2]))
        assert sorted(zip(src.tolist(), dst.tolist())) == [(0, 1), (1, 2)]

    def test_keeps_reverse_edges(self):
        src, dst = dedup_edges(np.array([0, 1]), np.array([1, 0]))
        assert src.shape[0] == 2

    def test_empty(self):
        src, dst = dedup_edges(np.array([], dtype=np.int64),
                               np.array([], dtype=np.int64))
        assert src.shape == (0,)


class TestCompact:
    def test_drops_isolated_vertices(self):
        n, src, dst, old_to_new = compact_vertices(
            5, np.array([0, 4]), np.array([4, 0])
        )
        assert n == 2
        assert old_to_new.tolist() == [0, -1, -1, -1, 1]
        assert src.tolist() == [0, 1]
        assert dst.tolist() == [1, 0]

    def test_preserves_relative_order(self):
        n, _, _, old_to_new = compact_vertices(
            6, np.array([1, 3]), np.array([3, 5])
        )
        survivors = [v for v in old_to_new.tolist() if v >= 0]
        assert survivors == sorted(survivors)
        assert n == 3

    def test_no_removal_when_all_used(self):
        n, _, _, old_to_new = compact_vertices(2, np.array([0]), np.array([1]))
        assert n == 2
        assert old_to_new.tolist() == [0, 1]


class TestBuildGraph:
    def test_full_pipeline(self):
        result = build_graph(
            6,
            np.array([0, 0, 0, 5]),
            np.array([1, 1, 2, 5]),
            drop_self_loops=True,
        )
        # duplicate (0,1) removed, self loop (5,5) removed, vertices
        # 3, 4 and (after loop removal) 5 are isolated.
        assert result.graph.num_vertices == 3
        assert result.graph.num_edges == 2
        assert result.num_removed_vertices == 3
        assert result.num_removed_edges == 2
        validate_graph(result.graph)

    def test_self_loops_kept_by_default(self):
        result = build_graph(2, np.array([0, 1]), np.array([0, 1]))
        assert result.graph.num_edges == 2

    def test_no_dedup_option(self):
        result = build_graph(
            2, np.array([0, 0]), np.array([1, 1]), dedup=False
        )
        assert result.graph.num_edges == 2

    def test_keep_zero_degree_option(self):
        result = build_graph(
            5, np.array([0]), np.array([1]), drop_zero_degree=False
        )
        assert result.graph.num_vertices == 5
        assert result.old_to_new.tolist() == [0, 1, 2, 3, 4]

    def test_rejects_out_of_range(self):
        with pytest.raises(GraphFormatError):
            build_graph(2, np.array([0]), np.array([5]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(GraphFormatError):
            build_graph(3, np.array([0, 1]), np.array([1]))

    def test_name_propagates(self):
        result = build_graph(2, np.array([0]), np.array([1]), name="g")
        assert result.graph.name == "g"

    def test_empty_edge_list(self):
        result = build_graph(4, np.array([], dtype=np.int64),
                             np.array([], dtype=np.int64))
        assert result.graph.num_vertices == 0
        assert result.num_removed_vertices == 4
