"""Unit tests for degree binning, degree range decomposition, hub coverage."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.core import (
    coverage_at,
    degree_range_decomposition,
    hub_coverage,
    log_bins,
)
from repro.graph import Graph


def graph_of(n, edges):
    src = np.array([e[0] for e in edges], dtype=np.int64)
    dst = np.array([e[1] for e in edges], dtype=np.int64)
    return Graph.from_edges(n, src, dst)


class TestLogBins:
    def test_125_structure(self):
        bins = log_bins(100)
        assert bins.lower.tolist() == [1, 2, 5, 10, 20, 50, 100, 200]

    def test_max_degree_covered(self):
        bins = log_bins(100)
        assert bins.index_of(np.array([100]))[0] == bins.num_bins - 1

    def test_min_degree_offset(self):
        bins = log_bins(100, min_degree=3)
        assert bins.lower[0] == 3

    def test_rejects_inverted_range(self):
        with pytest.raises(ReproError):
            log_bins(2, min_degree=5)

    def test_rejects_min_below_one(self):
        with pytest.raises(ReproError):
            log_bins(10, min_degree=0)

    def test_labels(self):
        assert log_bins(5).labels() == ["1-2", "2-5", "5-10"]

    def test_centers_geometric(self):
        bins = log_bins(10)
        assert bins.centers()[0] == pytest.approx(np.sqrt(2))

    def test_degree_one(self):
        bins = log_bins(1)
        assert bins.num_bins == 1

    @given(st.integers(min_value=1, max_value=100_000))
    @settings(max_examples=50, deadline=None)
    def test_every_degree_lands_in_its_bin(self, degree):
        bins = log_bins(100_000)
        idx = int(bins.index_of(np.array([degree]))[0])
        assert bins.lower[idx] <= degree
        if idx + 1 < bins.lower.shape[0]:
            assert degree < bins.lower[idx + 1] or idx == bins.num_bins - 1


class TestDegreeRange:
    def test_columns_sum_to_100(self, small_social):
        dec = degree_range_decomposition(small_social)
        sums = dec.percent.sum(axis=0)
        populated = dec.edge_counts.sum(axis=0) > 0
        assert np.allclose(sums[populated], 100.0)

    def test_edge_counts_total(self, small_social):
        dec = degree_range_decomposition(small_social)
        assert dec.edge_counts.sum() == small_social.num_edges

    def test_hand_case(self):
        # one edge from out-degree-1 source to in-degree-1 target
        dec = degree_range_decomposition(graph_of(2, [(0, 1)]))
        assert dec.percent[0, 0] == pytest.approx(100.0)

    def test_star_decomposition(self, star_graph):
        dec = degree_range_decomposition(star_graph)
        # 19 in-edges of the hub (in-degree 19, class 1) all come from
        # out-degree-1 sources (class 0)
        assert dec.percent[0, 1] == pytest.approx(100.0)

    def test_high_degree_share(self, star_graph):
        dec = degree_range_decomposition(star_graph)
        assert dec.high_degree_share(1, first_high_class=1) == pytest.approx(0.0)


class TestHubCoverage:
    def test_star_in_hub_covers_everything(self, star_graph):
        cov = hub_coverage(star_graph)
        assert cov.in_percent[0] == pytest.approx(100.0)
        assert cov.out_percent[0] == pytest.approx(100.0 / 19)

    def test_curves_monotone(self, small_web):
        cov = hub_coverage(small_web)
        assert (np.diff(cov.in_percent) >= -1e-9).all()
        assert (np.diff(cov.out_percent) >= -1e-9).all()

    def test_full_budget_covers_all(self, small_web):
        cov = hub_coverage(small_web)
        assert cov.in_percent[-1] == pytest.approx(100.0)
        assert cov.out_percent[-1] == pytest.approx(100.0)

    def test_crossover_direction(self, small_web, small_social):
        budget_web = max(1, small_web.num_vertices // 100)
        assert hub_coverage(small_web).crossover_favours(budget_web) == "push"
        budget_soc = max(1, small_social.num_vertices // 100)
        assert hub_coverage(small_social).crossover_favours(budget_soc) == "pull"

    def test_coverage_at_interpolates(self):
        counts = np.array([1, 10])
        percent = np.array([10.0, 100.0])
        assert coverage_at(counts, percent, 1) == pytest.approx(10.0)
        assert coverage_at(counts, percent, 10) == pytest.approx(100.0)
        assert 10.0 < coverage_at(counts, percent, 5) < 100.0

    def test_coverage_at_zero_budget(self):
        assert coverage_at(np.array([1]), np.array([50.0]), 0) == 0.0

    def test_empty_graph_rejected(self):
        with pytest.raises(ReproError):
            hub_coverage(graph_of(0, []))

    def test_num_points_caps_resolution(self, small_web):
        cov = hub_coverage(small_web, num_points=4)
        assert cov.hub_counts.shape[0] <= 4
