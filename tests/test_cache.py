"""Unit and property tests for the set-associative cache simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim import CacheConfig, SetAssociativeCache, count_cold_misses

traces = st.lists(st.integers(min_value=0, max_value=60), min_size=1, max_size=400)


def simulate(config, lines):
    cache = SetAssociativeCache(config)
    return cache.simulate(np.asarray(lines, dtype=np.int64))


class TestConfig:
    def test_capacity(self):
        config = CacheConfig(num_sets=4, ways=2, line_size=64, policy="lru")
        assert config.capacity_bytes == 512
        assert config.num_lines == 8

    def test_rejects_bad_geometry(self):
        with pytest.raises(SimulationError):
            CacheConfig(num_sets=0, ways=2)
        with pytest.raises(SimulationError):
            CacheConfig(num_sets=2, ways=-1)

    def test_rejects_bad_line_size(self):
        with pytest.raises(SimulationError):
            CacheConfig(num_sets=2, ways=2, line_size=48)

    def test_rejects_unknown_policy(self):
        with pytest.raises(SimulationError):
            CacheConfig(num_sets=2, ways=2, policy="plru")

    def test_scaled_for_pressure(self):
        config = CacheConfig.scaled_for(100_000, pressure=0.10, ways=8)
        data_lines = 100_000 * 8 // 64
        assert 0.04 < config.num_lines / data_lines < 0.25

    def test_scaled_for_rejects_bad_pressure(self):
        with pytest.raises(SimulationError):
            CacheConfig.scaled_for(1000, pressure=0)


class TestLRU:
    def config(self, sets=1, ways=2):
        return CacheConfig(num_sets=sets, ways=ways, policy="lru")

    def test_cold_misses(self):
        out = simulate(self.config(), [1, 2])
        assert out.num_misses == 2

    def test_simple_hit(self):
        out = simulate(self.config(), [1, 1])
        assert out.hits.tolist() == [0, 1]

    def test_eviction_order(self):
        # ways=2: after 1,2,3 the line 1 is evicted.
        out = simulate(self.config(), [1, 2, 3, 1])
        assert out.hits.tolist() == [0, 0, 0, 0]

    def test_recency_update(self):
        # Re-touching 1 keeps it; 2 is evicted by 3.
        out = simulate(self.config(), [1, 2, 1, 3, 1])
        assert out.hits.tolist() == [0, 0, 1, 0, 1]

    def test_sets_are_independent(self):
        # lines 0 and 1 map to different sets of a 2-set cache.
        out = simulate(self.config(sets=2, ways=1), [0, 1, 0, 1])
        assert out.hits.tolist() == [0, 0, 1, 1]

    def test_miss_rate_property(self):
        out = simulate(self.config(), [1, 1, 2])
        assert out.miss_rate == pytest.approx(2 / 3)

    @given(traces)
    @settings(max_examples=30, deadline=None)
    def test_large_cache_only_cold_misses(self, lines):
        config = CacheConfig(num_sets=64, ways=64, policy="lru")
        out = simulate(config, lines)
        assert out.num_misses == count_cold_misses(np.asarray(lines))

    @given(traces)
    @settings(max_examples=25, deadline=None)
    def test_lru_inclusion_property(self, lines):
        """A larger LRU cache never misses more (stack property)."""
        small = simulate(CacheConfig(num_sets=1, ways=2, policy="lru"), lines)
        large = simulate(CacheConfig(num_sets=1, ways=8, policy="lru"), lines)
        assert large.num_misses <= small.num_misses

    @given(traces)
    @settings(max_examples=25, deadline=None)
    def test_bulk_equals_single_access(self, lines):
        """The bulk loop and the single-access API must agree."""
        bulk = simulate(CacheConfig(num_sets=2, ways=2, policy="lru"), lines)
        cache = SetAssociativeCache(CacheConfig(num_sets=2, ways=2, policy="lru"))
        single = [cache.access(line) for line in lines]
        assert bulk.hits.astype(bool).tolist() == single


class TestRRIP:
    def test_srrip_hit_promotes(self):
        config = CacheConfig(num_sets=1, ways=2, policy="srrip")
        out = simulate(config, [1, 1, 1])
        assert out.hits.tolist() == [0, 1, 1]

    def test_srrip_scan_resistance(self):
        """A one-shot scan should not evict a frequently reused line."""
        config = CacheConfig(num_sets=1, ways=4, policy="srrip")
        trace = [1, 1, 1] + [10, 11, 12, 13, 14] + [1]
        out = simulate(config, trace)
        assert out.hits[-1] == 1  # line 1 survived the scan

    def test_brrip_deterministic_per_seed(self):
        config = CacheConfig(num_sets=2, ways=2, policy="brrip", seed=5)
        rng = np.random.default_rng(0)
        lines = rng.integers(0, 40, size=500)
        a = simulate(config, lines)
        b = simulate(config, lines)
        assert np.array_equal(a.hits, b.hits)

    def test_drrip_runs_and_bounds(self):
        config = CacheConfig(num_sets=64, ways=4, policy="drrip")
        rng = np.random.default_rng(1)
        lines = rng.integers(0, 4096, size=3000)
        out = simulate(config, lines)
        assert 0 <= out.num_hits <= 3000

    def test_drrip_degenerate_single_set(self):
        config = CacheConfig(num_sets=1, ways=2, policy="drrip")
        out = simulate(config, [1, 1])
        assert out.hits.tolist() == [0, 1]

    @given(traces)
    @settings(max_examples=20, deadline=None)
    def test_rrip_bulk_equals_single_access(self, lines):
        config = CacheConfig(num_sets=2, ways=2, policy="srrip")
        bulk = simulate(config, lines)
        cache = SetAssociativeCache(config)
        single = [cache.access(line) for line in lines]
        assert bulk.hits.astype(bool).tolist() == single

    @given(traces)
    @settings(max_examples=20, deadline=None)
    def test_all_policies_agree_on_infinite_cache(self, lines):
        cold = count_cold_misses(np.asarray(lines))
        for policy in ("lru", "srrip", "brrip", "drrip"):
            config = CacheConfig(num_sets=64, ways=61, policy=policy)
            assert simulate(config, lines).num_misses == cold


class TestSnapshots:
    def test_scan_interval(self):
        config = CacheConfig(num_sets=2, ways=2, policy="lru")
        cache = SetAssociativeCache(config)
        out = cache.simulate(np.arange(10, dtype=np.int64), scan_interval=4)
        assert [s.access_index for s in out.snapshots] == [4, 8]

    def test_snapshot_contents(self):
        config = CacheConfig(num_sets=1, ways=4, policy="lru")
        cache = SetAssociativeCache(config)
        out = cache.simulate(np.array([7, 9], dtype=np.int64), scan_interval=2)
        assert sorted(out.snapshots[0].resident_lines.tolist()) == [7, 9]

    def test_resident_lines_excludes_invalid(self):
        cache = SetAssociativeCache(CacheConfig(num_sets=2, ways=2, policy="lru"))
        cache.access(3)
        assert cache.resident_lines().tolist() == [3]

    def test_state_persists_across_simulate_calls(self):
        cache = SetAssociativeCache(CacheConfig(num_sets=1, ways=2, policy="lru"))
        cache.simulate(np.array([5], dtype=np.int64))
        out = cache.simulate(np.array([5], dtype=np.int64))
        assert out.hits.tolist() == [1]
