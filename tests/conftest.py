"""Shared fixtures: small deterministic graphs sized for fast tests."""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.generate import (
    planted_partition_edges,
    ring_edges,
    social_network,
    web_graph,
)
from repro.generate.rmat import rmat_edges
from repro.graph import Graph, build_graph


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/*.json fixtures from the current code "
        "instead of comparing against them",
    )


@pytest.fixture(scope="session")
def update_golden(request: pytest.FixtureRequest) -> bool:
    """True when ``--update-golden`` was passed (regenerate fixtures)."""
    return bool(request.config.getoption("--update-golden"))


@pytest.fixture
def repo_root() -> Path:
    """Repository root (the directory holding pyproject.toml)."""
    return Path(__file__).resolve().parents[1]


@pytest.fixture
def ring_graph() -> Graph:
    """12-vertex directed ring: every vertex has in/out degree 1."""
    src, dst = ring_edges(12)
    return Graph.from_edges(12, src, dst, name="ring")


@pytest.fixture
def two_hop_ring() -> Graph:
    """16-vertex ring with hops 1 and 2 (degrees exactly 2)."""
    src, dst = ring_edges(16, hops=2)
    return Graph.from_edges(16, src, dst, name="ring2")


@pytest.fixture
def star_graph() -> Graph:
    """Star: vertex 0 receives one edge from everyone else."""
    n = 20
    src = np.arange(1, n, dtype=np.int64)
    dst = np.zeros(n - 1, dtype=np.int64)
    return Graph.from_edges(n, src, dst, name="star")


@pytest.fixture
def tiny_graph() -> Graph:
    """Hand-built 6-vertex graph used by hand-computed metric tests.

    Edges: 0->1, 0->2, 1->2, 2->0, 3->4, 4->3, 5->0.
    """
    src = np.array([0, 0, 1, 2, 3, 4, 5], dtype=np.int64)
    dst = np.array([1, 2, 2, 0, 4, 3, 0], dtype=np.int64)
    return Graph.from_edges(6, src, dst, name="tiny")


@pytest.fixture(scope="session")
def community_graph() -> Graph:
    """Planted 8x32 communities with light inter-community noise."""
    src, dst = planted_partition_edges(8, 32, 6, 1, seed=5)
    return build_graph(8 * 32, src, dst, name="planted").graph


@pytest.fixture(scope="session")
def small_social() -> Graph:
    """Small social-network analogue (session-scoped: ~0.1 s to build)."""
    return social_network(scale=11, average_degree=12, seed=7, name="soc")


@pytest.fixture(scope="session")
def small_web() -> Graph:
    """Small web-graph analogue (session-scoped)."""
    return web_graph(num_vertices=2048, average_degree=12, seed=8, name="web")


@pytest.fixture(scope="session")
def golden_rmat() -> Graph:
    """Seeded RMAT graph the golden-number fixtures are pinned to.

    Built directly from :func:`rmat_edges` (not the scaled dataset
    registry), so the committed fixtures are independent of
    ``REPRO_SCALE``.  Do not change these parameters without
    regenerating ``tests/golden/`` via ``--update-golden``.
    """
    src, dst = rmat_edges(8, 2048, seed=3)
    return build_graph(256, src, dst, name="golden-rmat").graph
