"""Test fixture packages (data, not tests)."""
