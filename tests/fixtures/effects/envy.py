"""Environment read hidden behind a conditional branch.

The analyzer is path-insensitive: the read must taint ``flag_enabled``
even though it only executes when ``verbose`` is truthy.
"""

import os


def flag_enabled(verbose):
    if verbose:
        return os.environ.get("FX_DEBUG", "") != ""
    return False
