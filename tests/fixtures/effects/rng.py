"""Seeded vs unseeded randomness side by side."""

import random


def seeded_draw(seed):
    # Explicitly seeded generator: reproducible, no rng-unseeded taint.
    rng = random.Random(seed)
    return rng.random()


def unseeded_draw():
    # Module-level draw from the OS-seeded global generator.
    return random.random()
