"""Pure toy module: every function must infer an empty effect mask."""


def double(x):
    return x * 2


def quadruple(x):
    return double(double(x))


def total(values):
    # sorted() fixes the reduction order, so no float-reduction-order
    # or dict-order-sensitive taint applies here.
    return sum(sorted(values))
