"""Time taint two calls away from the public entry point.

``stamp`` never touches ``time`` directly — the analyzer must carry the
effect through ``stamp -> _mid -> _now -> time.time()``.
"""

import time


def _now():
    return time.time()


def _mid():
    return _now()


def stamp():
    return _mid()
