"""Known-effect toy modules for the ``--effects`` analyzer tests.

Each module exercises one corner of the effect lattice:

* ``pure``  — nothing here should infer any effect.
* ``timey`` — time taint reaching the public entry point only through a
  two-deep call chain (tests transitive propagation + explain depth).
* ``rng``   — seeded (clean) vs unseeded (tainted) RNG construction.
* ``envy``  — an environment read hidden behind a conditional branch.

These files are analyzed statically by ``tests/test_lint_effects.py``;
they are never imported at test runtime.
"""
