"""Unit tests for RCM, HubSort/HubCluster, and adaptive GOrder."""

import numpy as np
import pytest

from repro.errors import ReorderingError
from repro.core import average_gap_profile
from repro.graph import Graph, invert_permutation, is_permutation, validate_graph
from repro.reorder import (
    GOrder,
    HubCluster,
    HubSort,
    ReverseCuthillMcKee,
    get_algorithm,
)


class TestRCM:
    def test_valid_permutation(self, small_web):
        result = ReverseCuthillMcKee()(small_web)
        assert is_permutation(result.relabeling, small_web.num_vertices)
        validate_graph(result.apply(small_web))

    def test_reduces_bandwidth_of_scrambled_ring(self, ring_graph):
        from repro.graph import random_permutation

        scrambled = ring_graph.permuted(random_permutation(12, seed=2))
        result = ReverseCuthillMcKee()(scrambled)
        reordered = result.apply(scrambled)
        assert (
            average_gap_profile(reordered).mean_gap
            <= average_gap_profile(scrambled).mean_gap
        )

    def test_ring_gap_bounded_by_level_structure(self, ring_graph):
        result = ReverseCuthillMcKee()(ring_graph)
        reordered = result.apply(ring_graph)
        # BFS of a ring alternates sides, so consecutive-level vertices
        # sit at most 2 IDs apart (plus the single wrap-around edge).
        profile = average_gap_profile(reordered)
        assert profile.p90_gap <= 2.0

    def test_components_counted(self):
        g = Graph.from_edges(4, np.array([0, 2]), np.array([1, 3]))
        result = ReverseCuthillMcKee()(g)
        assert result.details["num_components"] == 2

    def test_registered(self):
        assert get_algorithm("rcm").name == "rcm"


class TestHubSort:
    def test_valid_permutation(self, small_social):
        result = HubSort()(small_social)
        assert is_permutation(result.relabeling, small_social.num_vertices)

    def test_hubs_first_sorted(self, small_social):
        result = HubSort(direction="total")(small_social)
        num_hubs = result.details["num_hubs"]
        order = invert_permutation(result.relabeling)
        degrees = small_social.total_degrees()[order[:num_hubs]]
        assert (np.diff(degrees) <= 0).all()
        assert degrees.min() > small_social.average_degree

    def test_non_hubs_keep_relative_order(self, small_social):
        result = HubSort(direction="total")(small_social)
        degrees = small_social.total_degrees()
        non_hubs = np.flatnonzero(degrees <= small_social.average_degree)
        assert (np.diff(result.relabeling[non_hubs]) > 0).all()

    def test_threshold_override(self, star_graph):
        result = HubSort(direction="in", hub_threshold=5)(star_graph)
        assert result.details["num_hubs"] == 1

    def test_unknown_direction(self):
        with pytest.raises(ReorderingError):
            HubSort(direction="up")


class TestHubCluster:
    def test_hubs_keep_relative_order(self, small_social):
        result = HubCluster(direction="total")(small_social)
        degrees = small_social.total_degrees()
        hubs = np.flatnonzero(degrees > small_social.average_degree)
        assert (np.diff(result.relabeling[hubs]) > 0).all()
        assert result.relabeling[hubs].max() == hubs.shape[0] - 1

    def test_registered(self):
        assert get_algorithm("hubcluster").name == "hubcluster"


class TestAdaptiveGOrder:
    def test_valid_permutation(self, small_social):
        result = GOrder(adaptive=True)(small_social)
        assert is_permutation(result.relabeling, small_social.num_vertices)

    def test_window_actually_grows(self, small_social):
        result = GOrder(window=5, adaptive=True, max_window=16)(small_social)
        assert 5 < result.details["max_window_used"] <= 16

    def test_max_window_validation(self):
        with pytest.raises(ReorderingError):
            GOrder(window=8, adaptive=True, max_window=4)

    def test_non_adaptive_unchanged(self, small_social):
        fixed = GOrder(window=5)(small_social)
        assert "max_window_used" not in fixed.details
