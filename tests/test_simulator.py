"""Integration-level tests for the end-to-end SpMV cache simulation."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.graph import random_permutation
from repro.sim import (
    CacheConfig,
    SimulationConfig,
    TLBConfig,
    TimingModel,
    simulate_spmv,
)


@pytest.fixture(scope="module")
def web_sim(small_web):
    config = SimulationConfig.scaled_for(small_web, scan_interval=2000)
    return simulate_spmv(small_web, config)


class TestCounters:
    def test_access_accounting(self, web_sim):
        assert web_sim.num_accesses == len(web_sim.trace)
        assert 0 <= web_sim.l3_misses <= web_sim.num_accesses

    def test_random_access_count(self, web_sim, small_web):
        assert web_sim.random_accesses == small_web.num_edges

    def test_random_misses_bounded(self, web_sim):
        assert 0 <= web_sim.random_misses <= web_sim.random_accesses
        assert web_sim.random_miss_rate == pytest.approx(
            web_sim.random_misses / web_sim.random_accesses
        )

    def test_stats_by_read_sum_to_edges(self, web_sim, small_web):
        stats = web_sim.random_stats(by="read")
        assert stats.total_accesses == small_web.num_edges
        # each vertex's data is read once per out-neighbour
        assert np.array_equal(stats.accesses, small_web.out_degrees())

    def test_stats_by_proc_match_in_degrees(self, web_sim, small_web):
        stats = web_sim.random_stats(by="proc")
        assert np.array_equal(stats.accesses, small_web.in_degrees())

    def test_miss_totals_agree_between_attributions(self, web_sim):
        assert (
            web_sim.random_stats(by="read").total_misses
            == web_sim.random_stats(by="proc").total_misses
        )


class TestECS:
    def test_ecs_in_range(self, web_sim):
        samples = web_sim.effective_cache_size_samples()
        assert samples.size > 0
        assert ((samples >= 0) & (samples <= 100)).all()
        assert 0 <= web_sim.effective_cache_size() <= 100

    def test_ecs_requires_scans(self, small_web):
        config = SimulationConfig.scaled_for(small_web)
        sim = simulate_spmv(small_web, config)
        with pytest.raises(SimulationError):
            sim.effective_cache_size()


class TestScheduleAndTiming:
    def test_idle_percent_reasonable(self, web_sim):
        assert 0.0 <= web_sim.schedule().idle_percent < 50.0

    def test_traversal_time_positive(self, web_sim):
        assert web_sim.traversal_time_ms() > 0

    def test_per_vertex_cost_shape(self, web_sim, small_web):
        cost = web_sim.per_vertex_cost()
        assert cost.shape == (small_web.num_vertices,)
        assert (cost >= 0).all()

    def test_timing_model_monotone_in_misses(self):
        timing = TimingModel()
        fast = timing.traversal_time_ms(1000, 10)
        slow = timing.traversal_time_ms(1000, 10_000)
        assert slow > fast

    def test_timing_model_idle_inflates(self):
        timing = TimingModel()
        assert timing.traversal_time_ms(1000, 10, idle_percent=50.0) > (
            timing.traversal_time_ms(1000, 10, idle_percent=0.0)
        )

    def test_timing_model_validation(self):
        timing = TimingModel()
        with pytest.raises(SimulationError):
            timing.traversal_time_ms(-1, 0)
        with pytest.raises(SimulationError):
            timing.traversal_time_ms(1, 1, idle_percent=100.0)
        with pytest.raises(SimulationError):
            TimingModel(clock_ghz=0)


class TestConfiguration:
    def test_config_validation(self):
        cache = CacheConfig(num_sets=4, ways=2)
        with pytest.raises(SimulationError):
            SimulationConfig(cache=cache, num_threads=0)
        with pytest.raises(SimulationError):
            SimulationConfig(cache=cache, direction="both")

    def test_config_and_kwargs_exclusive(self, small_web):
        config = SimulationConfig.scaled_for(small_web)
        with pytest.raises(SimulationError):
            simulate_spmv(small_web, config, pressure=0.5)

    def test_tlb_optional(self, small_web):
        config = SimulationConfig(
            cache=CacheConfig.scaled_for(small_web.num_vertices), tlb=None
        )
        sim = simulate_spmv(small_web, config)
        assert sim.tlb_misses == 0

    def test_tlb_counts_when_enabled(self, small_web):
        config = SimulationConfig(
            cache=CacheConfig.scaled_for(small_web.num_vertices),
            tlb=TLBConfig.scaled_for(small_web.num_vertices),
        )
        sim = simulate_spmv(small_web, config)
        assert sim.tlb_misses > 0
        assert sim.tlb_misses < sim.num_accesses


class TestLocalityOrdering:
    def test_scrambling_increases_misses(self, small_web):
        """The headline mechanism: vertex order changes miss counts."""
        config = SimulationConfig.scaled_for(small_web)
        baseline = simulate_spmv(small_web, config)
        scrambled = small_web.permuted(
            random_permutation(small_web.num_vertices, seed=11)
        )
        worse = simulate_spmv(scrambled, config)
        assert worse.l3_misses > baseline.l3_misses

    def test_deterministic(self, small_web):
        config = SimulationConfig.scaled_for(small_web)
        a = simulate_spmv(small_web, config)
        b = simulate_spmv(small_web, config)
        assert a.l3_misses == b.l3_misses
        assert np.array_equal(a.hits, b.hits)
