"""Unit tests for SpMV trace generation."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim import AddressSpace, Region, concatenate_traces, spmv_trace


class TestPullTrace:
    def test_one_random_access_per_edge(self, tiny_graph):
        trace = spmv_trace(tiny_graph)
        assert trace.num_random_accesses == tiny_graph.num_edges

    def test_random_reads_target_in_neighbours(self, tiny_graph):
        trace = spmv_trace(tiny_graph)
        mask = trace.random_mask()
        # every (proc, read) pair must be an edge read -> proc
        for u, v in zip(trace.read_vertex[mask], trace.proc_vertex[mask]):
            assert u in tiny_graph.in_adj.neighbours(int(v)).tolist()

    def test_random_lines_are_data_region(self, tiny_graph):
        trace = spmv_trace(tiny_graph)
        mask = trace.random_mask()
        regions = trace.space.region_of_lines(trace.lines[mask])
        assert (regions == Region.VERTEX_DATA).all()

    def test_processing_order_is_vertex_order(self, two_hop_ring):
        trace = spmv_trace(two_hop_ring)
        mask = trace.random_mask()
        procs = trace.proc_vertex[mask]
        assert (np.diff(procs) >= 0).all()

    def test_non_random_accesses_have_no_read_vertex(self, tiny_graph):
        trace = spmv_trace(tiny_graph)
        other = ~trace.random_mask()
        assert (trace.read_vertex[other] == -1).all()

    def test_vertex_range_slices(self, two_hop_ring):
        full = spmv_trace(two_hop_ring)
        left = spmv_trace(two_hop_ring, vertex_range=(0, 8))
        right = spmv_trace(two_hop_ring, vertex_range=(8, 16))
        assert (
            left.num_random_accesses + right.num_random_accesses
            == full.num_random_accesses
        )
        assert left.proc_vertex[left.random_mask()].max() < 8

    def test_bad_vertex_range(self, tiny_graph):
        with pytest.raises(SimulationError):
            spmv_trace(tiny_graph, vertex_range=(4, 2))
        with pytest.raises(SimulationError):
            spmv_trace(tiny_graph, vertex_range=(0, 99))

    def test_empty_range(self, tiny_graph):
        trace = spmv_trace(tiny_graph, vertex_range=(2, 2))
        assert len(trace) == 0

    def test_promotion_doubles_sequential_lines(self, two_hop_ring):
        promoted = spmv_trace(two_hop_ring, promote_sequential=True)
        plain = spmv_trace(two_hop_ring, promote_sequential=False)
        edges_promoted = (promoted.kinds == Region.EDGES).sum()
        edges_plain = (plain.kinds == Region.EDGES).sum()
        assert edges_promoted == 2 * edges_plain

    def test_interleaving_edges_before_data(self, ring_graph):
        """Program order: a vertex's edges access precedes its data reads."""
        trace = spmv_trace(ring_graph, promote_sequential=False)
        kinds = trace.kinds.tolist()
        first_edge = kinds.index(Region.EDGES)
        first_data = kinds.index(Region.VERTEX_DATA)
        assert first_edge < first_data


class TestPushTrace:
    def test_push_random_writes_out_region(self, tiny_graph):
        trace = spmv_trace(tiny_graph, direction="push")
        mask = trace.kinds == Region.VERTEX_OUT
        assert mask.sum() >= tiny_graph.num_edges

    def test_push_random_targets_out_neighbours(self, tiny_graph):
        trace = spmv_trace(tiny_graph, direction="push")
        mask = (trace.kinds == Region.VERTEX_OUT) & (trace.read_vertex >= 0)
        assert int(mask.sum()) == tiny_graph.num_edges
        for u, v in zip(trace.read_vertex[mask], trace.proc_vertex[mask]):
            assert u in tiny_graph.out_adj.neighbours(int(v)).tolist()

    def test_unknown_direction(self, tiny_graph):
        with pytest.raises(SimulationError):
            spmv_trace(tiny_graph, direction="sideways")


class TestConcatenate:
    def test_concatenate(self, tiny_graph):
        space = AddressSpace(tiny_graph.num_vertices, tiny_graph.num_edges)
        a = spmv_trace(tiny_graph, space, vertex_range=(0, 3))
        b = spmv_trace(tiny_graph, space, vertex_range=(3, 6))
        joined = concatenate_traces([a, b])
        assert len(joined) == len(a) + len(b)
        assert joined.num_random_accesses == tiny_graph.num_edges

    def test_concatenate_empty_list(self):
        with pytest.raises(SimulationError):
            concatenate_traces([])

    def test_mismatched_spaces_rejected(self, tiny_graph, ring_graph):
        a = spmv_trace(tiny_graph)
        b = spmv_trace(ring_graph)
        with pytest.raises(SimulationError):
            concatenate_traces([a, b])
