"""Artifact store: serializers, durability, quarantine, pinning, GC."""

from __future__ import annotations

import json
import os
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.errors import StoreError
from repro.reorder import get_algorithm
from repro.sim import SimulationConfig, simulate_spmv
from repro.store import (
    STORE_DIR_ENV,
    ArtifactStore,
    StoredSimulation,
    collect_garbage,
    default_store_dir,
    get_serializer,
    verify_store,
)


@pytest.fixture
def store(tmp_path) -> ArtifactStore:
    return ArtifactStore(tmp_path / "store")


def _key(n: int) -> str:
    """Distinct, prefix-controllable 64-char pseudo-keys."""
    return f"{n:02x}" * 32


class TestDefaultLocation:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv(STORE_DIR_ENV, str(tmp_path / "elsewhere"))
        assert default_store_dir() == tmp_path / "elsewhere"
        assert ArtifactStore().root == tmp_path / "elsewhere"

    def test_default_is_repo_local(self, monkeypatch):
        monkeypatch.delenv(STORE_DIR_ENV, raising=False)
        assert str(default_store_dir()) == ".repro-store"

    def test_unknown_kind_rejected(self):
        with pytest.raises(StoreError):
            get_serializer("not-a-kind")


class TestRoundTrips:
    def test_json(self, store):
        payload = {"rows": [[1, 2.5, "x"]], "nested": {"t": [1, 2]}}
        store.put(_key(1), "json", payload)
        assert store.get(_key(1), "json") == payload

    def test_graph(self, store, tiny_graph):
        store.put(_key(2), "graph", tiny_graph)
        loaded = store.get(_key(2), "graph")
        assert loaded.num_vertices == tiny_graph.num_vertices
        assert loaded.num_edges == tiny_graph.num_edges
        assert loaded == tiny_graph

    def test_reordering(self, store, two_hop_ring):
        result = get_algorithm("degree")(two_hop_ring)
        store.put(_key(3), "reordering", result)
        loaded = store.get(_key(3), "reordering")
        assert loaded.algorithm == result.algorithm
        assert np.array_equal(loaded.relabeling, result.relabeling)
        assert loaded.preprocessing_seconds == result.preprocessing_seconds
        assert loaded.details == result.details

    def test_simulation(self, store, two_hop_ring):
        config = SimulationConfig.scaled_for(two_hop_ring, scan_interval=16)
        result = simulate_spmv(two_hop_ring, config)
        store.put(_key(4), "simulation", StoredSimulation.from_result(result))
        loaded = store.get(_key(4), "simulation")
        rebuilt = loaded.to_result(two_hop_ring, config)
        assert np.array_equal(rebuilt.hits, result.hits)
        assert np.array_equal(rebuilt.trace.lines, result.trace.lines)
        assert rebuilt.tlb_misses == result.tlb_misses
        assert rebuilt.l3_misses == result.l3_misses
        assert len(rebuilt.snapshots) == len(result.snapshots)
        for a, b in zip(rebuilt.snapshots, result.snapshots):
            assert a.access_index == b.access_index
            assert np.array_equal(a.resident_lines, b.resident_lines)
        assert rebuilt.effective_cache_size() == result.effective_cache_size()

    def test_wrong_type_rejected_at_write(self, store, tiny_graph):
        with pytest.raises(StoreError):
            store.put(_key(5), "graph", {"not": "a graph"})
        assert not store.contains(_key(5), "graph")


class TestDurability:
    def test_no_temp_litter_after_put(self, store):
        info = store.put(_key(1), "json", {"v": 1})
        litter = [
            p for p in info.path.parent.iterdir() if p.name.startswith("tmp-")
        ]
        assert litter == []

    def test_concurrent_same_key_writers(self, store):
        payload = {"rows": list(range(200))}
        with ThreadPoolExecutor(max_workers=8) as pool:
            futures = [
                pool.submit(store.put, _key(6), "json", payload) for _ in range(16)
            ]
            for future in futures:
                future.result()
        assert store.get(_key(6), "json") == payload
        assert verify_store(store).ok
        assert len(store.infos()) == 1

    def test_concurrent_distinct_writers(self, store):
        with ThreadPoolExecutor(max_workers=8) as pool:
            futures = [
                pool.submit(store.put, _key(i), "json", {"i": i}) for i in range(24)
            ]
            for future in futures:
                future.result()
        assert len(store.infos("json")) == 24
        assert verify_store(store).ok

    def test_read_bumps_last_access(self, store):
        info = store.put(_key(7), "json", {"v": 1})
        past = info.created_at - 3600
        os.utime(info.path, (past, past))
        store.get(_key(7), "json")
        refreshed = store.info(_key(7), "json")
        assert refreshed.last_access_at > past


class TestQuarantine:
    def test_corrupt_payload_is_quarantined(self, store):
        info = store.put(_key(8), "json", {"v": 1})
        info.path.write_bytes(b"garbage")
        assert store.get(_key(8), "json") is None
        assert not store.contains(_key(8), "json")
        moved = list((store.quarantine_dir / "json").iterdir())
        names = {p.name for p in moved}
        assert info.path.name in names
        reason = (store.quarantine_dir / "json" / f"{_key(8)}.reason.txt").read_text(
            encoding="utf-8"
        )
        assert "checksum mismatch" in reason

    def test_unreadable_sidecar_is_quarantined(self, store):
        info = store.put(_key(9), "json", {"v": 1})
        info.meta_path.write_text("{not json", encoding="utf-8")
        assert store.get(_key(9), "json") is None
        assert not store.contains(_key(9), "json")

    def test_undecodable_payload_is_quarantined(self, store, tiny_graph):
        # Bytes that hash clean against a rewritten sidecar but cannot
        # deserialize: the load failure itself must quarantine.
        info = store.put(_key(10), "graph", tiny_graph)
        info.path.write_bytes(b"not an npz file")
        meta = json.loads(info.meta_path.read_text(encoding="utf-8"))
        import hashlib

        meta["checksum"] = hashlib.sha256(b"not an npz file").hexdigest()
        info.meta_path.write_text(json.dumps(meta), encoding="utf-8")
        assert store.get(_key(10), "graph") is None
        reason = (
            store.quarantine_dir / "graph" / f"{_key(10)}.reason.txt"
        ).read_text(encoding="utf-8")
        assert "deserialization failure" in reason

    def test_verify_reports_and_quarantines(self, store):
        good = store.put(_key(11), "json", {"v": 1})
        bad = store.put(_key(12), "json", {"v": 2})
        bad.path.write_bytes(b"flipped bits")
        report = verify_store(store)
        assert report.checked == 2
        assert not report.ok
        assert [issue.key for issue in report.issues] == [_key(12)]

        report = verify_store(store, quarantine=True)
        assert report.quarantined == 1
        assert store.contains(good.key, "json")
        assert not store.contains(bad.key, "json")
        assert verify_store(store).ok


class TestPinningAndGC:
    def test_remove_pinned_raises(self, store):
        store.put(_key(13), "json", {"v": 1})
        with store.pin(_key(13), "json"):
            assert store.is_pinned(_key(13), "json")
            with pytest.raises(StoreError):
                store.remove(_key(13), "json")
        assert not store.is_pinned(_key(13), "json")
        assert store.remove(_key(13), "json")

    def test_gc_negative_budget_rejected(self, store):
        with pytest.raises(StoreError):
            collect_garbage(store, -1)

    def test_gc_keeps_mru_within_budget(self, store):
        infos = [store.put(_key(20 + i), "json", {"pad": "x" * 512}) for i in range(4)]
        # Deterministic LRU axis: oldest access first.
        for age, info in enumerate(reversed(infos)):
            stamp = info.created_at - 1000 * (age + 1)
            os.utime(info.path, (stamp, stamp))
        size = infos[0].size_bytes
        report = collect_garbage(store, max_bytes=2 * size)
        evicted_keys = {key for _, key in report.evicted}
        # The two least recently used (first two puts) go.
        assert evicted_keys == {_key(20), _key(21)}
        assert report.bytes_after <= 2 * size
        assert store.total_size_bytes() <= 2 * size
        assert store.contains(_key(22), "json")
        assert store.contains(_key(23), "json")

    def test_gc_never_evicts_pinned(self, store):
        store.put(_key(30), "json", {"pad": "x" * 512})
        with store.pin(_key(30), "json"):
            report = collect_garbage(store, max_bytes=0)
            assert report.skipped_pinned == 1
            assert report.evicted == []
            assert store.contains(_key(30), "json")
        report = collect_garbage(store, max_bytes=0)
        assert store.total_size_bytes() == 0
        assert len(report.evicted) == 1

    def test_gc_zero_budget_empties_unpinned(self, store):
        for i in range(3):
            store.put(_key(40 + i), "json", {"i": i})
        report = collect_garbage(store, max_bytes=0)
        assert len(report.evicted) == 3
        assert store.infos() == []
