"""Unit tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.errors import ExperimentError, GraphFormatError
from repro.core import reciprocity
from repro.generate import (
    DATASETS,
    chung_lu_edges,
    dataset_names,
    erdos_renyi_edges,
    host_sizes,
    load_dataset,
    planted_partition_edges,
    ring_edges,
    rmat_edges,
    social_network,
    web_graph,
)
from repro.graph import validate_graph


class TestRmat:
    def test_deterministic(self):
        a = rmat_edges(8, 500, seed=3)
        b = rmat_edges(8, 500, seed=3)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_ids_in_range(self):
        src, dst = rmat_edges(6, 1000, seed=1)
        assert src.min() >= 0 and src.max() < 64
        assert dst.min() >= 0 and dst.max() < 64

    def test_skewed_parameters_make_hubs(self):
        src, _ = rmat_edges(10, 20_000, seed=2)
        degrees = np.bincount(src, minlength=1024)
        assert degrees.max() > 10 * degrees.mean()

    def test_rejects_bad_probabilities(self):
        with pytest.raises(GraphFormatError):
            rmat_edges(4, 10, a=0.9, b=0.2, c=0.2)

    def test_rejects_bad_scale(self):
        with pytest.raises(GraphFormatError):
            rmat_edges(-1, 10)

    def test_zero_edges(self):
        src, dst = rmat_edges(4, 0)
        assert src.shape == (0,)


class TestRandomGraphs:
    def test_erdos_renyi_range(self):
        src, dst = erdos_renyi_edges(100, 500, seed=1)
        assert src.max() < 100 and dst.max() < 100

    def test_erdos_renyi_empty_vertex_set(self):
        with pytest.raises(GraphFormatError):
            erdos_renyi_edges(0, 5)

    def test_chung_lu_expected_degrees(self):
        out_w = np.array([10.0, 1.0, 1.0, 1.0])
        in_w = np.ones(4)
        src, _ = chung_lu_edges(out_w, in_w, 13_000, seed=2)
        counts = np.bincount(src, minlength=4)
        assert counts[0] > 3 * counts[1:].max()

    def test_chung_lu_rejects_zero_weights(self):
        with pytest.raises(GraphFormatError):
            chung_lu_edges(np.zeros(3), np.ones(3), 10)

    def test_chung_lu_rejects_negative(self):
        with pytest.raises(GraphFormatError):
            chung_lu_edges(np.array([-1.0, 1.0]), np.ones(2), 10)

    def test_ring_degrees(self):
        src, dst = ring_edges(10, hops=3)
        out_deg = np.bincount(src, minlength=10)
        assert (out_deg == 3).all()

    def test_ring_rejects_bad_hops(self):
        with pytest.raises(GraphFormatError):
            ring_edges(5, hops=5)

    def test_planted_partition_intra_dominates(self):
        src, dst = planted_partition_edges(4, 25, 8, 1, seed=3)
        same = (src // 25) == (dst // 25)
        assert same.mean() > 0.8


class TestSocialNetwork:
    def test_valid_and_deterministic(self):
        a = social_network(scale=10, average_degree=8, seed=4)
        b = social_network(scale=10, average_degree=8, seed=4)
        validate_graph(a)
        assert a == b

    def test_high_reciprocity(self, small_social):
        assert reciprocity(small_social) > 0.5

    def test_hubs_are_symmetric(self, small_social):
        in_hubs = set(small_social.in_hubs().tolist())
        out_hubs = set(small_social.out_hubs().tolist())
        if in_hubs and out_hubs:
            overlap = len(in_hubs & out_hubs) / len(in_hubs | out_hubs)
            assert overlap > 0.3

    def test_rejects_bad_community_fraction(self):
        with pytest.raises(GraphFormatError):
            social_network(scale=8, community_fraction=1.5)


class TestWebGraph:
    def test_valid_and_deterministic(self):
        a = web_graph(num_vertices=1024, average_degree=8, seed=4)
        b = web_graph(num_vertices=1024, average_degree=8, seed=4)
        validate_graph(a)
        assert a == b

    def test_low_reciprocity(self, small_web):
        assert reciprocity(small_web) < 0.5

    def test_asymmetric_in_hubs(self, small_web):
        assert small_web.in_degrees().max() > 5 * small_web.out_degrees().max()

    def test_host_sizes_sum(self):
        sizes = host_sizes(1000, 30, seed=1)
        assert sizes.sum() == 1000
        assert (sizes > 0).all()

    def test_host_sizes_rejects_bad_input(self):
        with pytest.raises(GraphFormatError):
            host_sizes(0, 30)
        with pytest.raises(GraphFormatError):
            host_sizes(10, 0)

    def test_rejects_bad_fraction(self):
        with pytest.raises(GraphFormatError):
            web_graph(num_vertices=128, intra_fraction=1.5)

    def test_rejects_bad_disorder(self):
        with pytest.raises(GraphFormatError):
            web_graph(num_vertices=128, disorder=-0.1)


class TestDatasetRegistry:
    def test_nine_entries_matching_table1(self):
        assert len(DATASETS) == 9
        assert len(dataset_names("SN")) == 2
        assert len(dataset_names("WG")) == 7

    def test_unknown_family(self):
        with pytest.raises(ExperimentError):
            dataset_names("XX")

    def test_unknown_dataset(self):
        with pytest.raises(ExperimentError):
            load_dataset("nope")

    def test_scale_override(self):
        small = load_dataset("twtr-mini", scale=0.25)
        assert small.num_vertices < 8192
        validate_graph(small)

    def test_scale_env_validation(self, monkeypatch):
        from repro.generate import scale_factor

        monkeypatch.setenv("REPRO_SCALE", "abc")
        with pytest.raises(ExperimentError):
            scale_factor()
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(ExperimentError):
            scale_factor()
        monkeypatch.setenv("REPRO_SCALE", "2.0")
        assert scale_factor() == 2.0
