"""Unit tests for SlashBurn and SlashBurn++."""

import math

import numpy as np
import pytest

from repro.errors import ReorderingError
from repro.graph import invert_permutation, is_permutation, validate_graph
from repro.reorder import SlashBurn, SlashBurnPP, slashburn_iterations


class TestSlashBurn:
    def test_valid_permutation(self, small_social):
        result = SlashBurn()(small_social)
        assert is_permutation(result.relabeling, small_social.num_vertices)
        validate_graph(result.apply(small_social))

    def test_hubs_get_lowest_ids(self, small_social):
        result = SlashBurn()(small_social)
        k = result.details["k"]
        order = invert_permutation(result.relabeling)
        degrees = small_social.total_degrees()
        first_wave = degrees[order[:k]]
        # first k IDs go to the k highest-degree vertices, descending
        assert (np.diff(first_wave) <= 0).all()
        assert first_wave[0] == degrees.max()

    def test_star_graph_one_iteration(self, star_graph):
        result = SlashBurn(k_ratio=0.05)(star_graph)
        # slashing the center isolates every leaf; the whole graph is
        # ordered in one iteration
        assert result.details["num_iterations"] == 1
        assert result.relabeling[0] == 0  # center keeps ID 0

    def test_spokes_get_highest_ids(self, star_graph):
        result = SlashBurn(k_ratio=0.05)(star_graph)
        order = invert_permutation(result.relabeling)
        # all leaves occupy the tail of the order
        assert set(order[1:].tolist()) == set(range(1, 20))

    def test_k_ratio_validation(self):
        with pytest.raises(ReorderingError):
            SlashBurn(k_ratio=0.0)
        with pytest.raises(ReorderingError):
            SlashBurn(k_ratio=1.5)

    def test_max_iterations_validation(self):
        with pytest.raises(ReorderingError):
            SlashBurn(max_iterations=0)

    def test_remainder_order_validation(self):
        with pytest.raises(ReorderingError):
            SlashBurn(remainder_order="bfs")

    def test_max_iterations_respected(self, small_social):
        result = SlashBurn(max_iterations=2)(small_social)
        assert result.details["num_iterations"] <= 2

    def test_deterministic(self, small_social):
        a = SlashBurn()(small_social).relabeling
        b = SlashBurn()(small_social).relabeling
        assert np.array_equal(a, b)

    def test_remainder_original_preserves_relative_order(self, two_hop_ring):
        result = SlashBurn(
            max_iterations=1, remainder_order="original"
        )(two_hop_ring)
        order = invert_permutation(result.relabeling)
        k = result.details["k"]
        tail = order[k:]
        remainder = tail[np.isin(tail, order[:k], invert=True)]
        assert (np.diff(remainder) > 0).all()


class TestSlashBurnPP:
    def test_stops_earlier_than_slashburn(self, small_social):
        full = SlashBurn()(small_social)
        early = SlashBurnPP()(small_social)
        assert (
            early.details["num_iterations"] <= full.details["num_iterations"]
        )

    def test_stop_condition_sqrt_degree(self, small_social):
        result = SlashBurnPP(record_iterations=True)(small_social)
        snapshots = result.details["iterations"]
        threshold = math.sqrt(small_social.num_vertices)
        if snapshots:
            # every *recorded* (i.e. executed) iteration still had a
            # hub-grade GCC when it started, except possibly the last
            for snap in snapshots[:-1]:
                assert snap.gcc_max_degree >= 0

    def test_valid_permutation(self, small_web):
        result = SlashBurnPP()(small_web)
        assert is_permutation(result.relabeling, small_web.num_vertices)


class TestIterationRecords:
    def test_figure2_snapshots(self, small_social):
        snapshots = slashburn_iterations(small_social, max_iterations=8)
        assert snapshots
        assert snapshots[0].iteration == 1
        previous = small_social.num_vertices
        for snap in snapshots:
            assert snap.gcc_vertices <= previous
            previous = snap.gcc_vertices
            assert snap.gcc_degrees.shape[0] == snap.gcc_vertices

    def test_gcc_max_degree_declines(self, small_social):
        snapshots = slashburn_iterations(small_social, max_iterations=8)
        maxima = [snap.gcc_max_degree for snap in snapshots]
        assert maxima[-1] <= maxima[0]
