"""Unit tests for the compressed adjacency structure."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import Adjacency


def make(n, edges):
    src = np.array([e[0] for e in edges], dtype=np.int64)
    dst = np.array([e[1] for e in edges], dtype=np.int64)
    return Adjacency.from_edges(n, src, dst)


class TestFromEdges:
    def test_basic_shape(self):
        adj = make(4, [(0, 1), (0, 2), (2, 3)])
        assert adj.num_vertices == 4
        assert adj.num_edges == 3

    def test_neighbours_sorted(self):
        adj = make(3, [(0, 2), (0, 1), (0, 0)])
        assert adj.neighbours(0).tolist() == [0, 1, 2]

    def test_unsorted_option_keeps_input_order(self):
        adj = Adjacency.from_edges(
            3,
            np.array([0, 0], dtype=np.int64),
            np.array([2, 1], dtype=np.int64),
            sort_neighbours=False,
        )
        assert adj.neighbours(0).tolist() == [2, 1]

    def test_empty_graph(self):
        adj = make(5, [])
        assert adj.num_edges == 0
        assert adj.degrees().tolist() == [0] * 5

    def test_zero_vertices(self):
        adj = make(0, [])
        assert adj.num_vertices == 0

    def test_rejects_out_of_range_target(self):
        with pytest.raises(GraphFormatError):
            make(2, [(0, 2)])

    def test_rejects_negative_source(self):
        with pytest.raises(GraphFormatError):
            make(2, [(-1, 0)])

    def test_rejects_negative_vertex_count(self):
        with pytest.raises(GraphFormatError):
            make(-1, [])

    def test_rejects_mismatched_edge_arrays(self):
        with pytest.raises(GraphFormatError):
            Adjacency.from_edges(
                3, np.array([0, 1], dtype=np.int64), np.array([1], dtype=np.int64)
            )

    def test_duplicate_edges_kept(self):
        adj = make(2, [(0, 1), (0, 1)])
        assert adj.degree(0) == 2


class TestAccessors:
    def test_degrees(self):
        adj = make(4, [(0, 1), (0, 2), (1, 2)])
        assert adj.degrees().tolist() == [2, 1, 0, 0]

    def test_degree_out_of_range(self):
        adj = make(2, [(0, 1)])
        with pytest.raises(GraphFormatError):
            adj.degree(2)

    def test_neighbours_out_of_range(self):
        adj = make(2, [(0, 1)])
        with pytest.raises(GraphFormatError):
            adj.neighbours(-1)

    def test_edge_sources_expands_offsets(self):
        adj = make(3, [(0, 1), (0, 2), (2, 1)])
        assert adj.edge_sources().tolist() == [0, 0, 2]

    def test_edges_round_trip(self):
        edges = [(0, 3), (1, 2), (3, 0), (3, 1)]
        adj = make(4, edges)
        src, dst = adj.edges()
        assert sorted(zip(src.tolist(), dst.tolist())) == sorted(edges)

    def test_iter_neighbour_lists(self):
        adj = make(3, [(0, 1), (2, 0), (2, 1)])
        lists = [lst.tolist() for lst in adj.iter_neighbour_lists()]
        assert lists == [[1], [], [0, 1]]


class TestTranspose:
    def test_transpose_reverses_edges(self):
        adj = make(3, [(0, 1), (1, 2)])
        t = adj.transpose()
        assert t.neighbours(1).tolist() == [0]
        assert t.neighbours(2).tolist() == [1]

    def test_double_transpose_identity(self):
        adj = make(5, [(0, 1), (0, 4), (2, 3), (4, 0)])
        assert adj.transpose().transpose() == adj

    def test_transpose_preserves_counts(self):
        adj = make(4, [(0, 1), (1, 0), (2, 3)])
        t = adj.transpose()
        assert t.num_edges == adj.num_edges
        assert t.num_vertices == adj.num_vertices


class TestValidation:
    def test_offsets_must_start_at_zero(self):
        with pytest.raises(GraphFormatError):
            Adjacency(np.array([1, 2]), np.array([0, 0]))

    def test_offsets_must_be_monotone(self):
        with pytest.raises(GraphFormatError):
            Adjacency(np.array([0, 2, 1]), np.array([0]))

    def test_offsets_must_end_at_edge_count(self):
        with pytest.raises(GraphFormatError):
            Adjacency(np.array([0, 1]), np.array([0, 0]))

    def test_targets_in_range(self):
        with pytest.raises(GraphFormatError):
            Adjacency(np.array([0, 1]), np.array([5]))

    def test_has_sorted_neighbours(self):
        adj = make(3, [(0, 2), (0, 1)])
        assert adj.has_sorted_neighbours()
        raw = Adjacency(
            np.array([0, 2]), np.array([1, 0]), validate=False
        )
        assert not raw.has_sorted_neighbours()

    def test_arrays_read_only(self):
        adj = make(2, [(0, 1)])
        with pytest.raises(ValueError):
            adj.targets[0] = 0

    def test_not_hashable(self):
        adj = make(2, [(0, 1)])
        with pytest.raises(TypeError):
            hash(adj)

    def test_equality(self):
        a = make(3, [(0, 1), (1, 2)])
        b = make(3, [(1, 2), (0, 1)])
        assert a == b
        assert a != make(3, [(0, 1)])

    def test_repr(self):
        assert "n=3" in repr(make(3, [(0, 1)]))
