"""Unit tests for the miss-rate distribution, ECS, and hub-miss metrics."""

import numpy as np
import pytest

from repro.errors import ReproError, SimulationError
from repro.core import (
    ecs_from_result,
    hub_data_misses,
    log_bins,
    measure_ecs,
    miss_rate_degree_distribution,
)
from repro.sim import SimulationConfig, simulate_spmv


@pytest.fixture(scope="module")
def sim(small_web):
    config = SimulationConfig.scaled_for(small_web, scan_interval=2000)
    return simulate_spmv(small_web, config)


class TestMissRateDistribution:
    def test_accesses_partition_random_accesses(self, sim, small_web):
        dist = miss_rate_degree_distribution(sim)
        assert dist.accesses.sum() == small_web.num_edges

    def test_misses_match_simulation(self, sim):
        dist = miss_rate_degree_distribution(sim)
        assert dist.misses.sum() == sim.random_misses

    def test_rates_bounded(self, sim):
        dist = miss_rate_degree_distribution(sim)
        x, y = dist.series()
        assert ((y >= 0) & (y <= 100)).all()

    def test_overall_rate_matches(self, sim):
        dist = miss_rate_degree_distribution(sim)
        assert dist.overall_miss_rate_percent == pytest.approx(
            sim.random_miss_rate * 100.0
        )

    def test_by_read_attribution(self, sim, small_web):
        dist = miss_rate_degree_distribution(sim, by="read")
        assert dist.accesses.sum() == small_web.num_edges
        assert dist.misses.sum() == sim.random_misses

    def test_unknown_attribution(self, sim):
        with pytest.raises(ReproError):
            miss_rate_degree_distribution(sim, by="magic")

    def test_explicit_bins(self, sim):
        bins = log_bins(10_000)
        dist = miss_rate_degree_distribution(sim, bins=bins)
        assert dist.bins is bins


class TestECS:
    def test_from_result(self, sim):
        ecs = ecs_from_result(sim)
        assert 0 <= ecs.average_percent <= 100
        assert ecs.samples.size > 0
        assert ecs.final_percent == ecs.samples[-1]

    def test_from_result_requires_scans(self, small_web):
        plain = simulate_spmv(small_web, SimulationConfig.scaled_for(small_web))
        with pytest.raises(SimulationError):
            ecs_from_result(plain)

    def test_measure_ecs_auto_interval(self, small_web):
        ecs = measure_ecs(small_web, num_scans=16)
        assert 0 < ecs.average_percent < 100

    def test_measure_ecs_rejects_mixed_args(self, small_web):
        config = SimulationConfig.scaled_for(small_web)
        with pytest.raises(SimulationError):
            measure_ecs(small_web, config, pressure=0.1)


class TestHubMisses:
    def test_threshold_zero_counts_everything(self, sim, small_web):
        count = hub_data_misses(sim, 0)
        # degree > 0 excludes only vertices whose data is never read
        assert count.accesses == small_web.num_edges
        assert count.misses == sim.random_misses

    def test_monotone_in_threshold(self, sim):
        low = hub_data_misses(sim, 1)
        high = hub_data_misses(sim, 50)
        assert high.misses <= low.misses
        assert high.num_vertices_above <= low.num_vertices_above

    def test_huge_threshold_empty(self, sim):
        count = hub_data_misses(sim, 10**9)
        assert count.misses == 0
        assert count.miss_rate == 0.0

    def test_miss_rate_bounded(self, sim):
        count = hub_data_misses(sim, 10)
        assert 0.0 <= count.miss_rate <= 1.0
