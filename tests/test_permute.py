"""Unit and property tests for the relabeling machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PermutationError
from repro.graph import (
    apply_to_edges,
    apply_to_vertex_data,
    check_permutation,
    compose_permutations,
    identity_permutation,
    invert_permutation,
    is_permutation,
    random_permutation,
    sort_order_to_relabeling,
)

permutations = st.integers(min_value=0, max_value=200).map(
    lambda n: np.random.default_rng(n).permutation(n).astype(np.int64)
)


class TestBasics:
    def test_identity(self):
        assert identity_permutation(4).tolist() == [0, 1, 2, 3]

    def test_identity_empty(self):
        assert identity_permutation(0).shape == (0,)

    def test_identity_negative(self):
        with pytest.raises(PermutationError):
            identity_permutation(-1)

    def test_random_is_permutation(self):
        assert is_permutation(random_permutation(50, seed=3), 50)

    def test_random_deterministic(self):
        a = random_permutation(64, seed=9)
        b = random_permutation(64, seed=9)
        assert np.array_equal(a, b)

    def test_random_seeds_differ(self):
        assert not np.array_equal(
            random_permutation(64, seed=1), random_permutation(64, seed=2)
        )


class TestIsPermutation:
    def test_accepts_valid(self):
        assert is_permutation(np.array([2, 0, 1]))

    def test_rejects_duplicates(self):
        assert not is_permutation(np.array([0, 0, 2]))

    def test_rejects_out_of_range(self):
        assert not is_permutation(np.array([0, 1, 3]))

    def test_rejects_negative(self):
        assert not is_permutation(np.array([-1, 0, 1]))

    def test_rejects_wrong_length(self):
        assert not is_permutation(np.array([0, 1]), 3)

    def test_rejects_2d(self):
        assert not is_permutation(np.array([[0, 1]]))

    def test_empty_is_valid(self):
        assert is_permutation(np.array([], dtype=np.int64))

    def test_check_raises(self):
        with pytest.raises(PermutationError):
            check_permutation(np.array([0, 0]))

    def test_check_returns_int64(self):
        out = check_permutation(np.array([1.0, 0.0]))
        assert out.dtype == np.int64


class TestInvertCompose:
    def test_invert_hand_case(self):
        # old 0 -> new 2, old 1 -> new 0, old 2 -> new 1
        inv = invert_permutation(np.array([2, 0, 1]))
        assert inv.tolist() == [1, 2, 0]

    def test_compose_hand_case(self):
        first = np.array([1, 2, 0])
        second = np.array([2, 0, 1])
        composed = compose_permutations(first, second)
        assert composed.tolist() == [second[f] for f in first.tolist()]

    def test_compose_length_mismatch(self):
        with pytest.raises(PermutationError):
            compose_permutations(np.array([0, 1]), np.array([0, 1, 2]))

    @given(permutations)
    @settings(max_examples=30, deadline=None)
    def test_invert_roundtrip(self, perm):
        inv = invert_permutation(perm)
        assert np.array_equal(compose_permutations(perm, inv),
                              identity_permutation(perm.shape[0]))

    @given(permutations)
    @settings(max_examples=30, deadline=None)
    def test_double_invert_identity(self, perm):
        assert np.array_equal(invert_permutation(invert_permutation(perm)), perm)

    @given(permutations)
    @settings(max_examples=20, deadline=None)
    def test_compose_with_identity(self, perm):
        ident = identity_permutation(perm.shape[0])
        assert np.array_equal(compose_permutations(perm, ident), perm)
        assert np.array_equal(compose_permutations(ident, perm), perm)


class TestApplication:
    def test_apply_to_edges(self):
        relabeling = np.array([2, 0, 1])
        src, dst = apply_to_edges(relabeling, np.array([0, 1]), np.array([1, 2]))
        assert src.tolist() == [2, 0]
        assert dst.tolist() == [0, 1]

    def test_apply_to_vertex_data(self):
        relabeling = np.array([1, 2, 0])
        data = np.array([10.0, 20.0, 30.0])
        moved = apply_to_vertex_data(relabeling, data)
        # result[new] == data[old]
        assert moved.tolist() == [30.0, 10.0, 20.0]

    def test_apply_to_vertex_data_length_mismatch(self):
        with pytest.raises(PermutationError):
            apply_to_vertex_data(np.array([0, 1]), np.array([1.0]))

    @given(permutations)
    @settings(max_examples=20, deadline=None)
    def test_data_roundtrip(self, perm):
        data = np.arange(perm.shape[0], dtype=np.float64)
        moved = apply_to_vertex_data(perm, data)
        back = apply_to_vertex_data(invert_permutation(perm), moved)
        assert np.array_equal(back, data)


class TestSortOrder:
    def test_order_to_relabeling(self):
        # order lists old IDs: old 2 first (new 0), old 0 second (new 1)...
        relabeling = sort_order_to_relabeling(np.array([2, 0, 1]))
        assert relabeling.tolist() == [1, 2, 0]

    def test_identity_order(self):
        assert sort_order_to_relabeling(np.array([0, 1, 2])).tolist() == [0, 1, 2]

    def test_rejects_non_permutation(self):
        with pytest.raises(PermutationError):
            sort_order_to_relabeling(np.array([0, 0, 1]))
