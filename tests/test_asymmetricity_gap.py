"""Unit tests for asymmetricity, reciprocity and the gap profile."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    asymmetricity_degree_distribution,
    asymmetricity_per_vertex,
    average_gap_profile,
    reciprocity,
)
from repro.graph import Graph


def graph_of(n, edges):
    src = np.array([e[0] for e in edges], dtype=np.int64)
    dst = np.array([e[1] for e in edges], dtype=np.int64)
    return Graph.from_edges(n, src, dst)


class TestAsymmetricity:
    def test_fully_symmetric_pair(self):
        g = graph_of(2, [(0, 1), (1, 0)])
        asym = asymmetricity_per_vertex(g)
        assert asym[0] == 0.0
        assert asym[1] == 0.0

    def test_one_way_edge(self):
        g = graph_of(2, [(0, 1)])
        asym = asymmetricity_per_vertex(g)
        assert asym[1] == 1.0
        assert np.isnan(asym[0])  # no in-neighbours

    def test_mixed(self):
        # in-nb of 2: {0 (one-way), 1 (reciprocated)} -> asym = 1/2
        g = graph_of(3, [(0, 2), (1, 2), (2, 1)])
        assert asymmetricity_per_vertex(g)[2] == pytest.approx(0.5)

    def test_self_loop_is_symmetric(self):
        g = graph_of(1, [(0, 0)])
        assert asymmetricity_per_vertex(g)[0] == 0.0

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 25))
        m = int(rng.integers(1, 80))
        src = rng.integers(0, n, size=m)
        dst = rng.integers(0, n, size=m)
        g = graph_of(n, list(set(zip(src.tolist(), dst.tolist()))))
        asym = asymmetricity_per_vertex(g)
        edges = set(zip(*[arr.tolist() for arr in g.edges()]))
        for v in range(n):
            in_nb = [u for (u, w) in edges if w == v]
            if not in_nb:
                assert np.isnan(asym[v])
                continue
            not_reciprocated = [u for u in in_nb if (v, u) not in edges]
            assert asym[v] == pytest.approx(len(not_reciprocated) / len(in_nb))

    def test_reciprocity_bounds(self, small_social, small_web):
        assert 0.0 <= reciprocity(small_web) <= 1.0
        assert reciprocity(small_social) > reciprocity(small_web)

    def test_reciprocity_symmetric_graph(self):
        g = graph_of(3, [(0, 1), (1, 0), (1, 2), (2, 1)])
        assert reciprocity(g) == pytest.approx(1.0)

    def test_reciprocity_empty(self):
        g = graph_of(0, [])
        assert reciprocity(g) == 0.0

    def test_distribution_percent_scale(self, small_web):
        dist = asymmetricity_degree_distribution(small_web)
        x, y = dist.series()
        assert ((y >= 0) & (y <= 100)).all()

    def test_distribution_counts_in_degree_vertices(self, small_web):
        dist = asymmetricity_degree_distribution(small_web)
        assert dist.vertex_counts.sum() == int(
            (small_web.in_degrees() > 0).sum()
        )


class TestGapProfile:
    def test_hand_computed(self):
        g = graph_of(10, [(0, 9), (4, 5)])
        profile = average_gap_profile(g)
        assert profile.mean_gap == pytest.approx(5.0)
        assert profile.median_gap == pytest.approx(5.0)

    def test_empty(self):
        g = graph_of(0, [])
        assert average_gap_profile(g).mean_gap == 0.0

    def test_gap_blind_to_neighbour_clustering(self):
        """The paper's motivation for AID over the gap profile.

        Neighbours 100 apart from the vertex but adjacent to each other:
        the gap profile is large although spatial locality is perfect.
        """
        from repro.core import aid_per_vertex

        g = graph_of(205, [(100, 0), (101, 0), (102, 0)])
        profile = average_gap_profile(g)
        aid = aid_per_vertex(g)[0]
        assert profile.mean_gap == pytest.approx(101.0)
        assert aid == pytest.approx(2 / 3)  # AID sees the clustering

    def test_as_dict(self, tiny_graph):
        d = average_gap_profile(tiny_graph).as_dict()
        assert set(d) == {"mean", "median", "p90"}
