"""Unit tests for GOrder and Rabbit-Order."""

import numpy as np
import pytest

from repro.errors import ReorderingError
from repro.core import aid_per_vertex
from repro.graph import Graph, invert_permutation, is_permutation, validate_graph
from repro.reorder import GOrder, RabbitOrder


def graph_of(n, edges):
    src = np.array([e[0] for e in edges], dtype=np.int64)
    dst = np.array([e[1] for e in edges], dtype=np.int64)
    return Graph.from_edges(n, src, dst)


class TestGOrder:
    def test_valid_permutation(self, small_social):
        result = GOrder()(small_social)
        assert is_permutation(result.relabeling, small_social.num_vertices)
        validate_graph(result.apply(small_social))

    def test_starts_from_max_degree(self, star_graph):
        result = GOrder()(star_graph)
        assert result.relabeling[0] == 0

    def test_siblings_placed_adjacently(self):
        # 1 and 2 share both in-neighbours 3 and 4; 5 is unrelated.
        g = graph_of(6, [(3, 1), (3, 2), (4, 1), (4, 2), (3, 4), (5, 0), (0, 5)])
        result = GOrder(window=3)(g)
        new_ids = result.relabeling
        assert abs(int(new_ids[1]) - int(new_ids[2])) <= 2

    def test_window_validation(self):
        with pytest.raises(ReorderingError):
            GOrder(window=0)

    def test_disconnected_graph_completes(self):
        g = graph_of(6, [(0, 1), (2, 3), (4, 5)])
        result = GOrder()(g)
        assert is_permutation(result.relabeling, 6)

    def test_deterministic(self, small_social):
        a = GOrder()(small_social).relabeling
        b = GOrder()(small_social).relabeling
        assert np.array_equal(a, b)

    def test_details_recorded(self, small_social):
        result = GOrder(window=4)(small_social)
        assert result.details["window"] == 4
        assert result.details["huge_threshold"] > 0

    def test_huge_threshold_override(self, small_social):
        result = GOrder(huge_threshold=10)(small_social)
        assert result.details["huge_threshold"] == 10


class TestRabbitOrder:
    def test_valid_permutation(self, small_web):
        result = RabbitOrder()(small_web)
        assert is_permutation(result.relabeling, small_web.num_vertices)
        validate_graph(result.apply(small_web))

    def test_planted_communities_made_contiguous(self, community_graph):
        result = RabbitOrder()(community_graph)
        relabeled = community_graph.permuted(result.relabeling)
        # new IDs within a planted block should be much closer than random
        before = np.nanmean(aid_per_vertex(community_graph))
        from repro.graph import random_permutation

        scrambled = community_graph.permuted(
            random_permutation(community_graph.num_vertices, seed=1)
        )
        after = np.nanmean(aid_per_vertex(relabeled))
        random_aid = np.nanmean(aid_per_vertex(scrambled))
        assert after < 0.5 * random_aid
        assert after <= before * 1.2

    def test_merges_happen(self, community_graph):
        result = RabbitOrder()(community_graph)
        assert result.details["num_merges"] > community_graph.num_vertices / 2
        assert result.details["num_top_level"] >= 1

    def test_seed_changes_output(self, small_web):
        a = RabbitOrder(seed=0)(small_web).relabeling
        b = RabbitOrder(seed=1)(small_web).relabeling
        assert not np.array_equal(a, b)

    def test_seed_deterministic(self, small_web):
        a = RabbitOrder(seed=5)(small_web).relabeling
        b = RabbitOrder(seed=5)(small_web).relabeling
        assert np.array_equal(a, b)

    def test_community_members_adjacent_ids(self):
        # two cliques joined by one edge: each clique one community
        edges = []
        for block in (range(0, 4), range(4, 8)):
            block = list(block)
            edges.extend(
                (u, v) for u in block for v in block if u != v
            )
        edges.append((0, 4))
        g = graph_of(8, edges)
        result = RabbitOrder()(g)
        ids = result.relabeling
        spread_a = ids[:4].max() - ids[:4].min()
        spread_b = ids[4:].max() - ids[4:].min()
        assert spread_a == 3
        assert spread_b == 3

    def test_max_community_weight_cap(self):
        with pytest.raises(ReorderingError):
            RabbitOrder(max_community_weight=0)

    def test_cap_limits_merging(self, community_graph):
        unlimited = RabbitOrder()(community_graph)
        capped = RabbitOrder(max_community_weight=10.0)(community_graph)
        assert (
            capped.details["num_merges"] < unlimited.details["num_merges"]
        )

    def test_edgeless_graph(self):
        g = graph_of(3, [(0, 0)])  # only a self loop
        result = RabbitOrder()(g)
        assert is_permutation(result.relabeling, 3)

    def test_self_loops_tolerated(self):
        g = graph_of(4, [(0, 0), (0, 1), (1, 0), (2, 3), (3, 2)])
        result = RabbitOrder()(g)
        assert is_permutation(result.relabeling, 4)
