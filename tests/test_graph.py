"""Unit tests for the Graph container."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import Adjacency, Graph, random_permutation, validate_graph


class TestConstruction:
    def test_from_edges_shapes(self, tiny_graph):
        assert tiny_graph.num_vertices == 6
        assert tiny_graph.num_edges == 7

    def test_csc_mirrors_csr(self, tiny_graph):
        # in-neighbours of 0 are 2 and 5
        assert tiny_graph.in_adj.neighbours(0).tolist() == [2, 5]
        assert tiny_graph.out_adj.neighbours(0).tolist() == [1, 2]

    def test_mismatched_vertex_counts_rejected(self):
        a = Adjacency.from_edges(2, np.array([0]), np.array([1]))
        b = Adjacency.from_edges(3, np.array([1]), np.array([0]))
        with pytest.raises(GraphFormatError):
            Graph(a, b)

    def test_mismatched_edge_counts_rejected(self):
        a = Adjacency.from_edges(2, np.array([0]), np.array([1]))
        b = Adjacency.from_edges(2, np.array([], dtype=np.int64),
                                 np.array([], dtype=np.int64))
        with pytest.raises(GraphFormatError):
            Graph(a, b)


class TestDegrees:
    def test_in_out_degrees(self, tiny_graph):
        assert tiny_graph.out_degrees().tolist() == [2, 1, 1, 1, 1, 1]
        assert tiny_graph.in_degrees().tolist() == [2, 1, 2, 1, 1, 0]

    def test_total_degrees(self, tiny_graph):
        total = tiny_graph.total_degrees()
        assert total.tolist() == [4, 2, 3, 2, 2, 1]

    def test_average_degree(self, tiny_graph):
        assert tiny_graph.average_degree == pytest.approx(7 / 6)

    def test_average_degree_empty(self):
        g = Graph.from_edges(0, np.array([], dtype=np.int64),
                             np.array([], dtype=np.int64))
        assert g.average_degree == 0.0

    def test_hub_threshold(self, tiny_graph):
        assert tiny_graph.hub_threshold == pytest.approx(np.sqrt(6))

    def test_star_in_hub(self, star_graph):
        assert star_graph.in_hubs().tolist() == [0]
        assert star_graph.out_hubs().tolist() == []

    def test_degree_masks(self, star_graph):
        hdv = star_graph.high_degree_mask("in")
        assert hdv.tolist() == [True] + [False] * 19
        assert (~star_graph.low_degree_mask("in") == hdv).all()

    def test_unknown_direction(self, tiny_graph):
        with pytest.raises(GraphFormatError):
            tiny_graph._degrees("sideways")


class TestPermuted:
    def test_permuted_preserves_structure(self, tiny_graph):
        perm = random_permutation(6, seed=1)
        g2 = tiny_graph.permuted(perm)
        validate_graph(g2)
        assert g2.num_edges == tiny_graph.num_edges
        # edge (0, 1) becomes (perm[0], perm[1])
        assert perm[1] in g2.out_adj.neighbours(perm[0]).tolist()

    def test_permuted_degree_multiset_invariant(self, tiny_graph):
        perm = random_permutation(6, seed=2)
        g2 = tiny_graph.permuted(perm)
        assert sorted(g2.in_degrees().tolist()) == sorted(
            tiny_graph.in_degrees().tolist()
        )

    def test_permuted_rejects_bad_relabeling(self, tiny_graph):
        from repro.errors import PermutationError

        with pytest.raises(PermutationError):
            tiny_graph.permuted(np.zeros(6, dtype=np.int64))

    def test_identity_permutation_is_noop(self, tiny_graph):
        g2 = tiny_graph.permuted(np.arange(6))
        assert g2 == tiny_graph


class TestReversed:
    def test_reversed_swaps_directions(self, tiny_graph):
        r = tiny_graph.reversed()
        assert r.in_degrees().tolist() == tiny_graph.out_degrees().tolist()
        assert r.out_degrees().tolist() == tiny_graph.in_degrees().tolist()

    def test_double_reverse(self, tiny_graph):
        assert tiny_graph.reversed().reversed() == tiny_graph

    def test_not_hashable(self, tiny_graph):
        with pytest.raises(TypeError):
            hash(tiny_graph)

    def test_repr_contains_name(self, tiny_graph):
        assert "tiny" in repr(tiny_graph)
