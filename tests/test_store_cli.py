"""``python -m repro.store`` — subcommand behaviour and exit codes."""

from __future__ import annotations

import json

import pytest

from repro.store import ArtifactStore
from repro.store.cli import main


def _key(n: int) -> str:
    return f"{n:02x}" * 32


@pytest.fixture
def store(tmp_path) -> ArtifactStore:
    store = ArtifactStore(tmp_path / "store")
    store.put(_key(0xAA), "json", {"v": 1}, provenance={"stage": "t"})
    store.put(_key(0xBB), "json", {"v": 2})
    return store


def _run(store: ArtifactStore, *argv: str) -> int:
    return main(["--store", str(store.root), *argv])


class TestLs:
    def test_lists_artifacts(self, store, capsys):
        assert _run(store, "ls") == 0
        out = capsys.readouterr().out
        assert "2 artifact(s)" in out
        assert _key(0xAA)[:12] in out

    def test_kind_filter(self, store, capsys):
        assert _run(store, "ls", "--kind", "graph") == 0
        assert "(empty store" in capsys.readouterr().out

    def test_empty_store(self, tmp_path, capsys):
        assert main(["--store", str(tmp_path / "none"), "ls"]) == 0
        assert "(empty store" in capsys.readouterr().out


class TestInfo:
    def test_unique_prefix(self, store, capsys):
        assert _run(store, "info", _key(0xAA)[:8]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["key"] == _key(0xAA)
        assert document["kind"] == "json"
        assert document["provenance"] == {"stage": "t"}

    def test_unknown_prefix(self, store, capsys):
        assert _run(store, "info", "ff00") == 1
        assert "no artifact" in capsys.readouterr().out

    def test_ambiguous_prefix(self, tmp_path, capsys):
        store = ArtifactStore(tmp_path / "amb")
        store.put("aa11" + "0" * 60, "json", {"v": 1})
        store.put("aa22" + "0" * 60, "json", {"v": 2})
        assert _run(store, "info", "aa") == 1
        assert "2 artifacts match" in capsys.readouterr().out


class TestVerify:
    def test_clean_store(self, store, capsys):
        assert _run(store, "verify") == 0
        assert "ok" in capsys.readouterr().out

    def test_corruption_fails(self, store, capsys):
        info = store.info(_key(0xBB), "json")
        info.path.write_bytes(b"garbage")
        assert _run(store, "verify") == 1
        assert "checksum mismatch" in capsys.readouterr().out
        # Not moved without --quarantine.
        assert store.contains(_key(0xBB), "json")

    def test_quarantine_flag_sweeps(self, store, capsys):
        info = store.info(_key(0xBB), "json")
        info.path.write_bytes(b"garbage")
        assert _run(store, "verify", "--quarantine") == 1
        assert not store.contains(_key(0xBB), "json")
        assert _run(store, "verify") == 0


class TestGC:
    def test_zero_budget_evicts_all(self, store, capsys):
        assert _run(store, "gc", "--max-bytes", "0") == 0
        out = capsys.readouterr().out
        assert "evicted 2/2" in out
        assert store.infos() == []

    def test_mb_budget_keeps_everything_small(self, store, capsys):
        assert _run(store, "gc", "--max-mb", "10") == 0
        assert len(store.infos()) == 2

    def test_requires_a_bound(self, store, capsys):
        with pytest.raises(SystemExit) as excinfo:
            _run(store, "gc")
        assert excinfo.value.code == 2

    def test_negative_bound_is_config_error(self, store, capsys):
        assert _run(store, "gc", "--max-bytes", "-5") == 2
        assert "error:" in capsys.readouterr().out


class TestEntryPoint:
    def test_module_is_executable(self, tmp_path, repo_root):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro.store", "--store", str(tmp_path), "ls"],
            capture_output=True,
            text=True,
            cwd=repo_root,
            env={"PYTHONPATH": str(repo_root / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0
        assert "(empty store" in result.stdout
