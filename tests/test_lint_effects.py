"""Whole-program effect analysis (``--effects``): inference, contracts, cache.

Unit tests analyze the known-effect toy modules in
``tests/fixtures/effects/`` statically (the fixtures are never
imported); contract tests build miniature projects in ``tmp_path``
around a copy of the real ``memo.py``; the acceptance tests drive the
committed tree through its own gate.
"""

import ast
import io
import itertools
import re
import shutil
import textwrap
import time
from pathlib import Path

from repro.lint.cli import EXIT_FINDINGS, EXIT_OK, main
from repro.lint.config import LintConfig, load_config
from repro.lint.effects import analyze_effects
from repro.lint.effects.callgraph import ProjectIndex, summarize_module
from repro.lint.effects.inference import EffectAnalysis
from repro.lint.effects.model import mask_names
from repro.obs import core as obs_core
from repro.obs.metrics import registry

FIXDIR = Path(__file__).resolve().parent / "fixtures" / "effects"
FIXREL = "tests/fixtures/effects"


def fixture_analysis():
    """Link and analyze every toy module under tests/fixtures/effects."""
    summaries = [
        summarize_module(path.read_text(), f"{FIXREL}/{path.name}")
        for path in sorted(FIXDIR.glob("*.py"))
    ]
    index = ProjectIndex(summaries)
    return index, EffectAnalysis(index)


def effects_of(analysis, relname, qualname):
    fid = (f"{FIXREL}/{relname}", qualname)
    return mask_names(analysis.export_und(fid))


class TestFixtureInference:
    def test_pure_module_is_effect_free(self):
        _, analysis = fixture_analysis()
        for qualname in ("double", "quadruple", "total"):
            assert effects_of(analysis, "pure.py", qualname) == ()

    def test_time_taint_propagates_two_calls_deep(self):
        _, analysis = fixture_analysis()
        assert "time" in effects_of(analysis, "timey.py", "stamp")
        # The chain must walk through both intermediate frames down to
        # the intrinsic time.time() call.
        chain = analysis.explain((f"{FIXREL}/timey.py", "stamp"), "time")
        assert len(chain) >= 2
        joined = "\n".join(chain)
        assert "_mid" in joined and "_now" in joined
        assert "time.time" in joined

    def test_seeded_rng_clean_unseeded_tainted(self):
        _, analysis = fixture_analysis()
        assert "rng-unseeded" not in effects_of(analysis, "rng.py", "seeded_draw")
        assert "rng-unseeded" in effects_of(analysis, "rng.py", "unseeded_draw")

    def test_env_read_behind_conditional_still_taints(self):
        _, analysis = fixture_analysis()
        assert "env-read" in effects_of(analysis, "envy.py", "flag_enabled")


def _permuted(source, order):
    """Reassemble a module with its top-level functions in ``order``."""
    tree = ast.parse(source)
    defs = [n for n in tree.body if isinstance(n, ast.FunctionDef)]
    segments = [ast.get_source_segment(source, d) for d in defs]
    header_end = min(d.lineno for d in defs) - 1
    header = "\n".join(source.splitlines()[:header_end])
    body = "\n\n\n".join(segments[i] for i in order)
    return header + "\n\n\n" + body + "\n"


def _strip_lines(chain):
    """Explain chains minus line numbers (which move when reordering)."""
    return tuple(re.sub(r":\d+", ":*", line) for line in chain)


class TestReorderingStability:
    """Analysis results must not depend on definition order in a module."""

    def test_masks_and_chains_stable_under_function_reordering(self):
        source = (FIXDIR / "timey.py").read_text()
        relpath = f"{FIXREL}/timey.py"
        fid = (relpath, "stamp")

        baseline_masks = None
        baseline_chain = None
        for order in itertools.permutations(range(3)):
            summary = summarize_module(_permuted(source, order), relpath)
            analysis = EffectAnalysis(ProjectIndex([summary]))
            masks = {
                qualname: mask_names(analysis.export_und((relpath, qualname)))
                for qualname in summary.functions
            }
            chain = _strip_lines(analysis.explain(fid, "time"))
            if baseline_masks is None:
                baseline_masks = masks
                baseline_chain = chain
            else:
                assert masks == baseline_masks, f"masks diverged for {order}"
                assert chain == baseline_chain, f"chain diverged for {order}"
        # Sanity: the property held on a genuinely tainted entry point.
        assert "time" in baseline_masks["stamp"]


STAGE_SOURCE = textwrap.dedent(
    """
    import time

    from repro.store.memo import cached_stage


    @cached_stage("fx.stage")
    def stage(x):
        return _build(x)


    def _build(x):
        return _leaf(x)


    def _leaf(x):
        return x + time.time()
    """
)


def make_effects_project(tmp_path, repo_root, stage_source=STAGE_SOURCE):
    """Miniature project: real memo.py copy + a seeded-fault stage chain."""
    (tmp_path / "pyproject.toml").write_text(
        textwrap.dedent(
            """
            [project]
            name = "fixture"

            [tool.repro-lint]
            dtype-scopes = []
            hot-path-modules = []
            edge-loop-allow = []
            """
        )
    )
    store_dir = tmp_path / "src" / "repro" / "store"
    store_dir.mkdir(parents=True)
    shutil.copy(repo_root / "src" / "repro" / "store" / "memo.py", store_dir)
    (tmp_path / "src" / "repro" / "stages.py").write_text(stage_source)
    return tmp_path


def run(tmp_path, *argv):
    out = io.StringIO()
    code = main(
        ["--root", str(tmp_path), str(tmp_path / "src"), *argv], stream=out
    )
    return code, out.getvalue()


class TestContracts:
    def test_seeded_fault_reported_as_rl006_with_deep_chain(
        self, tmp_path, repo_root
    ):
        make_effects_project(tmp_path, repo_root)
        config = load_config(tmp_path)
        report = analyze_effects([tmp_path / "src"], config, cache_dir=None)
        rl006 = [
            ef
            for ef in report.findings
            if ef.finding.code == "RL006"
            and ef.finding.relpath == "src/repro/stages.py"
        ]
        assert len(rl006) == 1, [ef.finding.render() for ef in report.findings]
        (finding,) = rl006
        assert "time" in finding.finding.message
        # Call-chain explanation at least two frames deep: the taint
        # reaches stage() only through _build() then _leaf().
        assert len(finding.chain) >= 2
        joined = "\n".join(finding.chain)
        assert "_build" in joined and "_leaf" in joined

    def test_cli_renders_rl006_with_chain_and_exits_nonzero(
        self, tmp_path, repo_root
    ):
        make_effects_project(tmp_path, repo_root)
        code, output = run(tmp_path, "--effects", "--no-effects-cache")
        assert code == EXIT_FINDINGS
        assert "RL006" in output
        assert "_leaf" in output  # the chain is printed under the finding

    def test_inline_disable_suppresses_rl006(self, tmp_path, repo_root):
        silenced = STAGE_SOURCE.replace(
            "def stage(x):", "def stage(x):  # repro-lint: disable=RL006"
        )
        make_effects_project(tmp_path, repo_root, stage_source=silenced)
        code, output = run(tmp_path, "--effects", "--no-effects-cache")
        assert code == EXIT_OK, output
        assert "disabled inline" in output

    def test_clean_stage_passes(self, tmp_path, repo_root):
        clean = textwrap.dedent(
            """
            from repro.store.memo import cached_stage


            @cached_stage("fx.clean")
            def stage(x):
                return _build(x)


            def _build(x):
                return x * 2
            """
        )
        make_effects_project(tmp_path, repo_root, stage_source=clean)
        code, output = run(tmp_path, "--effects", "--no-effects-cache")
        assert code == EXIT_OK, output

    def test_stale_declaration_reported_as_rl008(self, tmp_path, repo_root):
        undeclared = textwrap.dedent(
            """
            import os
            import time

            from repro.lint.contracts import declares_effects


            @declares_effects("time")
            def annotated():
                time.time()
                return _helper()


            def _helper():
                return os.environ.get("X", "")
            """
        )
        make_effects_project(tmp_path, repo_root, stage_source=undeclared)
        code, output = run(tmp_path, "--effects", "--no-effects-cache")
        assert code == EXIT_FINDINGS
        assert "RL008" in output
        assert "env-read" in output

    def test_effects_summary_json_written(self, tmp_path, repo_root):
        import json

        make_effects_project(tmp_path, repo_root)
        summary_file = tmp_path / "out" / "effects.json"
        run(
            tmp_path,
            "--effects",
            "--no-effects-cache",
            "--effects-summary",
            str(summary_file),
        )
        data = json.loads(summary_file.read_text())
        assert data["modules_analyzed"] == 2
        assert data["contracts"]["RL006"] == 1


class TestCheckBaseline:
    def test_stale_entry_detected_after_file_removal(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("[project]\nname = 'x'\n")
        module = tmp_path / "src" / "repro" / "sim" / "mod.py"
        module.parent.mkdir(parents=True)
        module.write_text("import numpy as np\n\ncounts = np.zeros(16)\n")
        code, output = run(tmp_path, "--write-baseline")
        assert code == EXIT_OK

        code, output = run(tmp_path, "--check-baseline")
        assert code == EXIT_OK
        assert "no stale entries" in output

        module.unlink()
        code, output = run(tmp_path, "--check-baseline")
        assert code == EXIT_FINDINGS
        assert "stale baseline entry" in output


class TestEffectsCache:
    def test_warm_rerun_hits_cache_for_every_module(self, repo_root, tmp_path):
        config = load_config(repo_root)
        paths = [repo_root / "src"]
        cache = tmp_path / "effects-cache"

        with obs_core.recording():
            start = time.perf_counter()
            cold = analyze_effects(paths, config, cache_dir=cache)
            cold_s = time.perf_counter() - start
            assert (
                registry.counter("lint.effects.cache_miss").value
                == cold.modules_analyzed
            )

        with obs_core.recording():
            start = time.perf_counter()
            warm = analyze_effects(paths, config, cache_dir=cache)
            warm_s = time.perf_counter() - start
            # Acceptance criterion: every module served from the disk
            # cache on the warm run...
            assert (
                registry.counter("lint.effects.cache_hit").value
                == warm.modules_analyzed
            )

        assert warm.cache_hits == warm.modules_analyzed
        assert warm.cache_misses == 0
        assert warm.contract_counts == cold.contract_counts
        # ...and in under 25% of the cold wall-clock (measured in-process
        # so interpreter startup doesn't mask the parse savings).
        assert warm_s < 0.25 * cold_s, f"warm {warm_s:.3f}s vs cold {cold_s:.3f}s"

    def test_source_edit_invalidates_only_that_module(self, tmp_path, repo_root):
        make_effects_project(tmp_path, repo_root)
        config = load_config(tmp_path)
        cache = tmp_path / "effects-cache"
        analyze_effects([tmp_path / "src"], config, cache_dir=cache)

        stages = tmp_path / "src" / "repro" / "stages.py"
        stages.write_text(stages.read_text() + "\n# trailing comment\n")
        report = analyze_effects([tmp_path / "src"], config, cache_dir=cache)
        assert report.cache_misses == 1
        assert report.cache_hits == report.modules_analyzed - 1

    def test_no_cache_dir_always_cold(self, tmp_path, repo_root):
        make_effects_project(tmp_path, repo_root)
        config = load_config(tmp_path)
        report = analyze_effects([tmp_path / "src"], config, cache_dir=None)
        assert report.cache_hits == 0
        assert report.cache_misses == report.modules_analyzed


class TestRepoGate:
    """The committed tree must satisfy its own effects gate."""

    def test_repo_effects_gate_clean(self, repo_root):
        out = io.StringIO()
        code = main(
            [
                "--root",
                str(repo_root),
                str(repo_root / "src"),
                "--effects",
                "--no-effects-cache",
            ],
            stream=out,
        )
        assert code == EXIT_OK, out.getvalue()
        output = out.getvalue()
        assert "effects:" in output
        # Every module under src/repro is analyzed, not a subset.
        analyzed = int(re.search(r"effects: (\d+) module", output).group(1))
        total = len(list((repo_root / "src" / "repro").rglob("*.py")))
        assert analyzed == total

    def test_repo_baseline_has_no_stale_entries(self, repo_root):
        out = io.StringIO()
        code = main(
            ["--root", str(repo_root), str(repo_root / "src"), "--check-baseline"],
            stream=out,
        )
        assert code == EXIT_OK, out.getvalue()
