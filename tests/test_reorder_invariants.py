"""Registry-driven property harness: the contract every RA must satisfy.

Every algorithm registered in :mod:`repro.reorder` — current and future
— is pulled from ``algorithm_names()`` and run through the same
Hypothesis properties, so a new RA inherits this suite by registering:

* the result is a valid permutation with a bijective inverse;
* ``apply(apply(G, p), p⁻¹)`` restores the CSR arrays bit-identically;
* the ordering is deterministic under the default (fixed) seed;
* empty graphs raise a typed :class:`ReorderingError` (never a numpy
  error), and single-vertex / all-isolated / mixed graphs come back as
  valid permutations covering every vertex;
* RAs that claim degree monotonicity actually produce it;
* the per-community RA never interleaves communities, whatever inner
  algorithm it composes with.

Plus the metamorphic id-invariance checks: DBG's degree-class structure
is *exactly* invariant under input relabeling, and per-community
detection keeps its partition structure and locality quality within
tolerance (label-propagation tie-breaks are not id-equivariant, so
exact membership equality is deliberately not asserted).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ReorderingError, ReproError
from repro.generate import planted_partition_edges
from repro.graph import (
    Graph,
    build_graph,
    invert_permutation,
    is_permutation,
    modularity,
    random_permutation,
)
from repro.reorder import algorithm_names, get_algorithm

#: Names whose relative order in the new ID space is sorted by degree:
#: mapping to the predicate the suite asserts along the emitted order.
MONOTONE_CLAIMS = {
    "degree": "total-degree non-increasing",
    "dbg": "degree-class non-decreasing",
}

#: Inner RAs the per-community composition is exercised with — one
#: cheap, one structural, one the registry default uses.
COMMUNITY_INNERS = ("identity", "degree", "bfs")

RELAXED = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _random_graph(n: int, num_edges: int, seed: int) -> Graph:
    """Small deterministic graph; zero-degree vertices are kept."""
    rng = np.random.default_rng(seed)
    if num_edges:
        src = rng.integers(0, n, num_edges, dtype=np.int64)
        dst = rng.integers(0, n, num_edges, dtype=np.int64)
    else:
        src = np.zeros(0, dtype=np.int64)
        dst = np.zeros(0, dtype=np.int64)
    return build_graph(n, src, dst, drop_zero_degree=False).graph


graph_params = st.tuples(
    st.integers(min_value=1, max_value=40),
    st.integers(min_value=0, max_value=120),
    st.integers(min_value=0, max_value=2**31 - 1),
)


def _csr_arrays(graph: Graph) -> "list[np.ndarray]":
    return [
        graph.out_adj.offsets,
        graph.out_adj.targets,
        graph.in_adj.offsets,
        graph.in_adj.targets,
    ]


@pytest.mark.parametrize("name", algorithm_names())
class TestSharedContract:
    """One parametrized instance per registry entry — 15 RAs and counting."""

    @RELAXED
    @given(params=graph_params)
    def test_valid_permutation_and_apply_roundtrip(self, name, params):
        graph = _random_graph(*params)
        result = get_algorithm(name)(graph)
        relabeling = result.relabeling
        n = graph.num_vertices

        assert relabeling.shape == (n,)
        assert is_permutation(relabeling, n)
        inverse = invert_permutation(relabeling)
        assert np.array_equal(relabeling[inverse], np.arange(n))
        assert np.array_equal(inverse[relabeling], np.arange(n))

        # Satellite: apply/inverse round trip restores CSR bit-identically.
        reordered = result.apply(graph)
        restored = reordered.permuted(inverse)
        for original, back in zip(_csr_arrays(graph), _csr_arrays(restored)):
            assert original.dtype == back.dtype
            assert np.array_equal(original, back)

    @RELAXED
    @given(params=graph_params)
    def test_deterministic_under_fixed_seed(self, name, params):
        graph = _random_graph(*params)
        first = get_algorithm(name)(graph).relabeling
        second = get_algorithm(name)(graph).relabeling
        assert np.array_equal(first, second)

    def test_empty_graph_raises_typed_error(self, name):
        empty = np.zeros(0, dtype=np.int64)
        graph = build_graph(0, empty, empty, drop_zero_degree=False).graph
        with pytest.raises(ReorderingError):
            get_algorithm(name)(graph)

    @pytest.mark.parametrize(
        "case",
        ["single-vertex", "single-self-loop", "all-isolated", "mixed-isolated"],
    )
    def test_degenerate_graphs_yield_valid_permutations(self, name, case):
        empty = np.zeros(0, dtype=np.int64)
        if case == "single-vertex":
            graph = build_graph(1, empty, empty, drop_zero_degree=False).graph
        elif case == "single-self-loop":
            graph = build_graph(
                1, np.array([0]), np.array([0]), drop_zero_degree=False
            ).graph
        elif case == "all-isolated":
            graph = build_graph(8, empty, empty, drop_zero_degree=False).graph
        else:
            graph = build_graph(
                6, np.array([0, 1]), np.array([1, 2]), drop_zero_degree=False
            ).graph
        try:
            result = get_algorithm(name)(graph)
        except ReproError:
            pytest.fail(f"{name} rejected a valid degenerate graph: {case}")
        assert is_permutation(result.relabeling, graph.num_vertices)


@pytest.mark.parametrize("name", sorted(MONOTONE_CLAIMS))
@RELAXED
@given(params=graph_params)
def test_degree_monotonicity_where_claimed(name, params):
    graph = _random_graph(*params)
    order = invert_permutation(get_algorithm(name)(graph).relabeling)
    if name == "degree":
        along = graph._degrees("total")[order]
        assert bool(np.all(np.diff(along) <= 0)), MONOTONE_CLAIMS[name]
    else:
        along = get_algorithm(name).group_of(graph)[order]
        assert bool(np.all(np.diff(along) >= 0)), MONOTONE_CLAIMS[name]


@pytest.mark.parametrize("inner", COMMUNITY_INNERS)
@settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(params=graph_params)
def test_community_blocks_never_interleave(inner, params):
    """Each detected community occupies one contiguous new-ID range."""
    graph = _random_graph(*params)
    algorithm = get_algorithm("community", inner=inner)
    partition = algorithm.communities(graph)
    relabeling = algorithm(graph).relabeling
    for community in range(partition.num_communities):
        new_ids = np.sort(relabeling[partition.labels == community])
        lo = int(new_ids[0])
        assert np.array_equal(
            new_ids, np.arange(lo, lo + new_ids.shape[0])
        ), f"community {community} interleaved under inner={inner!r}"


class TestCommunityComposition:
    def test_accepts_every_registered_inner(self, community_graph):
        for inner in algorithm_names():
            if inner == "community":
                continue
            algorithm = get_algorithm("community", inner=inner)
            assert algorithm.inner == inner

    def test_rejects_self_nesting(self):
        with pytest.raises(ReorderingError):
            get_algorithm("community", inner="community")

    def test_rejects_unknown_inner(self):
        with pytest.raises(ReorderingError):
            get_algorithm("community", inner="definitely-not-registered")

    def test_size_sorted_emission(self, community_graph):
        algorithm = get_algorithm("community")
        partition = algorithm.communities(community_graph)
        order = invert_permutation(algorithm(community_graph).relabeling)
        first_sizes = []
        seen: set[int] = set()
        for vertex in order.tolist():
            label = int(partition.labels[vertex])
            if label not in seen:
                seen.add(label)
                first_sizes.append(int(partition.sizes[label]))
        assert first_sizes == sorted(first_sizes, reverse=True)


class TestRegistryCoverage:
    def test_registry_has_at_least_twelve_algorithms(self):
        names = algorithm_names()
        assert len(names) >= 12
        assert {"dbg", "community", "hisorder"} <= set(names)

    def test_serve_jobs_validate_new_algorithms(self):
        from repro.serve.jobs import canonical_job

        for name in ("dbg", "community", "hisorder"):
            job = canonical_job(
                {"dataset": "twtr-mini", "algorithm": name}, kind="reorder"
            )
            assert job["algorithm"] == name
        job = canonical_job(
            {
                "dataset": "twtr-mini",
                "algorithm": "community",
                "params": {"inner": "degree", "seed": 1},
            },
            kind="reorder",
        )
        assert job["params"] == {"inner": "degree", "seed": 1}

    def test_serve_jobs_reject_bad_params_at_admission(self):
        """Invalid RA params are a 400 (ServeError), not a worker crash."""
        from repro.errors import ServeError
        from repro.serve.jobs import canonical_job

        bad = [
            {"algorithm": "community", "params": {"inner": "nope"}},
            {"algorithm": "community", "params": {"inner": "community"}},
            {"algorithm": "dbg", "params": {"num_groups": 0}},
            {"algorithm": "hisorder", "params": {"direction": "sideways"}},
            {"algorithm": "degree", "params": {"bogus_kwarg": 1}},
        ]
        for payload in bad:
            with pytest.raises(ServeError):
                canonical_job({"dataset": "twtr-mini", **payload}, kind="reorder")


# -- metamorphic id-invariance (satellite) -----------------------------------


@settings(max_examples=50, deadline=None)
@given(
    params=graph_params,
    perm_seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_dbg_degree_classes_invariant_under_relabeling(params, perm_seed):
    """``group_of`` is a pure function of degrees: exactly id-invariant."""
    graph = _random_graph(*params)
    perm = random_permutation(graph.num_vertices, seed=perm_seed)
    relabeled = graph.permuted(perm)
    dbg = get_algorithm("dbg")
    base_groups = dbg.group_of(graph)
    moved_groups = dbg.group_of(relabeled)
    assert np.array_equal(moved_groups[perm], base_groups)
    assert np.array_equal(
        np.bincount(base_groups, minlength=dbg.num_groups),
        np.bincount(moved_groups, minlength=dbg.num_groups),
    )


@settings(max_examples=50, deadline=None)
@given(perm_seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_community_structure_stable_under_relabeling(perm_seed):
    """Partition structure and quality survive input relabeling.

    Label propagation breaks ties by label *value*, so the partition is
    not exactly id-equivariant — a relabeling can merge or split a
    borderline pair (measured worst case over 30 seeds: Rand index
    0.94, |ΔQ| 0.026 on the planted graph).  The metamorphic contract
    is therefore tolerance-based: pairwise membership agreement stays
    high and modularity — the id-invariant locality quality score —
    moves very little.
    """
    src, dst = planted_partition_edges(8, 32, 6, 1, seed=5)
    graph = build_graph(8 * 32, src, dst, name="planted").graph
    algorithm = get_algorithm("community")
    base = algorithm.communities(graph)
    base_q = modularity(graph.num_vertices, *graph.edges(), base.labels)

    perm = random_permutation(graph.num_vertices, seed=perm_seed)
    relabeled = graph.permuted(perm)
    moved = algorithm.communities(relabeled)
    moved_q = modularity(
        relabeled.num_vertices, *relabeled.edges(), moved.labels
    )
    back = moved.labels[perm]

    same_base = base.labels[:, None] == base.labels[None, :]
    same_moved = back[:, None] == back[None, :]
    n = graph.num_vertices
    rand_index = ((same_base == same_moved).sum() - n) / (n * (n - 1))
    assert rand_index >= 0.85
    assert abs(moved_q - base_q) <= 0.08
    assert abs(moved.num_communities - base.num_communities) <= 4
