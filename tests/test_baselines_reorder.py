"""Unit tests for the reordering interface and baseline orderings."""

import numpy as np
import pytest

from repro.errors import PermutationError, ReorderingError
from repro.graph import Graph, invert_permutation, is_permutation, validate_graph
from repro.reorder import (
    BFSOrder,
    DegreeSort,
    Identity,
    RandomOrder,
    ReorderingAlgorithm,
    algorithm_names,
    get_algorithm,
)


class TestInterface:
    def test_result_fields(self, tiny_graph):
        result = Identity()(tiny_graph)
        assert result.algorithm == "identity"
        assert result.preprocessing_seconds >= 0
        assert is_permutation(result.relabeling, 6)

    def test_memory_tracking(self, tiny_graph):
        result = RandomOrder()(tiny_graph, track_memory=True)
        assert result.peak_memory_bytes > 0

    def test_apply(self, tiny_graph):
        result = RandomOrder(seed=3)(tiny_graph)
        g2 = result.apply(tiny_graph)
        validate_graph(g2)
        assert g2.num_edges == tiny_graph.num_edges

    def test_empty_graph_rejected(self):
        g = Graph.from_edges(0, np.array([], dtype=np.int64),
                             np.array([], dtype=np.int64))
        with pytest.raises(ReorderingError):
            Identity()(g)

    def test_invalid_relabeling_caught(self, tiny_graph):
        class Broken(ReorderingAlgorithm):
            name = "broken"

            def compute(self, graph, details):
                return np.zeros(graph.num_vertices, dtype=np.int64)

        with pytest.raises(PermutationError):
            Broken()(tiny_graph)

    def test_registry_round_trip(self):
        for name in algorithm_names():
            assert get_algorithm(name).name == name

    def test_registry_unknown(self):
        with pytest.raises(ReorderingError):
            get_algorithm("sorting-hat")

    def test_registry_kwargs(self):
        algorithm = get_algorithm("random", seed=9)
        assert algorithm.seed == 9


class TestIdentityRandom:
    def test_identity_is_identity(self, tiny_graph):
        result = Identity()(tiny_graph)
        assert result.relabeling.tolist() == list(range(6))

    def test_random_seeded(self, tiny_graph):
        a = RandomOrder(seed=1)(tiny_graph).relabeling
        b = RandomOrder(seed=1)(tiny_graph).relabeling
        c = RandomOrder(seed=2)(tiny_graph).relabeling
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)


class TestDegreeSort:
    def test_highest_degree_first(self, star_graph):
        result = DegreeSort(direction="in")(star_graph)
        assert result.relabeling[0] == 0  # hub gets ID 0

    def test_ascending_option(self, star_graph):
        result = DegreeSort(direction="in", descending=False)(star_graph)
        assert result.relabeling[0] == 19  # hub gets the last ID

    def test_order_sorted_by_degree(self, small_social):
        result = DegreeSort(direction="total")(small_social)
        order = invert_permutation(result.relabeling)
        degrees = small_social.total_degrees()[order]
        assert (np.diff(degrees) <= 0).all()

    def test_stable_for_ties(self, ring_graph):
        result = DegreeSort()(ring_graph)
        assert result.relabeling.tolist() == list(range(12))

    def test_unknown_direction(self):
        with pytest.raises(ReorderingError):
            DegreeSort(direction="up")


class TestBFS:
    def test_valid_permutation(self, small_web):
        result = BFSOrder()(small_web)
        assert is_permutation(result.relabeling, small_web.num_vertices)

    def test_starts_from_max_degree(self, star_graph):
        result = BFSOrder()(star_graph)
        assert result.relabeling[0] == 0

    def test_component_count_recorded(self):
        # two disjoint pairs -> 2 components
        g = Graph.from_edges(4, np.array([0, 2]), np.array([1, 3]))
        result = BFSOrder()(g)
        assert result.details["num_components_visited"] == 2

    def test_neighbours_get_adjacent_ids_on_ring(self, ring_graph):
        result = BFSOrder()(ring_graph)
        order = invert_permutation(result.relabeling)
        # BFS of a ring enumerates it in path order
        diffs = np.abs(np.diff(ring_graph.out_adj.targets[order] - order))
        assert diffs.max() <= ring_graph.num_vertices
