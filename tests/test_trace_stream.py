"""Property tests: the streaming trace pipeline is bit-exact.

The scale tier replaces materialize-everything stages with bounded
streams — :func:`spmv_trace_chunks` for trace generation,
:func:`interleave_stream` for the round-robin merge, and
:func:`simulate_spmv_streamed` for the whole pipeline.  Their contract
is not "approximately the same": every array they produce must equal
the materializing reference bit for bit, for any chunk size, thread
count and interval.  These tests pin that equivalence across randomized
RMAT graphs, both traversal directions, chunk sizes down to 1 access,
and the chunk-boundary edge cases (zero-degree runs, a boundary inside
one vertex's access burst, finished-early threads).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.generate.rmat import rmat_edges
from repro.graph import Graph, build_graph
from repro.sim import (
    AddressSpace,
    SimulationConfig,
    concatenate_traces,
    interleave_stream,
    interleave_traces,
    simulate_spmv,
    simulate_spmv_streamed,
    spmv_trace,
    spmv_trace_chunks,
)
from repro.sim.parallel import edge_balanced_partitions
from repro.sim.trace import MemoryTrace

_GRAPHS: dict = {}


def _rmat(seed: int, log_scale: int = 7, num_edges: int = 640) -> Graph:
    key = (seed, log_scale, num_edges)
    if key not in _GRAPHS:
        src, dst = rmat_edges(log_scale, num_edges, seed=seed)
        _GRAPHS[key] = build_graph(
            1 << log_scale, src, dst, name=f"rm{seed}"
        ).graph
    return _GRAPHS[key]


def _assert_traces_equal(actual: MemoryTrace, expected: MemoryTrace) -> None:
    np.testing.assert_array_equal(actual.lines, expected.lines)
    np.testing.assert_array_equal(actual.kinds, expected.kinds)
    np.testing.assert_array_equal(actual.read_vertex, expected.read_vertex)
    np.testing.assert_array_equal(actual.proc_vertex, expected.proc_vertex)


class TestTraceChunks:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 3),
        direction=st.sampled_from(["pull", "push"]),
        promote=st.booleans(),
        max_accesses=st.sampled_from([1, 7, 64, 509, 4096]),
    )
    def test_concatenation_is_bit_exact(
        self, seed, direction, promote, max_accesses
    ):
        graph = _rmat(seed)
        space = AddressSpace(graph.num_vertices, graph.num_edges)
        chunks = list(
            spmv_trace_chunks(
                graph,
                space,
                direction=direction,
                promote_sequential=promote,
                max_accesses=max_accesses,
            )
        )
        reference = spmv_trace(
            graph, space, direction=direction, promote_sequential=promote
        )
        _assert_traces_equal(concatenate_traces(chunks), reference)
        assert all(len(chunk) > 0 for chunk in chunks)
        if max_accesses * 4 < len(reference):
            assert len(chunks) > 1

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 2),
        start=st.integers(0, 100),
        width=st.integers(0, 60),
        max_accesses=st.sampled_from([1, 19, 256]),
    )
    def test_vertex_range_matches_sliced_reference(
        self, seed, start, width, max_accesses
    ):
        graph = _rmat(seed)
        space = AddressSpace(graph.num_vertices, graph.num_edges)
        vertex_range = (start, min(graph.num_vertices, start + width))
        chunks = list(
            spmv_trace_chunks(
                graph, space, vertex_range=vertex_range, max_accesses=max_accesses
            )
        )
        reference = spmv_trace(graph, space, vertex_range=vertex_range)
        if not chunks:
            # An empty vertex range streams zero chunks.
            assert len(reference) == 0
        else:
            _assert_traces_equal(concatenate_traces(chunks), reference)

    def test_zero_degree_runs_span_chunk_boundaries(self):
        # Edges confined to the first and last 4 of 256 vertices: the
        # middle ~248 vertices are a long zero-in-degree run the chunker
        # must cross while re-holding the dedup carry.
        src = np.array([0, 1, 2, 3, 252, 253, 254, 255], dtype=np.int64)
        dst = np.array([1, 2, 3, 0, 253, 254, 255, 252], dtype=np.int64)
        graph = Graph.from_edges(256, src, dst, name="sparse-runs")
        space = AddressSpace(graph.num_vertices, graph.num_edges)
        for max_accesses in (1, 5, 37):
            chunks = list(
                spmv_trace_chunks(graph, space, max_accesses=max_accesses)
            )
            _assert_traces_equal(
                concatenate_traces(chunks), spmv_trace(graph, space)
            )

    def test_unknown_direction_rejected(self):
        graph = _rmat(0)
        with pytest.raises(SimulationError):
            next(iter(spmv_trace_chunks(graph, direction="sideways")))


class TestConcatenateTraces:
    def _chunks(self):
        graph = _rmat(1)
        space = AddressSpace(graph.num_vertices, graph.num_edges)
        return list(spmv_trace_chunks(graph, space, max_accesses=128))

    def test_presized_matches_list_branch(self):
        chunks = self._chunks()
        total = sum(len(c) for c in chunks)
        presized = concatenate_traces(iter(chunks), total_length=total)
        _assert_traces_equal(presized, concatenate_traces(chunks))

    def test_wrong_total_length_rejected(self):
        chunks = self._chunks()
        total = sum(len(c) for c in chunks)
        with pytest.raises(SimulationError):
            concatenate_traces(iter(chunks), total_length=total - 1)
        with pytest.raises(SimulationError):
            concatenate_traces(iter(chunks), total_length=total + 1)


class TestInterleaveStream:
    @settings(max_examples=25, deadline=None)
    @given(
        num_threads=st.integers(1, 8),
        interval=st.sampled_from([1, 3, 17, 64]),
        batch_accesses=st.sampled_from([1, 29, 256, 1 << 20]),
        seed=st.integers(0, 2),
    )
    def test_matches_materialized_interleave(
        self, num_threads, interval, batch_accesses, seed
    ):
        graph = _rmat(seed, log_scale=8, num_edges=1600)
        space = AddressSpace(graph.num_vertices, graph.num_edges)
        bounds = edge_balanced_partitions(graph, num_threads)
        ranges = [
            (int(bounds[i]), int(bounds[i + 1])) for i in range(num_threads)
        ]
        materialized = [
            spmv_trace(graph, space, vertex_range=r) for r in ranges
        ]
        reference, reference_tids = interleave_traces(materialized, interval)

        sources = [
            spmv_trace_chunks(graph, space, vertex_range=r, max_accesses=97)
            for r in ranges
        ]
        batches = list(
            interleave_stream(sources, interval, batch_accesses=batch_accesses)
        )
        merged = concatenate_traces([b[0] for b in batches])
        _assert_traces_equal(merged, reference)
        np.testing.assert_array_equal(
            np.concatenate([b[1] for b in batches]), reference_tids
        )
        # Streaming must actually stream: small batch caps produce many
        # batches, each a contiguous slice of the reference output.
        if batch_accesses < len(reference) // 4:
            assert len(batches) > 1

    def test_rejects_bad_arguments(self):
        graph = _rmat(0)
        space = AddressSpace(graph.num_vertices, graph.num_edges)
        source = [spmv_trace_chunks(graph, space)]
        with pytest.raises(SimulationError):
            next(iter(interleave_stream([], 4)))
        with pytest.raises(SimulationError):
            next(iter(interleave_stream(source, 0)))
        with pytest.raises(SimulationError):
            next(iter(interleave_stream(source, 4, batch_accesses=0)))


class TestStreamedSimulator:
    @pytest.fixture(scope="class")
    def graph(self):
        return _rmat(5, log_scale=9, num_edges=4000)

    @pytest.fixture(scope="class")
    def config(self, graph):
        approx = graph.num_edges + graph.num_vertices // 4
        return SimulationConfig.scaled_for(
            graph, scan_interval=max(1, approx // 16)
        )

    @pytest.fixture(scope="class")
    def reference(self, graph, config):
        return simulate_spmv(graph, config)

    @pytest.mark.parametrize(
        "num_shards, mode, chunk_accesses",
        [
            (1, "serial", 1 << 20),
            (1, "serial", 997),
            (3, "serial", 1 << 12),
            (4, "process", 1 << 13),
        ],
    )
    def test_matches_materialized_simulation(
        self, graph, config, reference, num_shards, mode, chunk_accesses
    ):
        streamed = simulate_spmv_streamed(
            graph,
            config,
            num_shards=num_shards,
            shard_mode=mode,
            chunk_accesses=chunk_accesses,
        )
        assert streamed.num_accesses == reference.num_accesses
        assert streamed.l3_misses == reference.l3_misses
        assert streamed.tlb_misses == reference.tlb_misses
        assert streamed.random_accesses == reference.random_accesses
        assert streamed.random_misses == reference.random_misses
        np.testing.assert_array_equal(
            streamed.partition_boundaries, reference.partition_boundaries
        )
        assert len(streamed.snapshots) == len(reference.snapshots)
        for got, want in zip(streamed.snapshots, reference.snapshots):
            assert got.access_index == want.access_index
            np.testing.assert_array_equal(
                got.resident_lines, want.resident_lines
            )
        assert streamed.effective_cache_size() == pytest.approx(
            reference.effective_cache_size()
        )

    def test_config_kwargs_are_exclusive(self, graph, config):
        with pytest.raises(SimulationError):
            simulate_spmv_streamed(graph, config, pressure=0.5)
