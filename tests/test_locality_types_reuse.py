"""Unit tests for locality type classification and reuse distances."""

import numpy as np
import pytest

from repro.core import (
    classify_locality_types,
    reuse_distance_histogram,
    reuse_distances,
)
from repro.sim import AddressSpace, MemoryTrace, Region
from repro.sim.cache import CacheConfig, SetAssociativeCache


def trace_from(records, num_vertices=64, num_edges=64):
    """Build a MemoryTrace of random data accesses from tuples
    (line, read_vertex, proc_vertex)."""
    space = AddressSpace(num_vertices, num_edges)
    lines = np.array([r[0] for r in records], dtype=np.int64)
    # offset lines into the data region so region decoding stays valid
    lines = lines + space.data_base // space.line_size
    return MemoryTrace(
        lines=lines,
        kinds=np.full(len(records), Region.VERTEX_DATA, dtype=np.uint8),
        read_vertex=np.array([r[1] for r in records], dtype=np.int64),
        proc_vertex=np.array([r[2] for r in records], dtype=np.int64),
        space=space,
    )


class TestLocalityTypes:
    def test_type_i_same_processed_vertex(self):
        # two neighbours of vertex 7 on the same line
        trace = trace_from([(0, 1, 7), (0, 2, 7)])
        counts = classify_locality_types(trace)
        assert counts.type_i == 1
        assert counts.cold == 1

    def test_type_ii_common_neighbour(self):
        # vertex 1's data reused while processing 7 then 8
        trace = trace_from([(0, 1, 7), (0, 1, 8)])
        counts = classify_locality_types(trace)
        assert counts.type_ii == 1

    def test_type_iii_distinct_neighbours_same_line(self):
        trace = trace_from([(0, 1, 7), (0, 2, 8)])
        counts = classify_locality_types(trace)
        assert counts.type_iii == 1

    def test_types_iv_v_need_threads(self):
        trace = trace_from([(0, 1, 7), (0, 1, 8), (0, 2, 9)])
        threads = np.array([0, 1, 1])
        counts = classify_locality_types(trace, threads)
        assert counts.type_iv == 1  # same u across threads
        assert counts.type_iii == 1  # different u, same thread

    def test_type_v(self):
        trace = trace_from([(0, 1, 7), (0, 2, 8)])
        counts = classify_locality_types(trace, np.array([0, 1]))
        assert counts.type_v == 1

    def test_single_thread_never_iv_v(self, small_web):
        from repro.sim import spmv_trace

        trace = spmv_trace(small_web)
        counts = classify_locality_types(trace)
        assert counts.type_iv == 0
        assert counts.type_v == 0
        assert counts.total_reuses + counts.cold == trace.num_random_accesses

    def test_fractions_sum_to_one(self):
        trace = trace_from([(0, 1, 7), (0, 1, 8), (0, 2, 8), (0, 3, 8)])
        fractions = classify_locality_types(trace).fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_fractions_empty(self):
        trace = trace_from([(0, 1, 7)])
        fractions = classify_locality_types(trace).fractions()
        assert all(value == 0.0 for value in fractions.values())


class TestReuseDistances:
    def test_hand_computed(self):
        # a b a -> a's reuse skips one distinct line (b)
        distances = reuse_distances(np.array([1, 2, 1]))
        assert distances.tolist() == [-1, -1, 1]

    def test_immediate_reuse_distance_zero(self):
        distances = reuse_distances(np.array([5, 5]))
        assert distances.tolist() == [-1, 0]

    def test_repeated_intervening_line_counts_once(self):
        # a b b a -> distance 1, not 2
        distances = reuse_distances(np.array([1, 2, 2, 1]))
        assert distances[-1] == 1

    def test_histogram_cold_misses(self):
        profile = reuse_distance_histogram(np.array([1, 2, 3]))
        assert profile.cold_misses == 3
        assert profile.total_reuses == 0

    def test_histogram_counts(self):
        profile = reuse_distance_histogram(np.array([1, 2, 1, 2]))
        assert profile.total_reuses == 2

    def test_miss_count_rejects_zero_cache(self):
        from repro.errors import SimulationError

        profile = reuse_distance_histogram(np.array([1, 1]))
        with pytest.raises(SimulationError):
            profile.miss_count_for_cache(0)

    def test_cross_validates_fully_associative_lru(self):
        """Reuse-distance-derived misses bound the simulated LRU cache."""
        rng = np.random.default_rng(0)
        lines = rng.integers(0, 32, size=600)
        distances = reuse_distances(lines)
        for ways in (4, 8, 16):
            exact = int((distances == -1).sum() + (distances >= ways).sum())
            cache = SetAssociativeCache(
                CacheConfig(num_sets=1, ways=ways, policy="lru")
            )
            simulated = cache.simulate(lines).num_misses
            assert simulated == exact
